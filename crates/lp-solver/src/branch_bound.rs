//! Branch and bound for mixed-integer problems.
//!
//! The MILP layer drives the LP relaxation solver of [`crate::simplex`]:
//! each node tightens the bounds of one integer variable (floor/ceil of its
//! fractional relaxation value). Child LPs are **warm-started** from their
//! parent's optimal basis and solved inside a per-thread reusable
//! [`crate::simplex::LpWorkspace`], so a node costs a few dual-simplex
//! pivots instead of a full two-phase solve — and none of the `O(n)` tableau
//! construction a fresh solve would pay.
//!
//! # Deterministic parallel exploration
//!
//! Nodes are explored best-bound-first in **fixed-size batches** of
//! `NODE_BATCH` child LPs: the search pops frontier nodes in heap order,
//! expands them into child jobs, solves every job's LP relaxation (on up to
//! [`SolverConfig::num_threads`] threads), and merges the results — children
//! pushed, incumbents updated, bounds pruned — **in job order**. Batch
//! composition and merge order never depend on the thread count (the same
//! chunk-order discipline as the engine's data-parallel scans), so the same
//! problem + config yields bit-identical solutions, node counts and
//! iteration counts at every `num_threads`, including 1, where the batch is
//! simply solved inline with no thread machinery at all.
//!
//! Each node stores its **own** LP relaxation bound (solved eagerly when the
//! node is created), so best-bound ordering and incumbent pruning use the
//! tight child bound rather than the parent's, and [`Solution::gap`] is
//! exact when a limit stops the search.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::problem::{Problem, Sense, VarType};
use crate::simplex::{solve_lp_warm, Basis, LpWorkspace, WarmAttempt};
use crate::solution::{Solution, Status};
use crate::{LpError, LpResult, SolverConfig};

/// Number of child LPs gathered into one frontier batch. A fixed constant —
/// never derived from the thread count — because batch boundaries are part
/// of the determinism contract: they decide which nodes are solved before
/// the incumbent can prune, and therefore the node count.
const NODE_BATCH: usize = 16;

/// One branching decision: variable `var` was clamped to `[lb, ub]`.
///
/// A node's full bound vector is the root bounds patched by its ancestor
/// chain (nearest patch wins), materialized only when its LP is solved.
/// Storing deltas instead of `O(n)` bound vectors keeps a frontier node to a
/// few dozen bytes, which is what lets the heap hold thousands of nodes on
/// 20 000-variable package ILPs.
struct BoundPatch {
    var: usize,
    lb: f64,
    ub: f64,
    parent: Option<Arc<BoundPatch>>,
}

/// The effective bounds of `var` under a patch chain.
fn effective_bounds(
    root: &[(f64, f64)],
    chain: &Option<Arc<BoundPatch>>,
    var: usize,
) -> (f64, f64) {
    let mut cur = chain.as_deref();
    while let Some(p) = cur {
        if p.var == var {
            return (p.lb, p.ub);
        }
        cur = p.parent.as_deref();
    }
    root[var]
}

/// Root bounds with the chain's patches applied (nearest patch per variable
/// wins).
fn materialize_bounds(root: &[(f64, f64)], chain: &Option<Arc<BoundPatch>>) -> Vec<(f64, f64)> {
    let mut bounds = root.to_vec();
    let mut seen: Vec<usize> = Vec::new();
    let mut cur = chain.as_deref();
    while let Some(p) = cur {
        if !seen.contains(&p.var) {
            bounds[p.var] = (p.lb, p.ub);
            seen.push(p.var);
        }
        cur = p.parent.as_deref();
    }
    bounds
}

/// A frontier node whose LP relaxation has already been solved (eager
/// bounds: the heap orders by each node's *own* relaxation bound).
struct Node {
    chain: Option<Arc<BoundPatch>>,
    /// This node's own LP relaxation bound as a normalized "larger is
    /// better" key.
    bound: f64,
    depth: u32,
    /// Creation order; the final tie-break that makes the heap order total
    /// and therefore reproducible.
    seq: u64,
    /// Most fractional integer variable of this node's relaxation.
    branch_var: usize,
    /// Its relaxation value (branching splits at floor/ceil of this).
    branch_val: f64,
    /// Parent basis for warm-starting the children, shared by both.
    basis: Option<Arc<Basis>>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
/// Max-heap: best bound first, then deeper (finds incumbents faster), then
/// earlier creation. `total_cmp` keeps the order total even if a bound is
/// NaN (it then sorts consistently instead of corrupting the heap).
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .total_cmp(&other.bound)
            .then_with(|| self.depth.cmp(&other.depth))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// An unsolved child LP: bounds (as a patch chain) plus the parent basis to
/// warm-start from. Cheap to clone — two `Arc`s and a depth.
#[derive(Clone)]
struct Job {
    chain: Option<Arc<BoundPatch>>,
    warm: Option<Arc<Basis>>,
    depth: u32,
}

type JobResult = LpResult<(Solution, Option<Basis>)>;

/// Solves one job's LP relaxation. Pure function of (problem, root bounds,
/// config, job) — the determinism guarantee leans on this: `ws` is a
/// per-thread [`LpWorkspace`] that amortizes tableau construction across the
/// thousands of node LPs of one solve, and every call fully resets its
/// mutable state, so *which* worker's workspace solves a job never affects
/// the result.
fn solve_job(
    problem: &Problem,
    config: &SolverConfig,
    root_bounds: &[(f64, f64)],
    job: &Job,
    ws: &mut Option<LpWorkspace>,
) -> JobResult {
    let bounds = materialize_bounds(root_bounds, &job.chain);
    if let (Some(ws), Some(warm)) = (ws.as_mut(), job.warm.as_deref()) {
        match ws.solve(problem, &bounds, config, warm)? {
            WarmAttempt::Done(solution, basis) => return Ok((solution, basis)),
            WarmAttempt::Fallback(spent) => {
                // The warm start didn't pan out (stale basis or numerical
                // trouble): re-solve cold, charging the wasted pivots so
                // iteration counts stay meaningful.
                let (mut solution, basis) = solve_lp_warm(problem, Some(&bounds), config, None)?;
                solution.iterations += spent;
                return Ok((solution, basis));
            }
        }
    }
    solve_lp_warm(problem, Some(&bounds), config, job.warm.as_deref())
}

/// [`solve_job`] with a panic guard: a worker panic becomes a numerical
/// error instead of deadlocking the pool (and the sequential path uses the
/// same wrapper so both paths behave identically). `AssertUnwindSafe` is
/// sound for the workspace because every [`LpWorkspace::solve`] starts by
/// resetting all state a previous (even panicked) call could have left.
fn run_job(
    problem: &Problem,
    config: &SolverConfig,
    root_bounds: &[(f64, f64)],
    job: &Job,
    ws: &mut Option<LpWorkspace>,
) -> JobResult {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        solve_job(problem, config, root_bounds, job, ws)
    }))
    .unwrap_or_else(|_| Err(LpError::Numerical("panic while solving node LP".into())))
}

/// Shared state of the per-solve worker pool. The pool lives for the whole
/// MILP solve (threads spawn once, not per batch) and drains one batch at a
/// time: the main thread installs the jobs, workers and the main thread
/// claim indices from a shared counter, and results land in their slot so
/// the merge happens in job order no matter which thread solved what.
struct PoolState {
    jobs: Vec<Job>,
    results: Vec<Option<JobResult>>,
    next: usize,
    pending: usize,
    shutdown: bool,
}

struct Pool<'a> {
    problem: &'a Problem,
    config: &'a SolverConfig,
    root_bounds: &'a [(f64, f64)],
    state: Mutex<PoolState>,
    work: Condvar,
}

fn worker_loop(pool: &Pool<'_>) {
    let mut ws = LpWorkspace::new(pool.problem);
    loop {
        let (idx, job) = {
            let mut st = pool.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.next < st.jobs.len() {
                    break;
                }
                st = pool.work.wait(st).unwrap();
            }
            let idx = st.next;
            st.next += 1;
            (idx, st.jobs[idx].clone())
        };
        let r = run_job(pool.problem, pool.config, pool.root_bounds, &job, &mut ws);
        let mut st = pool.state.lock().unwrap();
        st.results[idx] = Some(r);
        st.pending -= 1;
        if st.pending == 0 {
            pool.work.notify_all();
        }
    }
}

/// Runs one batch on the pool. The calling thread participates in the claim
/// loop (so `num_threads = T` means `T` solving threads, not `T + 1`), then
/// waits for the helpers to finish their claimed jobs. `ws` is the *calling
/// thread's* workspace, owned by the caller so it survives across batches.
fn solve_batch_pooled(
    pool: &Pool<'_>,
    jobs: &[Job],
    ws: &mut Option<LpWorkspace>,
) -> Vec<JobResult> {
    {
        let mut st = pool.state.lock().unwrap();
        st.jobs = jobs.to_vec();
        st.results = (0..jobs.len()).map(|_| None).collect();
        st.next = 0;
        st.pending = jobs.len();
    }
    pool.work.notify_all();
    loop {
        let claimed = {
            let mut st = pool.state.lock().unwrap();
            if st.next < st.jobs.len() {
                let idx = st.next;
                st.next += 1;
                Some((idx, st.jobs[idx].clone()))
            } else {
                None
            }
        };
        let Some((idx, job)) = claimed else { break };
        let r = run_job(pool.problem, pool.config, pool.root_bounds, &job, ws);
        let mut st = pool.state.lock().unwrap();
        st.results[idx] = Some(r);
        st.pending -= 1;
    }
    let mut st = pool.state.lock().unwrap();
    while st.pending > 0 {
        st = pool.work.wait(st).unwrap();
    }
    st.jobs.clear();
    st.next = 0;
    st.results
        .drain(..)
        // pb-lint: allow(no-panic-in-solver-paths) — invariant: the claim
        // counter handed out every index exactly once and the latch waited
        // for all of them, so every slot holds a result.
        .map(|r| r.expect("every claimed job stored a result"))
        .collect()
}

/// Normalizes "better objective" to the problem's sense.
fn obj_better(problem: &Problem, a: f64, b: f64) -> bool {
    match problem.sense() {
        Sense::Maximize => a > b + 1e-12,
        Sense::Minimize => a < b - 1e-12,
    }
}

/// Normalizes an objective to a "larger is better" bound key.
fn key_of(problem: &Problem, obj: f64) -> f64 {
    match problem.sense() {
        Sense::Maximize => obj,
        Sense::Minimize => -obj,
    }
}

fn better_key(a: f64, b: f64) -> bool {
    a > b + 1e-12
}

/// True when every variable with a nonzero objective coefficient is integer
/// with an integral coefficient: the MILP objective can then only take
/// integral values, so an LP relaxation bound can be **rounded towards the
/// incumbent** (floored, in "larger is better" key space) before pruning.
/// On objectives with many ties — the norm for package queries over
/// rounded attribute data — this is what lets the search stop as soon as an
/// incumbent matches the rounded bound instead of exhausting thousands of
/// fractional nodes that could never beat it by a whole unit.
fn objective_is_integral(problem: &Problem) -> bool {
    problem
        .variables()
        .iter()
        .zip(problem.objective())
        .all(|(v, &c)| c == 0.0 || (v.ty == VarType::Integer && c.round() == c))
}

/// Rounds a "larger is better" bound key towards the incumbent when the
/// objective is integral (no-op otherwise).
fn round_key(key: f64, integral: bool) -> f64 {
    if integral {
        (key + 1e-6).floor()
    } else {
        key
    }
}

/// Mutable search state threaded through the merge step.
struct SearchState {
    heap: BinaryHeap<Node>,
    incumbent: Option<Solution>,
    total_iterations: usize,
    nodes: usize,
    next_seq: u64,
    /// The objective can only take integral values (see
    /// [`objective_is_integral`]); bounds are rounded before pruning.
    integral_obj: bool,
}

/// What merging one solved job decided.
enum Merged {
    /// Keep going (child pushed, incumbent updated, or node pruned/infeasible).
    Continue,
    /// The relaxation was unbounded: the MILP itself is unbounded.
    Unbounded(Solution),
}

/// Merges one solved relaxation into the search state, in job order. This is
/// the *only* place children are pushed and incumbents updated, which is
/// what pins the exploration sequence regardless of which thread solved the
/// LP.
fn merge_one(
    problem: &Problem,
    config: &SolverConfig,
    int_vars: &[usize],
    st: &mut SearchState,
    job: &Job,
    relax: Solution,
    basis: Option<Basis>,
) -> Merged {
    st.nodes += 1;
    st.total_iterations += relax.iterations;
    match relax.status {
        Status::Infeasible => return Merged::Continue,
        Status::Unbounded => {
            // An unbounded relaxation means the MILP itself is unbounded (if
            // any integer assignment is feasible) — report unbounded,
            // matching common solver behaviour.
            return Merged::Unbounded(Solution {
                status: Status::Unbounded,
                objective: relax.objective,
                values: relax.values,
                iterations: st.total_iterations,
                nodes: st.nodes,
                gap: None,
            });
        }
        _ => {}
    }

    // Prune by bound: an incumbent merged earlier in this very batch prunes
    // later results (their LP was already solved and counted, exactly as at
    // one thread). The relaxation bound is rounded first when the objective
    // is integral — a fractional lead under one whole unit cannot yield a
    // better integer solution.
    let bound_key = round_key(key_of(problem, relax.objective), st.integral_obj);
    if let Some(inc) = &st.incumbent {
        if !better_key(bound_key, key_of(problem, inc.objective)) {
            return Merged::Continue;
        }
    }

    // Find the most fractional integer variable (prefer values near .5).
    let mut branch_var: Option<(usize, f64)> = None;
    for &i in int_vars {
        let v = relax.values[i];
        let frac = (v - v.round()).abs();
        if frac > config.int_tolerance {
            let dist_to_half = (v - v.floor() - 0.5).abs();
            let score = 0.5 - dist_to_half;
            if branch_var.map(|(_, s)| score > s).unwrap_or(true) {
                branch_var = Some((i, score));
            }
        }
    }

    match branch_var {
        None => {
            // Integral solution: candidate incumbent.
            let mut values = relax.values;
            for &i in int_vars {
                values[i] = values[i].round();
            }
            let obj = problem.objective_value(&values);
            if problem.is_feasible(&values, config.tolerance * 100.0)
                && st
                    .incumbent
                    .as_ref()
                    .map(|inc| obj_better(problem, obj, inc.objective))
                    .unwrap_or(true)
            {
                st.incumbent = Some(Solution {
                    status: Status::Optimal,
                    objective: obj,
                    values,
                    iterations: 0,
                    nodes: 0,
                    gap: None,
                });
            }
        }
        Some((i, _)) => {
            st.heap.push(Node {
                chain: job.chain.clone(),
                bound: bound_key,
                depth: job.depth,
                seq: st.next_seq,
                branch_var: i,
                branch_val: relax.values[i],
                basis: basis.map(Arc::new),
            });
            st.next_seq += 1;
        }
    }
    Merged::Continue
}

/// Assembles the final solution (status, counters, gap) from the search
/// state.
fn finish(
    problem: &Problem,
    mut st: SearchState,
    limit_hit: bool,
    interrupted: bool,
) -> LpResult<Solution> {
    match st.incumbent.take() {
        Some(mut sol) => {
            sol.iterations = st.total_iterations;
            sol.nodes = st.nodes;
            if limit_hit {
                sol.status = Status::LimitReached;
                // The heap is ordered by bound, so its top is the best open
                // bound: the incumbent is within `gap` of optimal.
                let inc_key = key_of(problem, sol.objective);
                let best_open = st.heap.peek().map(|n| n.bound).unwrap_or(inc_key);
                sol.gap = Some((best_open - inc_key).max(0.0) / (1.0 + inc_key.abs()));
            } else {
                sol.status = Status::Optimal;
                sol.gap = Some(0.0);
            }
            Ok(sol)
        }
        None => {
            if interrupted {
                Err(LpError::Interrupted)
            } else if limit_hit {
                Err(LpError::NodeLimit)
            } else {
                Ok(Solution {
                    status: Status::Infeasible,
                    objective: f64::NAN,
                    values: Vec::new(),
                    iterations: st.total_iterations,
                    nodes: st.nodes,
                    gap: None,
                })
            }
        }
    }
}

/// Solves a mixed-integer linear program by LP-relaxation branch and bound.
pub fn solve_milp(problem: &Problem, config: &SolverConfig) -> LpResult<Solution> {
    solve_milp_hinted(problem, config, None)
}

/// [`solve_milp`] with an optional feasibility *hint*: a candidate integer
/// assignment (for example a cached partition solution from a previous
/// query) that, when feasible, seeds the incumbent so bound pruning bites
/// from the very first batch. A malformed or infeasible hint is silently
/// ignored. The hint never changes the optimal objective value — it is a
/// lower bound on solution quality, not a constraint — but it can change
/// which of several tie-optimal assignments is returned, so callers that
/// need reproducibility must supply the hint deterministically.
pub fn solve_milp_hinted(
    problem: &Problem,
    config: &SolverConfig,
    hint: Option<&[f64]>,
) -> LpResult<Solution> {
    problem.validate()?;

    let int_vars: Vec<usize> = problem
        .variables()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.ty == VarType::Integer)
        .map(|(i, _)| i)
        .collect();

    let root_bounds: Vec<(f64, f64)> = problem
        .variables()
        .iter()
        .map(|v| {
            // Integer variables can have their bounds rounded inwards right away.
            if v.ty == VarType::Integer {
                (v.lb.ceil(), v.ub.floor())
            } else {
                (v.lb, v.ub)
            }
        })
        .collect();

    // A batch can never employ more than NODE_BATCH threads. Callers are
    // expected to keep `num_threads = 1` for tiny problems, where a worker
    // spawn costs more than the whole solve (the engine's ILP layer does).
    let workers = config.num_threads.clamp(1, NODE_BATCH);

    if workers <= 1 {
        let mut ws = LpWorkspace::new(problem);
        let mut batch = |jobs: &[Job]| -> Vec<JobResult> {
            jobs.iter()
                .map(|j| run_job(problem, config, &root_bounds, j, &mut ws))
                .collect()
        };
        return search(problem, config, hint, &int_vars, &root_bounds, &mut batch);
    }

    let pool = Pool {
        problem,
        config,
        root_bounds: &root_bounds,
        state: Mutex::new(PoolState {
            jobs: Vec::new(),
            results: Vec::new(),
            next: 0,
            pending: 0,
            shutdown: false,
        }),
        work: Condvar::new(),
    };
    // This is a contained thread home clippy.toml points at.
    #[allow(clippy::disallowed_methods)]
    std::thread::scope(|s| {
        for _ in 0..workers - 1 {
            let p = &pool;
            s.spawn(move || worker_loop(p));
        }
        let mut main_ws = LpWorkspace::new(problem);
        let mut batch = |jobs: &[Job]| solve_batch_pooled(&pool, jobs, &mut main_ws);
        let out = search(
            problem,
            config,
            hint,
            &int_vars,
            pool.root_bounds,
            &mut batch,
        );
        pool.state.lock().unwrap().shutdown = true;
        pool.work.notify_all();
        out
    })
}

/// The batched best-bound search loop. `batch_solve` abstracts over the
/// sequential and pooled executors; everything that decides *what* is solved
/// and *how results merge* lives here, identically for both.
fn search(
    problem: &Problem,
    config: &SolverConfig,
    hint: Option<&[f64]>,
    int_vars: &[usize],
    root_bounds: &[(f64, f64)],
    batch_solve: &mut dyn FnMut(&[Job]) -> Vec<JobResult>,
) -> LpResult<Solution> {
    // pb-lint: allow(time-containment) — stats clock only: stamps the
    // solution's solve time; interruption goes through Interrupt's deadline.
    let start = Instant::now();
    let mut st = SearchState {
        heap: BinaryHeap::new(),
        incumbent: None,
        total_iterations: 0,
        nodes: 0,
        next_seq: 0,
        integral_obj: objective_is_integral(problem),
    };
    let mut limit_hit = false;
    // Distinguishes a cooperative stop (deadline/cancellation) from an
    // exhausted node budget when no incumbent exists to return.
    let mut interrupted = false;

    // Seed the incumbent from the hint, if it checks out.
    if let Some(h) = hint {
        if h.len() == problem.num_vars() {
            let mut values = h.to_vec();
            for &i in int_vars {
                values[i] = values[i].round();
            }
            if problem.is_feasible(&values, config.tolerance * 100.0) {
                let objective = problem.objective_value(&values);
                st.incumbent = Some(Solution {
                    status: Status::Optimal,
                    objective,
                    values,
                    iterations: 0,
                    nodes: 0,
                    gap: None,
                });
            }
        }
    }

    // ---- Root node ----
    let root_job = Job {
        chain: None,
        warm: None,
        depth: 0,
    };
    let root_res = batch_solve(std::slice::from_ref(&root_job))
        .pop()
        .ok_or_else(|| LpError::Numerical("batch solver returned no result for the root".into()))?;
    match root_res {
        Err(LpError::Interrupted) => {
            return finish(problem, st, true, true);
        }
        Err(e) => return Err(e),
        Ok((relax, basis)) => {
            if let Merged::Unbounded(sol) =
                merge_one(problem, config, int_vars, &mut st, &root_job, relax, basis)
            {
                return Ok(sol);
            }
        }
    }

    // ---- Batched frontier loop ----
    'outer: while !st.heap.is_empty() {
        if st.nodes >= config.max_nodes {
            limit_hit = true;
            break;
        }
        if let Some(limit) = config.time_limit {
            if start.elapsed() >= limit {
                limit_hit = true;
                interrupted = true;
                break;
            }
        }
        if config.interrupted() {
            limit_hit = true;
            interrupted = true;
            break;
        }
        // Best-bound termination: the heap is bound-ordered, so if the top
        // cannot beat the incumbent, no open node can.
        if let Some(inc) = &st.incumbent {
            if let Some(top) = st.heap.peek() {
                if !better_key(top.bound, key_of(problem, inc.objective)) {
                    st.heap.clear();
                    break;
                }
            }
        }

        // Gather one batch of child jobs in deterministic heap order.
        let mut jobs: Vec<Job> = Vec::with_capacity(NODE_BATCH);
        while jobs.len() + 2 <= NODE_BATCH {
            let Some(node) = st.heap.pop() else { break };
            // Prune at pop: the incumbent may have improved since the push.
            if let Some(inc) = &st.incumbent {
                if !better_key(node.bound, key_of(problem, inc.objective)) {
                    continue;
                }
            }
            let (lb, ub) = effective_bounds(root_bounds, &node.chain, node.branch_var);
            let v = node.branch_val;
            let down = v.floor();
            let up = v.ceil();
            if down >= lb - 1e-9 {
                jobs.push(Job {
                    chain: Some(Arc::new(BoundPatch {
                        var: node.branch_var,
                        lb,
                        ub: down,
                        parent: node.chain.clone(),
                    })),
                    warm: node.basis.clone(),
                    depth: node.depth + 1,
                });
            }
            if up <= ub + 1e-9 {
                jobs.push(Job {
                    chain: Some(Arc::new(BoundPatch {
                        var: node.branch_var,
                        lb: up,
                        ub,
                        parent: node.chain,
                    })),
                    warm: node.basis,
                    depth: node.depth + 1,
                });
            }
        }
        if jobs.is_empty() {
            continue;
        }
        // Never start more LPs than the node budget allows, so the node
        // count at which the limit trips is thread-independent.
        let room = config.max_nodes.saturating_sub(st.nodes);
        if jobs.len() > room {
            jobs.truncate(room);
            limit_hit = true;
        }

        let results = batch_solve(&jobs);
        for (job, res) in jobs.iter().zip(results) {
            match res {
                Err(LpError::Interrupted) => {
                    // An interrupted relaxation is a limit, not a failure:
                    // keep the incumbent found so far.
                    limit_hit = true;
                    interrupted = true;
                    break 'outer;
                }
                Err(e) => return Err(e),
                Ok((relax, basis)) => {
                    if let Merged::Unbounded(sol) =
                        merge_one(problem, config, int_vars, &mut st, job, relax, basis)
                    {
                        return Ok(sol);
                    }
                }
            }
        }
    }

    finish(problem, st, limit_hit, interrupted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, Problem, Sense, VarType};

    fn cfg() -> SolverConfig {
        SolverConfig::default()
    }

    #[test]
    fn knapsack_small() {
        // maximize 10a + 6b + 4c s.t. a+b+c <= 2, 5a+4b+3c <= 7, binary
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        let c = p.add_binary("c");
        p.set_objective_coeff(a, 10.0);
        p.set_objective_coeff(b, 6.0);
        p.set_objective_coeff(c, 4.0);
        p.add_constraint_terms(
            "count",
            &[(a, 1.0), (b, 1.0), (c, 1.0)],
            ConstraintOp::Le,
            2.0,
        );
        p.add_constraint_terms(
            "weight",
            &[(a, 5.0), (b, 4.0), (c, 3.0)],
            ConstraintOp::Le,
            7.0,
        );
        let s = solve_milp(&p, &cfg()).unwrap();
        assert!(s.status.is_optimal());
        // Integer optimum is 10, attained either by {a} (weight 5) or {b, c}
        // (weight 7); {a, b} and {a, c} both violate the weight limit.
        assert_eq!(s.objective.round() as i64, 10);
        assert!(p.is_feasible(&s.values, 1e-6));
        assert_eq!(s.gap, Some(0.0));
        let _ = (a, b, c);
    }

    #[test]
    fn integer_rounding_matters_vs_relaxation() {
        // maximize x s.t. 2x <= 7, x integer → 3 (relaxation 3.5)
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Integer, 0.0, 100.0);
        p.set_objective_coeff(x, 1.0);
        p.add_constraint_terms("c", &[(x, 2.0)], ConstraintOp::Le, 7.0);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert_eq!(s.objective.round() as i64, 3);
    }

    #[test]
    fn infeasible_integer_problem() {
        // 0.4 <= x <= 0.6, x integer → infeasible
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Integer, 0.0, 1.0);
        p.set_objective_coeff(x, 1.0);
        p.add_constraint_terms("lo", &[(x, 1.0)], ConstraintOp::Ge, 0.4);
        p.add_constraint_terms("hi", &[(x, 1.0)], ConstraintOp::Le, 0.6);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn equality_cardinality_like_package_queries() {
        // Exactly 3 items, total calories in [2000, 2500], maximize protein.
        let cal = [800.0, 700.0, 650.0, 400.0, 950.0, 300.0];
        let pro = [40.0, 30.0, 25.0, 20.0, 45.0, 10.0];
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..6).map(|i| p.add_binary(format!("t{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            p.set_objective_coeff(v, pro[i]);
        }
        let ones: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        let cals: Vec<_> = vars.iter().enumerate().map(|(i, &v)| (v, cal[i])).collect();
        p.add_constraint_terms("count", &ones, ConstraintOp::Eq, 3.0);
        p.add_constraint_terms("cal_lo", &cals, ConstraintOp::Ge, 2000.0);
        p.add_constraint_terms("cal_hi", &cals, ConstraintOp::Le, 2500.0);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert!(s.status.is_optimal());
        let picked: Vec<usize> = s.nonzero_rounded().iter().map(|(i, _)| *i).collect();
        assert_eq!(picked.len(), 3);
        let total_cal: f64 = picked.iter().map(|&i| cal[i]).sum();
        assert!((2000.0..=2500.0).contains(&total_cal));
        // Best combination: {0, 1, 4} = 2450 cal, 115 protein.
        assert_eq!(s.objective.round() as i64, 115);
    }

    #[test]
    fn repeat_bounds_allow_multiplicities() {
        // One item repeated up to 3 times: maximize 5x s.t. 700x <= 2300.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Integer, 0.0, 3.0);
        p.set_objective_coeff(x, 5.0);
        p.add_constraint_terms("cal", &[(x, 700.0)], ConstraintOp::Le, 2300.0);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert_eq!(s.value_rounded(x), 3);
    }

    #[test]
    fn minimization_sense() {
        // minimize 3a + 2b s.t. a + b >= 2, binary → a+b>=2 forces both.
        let mut p = Problem::new(Sense::Minimize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        p.set_objective_coeff(a, 3.0);
        p.set_objective_coeff(b, 2.0);
        p.add_constraint_terms("cover", &[(a, 1.0), (b, 1.0)], ConstraintOp::Ge, 2.0);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert_eq!(s.objective.round() as i64, 5);
    }

    #[test]
    fn node_limit_without_incumbent_errors() {
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|i| p.add_binary(format!("x{i}"))).collect();
        for &v in &vars {
            p.set_objective_coeff(v, 1.0);
        }
        // A constraint that forces heavy branching: sum of 0.5-ish weights equal
        // to a value reachable only by specific subsets.
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 + 0.01 * i as f64))
            .collect();
        p.add_constraint_terms("tight", &terms, ConstraintOp::Eq, 3.03);
        let mut c = cfg();
        c.max_nodes = 1;
        let r = solve_milp(&p, &c);
        // With a single node we cannot even evaluate a leaf; depending on the
        // relaxation we either error with NodeLimit or find nothing feasible.
        match r {
            Err(crate::LpError::NodeLimit) => {}
            Ok(s) => assert!(!s.status.is_optimal() || s.nodes <= 1),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn larger_binary_packing_is_consistent_with_exhaustive_check() {
        // 15 items; verify the B&B optimum equals brute force.
        let values = [
            7.0, 2.0, 9.0, 4.0, 6.0, 1.0, 8.0, 3.0, 5.0, 2.5, 7.5, 4.5, 6.5, 3.5, 1.5,
        ];
        let weights = [
            3.0, 1.0, 4.0, 2.0, 3.0, 1.0, 4.0, 2.0, 3.0, 1.5, 3.5, 2.5, 3.0, 2.0, 1.0,
        ];
        let cap = 10.0;
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..15).map(|i| p.add_binary(format!("x{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            p.set_objective_coeff(v, values[i]);
        }
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, weights[i]))
            .collect();
        p.add_constraint_terms("cap", &terms, ConstraintOp::Le, cap);
        let s = solve_milp(&p, &cfg()).unwrap();

        // Brute force.
        let mut best = 0.0f64;
        for mask in 0u32..(1 << 15) {
            let mut w = 0.0;
            let mut v = 0.0;
            for i in 0..15 {
                if mask & (1 << i) != 0 {
                    w += weights[i];
                    v += values[i];
                }
            }
            if w <= cap && v > best {
                best = v;
            }
        }
        assert!(
            (s.objective - best).abs() < 1e-6,
            "solver found {}, brute force found {}",
            s.objective,
            best
        );
    }

    /// Builds a branching-heavy 24-variable knapsack (coprime-ish weights and
    /// a tight capacity keep the LP relaxation fractional: ~240 nodes).
    fn branching_heavy() -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..24).map(|i| p.add_binary(format!("x{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            p.set_objective_coeff(v, ((i * 13) % 17) as f64 + 0.5 * ((i % 3) as f64));
        }
        let w: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 3.0 + ((i * 11) % 13) as f64))
            .collect();
        p.add_constraint_terms("cap", &w, ConstraintOp::Le, 47.0);
        p
    }

    #[test]
    fn thread_counts_are_bit_identical() {
        let p = branching_heavy();
        let reference = solve_milp(&p, &cfg()).unwrap();
        assert!(reference.status.is_optimal());
        for threads in [2usize, 8] {
            let mut c = cfg();
            c.num_threads = threads;
            let s = solve_milp(&p, &c).unwrap();
            assert_eq!(s.status, reference.status, "threads={threads}");
            assert_eq!(
                s.objective.to_bits(),
                reference.objective.to_bits(),
                "threads={threads}"
            );
            assert_eq!(s.values, reference.values, "threads={threads}");
            assert_eq!(s.nodes, reference.nodes, "threads={threads}");
            assert_eq!(s.iterations, reference.iterations, "threads={threads}");
        }
    }

    #[test]
    fn hint_seeds_incumbent_without_changing_the_optimum() {
        let p = branching_heavy();
        let cold = solve_milp(&p, &cfg()).unwrap();
        // Feasible hint: the optimum itself.
        let hinted = solve_milp_hinted(&p, &cfg(), Some(&cold.values)).unwrap();
        assert!(hinted.status.is_optimal());
        assert_eq!(hinted.objective.to_bits(), cold.objective.to_bits());
        assert!(
            hinted.nodes <= cold.nodes,
            "hinted explored {} nodes, cold {}",
            hinted.nodes,
            cold.nodes
        );
        // Garbage hints are ignored.
        let bad_len = solve_milp_hinted(&p, &cfg(), Some(&[1.0])).unwrap();
        assert_eq!(bad_len.objective.to_bits(), cold.objective.to_bits());
        let infeasible_hint = vec![1.0; p.num_vars()];
        let bad = solve_milp_hinted(&p, &cfg(), Some(&infeasible_hint)).unwrap();
        assert_eq!(bad.objective.to_bits(), cold.objective.to_bits());
    }

    #[test]
    fn gap_is_zero_when_proven_and_positive_when_cut_short() {
        let p = branching_heavy();
        let full = solve_milp(&p, &cfg()).unwrap();
        assert_eq!(full.gap, Some(0.0));
        // Tiny node budget with a feasible hint: the search stops early and
        // must report how far the best open bound still is.
        let greedy_hint = {
            // all-zeros is feasible for a pure packing problem
            vec![0.0; p.num_vars()]
        };
        let mut c = cfg();
        c.max_nodes = 2;
        let s = solve_milp_hinted(&p, &c, Some(&greedy_hint)).unwrap();
        assert_eq!(s.status, Status::LimitReached);
        let gap = s.gap.expect("limit-reached solves report a gap");
        assert!(gap > 0.0, "gap was {gap}");
    }
}
