//! Branch and bound for mixed-integer problems.
//!
//! The MILP layer drives the LP relaxation solver of [`crate::simplex`]:
//! each node tightens the bounds of one integer variable (floor/ceil of its
//! fractional relaxation value). Nodes are explored best-bound-first so the
//! incumbent improves quickly on package ILPs, whose relaxations are tight.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use crate::problem::{Problem, Sense, VarType};
use crate::simplex::solve_lp;
use crate::solution::{Solution, Status};
use crate::{LpError, LpResult, SolverConfig};

/// A subproblem waiting to be expanded.
struct Node {
    /// Per-variable bounds for this node.
    bounds: Vec<(f64, f64)>,
    /// Relaxation bound of the *parent* (used for best-first ordering).
    bound: f64,
    /// Depth in the tree (used to break ties depth-first, which finds
    /// incumbents faster).
    depth: usize,
}

/// Max-heap ordering on the relaxation bound (we always maximize the
/// *internal* bound, i.e. problems are normalized so larger is better).
impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.depth == other.depth
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.depth.cmp(&other.depth))
    }
}

/// Solves a mixed-integer linear program by LP-relaxation branch and bound.
pub fn solve_milp(problem: &Problem, config: &SolverConfig) -> LpResult<Solution> {
    problem.validate()?;
    let start = Instant::now();
    let _n = problem.num_vars();

    // Normalize "better" to "greater" regardless of sense.
    let better = |a: f64, b: f64| match problem.sense() {
        Sense::Maximize => a > b + 1e-12,
        Sense::Minimize => a < b - 1e-12,
    };
    let bound_key = |obj: f64| match problem.sense() {
        Sense::Maximize => obj,
        Sense::Minimize => -obj,
    };

    let int_vars: Vec<usize> = problem
        .variables()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.ty == VarType::Integer)
        .map(|(i, _)| i)
        .collect();

    let root_bounds: Vec<(f64, f64)> = problem
        .variables()
        .iter()
        .map(|v| {
            // Integer variables can have their bounds rounded inwards right away.
            if v.ty == VarType::Integer {
                (v.lb.ceil(), v.ub.floor())
            } else {
                (v.lb, v.ub)
            }
        })
        .collect();

    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    heap.push(Node {
        bounds: root_bounds,
        bound: f64::INFINITY,
        depth: 0,
    });

    let mut incumbent: Option<Solution> = None;
    let mut total_iterations = 0usize;
    let mut nodes = 0usize;
    let mut limit_hit = false;
    // Distinguishes a cooperative stop (deadline/cancellation) from an
    // exhausted node budget when no incumbent exists to return.
    let mut interrupted = false;

    while let Some(node) = heap.pop() {
        if nodes >= config.max_nodes {
            limit_hit = true;
            break;
        }
        if let Some(limit) = config.time_limit {
            if start.elapsed() >= limit {
                limit_hit = true;
                interrupted = true;
                break;
            }
        }
        if config.interrupted() {
            limit_hit = true;
            interrupted = true;
            break;
        }
        // Bound-based pruning against the incumbent.
        if let Some(inc) = &incumbent {
            if node.bound.is_finite() && !better_key(node.bound, bound_key(inc.objective)) {
                continue;
            }
        }
        nodes += 1;

        let relax = match solve_lp(problem, Some(&node.bounds), config) {
            // An interrupted relaxation is a limit, not a failure: keep the
            // incumbent found so far (reported as LimitReached below).
            Err(LpError::Interrupted) => {
                limit_hit = true;
                interrupted = true;
                break;
            }
            other => other?,
        };
        total_iterations += relax.iterations;
        match relax.status {
            Status::Infeasible => continue,
            Status::Unbounded => {
                // An unbounded relaxation at the root means the MILP itself is
                // unbounded (if any integer assignment is feasible) — report
                // unbounded, matching common solver behaviour.
                return Ok(Solution {
                    status: Status::Unbounded,
                    objective: relax.objective,
                    values: relax.values,
                    iterations: total_iterations,
                    nodes,
                });
            }
            _ => {}
        }

        // Prune by bound.
        if let Some(inc) = &incumbent {
            if !better(relax.objective, inc.objective) {
                continue;
            }
        }

        // Find the most fractional integer variable.
        let mut branch_var: Option<(usize, f64)> = None;
        let mut best_frac = config.int_tolerance;
        for &i in &int_vars {
            let v = relax.values[i];
            let frac = (v - v.round()).abs();
            if frac > best_frac {
                let dist_to_half = (v - v.floor() - 0.5).abs();
                // Most-fractional rule: prefer values near .5.
                let score = 0.5 - dist_to_half;
                if branch_var.map(|(_, s)| score > s).unwrap_or(true) {
                    branch_var = Some((i, score));
                }
                best_frac = best_frac.max(config.int_tolerance);
            }
        }

        match branch_var {
            None => {
                // Integral solution: candidate incumbent.
                let mut values = relax.values.clone();
                for &i in &int_vars {
                    values[i] = values[i].round();
                }
                let obj = problem.objective_value(&values);
                if problem.is_feasible(&values, config.tolerance * 100.0)
                    && incumbent
                        .as_ref()
                        .map(|inc| better(obj, inc.objective))
                        .unwrap_or(true)
                {
                    incumbent = Some(Solution {
                        status: Status::Optimal,
                        objective: obj,
                        values,
                        iterations: total_iterations,
                        nodes,
                    });
                }
            }
            Some((i, _)) => {
                let v = relax.values[i];
                let (lb, ub) = node.bounds[i];
                let down = v.floor();
                let up = v.ceil();
                if down >= lb - 1e-9 {
                    let mut b = node.bounds.clone();
                    b[i] = (lb, down);
                    heap.push(Node {
                        bounds: b,
                        bound: bound_key(relax.objective),
                        depth: node.depth + 1,
                    });
                }
                if up <= ub + 1e-9 {
                    let mut b = node.bounds.clone();
                    b[i] = (up, ub);
                    heap.push(Node {
                        bounds: b,
                        bound: bound_key(relax.objective),
                        depth: node.depth + 1,
                    });
                }
            }
        }
    }

    match incumbent {
        Some(mut sol) => {
            sol.iterations = total_iterations;
            sol.nodes = nodes;
            sol.status = if limit_hit {
                Status::LimitReached
            } else {
                Status::Optimal
            };
            Ok(sol)
        }
        None => {
            if interrupted {
                Err(LpError::Interrupted)
            } else if limit_hit {
                Err(LpError::NodeLimit)
            } else {
                Ok(Solution {
                    status: Status::Infeasible,
                    objective: f64::NAN,
                    values: Vec::new(),
                    iterations: total_iterations,
                    nodes,
                })
            }
        }
    }
}

fn better_key(a: f64, b: f64) -> bool {
    a > b + 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, Problem, Sense, VarType};

    fn cfg() -> SolverConfig {
        SolverConfig::default()
    }

    #[test]
    fn knapsack_small() {
        // maximize 10a + 6b + 4c s.t. a+b+c <= 2, 5a+4b+3c <= 7, binary
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        let c = p.add_binary("c");
        p.set_objective_coeff(a, 10.0);
        p.set_objective_coeff(b, 6.0);
        p.set_objective_coeff(c, 4.0);
        p.add_constraint_terms(
            "count",
            &[(a, 1.0), (b, 1.0), (c, 1.0)],
            ConstraintOp::Le,
            2.0,
        );
        p.add_constraint_terms(
            "weight",
            &[(a, 5.0), (b, 4.0), (c, 3.0)],
            ConstraintOp::Le,
            7.0,
        );
        let s = solve_milp(&p, &cfg()).unwrap();
        assert!(s.status.is_optimal());
        // Integer optimum is 10, attained either by {a} (weight 5) or {b, c}
        // (weight 7); {a, b} and {a, c} both violate the weight limit.
        assert_eq!(s.objective.round() as i64, 10);
        assert!(p.is_feasible(&s.values, 1e-6));
        let _ = (a, b, c);
    }

    #[test]
    fn integer_rounding_matters_vs_relaxation() {
        // maximize x s.t. 2x <= 7, x integer → 3 (relaxation 3.5)
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Integer, 0.0, 100.0);
        p.set_objective_coeff(x, 1.0);
        p.add_constraint_terms("c", &[(x, 2.0)], ConstraintOp::Le, 7.0);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert_eq!(s.objective.round() as i64, 3);
    }

    #[test]
    fn infeasible_integer_problem() {
        // 0.4 <= x <= 0.6, x integer → infeasible
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Integer, 0.0, 1.0);
        p.set_objective_coeff(x, 1.0);
        p.add_constraint_terms("lo", &[(x, 1.0)], ConstraintOp::Ge, 0.4);
        p.add_constraint_terms("hi", &[(x, 1.0)], ConstraintOp::Le, 0.6);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn equality_cardinality_like_package_queries() {
        // Exactly 3 items, total calories in [2000, 2500], maximize protein.
        let cal = [800.0, 700.0, 650.0, 400.0, 950.0, 300.0];
        let pro = [40.0, 30.0, 25.0, 20.0, 45.0, 10.0];
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..6).map(|i| p.add_binary(format!("t{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            p.set_objective_coeff(v, pro[i]);
        }
        let ones: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        let cals: Vec<_> = vars.iter().enumerate().map(|(i, &v)| (v, cal[i])).collect();
        p.add_constraint_terms("count", &ones, ConstraintOp::Eq, 3.0);
        p.add_constraint_terms("cal_lo", &cals, ConstraintOp::Ge, 2000.0);
        p.add_constraint_terms("cal_hi", &cals, ConstraintOp::Le, 2500.0);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert!(s.status.is_optimal());
        let picked: Vec<usize> = s.nonzero_rounded().iter().map(|(i, _)| *i).collect();
        assert_eq!(picked.len(), 3);
        let total_cal: f64 = picked.iter().map(|&i| cal[i]).sum();
        assert!((2000.0..=2500.0).contains(&total_cal));
        // Best combination: {0, 1, 4} = 2450 cal, 115 protein.
        assert_eq!(s.objective.round() as i64, 115);
    }

    #[test]
    fn repeat_bounds_allow_multiplicities() {
        // One item repeated up to 3 times: maximize 5x s.t. 700x <= 2300.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Integer, 0.0, 3.0);
        p.set_objective_coeff(x, 5.0);
        p.add_constraint_terms("cal", &[(x, 700.0)], ConstraintOp::Le, 2300.0);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert_eq!(s.value_rounded(x), 3);
    }

    #[test]
    fn minimization_sense() {
        // minimize 3a + 2b s.t. a + b >= 2, binary → a=0... a+b>=2 forces both.
        let mut p = Problem::new(Sense::Minimize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        p.set_objective_coeff(a, 3.0);
        p.set_objective_coeff(b, 2.0);
        p.add_constraint_terms("cover", &[(a, 1.0), (b, 1.0)], ConstraintOp::Ge, 2.0);
        let s = solve_milp(&p, &cfg()).unwrap();
        assert_eq!(s.objective.round() as i64, 5);
    }

    #[test]
    fn node_limit_without_incumbent_errors() {
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|i| p.add_binary(format!("x{i}"))).collect();
        for &v in &vars {
            p.set_objective_coeff(v, 1.0);
        }
        // A constraint that forces heavy branching: sum of 0.5-ish weights equal
        // to a value reachable only by specific subsets.
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, 1.0 + 0.01 * i as f64))
            .collect();
        p.add_constraint_terms("tight", &terms, ConstraintOp::Eq, 3.03);
        let mut c = cfg();
        c.max_nodes = 1;
        let r = solve_milp(&p, &c);
        // With a single node we cannot even evaluate a leaf; depending on the
        // relaxation we either error with NodeLimit or find nothing feasible.
        match r {
            Err(crate::LpError::NodeLimit) => {}
            Ok(s) => assert!(!s.status.is_optimal() || s.nodes <= 1),
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn larger_binary_packing_is_consistent_with_exhaustive_check() {
        // 15 items; verify the B&B optimum equals brute force.
        let values = [
            7.0, 2.0, 9.0, 4.0, 6.0, 1.0, 8.0, 3.0, 5.0, 2.5, 7.5, 4.5, 6.5, 3.5, 1.5,
        ];
        let weights = [
            3.0, 1.0, 4.0, 2.0, 3.0, 1.0, 4.0, 2.0, 3.0, 1.5, 3.5, 2.5, 3.0, 2.0, 1.0,
        ];
        let cap = 10.0;
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..15).map(|i| p.add_binary(format!("x{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            p.set_objective_coeff(v, values[i]);
        }
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, weights[i]))
            .collect();
        p.add_constraint_terms("cap", &terms, ConstraintOp::Le, cap);
        let s = solve_milp(&p, &cfg()).unwrap();

        // Brute force.
        let mut best = 0.0f64;
        for mask in 0u32..(1 << 15) {
            let mut w = 0.0;
            let mut v = 0.0;
            for i in 0..15 {
                if mask & (1 << i) != 0 {
                    w += weights[i];
                    v += values[i];
                }
            }
            if w <= cap && v > best {
                best = v;
            }
        }
        assert!(
            (s.objective - best).abs() < 1e-6,
            "solver found {}, brute force found {}",
            s.objective,
            best
        );
    }
}
