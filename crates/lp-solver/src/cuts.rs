//! Solution-exclusion ("no-good") cuts.
//!
//! The paper observes (Section 5, *Solver limitations*) that "constraint
//! solvers are typically limited to returning a single package solution at a
//! time, and retrieving more packages requires modifying and re-evaluating
//! the query". The standard modification is a *no-good cut*: a linear
//! constraint that excludes exactly the incumbent 0/1 assignment, so
//! re-solving yields the next-best package.

use crate::expr::LinExpr;
use crate::problem::{Constraint, ConstraintOp, Problem, VarId, VarType};
use crate::solution::Solution;
use crate::{LpError, LpResult};

/// Builds a no-good cut that excludes the 0/1 assignment of `solution`
/// restricted to the given binary variables.
///
/// For the support `S = {i : x*_i = 1}` the cut is
///
/// ```text
/// Σ_{i ∈ S} (1 − x_i) + Σ_{i ∉ S} x_i ≥ 1
/// ```
///
/// which rearranges to `Σ_{i ∉ S} x_i − Σ_{i ∈ S} x_i ≥ 1 − |S|`.
///
/// Returns an error if any listed variable is not binary (0/1 bounds): the
/// cut is only valid for binary variables. (Package queries with `REPEAT`
/// bounds above 1 fall back to search-based enumeration for additional
/// results; see the engine documentation.)
pub fn no_good_cut(
    problem: &Problem,
    solution: &Solution,
    vars: &[VarId],
    name: impl Into<String>,
) -> LpResult<Constraint> {
    let mut expr = LinExpr::new();
    let mut support = 0usize;
    for &v in vars {
        let var = problem.variable(v)?;
        let is_binary = var.ty == VarType::Integer && var.lb >= -1e-9 && var.ub <= 1.0 + 1e-9;
        if !is_binary {
            return Err(LpError::InvalidProblem(format!(
                "no-good cuts require binary variables; '{}' has bounds [{}, {}]",
                var.name, var.lb, var.ub
            )));
        }
        if solution.value_rounded(v) >= 1 {
            support += 1;
            expr.add_term(v, -1.0);
        } else {
            expr.add_term(v, 1.0);
        }
    }
    Ok(Constraint {
        name: name.into(),
        expr,
        op: ConstraintOp::Ge,
        rhs: 1.0 - support as f64,
    })
}

/// Adds a no-good cut for `solution` directly to `problem`.
pub fn add_no_good_cut(
    problem: &mut Problem,
    solution: &Solution,
    vars: &[VarId],
    name: impl Into<String>,
) -> LpResult<()> {
    let cut = no_good_cut(problem, solution, vars, name)?;
    problem.add_constraint(cut.name.clone(), cut.expr, cut.op, cut.rhs);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, Problem, Sense};
    use crate::{solve, SolverConfig};

    #[test]
    fn cut_excludes_previous_optimum() {
        // maximize 3a + 2b + c, pick exactly 1 item.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        let c = p.add_binary("c");
        p.set_objective_coeff(a, 3.0);
        p.set_objective_coeff(b, 2.0);
        p.set_objective_coeff(c, 1.0);
        p.add_constraint_terms(
            "one",
            &[(a, 1.0), (b, 1.0), (c, 1.0)],
            ConstraintOp::Eq,
            1.0,
        );
        let cfg = SolverConfig::default();

        let s1 = solve(&p, &cfg).unwrap();
        assert_eq!(s1.value_rounded(a), 1);

        add_no_good_cut(&mut p, &s1, &[a, b, c], "cut1").unwrap();
        let s2 = solve(&p, &cfg).unwrap();
        assert_eq!(s2.value_rounded(b), 1);
        assert_eq!(s2.value_rounded(a), 0);

        add_no_good_cut(&mut p, &s2, &[a, b, c], "cut2").unwrap();
        let s3 = solve(&p, &cfg).unwrap();
        assert_eq!(s3.value_rounded(c), 1);

        add_no_good_cut(&mut p, &s3, &[a, b, c], "cut3").unwrap();
        let s4 = solve(&p, &cfg).unwrap();
        assert!(
            !s4.status.has_solution(),
            "all assignments excluded → infeasible"
        );
    }

    #[test]
    fn non_binary_variables_rejected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", crate::VarType::Integer, 0.0, 3.0);
        p.set_objective_coeff(x, 1.0);
        p.add_constraint_terms("c", &[(x, 1.0)], ConstraintOp::Le, 2.0);
        let s = solve(&p, &SolverConfig::default()).unwrap();
        assert!(no_good_cut(&p, &s, &[x], "cut").is_err());
    }

    #[test]
    fn cut_keeps_other_solutions_feasible() {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_binary("a");
        let b = p.add_binary("b");
        p.set_objective_coeff(a, 1.0);
        p.set_objective_coeff(b, 1.0);
        // No structural constraints: optimum picks both.
        let s = solve(&p, &SolverConfig::default()).unwrap();
        let cut = no_good_cut(&p, &s, &[a, b], "cut").unwrap();
        // {a=1,b=1} violates the cut, {a=1,b=0} satisfies it.
        assert!(!cut.satisfied(&[1.0, 1.0], 1e-9));
        assert!(cut.satisfied(&[1.0, 0.0], 1e-9));
        assert!(cut.satisfied(&[0.0, 0.0], 1e-9));
    }
}
