//! Error type for the LP/MILP solver.

use std::fmt;

/// Errors produced while building or solving a problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// A variable id does not belong to the problem.
    UnknownVariable(usize),
    /// The problem definition is inconsistent (e.g. lower bound > upper bound).
    InvalidProblem(String),
    /// The simplex exceeded its iteration budget.
    IterationLimit,
    /// Branch and bound exceeded its node budget before proving optimality
    /// and without finding any incumbent.
    NodeLimit,
    /// The solve was stopped cooperatively (deadline passed or stop flag set)
    /// before any solution was available.
    Interrupted,
    /// Numerical trouble that the solver could not recover from.
    Numerical(String),
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::UnknownVariable(i) => write!(f, "unknown variable id {i}"),
            LpError::InvalidProblem(m) => write!(f, "invalid problem: {m}"),
            LpError::IterationLimit => write!(f, "simplex iteration limit reached"),
            LpError::NodeLimit => {
                write!(f, "branch-and-bound node limit reached with no incumbent")
            }
            LpError::Interrupted => {
                write!(f, "solve interrupted by deadline or cancellation")
            }
            LpError::Numerical(m) => write!(f, "numerical error: {m}"),
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(LpError::InvalidProblem("lb > ub".into())
            .to_string()
            .contains("lb > ub"));
        assert_eq!(
            LpError::UnknownVariable(3).to_string(),
            "unknown variable id 3"
        );
    }
}
