//! Linear expressions over decision variables.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

use crate::problem::VarId;

/// A linear expression `Σ cᵢ·xᵢ + constant`.
///
/// Terms are kept in a `BTreeMap` so that repeated additions of the same
/// variable merge, and iteration order (hence the built constraint matrix)
/// is deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinExpr {
    terms: BTreeMap<VarId, f64>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: f64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression `coeff · var`.
    pub fn term(var: VarId, coeff: f64) -> Self {
        let mut e = LinExpr::new();
        e.add_term(var, coeff);
        e
    }

    /// Adds `coeff · var` to the expression.
    pub fn add_term(&mut self, var: VarId, coeff: f64) {
        let entry = self.terms.entry(var).or_insert(0.0);
        *entry += coeff;
        if *entry == 0.0 {
            self.terms.remove(&var);
        }
    }

    /// Adds a constant.
    pub fn add_constant(&mut self, c: f64) {
        self.constant += c;
    }

    /// The constant part.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// Coefficient of `var` (0.0 when absent).
    pub fn coeff(&self, var: VarId) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// Iterator over `(variable, coefficient)` pairs in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// Number of variables with non-zero coefficients.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the expression has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression given a value for every variable
    /// (`values[var.index()]`).
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(v, c)| c * values.get(v.index()).copied().unwrap_or(0.0))
                .sum::<f64>()
    }

    /// Multiplies every coefficient and the constant by `k`.
    pub fn scale(&mut self, k: f64) {
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self.constant *= k;
        self.terms.retain(|_, c| *c != 0.0);
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant(c)
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::term(v, 1.0)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self += rhs;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        self.scale(-1.0);
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: f64) -> LinExpr {
        self.scale(k);
        self
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = self
            .terms
            .iter()
            .map(|(v, c)| format!("{c}·x{}", v.index()))
            .collect();
        if self.constant != 0.0 || parts.is_empty() {
            parts.push(format!("{}", self.constant));
        }
        write!(f, "{}", parts.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn repeated_terms_merge_and_cancel() {
        let mut e = LinExpr::term(v(0), 2.0);
        e.add_term(v(0), 3.0);
        assert_eq!(e.coeff(v(0)), 5.0);
        e.add_term(v(0), -5.0);
        assert!(e.is_empty());
    }

    #[test]
    fn arithmetic_operators() {
        let e = LinExpr::term(v(0), 1.0) + LinExpr::term(v(1), 2.0) - LinExpr::constant(3.0);
        assert_eq!(e.coeff(v(1)), 2.0);
        assert_eq!(e.constant_part(), -3.0);
        let scaled = e * 2.0;
        assert_eq!(scaled.coeff(v(0)), 2.0);
        assert_eq!(scaled.constant_part(), -6.0);
    }

    #[test]
    fn eval_uses_positional_values() {
        let e = LinExpr::term(v(0), 2.0) + LinExpr::term(v(2), 1.0) + LinExpr::constant(1.0);
        assert_eq!(e.eval(&[1.0, 99.0, 3.0]), 2.0 + 3.0 + 1.0);
    }

    #[test]
    fn display_lists_terms() {
        let e = LinExpr::term(v(0), 2.0) + LinExpr::constant(1.0);
        assert_eq!(e.to_string(), "2·x0 + 1");
        assert_eq!(LinExpr::new().to_string(), "0");
    }
}
