//! Problem definition: variables, constraints and the objective.

use std::fmt;

use crate::error::LpError;
use crate::expr::LinExpr;
use crate::LpResult;

/// Index of a decision variable within its [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(usize);

impl VarId {
    /// Creates a variable id from a raw index. Only useful in tests and in
    /// code that already knows the problem layout (e.g. the ILP translator,
    /// which maps tuple `i` to variable `i`).
    pub fn new(index: usize) -> Self {
        VarId(index)
    }

    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// The domain of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarType {
    /// Real-valued.
    Continuous,
    /// Integer-valued.
    Integer,
}

/// A decision variable.
#[derive(Debug, Clone)]
pub struct Variable {
    /// Human-readable name (used in diagnostics).
    pub name: String,
    /// Continuous or integer.
    pub ty: VarType,
    /// Lower bound (may be `-inf`).
    pub lb: f64,
    /// Upper bound (may be `+inf`).
    pub ub: f64,
}

/// Direction of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

impl ConstraintOp {
    /// Symbolic form.
    pub fn symbol(&self) -> &'static str {
        match self {
            ConstraintOp::Le => "<=",
            ConstraintOp::Ge => ">=",
            ConstraintOp::Eq => "=",
        }
    }
}

/// A linear constraint `expr op rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Name for diagnostics.
    pub name: String,
    /// Left-hand side (its constant part is folded into `rhs` when added).
    pub expr: LinExpr,
    /// Direction.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Whether `values` satisfies the constraint within `tol`.
    pub fn satisfied(&self, values: &[f64], tol: f64) -> bool {
        let lhs = self.expr.eval(values);
        match self.op {
            ConstraintOp::Le => lhs <= self.rhs + tol,
            ConstraintOp::Ge => lhs >= self.rhs - tol,
            ConstraintOp::Eq => (lhs - self.rhs).abs() <= tol,
        }
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// A linear (mixed-integer) optimization problem.
#[derive(Debug, Clone)]
pub struct Problem {
    sense: Sense,
    variables: Vec<Variable>,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty problem with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            variables: Vec::new(),
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a variable and returns its id.
    pub fn add_var(&mut self, name: impl Into<String>, ty: VarType, lb: f64, ub: f64) -> VarId {
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            ty,
            lb,
            ub,
        });
        self.objective.push(0.0);
        id
    }

    /// Adds a binary (0/1 integer) variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(name, VarType::Integer, 0.0, 1.0)
    }

    /// Sets the objective coefficient of a variable.
    pub fn set_objective_coeff(&mut self, var: VarId, coeff: f64) {
        self.objective[var.index()] = coeff;
    }

    /// Sets the whole objective from a linear expression (the constant part
    /// is ignored: it shifts the optimum value but not the optimizer).
    pub fn set_objective(&mut self, expr: &LinExpr) {
        for c in self.objective.iter_mut() {
            *c = 0.0;
        }
        for (v, c) in expr.terms() {
            self.objective[v.index()] = c;
        }
    }

    /// Objective coefficient of a variable.
    pub fn objective_coeff(&self, var: VarId) -> f64 {
        self.objective[var.index()]
    }

    /// Objective coefficients for all variables, by index.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Adds a constraint from a linear expression. The expression's constant
    /// part is moved to the right-hand side.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        expr: LinExpr,
        op: ConstraintOp,
        rhs: f64,
    ) {
        let constant = expr.constant_part();
        let mut expr = expr;
        expr.add_constant(-constant);
        self.constraints.push(Constraint {
            name: name.into(),
            expr,
            op,
            rhs: rhs - constant,
        });
    }

    /// Adds a constraint from explicit `(variable, coefficient)` terms.
    pub fn add_constraint_terms(
        &mut self,
        name: impl Into<String>,
        terms: &[(VarId, f64)],
        op: ConstraintOp,
        rhs: f64,
    ) {
        let mut e = LinExpr::new();
        for (v, c) in terms {
            e.add_term(*v, *c);
        }
        self.add_constraint(name, e, op, rhs);
    }

    /// Removes the most recently added constraint (used to retract no-good
    /// cuts between incremental solves).
    pub fn pop_constraint(&mut self) -> Option<Constraint> {
        self.constraints.pop()
    }

    /// The variables, by index.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// A variable by id.
    pub fn variable(&self, var: VarId) -> LpResult<&Variable> {
        self.variables
            .get(var.index())
            .ok_or(LpError::UnknownVariable(var.index()))
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// True when at least one variable is integer.
    pub fn has_integer_vars(&self) -> bool {
        self.variables.iter().any(|v| v.ty == VarType::Integer)
    }

    /// Ids of all integer variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| v.ty == VarType::Integer)
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Validates bounds and constraint references.
    pub fn validate(&self) -> LpResult<()> {
        for (i, v) in self.variables.iter().enumerate() {
            if v.lb > v.ub {
                return Err(LpError::InvalidProblem(format!(
                    "variable '{}' (x{i}) has lb {} > ub {}",
                    v.name, v.lb, v.ub
                )));
            }
            if v.lb.is_nan() || v.ub.is_nan() {
                return Err(LpError::InvalidProblem(format!(
                    "variable '{}' (x{i}) has NaN bounds",
                    v.name
                )));
            }
        }
        for c in &self.constraints {
            for (v, coeff) in c.expr.terms() {
                if v.index() >= self.variables.len() {
                    return Err(LpError::UnknownVariable(v.index()));
                }
                if !coeff.is_finite() {
                    return Err(LpError::InvalidProblem(format!(
                        "constraint '{}' has a non-finite coefficient",
                        c.name
                    )));
                }
            }
            if !c.rhs.is_finite() {
                return Err(LpError::InvalidProblem(format!(
                    "constraint '{}' has a non-finite right-hand side",
                    c.name
                )));
            }
        }
        Ok(())
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective.iter().zip(values).map(|(c, x)| c * x).sum()
    }

    /// Whether `values` satisfies every constraint and variable bound.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() < self.variables.len() {
            return false;
        }
        for (i, v) in self.variables.iter().enumerate() {
            if values[i] < v.lb - tol || values[i] > v.ub + tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| c.satisfied(values, tol))
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {} variables, {} constraints",
            match self.sense {
                Sense::Maximize => "maximize:",
                Sense::Minimize => "minimize:",
            },
            self.num_vars(),
            self.num_constraints()
        )?;
        for c in &self.constraints {
            writeln!(f, "  {}: {} {} {}", c.name, c.expr, c.op.symbol(), c.rhs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Continuous, 0.0, 1.0);
        let y = p.add_binary("y");
        p.set_objective_coeff(x, 1.0);
        p.add_constraint_terms("c1", &[(x, 1.0), (y, 2.0)], ConstraintOp::Le, 2.0);
        assert!(p.validate().is_ok());
        assert_eq!(p.num_vars(), 2);
        assert!(p.has_integer_vars());
        assert_eq!(p.integer_vars(), vec![y]);
    }

    #[test]
    fn invalid_bounds_rejected() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_var("x", VarType::Continuous, 2.0, 1.0);
        assert!(matches!(p.validate(), Err(LpError::InvalidProblem(_))));
    }

    #[test]
    fn constraint_constant_folds_into_rhs() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", VarType::Continuous, 0.0, 10.0);
        let expr = LinExpr::term(x, 1.0) + LinExpr::constant(5.0);
        p.add_constraint("c", expr, ConstraintOp::Le, 8.0);
        let c = &p.constraints()[0];
        assert_eq!(c.rhs, 3.0);
        assert_eq!(c.expr.constant_part(), 0.0);
    }

    #[test]
    fn feasibility_and_objective_evaluation() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Continuous, 0.0, 4.0);
        let y = p.add_var("y", VarType::Continuous, 0.0, 4.0);
        p.set_objective_coeff(x, 3.0);
        p.set_objective_coeff(y, 1.0);
        p.add_constraint_terms("cap", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 5.0);
        assert!(p.is_feasible(&[2.0, 3.0], 1e-9));
        assert!(!p.is_feasible(&[4.0, 3.0], 1e-9));
        assert!(!p.is_feasible(&[5.0, -1.0], 1e-9));
        assert_eq!(p.objective_value(&[2.0, 3.0]), 9.0);
    }

    #[test]
    fn unknown_variable_in_constraint_detected() {
        let mut p = Problem::new(Sense::Minimize);
        let _x = p.add_var("x", VarType::Continuous, 0.0, 1.0);
        let ghost = VarId::new(5);
        p.add_constraint_terms("bad", &[(ghost, 1.0)], ConstraintOp::Le, 1.0);
        assert!(matches!(p.validate(), Err(LpError::UnknownVariable(5))));
    }

    #[test]
    fn pop_constraint_retracts_last() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", VarType::Continuous, 0.0, 1.0);
        p.add_constraint_terms("c1", &[(x, 1.0)], ConstraintOp::Le, 1.0);
        p.add_constraint_terms("c2", &[(x, 1.0)], ConstraintOp::Ge, 0.5);
        assert_eq!(p.num_constraints(), 2);
        let c = p.pop_constraint().unwrap();
        assert_eq!(c.name, "c2");
        assert_eq!(p.num_constraints(), 1);
    }
}
