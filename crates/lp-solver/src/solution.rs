//! Solver results.

use std::fmt;

use crate::problem::VarId;

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal solution was found (within tolerances).
    Optimal,
    /// The constraints admit no solution.
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// A limit (iterations, nodes or time) stopped the search; the returned
    /// solution is the best incumbent found, which may be suboptimal.
    LimitReached,
}

impl Status {
    /// True for [`Status::Optimal`].
    pub fn is_optimal(&self) -> bool {
        matches!(self, Status::Optimal)
    }

    /// True when a feasible point is available (`Optimal` or `LimitReached`).
    pub fn has_solution(&self) -> bool {
        matches!(self, Status::Optimal | Status::LimitReached)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Status::Optimal => "optimal",
            Status::Infeasible => "infeasible",
            Status::Unbounded => "unbounded",
            Status::LimitReached => "limit reached",
        };
        write!(f, "{s}")
    }
}

/// A solution returned by the LP or MILP solver.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Solve outcome.
    pub status: Status,
    /// Objective value in the problem's own sense (meaningless unless
    /// `status.has_solution()`).
    pub objective: f64,
    /// Value of each variable by index (empty unless `status.has_solution()`).
    pub values: Vec<f64>,
    /// Simplex iterations performed (summed over branch-and-bound nodes).
    pub iterations: usize,
    /// Branch-and-bound nodes explored (0 for pure LPs).
    pub nodes: usize,
    /// Relative optimality gap, reported by MILP solves: `0.0` when the
    /// search proved optimality, `(best bound − incumbent) / (1 + |incumbent|)`
    /// when a limit stopped it early, `None` for pure LP solves (where the
    /// simplex optimum is exact by construction).
    pub gap: Option<f64>,
}

impl Solution {
    /// A solution carrying only a status (infeasible/unbounded).
    pub fn status_only(status: Status) -> Self {
        Solution {
            status,
            objective: f64::NAN,
            values: Vec::new(),
            iterations: 0,
            nodes: 0,
            gap: None,
        }
    }

    /// Value of a variable.
    pub fn value(&self, var: VarId) -> f64 {
        self.values.get(var.index()).copied().unwrap_or(0.0)
    }

    /// Value of a variable rounded to the nearest integer, useful for
    /// integer variables whose LP values carry tiny numerical noise.
    pub fn value_rounded(&self, var: VarId) -> i64 {
        self.value(var).round() as i64
    }

    /// Indices of variables whose value rounds to a non-zero integer,
    /// with their rounded values. This is the "package support" view used by
    /// the query engine.
    pub fn nonzero_rounded(&self) -> Vec<(usize, i64)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.round() as i64))
            .filter(|(_, v)| *v != 0)
            .collect()
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (objective {:.6}, {} iterations, {} nodes)",
            self.status, self.objective, self.iterations, self.nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_predicates() {
        assert!(Status::Optimal.is_optimal());
        assert!(Status::Optimal.has_solution());
        assert!(Status::LimitReached.has_solution());
        assert!(!Status::Infeasible.has_solution());
    }

    #[test]
    fn nonzero_rounded_filters_zeros() {
        let s = Solution {
            status: Status::Optimal,
            objective: 1.0,
            values: vec![0.0, 0.9999999, 2.0000001, 1e-9],
            iterations: 0,
            nodes: 0,
            gap: None,
        };
        assert_eq!(s.nonzero_rounded(), vec![(1, 1), (2, 2)]);
        assert_eq!(s.value_rounded(VarId::new(2)), 2);
    }
}
