//! `lp-solver` — a self-contained linear and mixed-integer programming solver.
//!
//! PackageBuilder translates package queries into constraint optimization
//! problems and "employs state-of-the-art constraint solvers to derive valid
//! packages" (Section 4). Those solvers (CPLEX, Gurobi) are proprietary and
//! unavailable offline, so this crate provides the substrate: a dense
//! revised simplex method with native variable bounds and a branch-and-bound
//! layer for integer variables.
//!
//! The design is tuned for the shape of package ILPs — *many* decision
//! variables (one per candidate tuple) but only a handful of constraint rows
//! (one per global constraint). The bounded-variable revised simplex keeps a
//! basis of size `m` (the row count), so iterations cost `O(m·n)` rather than
//! the `O(n²)` a naive tableau would pay.
//!
//! # Quick example
//!
//! ```
//! use lp_solver::{Problem, Sense, VarType, ConstraintOp, SolverConfig};
//!
//! // maximize 3x + 2y subject to x + y <= 4, x <= 2, x,y >= 0 integer
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var("x", VarType::Integer, 0.0, f64::INFINITY);
//! let y = p.add_var("y", VarType::Integer, 0.0, f64::INFINITY);
//! p.set_objective_coeff(x, 3.0);
//! p.set_objective_coeff(y, 2.0);
//! p.add_constraint_terms("cap", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 4.0);
//! p.add_constraint_terms("xcap", &[(x, 1.0)], ConstraintOp::Le, 2.0);
//! let sol = lp_solver::solve(&p, &SolverConfig::default()).unwrap();
//! assert!(sol.status.is_optimal());
//! assert_eq!(sol.objective.round(), 10.0);
//! ```

pub mod branch_bound;
pub mod cuts;
pub mod error;
pub mod expr;
pub mod problem;
pub mod simplex;
pub mod solution;

pub use branch_bound::{solve_milp, solve_milp_hinted};
pub use cuts::no_good_cut;
pub use error::LpError;
pub use expr::LinExpr;
pub use problem::{Constraint, ConstraintOp, Problem, Sense, VarId, VarType, Variable};
pub use simplex::{solve_lp, solve_lp_warm, Basis, LpWorkspace, WarmAttempt};
pub use solution::{Solution, Status};

/// Result alias for solver operations.
pub type LpResult<T> = std::result::Result<T, LpError>;

/// Tunable limits and tolerances shared by the LP and MILP layers.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Maximum simplex pivots per LP solve.
    pub max_iterations: usize,
    /// Maximum branch-and-bound nodes.
    pub max_nodes: usize,
    /// Wall-clock limit for a MILP solve (None = unlimited).
    pub time_limit: Option<std::time::Duration>,
    /// Absolute deadline for the solve. Unlike [`SolverConfig::time_limit`]
    /// (which is measured from the start of `solve_milp`), the deadline is
    /// shared by every layer down to the simplex pivot loop, so a single
    /// long LP relaxation cannot overshoot the budget.
    pub deadline: Option<std::time::Instant>,
    /// Cooperative cancellation flags, checked alongside the deadline (any
    /// one tripping interrupts the solve). A caller's own flag and an
    /// engine budget's flag coexist: contributors append, never overwrite.
    /// Setting one makes the solver return [`LpError::Interrupted`]
    /// (simplex) or stop with the current incumbent (branch and bound) at
    /// the next check point.
    pub stop: Vec<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Feasibility / reduced-cost tolerance.
    pub tolerance: f64,
    /// Integrality tolerance: a value within this distance of an integer is
    /// considered integral.
    pub int_tolerance: f64,
    /// Refactorize the basis inverse every this many pivots.
    pub refactor_every: usize,
    /// Thread budget for the branch-and-bound layer: LP relaxations of one
    /// frontier batch are solved concurrently on up to this many threads.
    /// The batch boundaries and the merge order are fixed (never derived
    /// from this number), so the solver returns bit-identical solutions and
    /// node counts at every thread count — see [`crate::branch_bound`].
    /// `1` (the default) never spawns.
    pub num_threads: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_iterations: 50_000,
            max_nodes: 100_000,
            time_limit: None,
            deadline: None,
            stop: Vec::new(),
            tolerance: 1e-7,
            int_tolerance: 1e-6,
            refactor_every: 64,
            num_threads: 1,
        }
    }
}

impl SolverConfig {
    /// A configuration with a wall-clock budget, used by the query engine to
    /// bound solver latency for interactive use.
    pub fn with_time_limit(mut self, limit: std::time::Duration) -> Self {
        self.time_limit = Some(limit);
        self
    }

    /// True when any stop flag is set or the deadline has passed. Checked
    /// periodically by the simplex and branch-and-bound loops.
    pub fn interrupted(&self) -> bool {
        if self
            .stop
            .iter()
            .any(|stop| stop.load(std::sync::atomic::Ordering::Relaxed))
        {
            return true;
        }
        match self.deadline {
            // pb-lint: allow(time-containment) — this *is* the containment
            // point: the one poll that turns the caller-supplied deadline
            // into the cooperative stop signal every iteration checks.
            Some(deadline) => std::time::Instant::now() >= deadline,
            None => false,
        }
    }
}

/// Solves a problem: pure LPs go straight to the simplex, problems with
/// integer variables go through branch and bound.
pub fn solve(problem: &Problem, config: &SolverConfig) -> LpResult<Solution> {
    if problem.has_integer_vars() {
        branch_bound::solve_milp(problem, config)
    } else {
        simplex::solve_lp(problem, None, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example_dispatches_to_milp() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Continuous, 0.0, 10.0);
        p.set_objective_coeff(x, 1.0);
        p.add_constraint_terms("c", &[(x, 1.0)], ConstraintOp::Le, 3.5);
        let sol = solve(&p, &SolverConfig::default()).unwrap();
        assert!((sol.objective - 3.5).abs() < 1e-6);
    }
}
