//! Bounded-variable revised simplex.
//!
//! The solver keeps an explicit dense inverse of the basis matrix (size
//! `m × m`, where `m` is the number of constraint rows). Package ILP
//! relaxations have a handful of rows and thousands of columns, so iterations
//! are dominated by pricing (`O(m · n)`), not by basis maintenance.
//!
//! The implementation is a textbook two-phase method:
//!
//! 1. every row receives an artificial variable that forms the initial basis;
//!    phase 1 minimizes the sum of artificials (infeasible if it stays > 0);
//! 2. phase 2 minimizes the real objective starting from the phase-1 basis.
//!
//! Variable bounds are handled natively: nonbasic variables rest at their
//! lower or upper bound and may "bound flip" without a basis change. Dantzig
//! pricing is used by default, with a switch to Bland's rule after a long run
//! of degenerate pivots to guarantee termination.

// Dense matrix kernels index flat `binv[pos * m + k]` storage; rewriting the
// row/column loops as iterator chains obscures the linear algebra.
#![allow(clippy::needless_range_loop)]

use crate::error::LpError;
use crate::problem::{ConstraintOp, Problem, Sense, VarType};
use crate::solution::{Solution, Status};
use crate::{LpResult, SolverConfig};

const PIVOT_TOL: f64 = 1e-10;

/// Where a column currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColStatus {
    Basic(usize),
    AtLower,
    AtUpper,
    Free,
}

/// Internal working representation of the LP.
struct Tableau {
    m: usize,
    ncols: usize,
    #[allow(dead_code)]
    n_struct: usize,
    /// Sparse columns: (row, coefficient) pairs.
    cols: Vec<Vec<(usize, f64)>>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    cost: Vec<f64>,
    b: Vec<f64>,
    status: Vec<ColStatus>,
    basis: Vec<usize>,
    /// Dense row-major m×m basis inverse.
    binv: Vec<f64>,
    /// Values of basic variables, by basis position.
    xb: Vec<f64>,
    iterations: usize,
    use_bland: bool,
    degenerate_run: usize,
}

impl Tableau {
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            ColStatus::AtLower => self.lb[j],
            ColStatus::AtUpper => self.ub[j],
            ColStatus::Free => 0.0,
            ColStatus::Basic(pos) => self.xb[pos],
        }
    }

    /// Recomputes the basis inverse and basic values from scratch.
    fn refactorize(&mut self) -> LpResult<()> {
        let m = self.m;
        // Build the dense basis matrix.
        let mut mat = vec![0.0; m * m];
        for (pos, &j) in self.basis.iter().enumerate() {
            for &(row, a) in &self.cols[j] {
                mat[row * m + pos] = a;
            }
        }
        // Gauss-Jordan inversion with partial pivoting.
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // Pivot selection.
            let mut piv = col;
            let mut best = mat[col * m + col].abs();
            for r in col + 1..m {
                let v = mat[r * m + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < PIVOT_TOL {
                return Err(LpError::Numerical(
                    "singular basis during refactorization".into(),
                ));
            }
            if piv != col {
                for k in 0..m {
                    mat.swap(col * m + k, piv * m + k);
                    inv.swap(col * m + k, piv * m + k);
                }
            }
            let d = mat[col * m + col];
            for k in 0..m {
                mat[col * m + k] /= d;
                inv[col * m + k] /= d;
            }
            for r in 0..m {
                if r != col {
                    let factor = mat[r * m + col];
                    if factor != 0.0 {
                        for k in 0..m {
                            mat[r * m + k] -= factor * mat[col * m + k];
                            inv[r * m + k] -= factor * inv[col * m + k];
                        }
                    }
                }
            }
        }
        self.binv = inv;
        self.recompute_basic_values();
        Ok(())
    }

    /// xb = B⁻¹ (b − N·x_N).
    fn recompute_basic_values(&mut self) {
        let m = self.m;
        let mut rhs = self.b.clone();
        for j in 0..self.ncols {
            if let ColStatus::Basic(_) = self.status[j] {
                continue;
            }
            let v = self.nonbasic_value(j);
            if v != 0.0 {
                for &(row, a) in &self.cols[j] {
                    rhs[row] -= a * v;
                }
            }
        }
        for pos in 0..m {
            let mut acc = 0.0;
            for k in 0..m {
                acc += self.binv[pos * m + k] * rhs[k];
            }
            self.xb[pos] = acc;
        }
    }

    /// y = c_Bᵀ B⁻¹.
    fn duals(&self) -> Vec<f64> {
        let m = self.m;
        let mut y = vec![0.0; m];
        for pos in 0..m {
            let cb = self.cost[self.basis[pos]];
            if cb != 0.0 {
                for k in 0..m {
                    y[k] += cb * self.binv[pos * m + k];
                }
            }
        }
        y
    }

    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        let mut d = self.cost[j];
        for &(row, a) in &self.cols[j] {
            d -= y[row] * a;
        }
        d
    }

    /// Chooses an entering column; returns `(column, increasing)` or `None`
    /// when the current basis is optimal for the active cost vector.
    fn price(&self, tol: f64) -> Option<(usize, bool)> {
        let y = self.duals();
        let mut best: Option<(usize, bool, f64)> = None;
        for j in 0..self.ncols {
            let (can_increase, can_decrease) = match self.status[j] {
                ColStatus::Basic(_) => (false, false),
                ColStatus::AtLower => (true, false),
                ColStatus::AtUpper => (false, true),
                ColStatus::Free => (true, true),
            };
            if !can_increase && !can_decrease {
                continue;
            }
            // Fixed variables (lb == ub) cannot move at all.
            if self.ub[j] - self.lb[j] <= 0.0 && self.lb[j].is_finite() {
                continue;
            }
            let d = self.reduced_cost(j, &y);
            let (improving, increasing) = if can_increase && d < -tol {
                (true, true)
            } else if can_decrease && d > tol {
                (true, false)
            } else {
                (false, true)
            };
            if !improving {
                continue;
            }
            if self.use_bland {
                // Bland: first improving index.
                return Some((j, increasing));
            }
            let score = d.abs();
            if best.map(|(_, _, s)| score > s).unwrap_or(true) {
                best = Some((j, increasing, score));
            }
        }
        best.map(|(j, inc, _)| (j, inc))
    }

    /// One simplex iteration for the active cost vector.
    /// Returns `Ok(true)` when an optimum was reached, `Ok(false)` to continue.
    fn iterate(&mut self, tol: f64, phase_two: bool) -> LpResult<IterOutcome> {
        let Some((q, increasing)) = self.price(tol) else {
            return Ok(IterOutcome::Optimal);
        };
        let m = self.m;
        let delta = if increasing { 1.0 } else { -1.0 };

        // w = B⁻¹ A_q.
        let mut w = vec![0.0; m];
        for &(row, a) in &self.cols[q] {
            if a != 0.0 {
                for pos in 0..m {
                    w[pos] += self.binv[pos * m + row] * a;
                }
            }
        }

        // Ratio test. Basic values move by -t·delta·w.
        let entering_range = self.ub[q] - self.lb[q];
        let mut t_max = if entering_range.is_finite() {
            entering_range
        } else {
            f64::INFINITY
        };
        let mut leaving: Option<(usize, bool)> = None; // (basis position, hits_lower)
        for pos in 0..m {
            let wi = w[pos];
            if wi.abs() <= PIVOT_TOL {
                continue;
            }
            let basic = self.basis[pos];
            let change = delta * wi;
            let (limit, hits_lower) = if change > 0.0 {
                // basic value decreases towards its lower bound
                let lbb = self.lb[basic];
                if lbb.is_finite() {
                    ((self.xb[pos] - lbb) / change, true)
                } else {
                    (f64::INFINITY, true)
                }
            } else {
                // basic value increases towards its upper bound
                let ubb = self.ub[basic];
                if ubb.is_finite() {
                    ((ubb - self.xb[pos]) / (-change), false)
                } else {
                    (f64::INFINITY, false)
                }
            };
            let limit = limit.max(0.0);
            if limit < t_max - 1e-12 {
                t_max = limit;
                leaving = Some((pos, hits_lower));
            } else if leaving.is_some() && (limit - t_max).abs() <= 1e-12 {
                // Tie-break by smallest column index (helps against cycling).
                let (cur_pos, _) = leaving.unwrap();
                if self.basis[pos] < self.basis[cur_pos] {
                    leaving = Some((pos, hits_lower));
                }
            } else if leaving.is_none() && limit <= t_max {
                t_max = limit;
                leaving = Some((pos, hits_lower));
            }
        }

        if t_max.is_infinite() {
            return if phase_two {
                Ok(IterOutcome::Unbounded)
            } else {
                Err(LpError::Numerical(
                    "phase-1 objective unbounded below".into(),
                ))
            };
        }

        if t_max <= tol {
            self.degenerate_run += 1;
            if self.degenerate_run > 2 * (self.m + self.ncols) {
                self.use_bland = true;
            }
        } else {
            self.degenerate_run = 0;
        }

        // Apply the step to basic values.
        if t_max > 0.0 {
            for pos in 0..m {
                self.xb[pos] -= t_max * delta * w[pos];
            }
        }

        match leaving {
            None => {
                // Bound flip of the entering variable: no basis change.
                self.status[q] = if increasing {
                    ColStatus::AtUpper
                } else {
                    ColStatus::AtLower
                };
                Ok(IterOutcome::Continue)
            }
            Some((pos, hits_lower)) => {
                let entering_value = self.nonbasic_value(q) + delta * t_max;
                let leaving_col = self.basis[pos];
                self.status[leaving_col] = if hits_lower {
                    ColStatus::AtLower
                } else {
                    ColStatus::AtUpper
                };
                // Snap the leaving variable's value onto its bound exactly by
                // construction (it is nonbasic now, so its value is implied).
                self.basis[pos] = q;
                self.status[q] = ColStatus::Basic(pos);
                self.xb[pos] = entering_value;

                // Update B⁻¹: eliminate w in all rows except `pos`.
                let piv = w[pos];
                if piv.abs() <= PIVOT_TOL {
                    return Err(LpError::Numerical("pivot element too small".into()));
                }
                for k in 0..m {
                    self.binv[pos * m + k] /= piv;
                }
                for r in 0..m {
                    if r != pos && w[r].abs() > 0.0 {
                        let factor = w[r];
                        for k in 0..m {
                            self.binv[r * m + k] -= factor * self.binv[pos * m + k];
                        }
                    }
                }
                Ok(IterOutcome::Continue)
            }
        }
    }

    /// Runs the simplex loop until the active cost vector is optimal.
    fn optimize(&mut self, config: &SolverConfig, phase_two: bool) -> LpResult<IterOutcome> {
        let mut since_refactor = 0usize;
        loop {
            if self.iterations >= config.max_iterations {
                return Err(LpError::IterationLimit);
            }
            // The deadline check reaches the pivot loop so that one long LP
            // solve cannot overshoot a small budget: a pivot prices every
            // column (O(m·n) on thousands of columns), so checking every few
            // pivots costs nothing relative to the work it bounds.
            if self.iterations.is_multiple_of(8) && config.interrupted() {
                return Err(LpError::Interrupted);
            }
            self.iterations += 1;
            since_refactor += 1;
            if since_refactor >= config.refactor_every {
                self.refactorize()?;
                since_refactor = 0;
            }
            match self.iterate(config.tolerance, phase_two)? {
                IterOutcome::Continue => continue,
                other => return Ok(other),
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IterOutcome {
    Continue,
    Optimal,
    Unbounded,
}

/// Solves the LP relaxation of `problem` (integrality is ignored here; the
/// branch-and-bound layer re-imposes it).
///
/// `bound_overrides`, when given, replaces the `(lb, ub)` bounds of the
/// structural variables — this is how branch and bound tightens bounds per
/// node without copying the whole problem.
pub fn solve_lp(
    problem: &Problem,
    bound_overrides: Option<&[(f64, f64)]>,
    config: &SolverConfig,
) -> LpResult<Solution> {
    problem.validate()?;
    if let Some(b) = bound_overrides {
        if b.len() != problem.num_vars() {
            return Err(LpError::InvalidProblem(format!(
                "bound override length {} does not match variable count {}",
                b.len(),
                problem.num_vars()
            )));
        }
        for (i, (lb, ub)) in b.iter().enumerate() {
            if lb > ub {
                // An empty domain at a branch-and-bound node is simply an
                // infeasible subproblem, not a malformed input.
                let _ = i;
                return Ok(Solution::status_only(Status::Infeasible));
            }
        }
    }

    let n = problem.num_vars();
    let m = problem.num_constraints();

    let var_bounds = |i: usize| -> (f64, f64) {
        match bound_overrides {
            Some(b) => b[i],
            None => {
                let v = &problem.variables()[i];
                (v.lb, v.ub)
            }
        }
    };

    // Trivial case: no constraints. Push every variable to its favourable bound.
    if m == 0 {
        return solve_unconstrained(problem, bound_overrides, config);
    }

    // Internal objective is always minimization.
    let obj_sign = match problem.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let ncols = n + m + m; // structural + slack + artificial
    let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
    let mut lb = vec![0.0; ncols];
    let mut ub = vec![f64::INFINITY; ncols];
    let mut cost = vec![0.0; ncols];
    let mut b = vec![0.0; m];

    for i in 0..n {
        let (l, u) = var_bounds(i);
        lb[i] = l;
        ub[i] = u;
        cost[i] = obj_sign * problem.objective()[i];
    }
    for (row, c) in problem.constraints().iter().enumerate() {
        b[row] = c.rhs;
        for (v, a) in c.expr.terms() {
            if a != 0.0 {
                cols[v.index()].push((row, a));
            }
        }
        let slack = n + row;
        cols[slack].push((row, 1.0));
        match c.op {
            ConstraintOp::Le => {
                lb[slack] = 0.0;
                ub[slack] = f64::INFINITY;
            }
            ConstraintOp::Ge => {
                lb[slack] = f64::NEG_INFINITY;
                ub[slack] = 0.0;
            }
            ConstraintOp::Eq => {
                lb[slack] = 0.0;
                ub[slack] = 0.0;
            }
        }
    }

    // Initial nonbasic statuses for structural and slack columns.
    let mut status = vec![ColStatus::Free; ncols];
    #[allow(clippy::needless_range_loop)]
    for j in 0..n + m {
        status[j] = if lb[j].is_finite() {
            ColStatus::AtLower
        } else if ub[j].is_finite() {
            ColStatus::AtUpper
        } else {
            ColStatus::Free
        };
    }

    // Residuals decide the sign of each artificial column so the initial
    // basis is feasible (artificial value = |residual| ≥ 0).
    let mut residual = b.clone();
    #[allow(clippy::needless_range_loop)]
    for j in 0..n + m {
        let v = match status[j] {
            ColStatus::AtLower => lb[j],
            ColStatus::AtUpper => ub[j],
            _ => 0.0,
        };
        if v != 0.0 {
            for &(row, a) in &cols[j] {
                residual[row] -= a * v;
            }
        }
    }

    let mut basis = vec![0usize; m];
    let mut binv = vec![0.0; m * m];
    let mut xb = vec![0.0; m];
    for row in 0..m {
        let art = n + m + row;
        let sign = if residual[row] >= 0.0 { 1.0 } else { -1.0 };
        cols[art].push((row, sign));
        lb[art] = 0.0;
        ub[art] = f64::INFINITY;
        basis[row] = art;
        status[art] = ColStatus::Basic(row);
        binv[row * m + row] = sign; // inverse of diag(sign) is itself
        xb[row] = residual[row].abs();
    }

    // Phase-1 cost: sum of artificials.
    let mut phase1_cost = vec![0.0; ncols];
    for row in 0..m {
        phase1_cost[n + m + row] = 1.0;
    }

    let mut tab = Tableau {
        m,
        ncols,
        n_struct: n,
        cols,
        lb,
        ub,
        cost: phase1_cost,
        b,
        status,
        basis,
        binv,
        xb,
        iterations: 0,
        use_bland: false,
        degenerate_run: 0,
    };

    // ---- Phase 1 ----
    match tab.optimize(config, false)? {
        IterOutcome::Optimal => {}
        IterOutcome::Unbounded => {
            return Err(LpError::Numerical("phase-1 reported unbounded".into()))
        }
        IterOutcome::Continue => unreachable!(),
    }
    let infeasibility: f64 = (0..tab.m)
        .map(|pos| {
            let j = tab.basis[pos];
            if j >= n + m {
                tab.xb[pos].max(0.0)
            } else {
                0.0
            }
        })
        .sum();
    let feas_scale = 1.0 + tab.b.iter().map(|v| v.abs()).fold(0.0, f64::max);
    if infeasibility > config.tolerance * feas_scale * 10.0 {
        return Ok(Solution::status_only(Status::Infeasible));
    }

    // ---- Phase 2 ----
    // Freeze artificials at zero and swap in the real objective.
    for row in 0..m {
        let art = n + m + row;
        tab.ub[art] = 0.0;
        if !matches!(tab.status[art], ColStatus::Basic(_)) {
            tab.status[art] = ColStatus::AtLower;
        }
    }
    tab.cost = vec![0.0; ncols];
    for i in 0..n {
        tab.cost[i] = obj_sign * problem.objective()[i];
    }
    tab.use_bland = false;
    tab.degenerate_run = 0;

    let outcome = tab.optimize(config, true)?;

    // Extract the structural solution.
    let mut values = vec![0.0; n];
    for j in 0..n {
        values[j] = tab.nonbasic_value(j);
    }
    // Clamp tiny numerical excursions back into the variable bounds.
    for (i, v) in values.iter_mut().enumerate() {
        let (l, u) = var_bounds(i);
        if *v < l {
            *v = l;
        }
        if *v > u {
            *v = u;
        }
        if v.abs() < 1e-11 {
            *v = 0.0;
        }
    }

    match outcome {
        IterOutcome::Unbounded => Ok(Solution {
            status: Status::Unbounded,
            objective: match problem.sense() {
                Sense::Maximize => f64::INFINITY,
                Sense::Minimize => f64::NEG_INFINITY,
            },
            values,
            iterations: tab.iterations,
            nodes: 0,
        }),
        _ => Ok(Solution {
            status: Status::Optimal,
            objective: problem.objective_value(&values),
            values,
            iterations: tab.iterations,
            nodes: 0,
        }),
    }
}

/// Handles problems with zero constraint rows.
fn solve_unconstrained(
    problem: &Problem,
    bound_overrides: Option<&[(f64, f64)]>,
    _config: &SolverConfig,
) -> LpResult<Solution> {
    let n = problem.num_vars();
    let mut values = vec![0.0; n];
    for i in 0..n {
        let (lb, ub) = match bound_overrides {
            Some(b) => b[i],
            None => (problem.variables()[i].lb, problem.variables()[i].ub),
        };
        let c = problem.objective()[i];
        let effective = match problem.sense() {
            Sense::Maximize => c,
            Sense::Minimize => -c,
        };
        // Push towards the bound that improves the objective.
        let target = if effective > 0.0 {
            ub
        } else if effective < 0.0 {
            lb
        } else {
            lb.max(0.0).min(ub)
        };
        if !target.is_finite() {
            if effective != 0.0 {
                return Ok(Solution::status_only(Status::Unbounded));
            }
            values[i] = if lb.is_finite() { lb } else { 0.0 };
        } else {
            values[i] = target;
        }
    }
    Ok(Solution {
        status: Status::Optimal,
        objective: problem.objective_value(&values),
        values,
        iterations: 0,
        nodes: 0,
    })
}

/// Convenience used by tests: true when every integer variable of `problem`
/// holds an (almost) integral value in `values`.
pub fn is_integral(problem: &Problem, values: &[f64], int_tol: f64) -> bool {
    problem
        .variables()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.ty == VarType::Integer)
        .all(|(i, _)| (values[i] - values[i].round()).abs() <= int_tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, Problem, Sense, VarType};

    fn cfg() -> SolverConfig {
        SolverConfig::default()
    }

    #[test]
    fn simple_two_variable_lp() {
        // maximize 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic)
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Continuous, 0.0, f64::INFINITY);
        let y = p.add_var("y", VarType::Continuous, 0.0, f64::INFINITY);
        p.set_objective_coeff(x, 3.0);
        p.set_objective_coeff(y, 5.0);
        p.add_constraint_terms("c1", &[(x, 1.0)], ConstraintOp::Le, 4.0);
        p.add_constraint_terms("c2", &[(y, 2.0)], ConstraintOp::Le, 12.0);
        p.add_constraint_terms("c3", &[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert!(s.status.is_optimal());
        assert!((s.objective - 36.0).abs() < 1e-6);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // minimize 2x + 3y  s.t. x + y >= 10, x >= 2, y >= 3
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", VarType::Continuous, 0.0, f64::INFINITY);
        let y = p.add_var("y", VarType::Continuous, 0.0, f64::INFINITY);
        p.set_objective_coeff(x, 2.0);
        p.set_objective_coeff(y, 3.0);
        p.add_constraint_terms("sum", &[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0);
        p.add_constraint_terms("xm", &[(x, 1.0)], ConstraintOp::Ge, 2.0);
        p.add_constraint_terms("ym", &[(y, 1.0)], ConstraintOp::Ge, 3.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert!(s.status.is_optimal());
        assert!(
            (s.objective - 23.0).abs() < 1e-6,
            "objective was {}",
            s.objective
        );
        assert!((s.value(x) - 7.0).abs() < 1e-6);
        assert!((s.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // minimize x + y  s.t. x + 2y = 4, x - y = 1  → x = 2, y = 1
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", VarType::Continuous, f64::NEG_INFINITY, f64::INFINITY);
        let y = p.add_var("y", VarType::Continuous, f64::NEG_INFINITY, f64::INFINITY);
        p.set_objective_coeff(x, 1.0);
        p.set_objective_coeff(y, 1.0);
        p.add_constraint_terms("e1", &[(x, 1.0), (y, 2.0)], ConstraintOp::Eq, 4.0);
        p.add_constraint_terms("e2", &[(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert!(s.status.is_optimal());
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Continuous, 0.0, 10.0);
        p.add_constraint_terms("lo", &[(x, 1.0)], ConstraintOp::Ge, 5.0);
        p.add_constraint_terms("hi", &[(x, 1.0)], ConstraintOp::Le, 3.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Continuous, 0.0, f64::INFINITY);
        let y = p.add_var("y", VarType::Continuous, 0.0, f64::INFINITY);
        p.set_objective_coeff(x, 1.0);
        p.add_constraint_terms("c", &[(x, 1.0), (y, -1.0)], ConstraintOp::Le, 1.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert_eq!(s.status, Status::Unbounded);
    }

    #[test]
    fn variable_upper_bounds_respected_without_constraint_rows_for_them() {
        // maximize x + y  s.t. x + y <= 10, x ∈ [0, 3], y ∈ [0, 4]
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Continuous, 0.0, 3.0);
        let y = p.add_var("y", VarType::Continuous, 0.0, 4.0);
        p.set_objective_coeff(x, 1.0);
        p.set_objective_coeff(y, 1.0);
        p.add_constraint_terms("cap", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 10.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert!((s.objective - 7.0).abs() < 1e-6);
    }

    #[test]
    fn bound_overrides_take_effect() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Continuous, 0.0, 10.0);
        p.set_objective_coeff(x, 1.0);
        p.add_constraint_terms("cap", &[(x, 1.0)], ConstraintOp::Le, 9.0);
        let s = solve_lp(&p, Some(&[(0.0, 2.5)]), &cfg()).unwrap();
        assert!((s.objective - 2.5).abs() < 1e-6);
        // Empty domain → infeasible node.
        let s2 = solve_lp(&p, Some(&[(3.0, 2.0)]), &cfg()).unwrap();
        assert_eq!(s2.status, Status::Infeasible);
    }

    #[test]
    fn unconstrained_problems() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Continuous, 0.0, 7.0);
        let y = p.add_var("y", VarType::Continuous, -2.0, 2.0);
        p.set_objective_coeff(x, 2.0);
        p.set_objective_coeff(y, -1.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert!((s.objective - 16.0).abs() < 1e-9);

        let mut q = Problem::new(Sense::Maximize);
        let z = q.add_var("z", VarType::Continuous, 0.0, f64::INFINITY);
        q.set_objective_coeff(z, 1.0);
        let s2 = solve_lp(&q, None, &cfg()).unwrap();
        assert_eq!(s2.status, Status::Unbounded);
    }

    #[test]
    fn negative_lower_bounds() {
        // minimize x  s.t. x >= -5 (bound), x + y = 0, y <= 3  → x = -3
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", VarType::Continuous, -5.0, f64::INFINITY);
        let y = p.add_var("y", VarType::Continuous, 0.0, 3.0);
        p.set_objective_coeff(x, 1.0);
        p.add_constraint_terms("bal", &[(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 0.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert!(s.status.is_optimal());
        assert!((s.value(x) + 3.0).abs() < 1e-6, "x was {}", s.value(x));
    }

    #[test]
    fn fractional_relaxation_of_knapsack() {
        // maximize 10a + 6b + 4c s.t. a+b+c <= 2, 5a+4b+3c <= 7, 0<=vars<=1
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_var("a", VarType::Continuous, 0.0, 1.0);
        let b = p.add_var("b", VarType::Continuous, 0.0, 1.0);
        let c = p.add_var("c", VarType::Continuous, 0.0, 1.0);
        p.set_objective_coeff(a, 10.0);
        p.set_objective_coeff(b, 6.0);
        p.set_objective_coeff(c, 4.0);
        p.add_constraint_terms(
            "count",
            &[(a, 1.0), (b, 1.0), (c, 1.0)],
            ConstraintOp::Le,
            2.0,
        );
        p.add_constraint_terms(
            "weight",
            &[(a, 5.0), (b, 4.0), (c, 3.0)],
            ConstraintOp::Le,
            7.0,
        );
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert!(s.status.is_optimal());
        // a = 1, b = 0.5, c = 0 → 13; or a = 1, c = 2/3 → 12.67; optimum is 13.
        assert!(
            (s.objective - 13.0).abs() < 1e-6,
            "objective was {}",
            s.objective
        );
    }

    #[test]
    fn many_variables_few_rows_stays_fast_and_correct() {
        // maximize Σ v_i x_i  s.t. Σ x_i <= 10, Σ w_i x_i <= 50, x ∈ [0,1]
        // with v_i = i mod 7, w_i = 1 + (i mod 5). Greedy LP structure: the
        // optimum is reachable and must satisfy both constraints tightly.
        let n = 500;
        let mut p = Problem::new(Sense::Maximize);
        let mut count = Vec::new();
        let mut weight = Vec::new();
        for i in 0..n {
            let x = p.add_var(format!("x{i}"), VarType::Continuous, 0.0, 1.0);
            p.set_objective_coeff(x, (i % 7) as f64);
            count.push((x, 1.0));
            weight.push((x, 1.0 + (i % 5) as f64));
        }
        p.add_constraint_terms("count", &count, ConstraintOp::Le, 10.0);
        p.add_constraint_terms("weight", &weight, ConstraintOp::Le, 50.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert!(s.status.is_optimal());
        assert!(p.is_feasible(&s.values, 1e-6));
        // 10 items of value 6 fit (weight of value-6 items is 1 + (i mod 5) — at
        // least ten of them have total weight ≤ 50), so the optimum is 60.
        assert!(
            (s.objective - 60.0).abs() < 1e-5,
            "objective was {}",
            s.objective
        );
    }

    #[test]
    fn is_integral_helper() {
        let mut p = Problem::new(Sense::Maximize);
        p.add_var("x", VarType::Integer, 0.0, 5.0);
        p.add_var("y", VarType::Continuous, 0.0, 5.0);
        assert!(is_integral(&p, &[2.0000000001, 3.7], 1e-6));
        assert!(!is_integral(&p, &[2.5, 3.7], 1e-6));
    }
}
