//! Bounded-variable revised simplex.
//!
//! The solver keeps an explicit dense inverse of the basis matrix (size
//! `m × m`, where `m` is the number of constraint rows). Package ILP
//! relaxations have a handful of rows and thousands of columns, so iterations
//! are dominated by pricing (`O(m · n)`), not by basis maintenance.
//!
//! The implementation is a textbook two-phase method:
//!
//! 1. every row receives an artificial variable that forms the initial basis;
//!    phase 1 minimizes the sum of artificials (infeasible if it stays > 0);
//! 2. phase 2 minimizes the real objective starting from the phase-1 basis.
//!
//! Variable bounds are handled natively: nonbasic variables rest at their
//! lower or upper bound and may "bound flip" without a basis change. Dantzig
//! pricing is used by default, with a switch to Bland's rule after a long run
//! of degenerate pivots to guarantee termination.
//!
//! # Warm starts
//!
//! [`solve_lp_warm`] accepts a [`Basis`] snapshot from a previous solve of
//! the *same problem shape* with different variable bounds — exactly the
//! relationship between a branch-and-bound parent and its children. The warm
//! path installs the snapshot, restores primal feasibility with a bounded
//! dual simplex (tightening a bound leaves the parent basis dual feasible but
//! may push one basic value outside its new bound), and finishes with the
//! ordinary primal loop. Warm starting is a pure optimization: any mismatch
//! or numerical trouble falls back to the cold two-phase start, so the
//! returned solution is independent of the supplied basis.

// Dense matrix kernels index flat `binv[pos * m + k]` storage; rewriting the
// row/column loops as iterator chains obscures the linear algebra.
#![allow(clippy::needless_range_loop)]

use crate::error::LpError;
use crate::problem::{ConstraintOp, Problem, Sense, VarType};
use crate::solution::{Solution, Status};
use crate::{LpResult, SolverConfig};

const PIVOT_TOL: f64 = 1e-10;

/// Where a column currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColStatus {
    Basic(usize),
    AtLower,
    AtUpper,
    Free,
}

/// The nonbasic status a column defaults to given its bounds; snapshots only
/// record columns that deviate from this rule, which keeps them tiny.
fn default_status(lb: f64, ub: f64) -> ColStatus {
    if lb.is_finite() {
        ColStatus::AtLower
    } else if ub.is_finite() {
        ColStatus::AtUpper
    } else {
        ColStatus::Free
    }
}

/// A compact snapshot of a simplex basis, used by [`solve_lp_warm`] to start
/// a solve from a previous optimal basis instead of from scratch.
///
/// The snapshot stores the basic column of every row plus only the nonbasic
/// columns that do *not* rest at the default bound implied by their bounds
/// (most columns of a package LP sit at their lower bound), so it costs a few
/// dozen bytes per branch-and-bound node rather than `O(columns)`.
///
/// # Invariants
///
/// * A snapshot only applies to the same problem *shape* (equal row and
///   column counts); [`solve_lp_warm`] verifies this and falls back to a
///   cold start on any mismatch.
/// * Statuses are positional ("at lower", "at upper"), not value-based, so a
///   snapshot stays valid when bound *values* change — the branch-and-bound
///   child relationship.
/// * Warm starting never changes the optimum, only the iteration count: the
///   dual-simplex repair either succeeds, proves the subproblem infeasible,
///   or gives up and re-solves cold.
#[derive(Debug, Clone)]
pub struct Basis {
    m: u32,
    ncols: u32,
    /// Basic column of each row position.
    basis: Vec<u32>,
    /// Nonbasic columns whose status differs from the bound-implied default:
    /// `(column, code)` with 0 = at lower, 1 = at upper, 2 = free.
    nondefault: Vec<(u32, u8)>,
}

/// Outcome of the dual-simplex feasibility repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DualOutcome {
    /// All basic values are back inside their bounds; the basis is optimal
    /// up to the primal cleanup pass.
    Feasible,
    /// The dual is unbounded: the subproblem has no feasible point.
    Infeasible,
    /// Pivot cap reached without converging; caller re-solves cold.
    GaveUp,
}

/// Internal working representation of the LP.
struct Tableau {
    m: usize,
    ncols: usize,
    #[allow(dead_code)]
    n_struct: usize,
    /// Sparse columns: (row, coefficient) pairs.
    cols: Vec<Vec<(usize, f64)>>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    cost: Vec<f64>,
    b: Vec<f64>,
    status: Vec<ColStatus>,
    basis: Vec<usize>,
    /// Dense row-major m×m basis inverse.
    binv: Vec<f64>,
    /// Values of basic variables, by basis position.
    xb: Vec<f64>,
    iterations: usize,
    use_bland: bool,
    degenerate_run: usize,
}

impl Tableau {
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.status[j] {
            ColStatus::AtLower => self.lb[j],
            ColStatus::AtUpper => self.ub[j],
            ColStatus::Free => 0.0,
            ColStatus::Basic(pos) => self.xb[pos],
        }
    }

    /// Recomputes the basis inverse and basic values from scratch.
    fn refactorize(&mut self) -> LpResult<()> {
        let m = self.m;
        // Build the dense basis matrix.
        let mut mat = vec![0.0; m * m];
        for (pos, &j) in self.basis.iter().enumerate() {
            for &(row, a) in &self.cols[j] {
                mat[row * m + pos] = a;
            }
        }
        // Gauss-Jordan inversion with partial pivoting.
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // Pivot selection.
            let mut piv = col;
            let mut best = mat[col * m + col].abs();
            for r in col + 1..m {
                let v = mat[r * m + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < PIVOT_TOL {
                return Err(LpError::Numerical(
                    "singular basis during refactorization".into(),
                ));
            }
            if piv != col {
                for k in 0..m {
                    mat.swap(col * m + k, piv * m + k);
                    inv.swap(col * m + k, piv * m + k);
                }
            }
            let d = mat[col * m + col];
            for k in 0..m {
                mat[col * m + k] /= d;
                inv[col * m + k] /= d;
            }
            for r in 0..m {
                if r != col {
                    let factor = mat[r * m + col];
                    if factor != 0.0 {
                        for k in 0..m {
                            mat[r * m + k] -= factor * mat[col * m + k];
                            inv[r * m + k] -= factor * inv[col * m + k];
                        }
                    }
                }
            }
        }
        self.binv = inv;
        self.recompute_basic_values();
        Ok(())
    }

    /// xb = B⁻¹ (b − N·x_N).
    fn recompute_basic_values(&mut self) {
        let m = self.m;
        let mut rhs = self.b.clone();
        for j in 0..self.ncols {
            if let ColStatus::Basic(_) = self.status[j] {
                continue;
            }
            let v = self.nonbasic_value(j);
            if v != 0.0 {
                for &(row, a) in &self.cols[j] {
                    rhs[row] -= a * v;
                }
            }
        }
        for pos in 0..m {
            let mut acc = 0.0;
            for k in 0..m {
                acc += self.binv[pos * m + k] * rhs[k];
            }
            self.xb[pos] = acc;
        }
    }

    /// y = c_Bᵀ B⁻¹.
    fn duals(&self) -> Vec<f64> {
        let m = self.m;
        let mut y = vec![0.0; m];
        for pos in 0..m {
            let cb = self.cost[self.basis[pos]];
            if cb != 0.0 {
                for k in 0..m {
                    y[k] += cb * self.binv[pos * m + k];
                }
            }
        }
        y
    }

    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        let mut d = self.cost[j];
        for &(row, a) in &self.cols[j] {
            d -= y[row] * a;
        }
        d
    }

    /// w = B⁻¹ A_j.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let m = self.m;
        let mut w = vec![0.0; m];
        for &(row, a) in &self.cols[j] {
            if a != 0.0 {
                for pos in 0..m {
                    w[pos] += self.binv[pos * m + row] * a;
                }
            }
        }
        w
    }

    /// Rank-one update of B⁻¹ after the column with FTRAN image `w` entered
    /// the basis at row `pos`.
    fn update_binv(&mut self, pos: usize, w: &[f64]) -> LpResult<()> {
        let m = self.m;
        let piv = w[pos];
        if piv.abs() <= PIVOT_TOL {
            return Err(LpError::Numerical("pivot element too small".into()));
        }
        for k in 0..m {
            self.binv[pos * m + k] /= piv;
        }
        for r in 0..m {
            if r != pos && w[r].abs() > 0.0 {
                let factor = w[r];
                for k in 0..m {
                    self.binv[r * m + k] -= factor * self.binv[pos * m + k];
                }
            }
        }
        Ok(())
    }

    /// Snapshots the current basis. See [`Basis`] for the encoding.
    fn snapshot(&self) -> Basis {
        let mut nondefault = Vec::new();
        for j in 0..self.ncols {
            let s = self.status[j];
            if matches!(s, ColStatus::Basic(_)) {
                continue;
            }
            if s != default_status(self.lb[j], self.ub[j]) {
                let code = match s {
                    ColStatus::AtUpper => 1u8,
                    ColStatus::Free => 2,
                    _ => 0,
                };
                nondefault.push((j as u32, code));
            }
        }
        Basis {
            m: self.m as u32,
            ncols: self.ncols as u32,
            basis: self.basis.iter().map(|&j| j as u32).collect(),
            nondefault,
        }
    }

    /// Installs a basis snapshot: statuses are reset to their bound-implied
    /// defaults, the snapshot's exceptions and basic columns applied, and
    /// B⁻¹ refactorized. Returns false (leaving the tableau unusable) on any
    /// mismatch — the caller then solves cold.
    fn install(&mut self, warm: &Basis) -> bool {
        if warm.m as usize != self.m || warm.ncols as usize != self.ncols {
            return false;
        }
        for j in 0..self.ncols {
            self.status[j] = default_status(self.lb[j], self.ub[j]);
        }
        for &(j, code) in &warm.nondefault {
            let j = j as usize;
            if j >= self.ncols {
                return false;
            }
            let s = match code {
                0 => ColStatus::AtLower,
                1 => ColStatus::AtUpper,
                _ => ColStatus::Free,
            };
            // A status pointing at an infinite bound cannot hold a value;
            // keep the default instead (defensive: branch-and-bound only
            // tightens finite integer bounds).
            let valid = match s {
                ColStatus::AtLower => self.lb[j].is_finite(),
                ColStatus::AtUpper => self.ub[j].is_finite(),
                _ => true,
            };
            if valid {
                self.status[j] = s;
            }
        }
        for (pos, &j) in warm.basis.iter().enumerate() {
            let j = j as usize;
            if j >= self.ncols {
                return false;
            }
            self.basis[pos] = j;
            self.status[j] = ColStatus::Basic(pos);
        }
        self.refactorize().is_ok()
    }

    /// Bounded-variable dual simplex: restores primal feasibility of a
    /// dual-feasible basis after bound changes (the warm-start repair).
    ///
    /// Each pivot picks the basic value with the largest bound violation as
    /// the leaving variable and the entering column by the dual ratio test
    /// (minimal `|d_j / α_j|` over columns whose movement shrinks the
    /// violation), which preserves dual feasibility. An entering column that
    /// would overshoot its own opposite bound is bound-flipped instead of
    /// pivoted, exactly like the primal loop's bound flips.
    fn dual_simplex(&mut self, config: &SolverConfig) -> LpResult<DualOutcome> {
        let m = self.m;
        // Warm starts need a handful of pivots (one per violated row, plus
        // degeneracy slack); anything more suggests cycling, and the cold
        // fallback is both safer and cheaper than fighting it.
        let max_pivots = 100 + 20 * (m + 1);
        let mut since_refactor = 0usize;
        // Degenerate bound-flip cycles make no net progress on the total
        // violation; detect the stall after a dozen pivots and hand the LP
        // to the cold solver instead of burning the whole pivot cap on it.
        let mut best_total_viol = f64::INFINITY;
        let mut stalled = 0usize;
        for _ in 0..max_pivots {
            if self.iterations >= config.max_iterations {
                return Err(LpError::IterationLimit);
            }
            if self.iterations.is_multiple_of(8) && config.interrupted() {
                return Err(LpError::Interrupted);
            }
            // Leaving row: the largest bound violation among basic values.
            let mut leave: Option<(usize, f64, bool)> = None; // (pos, violation, below)
            let mut total_viol = 0.0;
            for pos in 0..m {
                let j = self.basis[pos];
                let v = self.xb[pos];
                let tol_j = config.tolerance * 10.0 * (1.0 + v.abs());
                if self.lb[j].is_finite() && v < self.lb[j] - tol_j {
                    let viol = self.lb[j] - v;
                    total_viol += viol;
                    if leave.map(|(_, best, _)| viol > best).unwrap_or(true) {
                        leave = Some((pos, viol, true));
                    }
                } else if self.ub[j].is_finite() && v > self.ub[j] + tol_j {
                    let viol = v - self.ub[j];
                    total_viol += viol;
                    if leave.map(|(_, best, _)| viol > best).unwrap_or(true) {
                        leave = Some((pos, viol, false));
                    }
                }
            }
            let Some((pos, _, below)) = leave else {
                return Ok(DualOutcome::Feasible);
            };
            if total_viol < best_total_viol - 1e-9 * (1.0 + best_total_viol.min(1e30)) {
                best_total_viol = total_viol;
                stalled = 0;
            } else {
                stalled += 1;
                if stalled > 12 {
                    return Ok(DualOutcome::GaveUp);
                }
            }
            self.iterations += 1;
            since_refactor += 1;
            if since_refactor >= config.refactor_every {
                self.refactorize()?;
                since_refactor = 0;
            }
            // α_j = (row `pos` of B⁻¹) · A_j for each nonbasic column.
            let rho: Vec<f64> = self.binv[pos * m..(pos + 1) * m].to_vec();
            let y = self.duals();
            let mut entering: Option<(usize, f64)> = None; // (column, |d/α|)
            for j in 0..self.ncols {
                let dir = match self.status[j] {
                    ColStatus::Basic(_) => continue,
                    ColStatus::AtLower => 1.0,
                    ColStatus::AtUpper => -1.0,
                    ColStatus::Free => 0.0,
                };
                // Fixed columns (equality slacks, frozen artificials) cannot move.
                if self.ub[j] - self.lb[j] <= 0.0 && self.lb[j].is_finite() {
                    continue;
                }
                let mut alpha = 0.0;
                for &(row, a) in &self.cols[j] {
                    alpha += rho[row] * a;
                }
                if alpha.abs() <= PIVOT_TOL {
                    continue;
                }
                // Δxb[pos] = −Δx_j·α_j and Δx_j must respect the column's
                // movable direction, so eligibility is a sign condition.
                let eligible = if dir == 0.0 {
                    true
                } else if below {
                    dir * alpha < 0.0
                } else {
                    dir * alpha > 0.0
                };
                if !eligible {
                    continue;
                }
                let d = self.reduced_cost(j, &y);
                let ratio = (d / alpha).abs();
                let better = match entering {
                    None => true,
                    Some((bj, best)) => {
                        ratio < best - 1e-12 || ((ratio - best).abs() <= 1e-12 && j < bj)
                    }
                };
                if better {
                    entering = Some((j, ratio));
                }
            }
            let Some((q, _)) = entering else {
                return Ok(DualOutcome::Infeasible);
            };
            let w = self.ftran(q);
            let alpha_q = w[pos];
            if alpha_q.abs() <= PIVOT_TOL {
                return Ok(DualOutcome::GaveUp);
            }
            let r = self.basis[pos];
            let target = if below { self.lb[r] } else { self.ub[r] };
            let step = (self.xb[pos] - target) / alpha_q; // Δx_q
            let range = self.ub[q] - self.lb[q];
            if range.is_finite() && step.abs() > range + 1e-12 {
                // Bound flip: q moves to its opposite bound, the violation
                // shrinks, and a later pivot finishes the repair.
                if range <= 0.0 {
                    return Ok(DualOutcome::GaveUp);
                }
                let flip = if step > 0.0 { range } else { -range };
                for k in 0..m {
                    self.xb[k] -= flip * w[k];
                }
                self.status[q] = if step > 0.0 {
                    ColStatus::AtUpper
                } else {
                    ColStatus::AtLower
                };
                continue;
            }
            let entering_value = self.nonbasic_value(q) + step;
            for k in 0..m {
                self.xb[k] -= step * w[k];
            }
            self.status[r] = if below {
                ColStatus::AtLower
            } else {
                ColStatus::AtUpper
            };
            self.basis[pos] = q;
            self.status[q] = ColStatus::Basic(pos);
            self.xb[pos] = entering_value;
            self.update_binv(pos, &w)?;
        }
        Ok(DualOutcome::GaveUp)
    }

    /// Chooses an entering column; returns `(column, increasing)` or `None`
    /// when the current basis is optimal for the active cost vector.
    fn price(&self, tol: f64) -> Option<(usize, bool)> {
        let y = self.duals();
        let mut best: Option<(usize, bool, f64)> = None;
        for j in 0..self.ncols {
            let (can_increase, can_decrease) = match self.status[j] {
                ColStatus::Basic(_) => (false, false),
                ColStatus::AtLower => (true, false),
                ColStatus::AtUpper => (false, true),
                ColStatus::Free => (true, true),
            };
            if !can_increase && !can_decrease {
                continue;
            }
            // Fixed variables (lb == ub) cannot move at all.
            if self.ub[j] - self.lb[j] <= 0.0 && self.lb[j].is_finite() {
                continue;
            }
            let d = self.reduced_cost(j, &y);
            let (improving, increasing) = if can_increase && d < -tol {
                (true, true)
            } else if can_decrease && d > tol {
                (true, false)
            } else {
                (false, true)
            };
            if !improving {
                continue;
            }
            if self.use_bland {
                // Bland: first improving index.
                return Some((j, increasing));
            }
            let score = d.abs();
            if best.map(|(_, _, s)| score > s).unwrap_or(true) {
                best = Some((j, increasing, score));
            }
        }
        best.map(|(j, inc, _)| (j, inc))
    }

    /// One simplex iteration for the active cost vector.
    /// Returns `Ok(true)` when an optimum was reached, `Ok(false)` to continue.
    fn iterate(&mut self, tol: f64, phase_two: bool) -> LpResult<IterOutcome> {
        let Some((q, increasing)) = self.price(tol) else {
            return Ok(IterOutcome::Optimal);
        };
        let m = self.m;
        let delta = if increasing { 1.0 } else { -1.0 };
        let w = self.ftran(q);

        // Ratio test. Basic values move by -t·delta·w.
        let entering_range = self.ub[q] - self.lb[q];
        let mut t_max = if entering_range.is_finite() {
            entering_range
        } else {
            f64::INFINITY
        };
        let mut leaving: Option<(usize, bool)> = None; // (basis position, hits_lower)
        for pos in 0..m {
            let wi = w[pos];
            if wi.abs() <= PIVOT_TOL {
                continue;
            }
            let basic = self.basis[pos];
            let change = delta * wi;
            let (limit, hits_lower) = if change > 0.0 {
                // basic value decreases towards its lower bound
                let lbb = self.lb[basic];
                if lbb.is_finite() {
                    ((self.xb[pos] - lbb) / change, true)
                } else {
                    (f64::INFINITY, true)
                }
            } else {
                // basic value increases towards its upper bound
                let ubb = self.ub[basic];
                if ubb.is_finite() {
                    ((ubb - self.xb[pos]) / (-change), false)
                } else {
                    (f64::INFINITY, false)
                }
            };
            let limit = limit.max(0.0);
            if limit < t_max - 1e-12 {
                t_max = limit;
                leaving = Some((pos, hits_lower));
            } else if leaving.is_some() && (limit - t_max).abs() <= 1e-12 {
                // Tie-break by smallest column index (helps against cycling).
                // pb-lint: allow(no-panic-in-solver-paths) — invariant:
                // guarded by `leaving.is_some()` in the branch condition.
                let (cur_pos, _) = leaving.unwrap();
                if self.basis[pos] < self.basis[cur_pos] {
                    leaving = Some((pos, hits_lower));
                }
            } else if leaving.is_none() && limit <= t_max {
                t_max = limit;
                leaving = Some((pos, hits_lower));
            }
        }

        if t_max.is_infinite() {
            return if phase_two {
                Ok(IterOutcome::Unbounded)
            } else {
                Err(LpError::Numerical(
                    "phase-1 objective unbounded below".into(),
                ))
            };
        }

        if t_max <= tol {
            self.degenerate_run += 1;
            if self.degenerate_run > 2 * (self.m + self.ncols) {
                self.use_bland = true;
            }
        } else {
            self.degenerate_run = 0;
        }

        // Apply the step to basic values.
        if t_max > 0.0 {
            for pos in 0..m {
                self.xb[pos] -= t_max * delta * w[pos];
            }
        }

        match leaving {
            None => {
                // Bound flip of the entering variable: no basis change.
                self.status[q] = if increasing {
                    ColStatus::AtUpper
                } else {
                    ColStatus::AtLower
                };
                Ok(IterOutcome::Continue)
            }
            Some((pos, hits_lower)) => {
                let entering_value = self.nonbasic_value(q) + delta * t_max;
                let leaving_col = self.basis[pos];
                self.status[leaving_col] = if hits_lower {
                    ColStatus::AtLower
                } else {
                    ColStatus::AtUpper
                };
                // Snap the leaving variable's value onto its bound exactly by
                // construction (it is nonbasic now, so its value is implied).
                self.basis[pos] = q;
                self.status[q] = ColStatus::Basic(pos);
                self.xb[pos] = entering_value;
                self.update_binv(pos, &w)?;
                Ok(IterOutcome::Continue)
            }
        }
    }

    /// Runs the simplex loop until the active cost vector is optimal.
    fn optimize(&mut self, config: &SolverConfig, phase_two: bool) -> LpResult<IterOutcome> {
        let mut since_refactor = 0usize;
        loop {
            if self.iterations >= config.max_iterations {
                return Err(LpError::IterationLimit);
            }
            // The deadline check reaches the pivot loop so that one long LP
            // solve cannot overshoot a small budget: a pivot prices every
            // column (O(m·n) on thousands of columns), so checking every few
            // pivots costs nothing relative to the work it bounds.
            if self.iterations.is_multiple_of(8) && config.interrupted() {
                return Err(LpError::Interrupted);
            }
            self.iterations += 1;
            since_refactor += 1;
            if since_refactor >= config.refactor_every {
                self.refactorize()?;
                since_refactor = 0;
            }
            match self.iterate(config.tolerance, phase_two)? {
                IterOutcome::Continue => continue,
                other => return Ok(other),
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IterOutcome {
    Continue,
    Optimal,
    Unbounded,
}

/// Solves the LP relaxation of `problem` (integrality is ignored here; the
/// branch-and-bound layer re-imposes it).
///
/// `bound_overrides`, when given, replaces the `(lb, ub)` bounds of the
/// structural variables — this is how branch and bound tightens bounds per
/// node without copying the whole problem.
pub fn solve_lp(
    problem: &Problem,
    bound_overrides: Option<&[(f64, f64)]>,
    config: &SolverConfig,
) -> LpResult<Solution> {
    solve_lp_warm(problem, bound_overrides, config, None).map(|(s, _)| s)
}

/// [`solve_lp`] plus warm starting: optionally resumes from a [`Basis`]
/// snapshot of a previous solve and returns the final basis alongside the
/// solution so the caller can chain further warm starts (branch and bound
/// hands each child its parent's basis).
///
/// The warm path skips phase 1 entirely: it installs the snapshot, repairs
/// primal feasibility with the dual simplex (a parent-optimal basis stays
/// *dual* feasible when bounds tighten) and finishes with the ordinary
/// primal loop. Shape mismatches, a dual-simplex give-up or numerical
/// trouble all fall back to the cold two-phase start, so the returned
/// solution does not depend on the supplied basis — only the iteration
/// count does.
pub fn solve_lp_warm(
    problem: &Problem,
    bound_overrides: Option<&[(f64, f64)]>,
    config: &SolverConfig,
    warm: Option<&Basis>,
) -> LpResult<(Solution, Option<Basis>)> {
    problem.validate()?;
    if let Some(b) = bound_overrides {
        if b.len() != problem.num_vars() {
            return Err(LpError::InvalidProblem(format!(
                "bound override length {} does not match variable count {}",
                b.len(),
                problem.num_vars()
            )));
        }
        for (lb, ub) in b.iter() {
            if lb > ub {
                // An empty domain at a branch-and-bound node is simply an
                // infeasible subproblem, not a malformed input.
                return Ok((Solution::status_only(Status::Infeasible), None));
            }
        }
    }

    let n = problem.num_vars();
    let m = problem.num_constraints();

    let var_bounds = |i: usize| -> (f64, f64) {
        match bound_overrides {
            Some(b) => b[i],
            None => {
                let v = &problem.variables()[i];
                (v.lb, v.ub)
            }
        }
    };

    // Trivial case: no constraints. Push every variable to its favourable bound.
    if m == 0 {
        return solve_unconstrained(problem, bound_overrides, config).map(|s| (s, None));
    }

    // Internal objective is always minimization.
    let obj_sign = match problem.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let ncols = n + m + m; // structural + slack + artificial

    // ---- Warm path ----
    let mut warm_spent = 0usize;
    if let Some(wb) = warm {
        if wb.m as usize == m && wb.ncols as usize == ncols {
            let mut tab = build_shell(problem, &var_bounds);
            // Canonical +1 artificials, frozen at zero: the warm basis does
            // not need the residual-signed feasibility trick of the cold
            // start, and a fixed sign keeps snapshots portable across nodes.
            for row in 0..m {
                let art = n + m + row;
                tab.cols[art].push((row, 1.0));
                tab.lb[art] = 0.0;
                tab.ub[art] = 0.0;
            }
            for i in 0..n {
                tab.cost[i] = obj_sign * problem.objective()[i];
            }
            if tab.install(wb) {
                let attempt: LpResult<Option<(Solution, Option<Basis>)>> =
                    (|| match tab.dual_simplex(config)? {
                        DualOutcome::GaveUp => Ok(None),
                        DualOutcome::Infeasible => {
                            let mut s = Solution::status_only(Status::Infeasible);
                            s.iterations = tab.iterations;
                            Ok(Some((s, None)))
                        }
                        DualOutcome::Feasible => {
                            let outcome = tab.optimize(config, true)?;
                            Ok(Some(extract(problem, &var_bounds, &tab, outcome)))
                        }
                    })();
                match attempt {
                    Ok(Some(out)) => return Ok(out),
                    // Give-up or numerical trouble: re-solve cold, carrying
                    // the pivots already spent into the iteration budget.
                    Ok(None) => warm_spent = tab.iterations,
                    Err(LpError::Numerical(_)) => warm_spent = tab.iterations,
                    Err(e) => return Err(e),
                }
            }
        }
    }

    // ---- Cold path: two-phase from scratch ----
    let mut tab = build_shell(problem, &var_bounds);
    tab.iterations = warm_spent;

    // Residuals decide the sign of each artificial column so the initial
    // basis is feasible (artificial value = |residual| ≥ 0).
    let mut residual = tab.b.clone();
    #[allow(clippy::needless_range_loop)]
    for j in 0..n + m {
        let v = match tab.status[j] {
            ColStatus::AtLower => tab.lb[j],
            ColStatus::AtUpper => tab.ub[j],
            _ => 0.0,
        };
        if v != 0.0 {
            for &(row, a) in &tab.cols[j] {
                residual[row] -= a * v;
            }
        }
    }
    for row in 0..m {
        let art = n + m + row;
        let sign = if residual[row] >= 0.0 { 1.0 } else { -1.0 };
        tab.cols[art].push((row, sign));
        tab.lb[art] = 0.0;
        tab.ub[art] = f64::INFINITY;
        tab.basis[row] = art;
        tab.status[art] = ColStatus::Basic(row);
        tab.binv[row * m + row] = sign; // inverse of diag(sign) is itself
        tab.xb[row] = residual[row].abs();
    }

    // Phase-1 cost: sum of artificials.
    for row in 0..m {
        tab.cost[n + m + row] = 1.0;
    }

    // ---- Phase 1 ----
    match tab.optimize(config, false)? {
        IterOutcome::Optimal => {}
        IterOutcome::Unbounded => {
            return Err(LpError::Numerical("phase-1 reported unbounded".into()))
        }
        // pb-lint: allow(no-panic-in-solver-paths) — invariant: the
        // iteration loop only returns Optimal or Unbounded; Continue keeps
        // iterating and never escapes.
        IterOutcome::Continue => unreachable!(),
    }
    let infeasibility: f64 = (0..tab.m)
        .map(|pos| {
            let j = tab.basis[pos];
            if j >= n + m {
                tab.xb[pos].max(0.0)
            } else {
                0.0
            }
        })
        .sum();
    // pb-lint: allow(no-nan-unsafe-ordering) — `b` entries are finite by
    // problem validation; max of absolute values builds a tolerance scale.
    let feas_scale = 1.0 + tab.b.iter().map(|v| v.abs()).fold(0.0, f64::max);
    if infeasibility > config.tolerance * feas_scale * 10.0 {
        let mut s = Solution::status_only(Status::Infeasible);
        s.iterations = tab.iterations;
        return Ok((s, None));
    }

    // ---- Phase 2 ----
    // Freeze artificials at zero and swap in the real objective.
    for row in 0..m {
        let art = n + m + row;
        tab.ub[art] = 0.0;
        if !matches!(tab.status[art], ColStatus::Basic(_)) {
            tab.status[art] = ColStatus::AtLower;
        }
    }
    tab.cost = vec![0.0; ncols];
    for i in 0..n {
        tab.cost[i] = obj_sign * problem.objective()[i];
    }
    tab.use_bland = false;
    tab.degenerate_run = 0;

    let outcome = tab.optimize(config, true)?;
    Ok(extract(problem, &var_bounds, &tab, outcome))
}

/// Outcome of one [`LpWorkspace::solve`] attempt.
pub enum WarmAttempt {
    /// The warm solve finished; solution and next-warm-start basis inside.
    Done(Solution, Option<Basis>),
    /// The warm attempt gave up (basis mismatch, dual-simplex stall or
    /// numerical trouble) after spending this many pivots; the caller should
    /// re-solve cold and add the spent pivots to its iteration count.
    Fallback(usize),
}

/// A reusable warm-solve workspace for branch and bound.
///
/// Every node of a branch-and-bound search solves the *same* LP with only
/// the structural variable bounds changed, yet [`solve_lp_warm`] rebuilds
/// the whole tableau shell per call — for package ILPs with thousands of
/// columns that rebuild (one heap-allocated sparse column per variable)
/// costs more than the handful of warm pivots it feeds. The workspace
/// builds the shell once — columns, costs, right-hand sides, canonical
/// frozen artificials — and each [`LpWorkspace::solve`] only rewrites the
/// structural bounds in place before installing the caller's basis.
///
/// **Purity invariant**: a solve's result is a pure function of
/// `(bounds, warm, config)`. The basis install resets every column
/// status, rebuilds the basis and refactorizes, and the pivot-state fields
/// (`iterations`, `use_bland`, `degenerate_run`) are reset per call, so no
/// state leaks between solves — which is what lets the deterministic
/// parallel search hand workspaces to arbitrary worker threads without
/// affecting results (see `crate::branch_bound`).
pub struct LpWorkspace {
    tab: Tableau,
}

impl LpWorkspace {
    /// Builds the shell for `problem`. Returns `None` for problems without
    /// constraint rows (those take the trivial unconstrained path and never
    /// benefit from reuse).
    pub fn new(problem: &Problem) -> Option<Self> {
        let n = problem.num_vars();
        let m = problem.num_constraints();
        if m == 0 {
            return None;
        }
        let var_bounds = |i: usize| {
            let v = &problem.variables()[i];
            (v.lb, v.ub)
        };
        let mut tab = build_shell(problem, &var_bounds);
        // Canonical +1 artificials frozen at zero, exactly as the warm path
        // of [`solve_lp_warm`] builds them — snapshots are interchangeable
        // between the two.
        for row in 0..m {
            let art = n + m + row;
            tab.cols[art].push((row, 1.0));
            tab.lb[art] = 0.0;
            tab.ub[art] = 0.0;
        }
        let obj_sign = match problem.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for i in 0..n {
            tab.cost[i] = obj_sign * problem.objective()[i];
        }
        Some(LpWorkspace { tab })
    }

    /// Warm-solves `problem` under `bounds` from the basis `warm`, reusing
    /// the prebuilt shell. Behaviour (statuses, pivots, results) is
    /// identical to the warm path of [`solve_lp_warm`]; only the shell
    /// construction is skipped. `bounds` must cover every structural
    /// variable and `problem` must be the one the workspace was built for.
    pub fn solve(
        &mut self,
        problem: &Problem,
        bounds: &[(f64, f64)],
        config: &SolverConfig,
        warm: &Basis,
    ) -> LpResult<WarmAttempt> {
        let n = problem.num_vars();
        if bounds.len() != n {
            return Err(LpError::InvalidProblem(format!(
                "bound override length {} does not match variable count {}",
                bounds.len(),
                n
            )));
        }
        for (lb, ub) in bounds.iter() {
            if lb > ub {
                return Ok(WarmAttempt::Done(
                    Solution::status_only(Status::Infeasible),
                    None,
                ));
            }
        }
        let tab = &mut self.tab;
        for (i, &(lb, ub)) in bounds.iter().enumerate() {
            tab.lb[i] = lb;
            tab.ub[i] = ub;
        }
        tab.iterations = 0;
        tab.use_bland = false;
        tab.degenerate_run = 0;
        if !tab.install(warm) {
            return Ok(WarmAttempt::Fallback(tab.iterations));
        }
        let attempt: LpResult<Option<(Solution, Option<Basis>)>> =
            (|| match tab.dual_simplex(config)? {
                DualOutcome::GaveUp => Ok(None),
                DualOutcome::Infeasible => {
                    let mut s = Solution::status_only(Status::Infeasible);
                    s.iterations = tab.iterations;
                    Ok(Some((s, None)))
                }
                DualOutcome::Feasible => {
                    let outcome = tab.optimize(config, true)?;
                    Ok(Some(extract(problem, &|i| bounds[i], tab, outcome)))
                }
            })();
        match attempt {
            Ok(Some((s, b))) => Ok(WarmAttempt::Done(s, b)),
            Ok(None) => Ok(WarmAttempt::Fallback(tab.iterations)),
            Err(LpError::Numerical(_)) => Ok(WarmAttempt::Fallback(tab.iterations)),
            Err(e) => Err(e),
        }
    }
}

/// Builds the tableau shell shared by the warm and cold paths: structural
/// and slack columns with their bounds and default statuses, empty
/// artificial columns (each path fills those in its own way), zero costs.
fn build_shell(problem: &Problem, var_bounds: &dyn Fn(usize) -> (f64, f64)) -> Tableau {
    let n = problem.num_vars();
    let m = problem.num_constraints();
    let ncols = n + m + m;
    let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
    let mut lb = vec![0.0; ncols];
    let mut ub = vec![f64::INFINITY; ncols];
    let mut b = vec![0.0; m];

    for i in 0..n {
        let (l, u) = var_bounds(i);
        lb[i] = l;
        ub[i] = u;
    }
    for (row, c) in problem.constraints().iter().enumerate() {
        b[row] = c.rhs;
        for (v, a) in c.expr.terms() {
            if a != 0.0 {
                cols[v.index()].push((row, a));
            }
        }
        let slack = n + row;
        cols[slack].push((row, 1.0));
        match c.op {
            ConstraintOp::Le => {
                lb[slack] = 0.0;
                ub[slack] = f64::INFINITY;
            }
            ConstraintOp::Ge => {
                lb[slack] = f64::NEG_INFINITY;
                ub[slack] = 0.0;
            }
            ConstraintOp::Eq => {
                lb[slack] = 0.0;
                ub[slack] = 0.0;
            }
        }
    }

    let mut status = vec![ColStatus::Free; ncols];
    #[allow(clippy::needless_range_loop)]
    for j in 0..n + m {
        status[j] = default_status(lb[j], ub[j]);
    }

    Tableau {
        m,
        ncols,
        n_struct: n,
        cols,
        lb,
        ub,
        cost: vec![0.0; ncols],
        b,
        status,
        basis: vec![0usize; m],
        binv: vec![0.0; m * m],
        xb: vec![0.0; m],
        iterations: 0,
        use_bland: false,
        degenerate_run: 0,
    }
}

/// Extracts the structural solution and a basis snapshot from a finished
/// tableau.
fn extract(
    problem: &Problem,
    var_bounds: &dyn Fn(usize) -> (f64, f64),
    tab: &Tableau,
    outcome: IterOutcome,
) -> (Solution, Option<Basis>) {
    let n = problem.num_vars();
    let mut values = vec![0.0; n];
    for (j, v) in values.iter_mut().enumerate() {
        *v = tab.nonbasic_value(j);
    }
    // Clamp tiny numerical excursions back into the variable bounds.
    for (i, v) in values.iter_mut().enumerate() {
        let (l, u) = var_bounds(i);
        if *v < l {
            *v = l;
        }
        if *v > u {
            *v = u;
        }
        if v.abs() < 1e-11 {
            *v = 0.0;
        }
    }

    match outcome {
        IterOutcome::Unbounded => (
            Solution {
                status: Status::Unbounded,
                objective: match problem.sense() {
                    Sense::Maximize => f64::INFINITY,
                    Sense::Minimize => f64::NEG_INFINITY,
                },
                values,
                iterations: tab.iterations,
                nodes: 0,
                gap: None,
            },
            None,
        ),
        _ => {
            let objective = problem.objective_value(&values);
            (
                Solution {
                    status: Status::Optimal,
                    objective,
                    values,
                    iterations: tab.iterations,
                    nodes: 0,
                    gap: None,
                },
                Some(tab.snapshot()),
            )
        }
    }
}

/// Handles problems with zero constraint rows.
fn solve_unconstrained(
    problem: &Problem,
    bound_overrides: Option<&[(f64, f64)]>,
    _config: &SolverConfig,
) -> LpResult<Solution> {
    let n = problem.num_vars();
    let mut values = vec![0.0; n];
    for i in 0..n {
        let (lb, ub) = match bound_overrides {
            Some(b) => b[i],
            None => (problem.variables()[i].lb, problem.variables()[i].ub),
        };
        let c = problem.objective()[i];
        let effective = match problem.sense() {
            Sense::Maximize => c,
            Sense::Minimize => -c,
        };
        // Push towards the bound that improves the objective.
        let target = if effective > 0.0 {
            ub
        } else if effective < 0.0 {
            lb
        } else {
            lb.max(0.0).min(ub)
        };
        if !target.is_finite() {
            if effective != 0.0 {
                return Ok(Solution::status_only(Status::Unbounded));
            }
            values[i] = if lb.is_finite() { lb } else { 0.0 };
        } else {
            values[i] = target;
        }
    }
    Ok(Solution {
        status: Status::Optimal,
        objective: problem.objective_value(&values),
        values,
        iterations: 0,
        nodes: 0,
        gap: None,
    })
}

/// Convenience used by tests: true when every integer variable of `problem`
/// holds an (almost) integral value in `values`.
pub fn is_integral(problem: &Problem, values: &[f64], int_tol: f64) -> bool {
    problem
        .variables()
        .iter()
        .enumerate()
        .filter(|(_, v)| v.ty == VarType::Integer)
        .all(|(i, _)| (values[i] - values[i].round()).abs() <= int_tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp, Problem, Sense, VarType};

    fn cfg() -> SolverConfig {
        SolverConfig::default()
    }

    #[test]
    fn simple_two_variable_lp() {
        // maximize 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic)
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Continuous, 0.0, f64::INFINITY);
        let y = p.add_var("y", VarType::Continuous, 0.0, f64::INFINITY);
        p.set_objective_coeff(x, 3.0);
        p.set_objective_coeff(y, 5.0);
        p.add_constraint_terms("c1", &[(x, 1.0)], ConstraintOp::Le, 4.0);
        p.add_constraint_terms("c2", &[(y, 2.0)], ConstraintOp::Le, 12.0);
        p.add_constraint_terms("c3", &[(x, 3.0), (y, 2.0)], ConstraintOp::Le, 18.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert!(s.status.is_optimal());
        assert!((s.objective - 36.0).abs() < 1e-6);
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge_constraints() {
        // minimize 2x + 3y  s.t. x + y >= 10, x >= 2, y >= 3
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", VarType::Continuous, 0.0, f64::INFINITY);
        let y = p.add_var("y", VarType::Continuous, 0.0, f64::INFINITY);
        p.set_objective_coeff(x, 2.0);
        p.set_objective_coeff(y, 3.0);
        p.add_constraint_terms("sum", &[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 10.0);
        p.add_constraint_terms("xm", &[(x, 1.0)], ConstraintOp::Ge, 2.0);
        p.add_constraint_terms("ym", &[(y, 1.0)], ConstraintOp::Ge, 3.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert!(s.status.is_optimal());
        assert!(
            (s.objective - 23.0).abs() < 1e-6,
            "objective was {}",
            s.objective
        );
        assert!((s.value(x) - 7.0).abs() < 1e-6);
        assert!((s.value(y) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints() {
        // minimize x + y  s.t. x + 2y = 4, x - y = 1  → x = 2, y = 1
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", VarType::Continuous, f64::NEG_INFINITY, f64::INFINITY);
        let y = p.add_var("y", VarType::Continuous, f64::NEG_INFINITY, f64::INFINITY);
        p.set_objective_coeff(x, 1.0);
        p.set_objective_coeff(y, 1.0);
        p.add_constraint_terms("e1", &[(x, 1.0), (y, 2.0)], ConstraintOp::Eq, 4.0);
        p.add_constraint_terms("e2", &[(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert!(s.status.is_optimal());
        assert!((s.value(x) - 2.0).abs() < 1e-6);
        assert!((s.value(y) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Continuous, 0.0, 10.0);
        p.add_constraint_terms("lo", &[(x, 1.0)], ConstraintOp::Ge, 5.0);
        p.add_constraint_terms("hi", &[(x, 1.0)], ConstraintOp::Le, 3.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert_eq!(s.status, Status::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Continuous, 0.0, f64::INFINITY);
        let y = p.add_var("y", VarType::Continuous, 0.0, f64::INFINITY);
        p.set_objective_coeff(x, 1.0);
        p.add_constraint_terms("c", &[(x, 1.0), (y, -1.0)], ConstraintOp::Le, 1.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert_eq!(s.status, Status::Unbounded);
    }

    #[test]
    fn variable_upper_bounds_respected_without_constraint_rows_for_them() {
        // maximize x + y  s.t. x + y <= 10, x ∈ [0, 3], y ∈ [0, 4]
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Continuous, 0.0, 3.0);
        let y = p.add_var("y", VarType::Continuous, 0.0, 4.0);
        p.set_objective_coeff(x, 1.0);
        p.set_objective_coeff(y, 1.0);
        p.add_constraint_terms("cap", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 10.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert!((s.objective - 7.0).abs() < 1e-6);
    }

    #[test]
    fn bound_overrides_take_effect() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Continuous, 0.0, 10.0);
        p.set_objective_coeff(x, 1.0);
        p.add_constraint_terms("cap", &[(x, 1.0)], ConstraintOp::Le, 9.0);
        let s = solve_lp(&p, Some(&[(0.0, 2.5)]), &cfg()).unwrap();
        assert!((s.objective - 2.5).abs() < 1e-6);
        // Empty domain → infeasible node.
        let s2 = solve_lp(&p, Some(&[(3.0, 2.0)]), &cfg()).unwrap();
        assert_eq!(s2.status, Status::Infeasible);
    }

    #[test]
    fn unconstrained_problems() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Continuous, 0.0, 7.0);
        let y = p.add_var("y", VarType::Continuous, -2.0, 2.0);
        p.set_objective_coeff(x, 2.0);
        p.set_objective_coeff(y, -1.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert!((s.objective - 16.0).abs() < 1e-9);

        let mut q = Problem::new(Sense::Maximize);
        let z = q.add_var("z", VarType::Continuous, 0.0, f64::INFINITY);
        q.set_objective_coeff(z, 1.0);
        let s2 = solve_lp(&q, None, &cfg()).unwrap();
        assert_eq!(s2.status, Status::Unbounded);
    }

    #[test]
    fn negative_lower_bounds() {
        // minimize x  s.t. x >= -5 (bound), x + y = 0, y <= 3  → x = -3
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", VarType::Continuous, -5.0, f64::INFINITY);
        let y = p.add_var("y", VarType::Continuous, 0.0, 3.0);
        p.set_objective_coeff(x, 1.0);
        p.add_constraint_terms("bal", &[(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 0.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert!(s.status.is_optimal());
        assert!((s.value(x) + 3.0).abs() < 1e-6, "x was {}", s.value(x));
    }

    #[test]
    fn fractional_relaxation_of_knapsack() {
        // maximize 10a + 6b + 4c s.t. a+b+c <= 2, 5a+4b+3c <= 7, 0<=vars<=1
        let mut p = Problem::new(Sense::Maximize);
        let a = p.add_var("a", VarType::Continuous, 0.0, 1.0);
        let b = p.add_var("b", VarType::Continuous, 0.0, 1.0);
        let c = p.add_var("c", VarType::Continuous, 0.0, 1.0);
        p.set_objective_coeff(a, 10.0);
        p.set_objective_coeff(b, 6.0);
        p.set_objective_coeff(c, 4.0);
        p.add_constraint_terms(
            "count",
            &[(a, 1.0), (b, 1.0), (c, 1.0)],
            ConstraintOp::Le,
            2.0,
        );
        p.add_constraint_terms(
            "weight",
            &[(a, 5.0), (b, 4.0), (c, 3.0)],
            ConstraintOp::Le,
            7.0,
        );
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert!(s.status.is_optimal());
        // a = 1, b = 0.5, c = 0 → 13; or a = 1, c = 2/3 → 12.67; optimum is 13.
        assert!(
            (s.objective - 13.0).abs() < 1e-6,
            "objective was {}",
            s.objective
        );
    }

    #[test]
    fn many_variables_few_rows_stays_fast_and_correct() {
        // maximize Σ v_i x_i  s.t. Σ x_i <= 10, Σ w_i x_i <= 50, x ∈ [0,1]
        // with v_i = i mod 7, w_i = 1 + (i mod 5). Greedy LP structure: the
        // optimum is reachable and must satisfy both constraints tightly.
        let n = 500;
        let mut p = Problem::new(Sense::Maximize);
        let mut count = Vec::new();
        let mut weight = Vec::new();
        for i in 0..n {
            let x = p.add_var(format!("x{i}"), VarType::Continuous, 0.0, 1.0);
            p.set_objective_coeff(x, (i % 7) as f64);
            count.push((x, 1.0));
            weight.push((x, 1.0 + (i % 5) as f64));
        }
        p.add_constraint_terms("count", &count, ConstraintOp::Le, 10.0);
        p.add_constraint_terms("weight", &weight, ConstraintOp::Le, 50.0);
        let s = solve_lp(&p, None, &cfg()).unwrap();
        assert!(s.status.is_optimal());
        assert!(p.is_feasible(&s.values, 1e-6));
        // 10 items of value 6 fit (weight of value-6 items is 1 + (i mod 5) — at
        // least ten of them have total weight ≤ 50), so the optimum is 60.
        assert!(
            (s.objective - 60.0).abs() < 1e-5,
            "objective was {}",
            s.objective
        );
    }

    #[test]
    fn is_integral_helper() {
        let mut p = Problem::new(Sense::Maximize);
        p.add_var("x", VarType::Integer, 0.0, 5.0);
        p.add_var("y", VarType::Continuous, 0.0, 5.0);
        assert!(is_integral(&p, &[2.0000000001, 3.7], 1e-6));
        assert!(!is_integral(&p, &[2.5, 3.7], 1e-6));
    }
}
