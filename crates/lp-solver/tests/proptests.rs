//! Property-based tests for the LP/MILP solver.

use lp_solver::{
    solve, solve_lp, solve_lp_warm, ConstraintOp, Problem, Sense, SolverConfig, Status, VarType,
};
use proptest::prelude::*;

fn cfg() -> SolverConfig {
    SolverConfig::default()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// On random 0/1 knapsack instances the MILP optimum equals brute force.
    #[test]
    fn knapsack_matches_brute_force(
        values in prop::collection::vec(1.0f64..20.0, 6..12),
        weights in prop::collection::vec(1.0f64..10.0, 6..12),
        capacity_frac in 0.2f64..0.8,
    ) {
        let n = values.len().min(weights.len());
        let values = &values[..n];
        let weights = &weights[..n];
        let capacity = capacity_frac * weights.iter().sum::<f64>();

        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|i| p.add_binary(format!("x{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            p.set_objective_coeff(v, values[i]);
        }
        let terms: Vec<_> = vars.iter().enumerate().map(|(i, &v)| (v, weights[i])).collect();
        p.add_constraint_terms("cap", &terms, ConstraintOp::Le, capacity);
        let sol = solve(&p, &cfg()).unwrap();
        prop_assert!(sol.status.is_optimal());

        let mut best = 0.0f64;
        for mask in 0u32..(1 << n) {
            let (mut w, mut v) = (0.0, 0.0);
            for i in 0..n {
                if mask & (1 << i) != 0 {
                    w += weights[i];
                    v += values[i];
                }
            }
            if w <= capacity + 1e-9 && v > best {
                best = v;
            }
        }
        prop_assert!((sol.objective - best).abs() < 1e-6, "milp {} vs brute force {}", sol.objective, best);
        prop_assert!(p.is_feasible(&sol.values, 1e-6));
    }

    /// Random feasible LPs: the simplex answer satisfies every constraint and
    /// dominates a set of random feasible points.
    #[test]
    fn lp_optimum_dominates_random_feasible_points(
        costs in prop::collection::vec(-10.0f64..10.0, 4..8),
        rows in prop::collection::vec(prop::collection::vec(0.0f64..5.0, 4..8), 2..5),
        rhs_slack in prop::collection::vec(1.0f64..50.0, 2..5),
        samples in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 4..8), 10),
    ) {
        let n = costs.len();
        let m = rows.len().min(rhs_slack.len());
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|i| p.add_var(format!("x{i}"), VarType::Continuous, 0.0, 1.0)).collect();
        for (i, &v) in vars.iter().enumerate() {
            p.set_objective_coeff(v, costs[i]);
        }
        for r in 0..m {
            let coeffs: Vec<f64> = (0..n).map(|i| rows[r].get(i).copied().unwrap_or(0.0)).collect();
            let terms: Vec<_> = vars.iter().enumerate().map(|(i, &v)| (v, coeffs[i])).collect();
            // rhs chosen so the origin is always feasible.
            p.add_constraint_terms(format!("r{r}"), &terms, ConstraintOp::Le, rhs_slack[r]);
        }
        let sol = solve_lp(&p, None, &cfg()).unwrap();
        prop_assert!(sol.status.is_optimal());
        prop_assert!(p.is_feasible(&sol.values, 1e-6), "simplex returned an infeasible point");

        for sample in &samples {
            let point: Vec<f64> = (0..n).map(|i| sample.get(i).copied().unwrap_or(0.0)).collect();
            if p.is_feasible(&point, 1e-9) {
                prop_assert!(
                    p.objective_value(&point) <= sol.objective + 1e-6,
                    "random feasible point beats the 'optimal' simplex solution"
                );
            }
        }
    }

    /// Warm-started re-solves after a bound change (the branch-and-bound
    /// access pattern: clamp one variable to floor/ceil of its relaxation
    /// value) reach the same optimum as a cold two-phase solve, in no more
    /// simplex iterations.
    #[test]
    fn warm_start_matches_cold_solve_after_bound_change(
        costs in prop::collection::vec(-10.0f64..10.0, 4..8),
        rows in prop::collection::vec(prop::collection::vec(0.0f64..5.0, 4..8), 2..5),
        rhs_slack in prop::collection::vec(1.0f64..50.0, 2..5),
        branch_pick in 0usize..8,
        go_down_bit in 0u8..2,
    ) {
        let n = costs.len();
        let m = rows.len().min(rhs_slack.len());
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..n).map(|i| p.add_var(format!("x{i}"), VarType::Continuous, 0.0, 3.0)).collect();
        for (i, &v) in vars.iter().enumerate() {
            p.set_objective_coeff(v, costs[i]);
        }
        for r in 0..m {
            let coeffs: Vec<f64> = (0..n).map(|i| rows[r].get(i).copied().unwrap_or(0.0)).collect();
            let terms: Vec<_> = vars.iter().enumerate().map(|(i, &v)| (v, coeffs[i])).collect();
            p.add_constraint_terms(format!("r{r}"), &terms, ConstraintOp::Le, rhs_slack[r]);
        }

        // Parent solve, cold, keeping the optimal basis.
        let (parent, basis) = solve_lp_warm(&p, None, &cfg(), None).unwrap();
        prop_assert!(parent.status.is_optimal());
        let basis = basis.expect("optimal LP solves return a basis");

        // Branch: clamp one variable the way branch and bound would.
        let go_down = go_down_bit == 0;
        let i = branch_pick % n;
        let v = parent.values[i];
        let mut bounds: Vec<(f64, f64)> = p.variables().iter().map(|vv| (vv.lb, vv.ub)).collect();
        bounds[i] = if go_down { (0.0, v.floor()) } else { (v.ceil(), 3.0) };

        let cold = solve_lp(&p, Some(&bounds), &cfg()).unwrap();
        let (warm, _) = solve_lp_warm(&p, Some(&bounds), &cfg(), Some(&basis)).unwrap();

        prop_assert_eq!(warm.status, cold.status, "warm and cold disagree on status");
        if cold.status.is_optimal() {
            prop_assert!(
                (warm.objective - cold.objective).abs() < 1e-6 * (1.0 + cold.objective.abs()),
                "warm optimum {} differs from cold optimum {}", warm.objective, cold.objective
            );
            prop_assert!(p.is_feasible(&warm.values, 1e-6));
            prop_assert!(
                warm.iterations <= cold.iterations,
                "warm start took {} iterations, cold only {}", warm.iterations, cold.iterations
            );
        }
    }

    /// Problems whose constraints contradict the bounds are reported
    /// infeasible, never 'optimal'.
    #[test]
    fn contradictions_are_infeasible(lo in 1.0f64..50.0, gap in 1.0f64..10.0) {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", VarType::Continuous, 0.0, lo);
        p.set_objective_coeff(x, 1.0);
        p.add_constraint_terms("force", &[(x, 1.0)], ConstraintOp::Ge, lo + gap);
        let sol = solve_lp(&p, None, &cfg()).unwrap();
        prop_assert_eq!(sol.status, Status::Infeasible);
    }

    /// Scaling the objective scales the optimum (and never flips the optimizer).
    #[test]
    fn objective_scaling_is_linear(scale in 0.5f64..10.0) {
        let build = |k: f64| {
            let mut p = Problem::new(Sense::Maximize);
            let x = p.add_var("x", VarType::Continuous, 0.0, 4.0);
            let y = p.add_var("y", VarType::Continuous, 0.0, 4.0);
            p.set_objective_coeff(x, 3.0 * k);
            p.set_objective_coeff(y, 1.0 * k);
            p.add_constraint_terms("cap", &[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 5.0);
            p
        };
        let base = solve_lp(&build(1.0), None, &cfg()).unwrap();
        let scaled = solve_lp(&build(scale), None, &cfg()).unwrap();
        prop_assert!((scaled.objective - scale * base.objective).abs() < 1e-6 * (1.0 + scale));
    }
}
