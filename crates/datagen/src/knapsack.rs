//! Tight-feasibility knapsack instances where greedy construction fails.
//!
//! The relation plants two populations:
//!
//! * **planted** items (every 8th row): weight ≈ 20 (±0.4), modest value —
//!   the only tuples that can land a 5-member package inside the tight
//!   98..102 weight window (5 × [19.6, 20.4] = [98, 102]);
//! * **decoy** items (the other 7/8): weight 33–70, value 45–90 — the
//!   high-value tuples a value-greedy construction grabs first, each one
//!   enough to overshoot the window.
//!
//! Any greedy pass ordered by objective value therefore builds an
//! infeasible package and must *repair* its way across the population gap
//! (swap every decoy for a planted item) — the adversarial regime of the
//! engine's `repair_to_feasibility`. The exact solver proves the instance
//! feasible, so "no package" is never an honest answer for the
//! `knapsack` queries in [`mod@crate::scenarios`].

use minidb::{ColumnType, Schema, Table, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Seed;

/// Every 8th row is a planted (window-compatible) item.
pub const PLANT_STRIDE: usize = 8;

/// Schema of the knapsack relation: id, weight/value pair, the value/weight
/// density, and the population tag (`planted` / `decoy`).
pub fn knapsack_schema() -> Schema {
    Schema::build(&[
        ("item_id", ColumnType::Int),
        ("weight", ColumnType::Float),
        ("value", ColumnType::Float),
        ("density", ColumnType::Float),
        ("kind", ColumnType::Text),
    ])
}

/// `n` knapsack items with the planted/decoy split described in the module
/// docs.
pub fn knapsack_items(n: usize, seed: Seed) -> Table {
    let mut t = Table::new("knapsack", knapsack_schema());
    for row in knapsack_rows(n, seed) {
        t.insert(row).expect("knapsack tuple matches schema");
    }
    t
}

/// [`knapsack_items`] as a lazy row stream (one row buffered at a time,
/// prefix-stable — see [`crate::recipes::recipe_rows`]).
pub fn knapsack_rows(n: usize, seed: Seed) -> impl Iterator<Item = Tuple> {
    let mut rng = StdRng::seed_from_u64(seed.0);
    (0..n).map(move |i| {
        let planted = i.is_multiple_of(PLANT_STRIDE);
        let (weight, value, kind) = if planted {
            // Five of these always sum into [98, 102].
            let w = rng.random_range(19.6..20.4);
            let v = rng.random_range(8.0..12.0);
            (w, v, "planted")
        } else {
            // Individually juicy, collectively infeasible for the window.
            let w = rng.random_range(33.0..70.0);
            let v = rng.random_range(45.0..90.0);
            (w, v, "decoy")
        };
        Tuple::new(vec![
            Value::Int(i as i64),
            Value::Float((weight * 100.0).round() / 100.0),
            Value::Float((value * 100.0).round() / 100.0),
            Value::Float((value / weight * 1000.0).round() / 1000.0),
            Value::Text(kind.to_string()),
        ])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind_of<'a>(row: &'a Tuple, s: &Schema) -> &'a Value {
        row.get_named(s, "kind").unwrap()
    }

    #[test]
    fn populations_are_separated_as_documented() {
        let t = knapsack_items(400, Seed(1));
        let s = t.schema();
        let planted_tag = Value::Text("planted".into());
        for row in t.rows() {
            let w = row.get_f64(s, "weight").unwrap();
            if kind_of(row, s) == &planted_tag {
                assert!((19.5..=20.5).contains(&w), "planted weight {w}");
            } else {
                assert!((32.5..=70.5).contains(&w), "decoy weight {w}");
            }
        }
        let planted = t
            .rows()
            .iter()
            .filter(|r| kind_of(r, s) == &planted_tag)
            .count();
        assert_eq!(planted, 400 / PLANT_STRIDE);
    }

    #[test]
    fn five_planted_items_fit_the_window_and_five_decoys_overshoot() {
        let t = knapsack_items(200, Seed(2));
        let s = t.schema();
        let planted_tag = Value::Text("planted".into());
        let planted: Vec<f64> = t
            .rows()
            .iter()
            .filter(|r| kind_of(r, s) == &planted_tag)
            .map(|r| r.get_f64(s, "weight").unwrap())
            .collect();
        let any_five: f64 = planted.iter().take(5).sum();
        assert!((98.0..=102.0).contains(&any_five), "planted sum {any_five}");
        let mut decoys: Vec<f64> = t
            .rows()
            .iter()
            .filter(|r| kind_of(r, s) != &planted_tag)
            .map(|r| r.get_f64(s, "weight").unwrap())
            .collect();
        decoys.sort_by(f64::total_cmp);
        let lightest_five: f64 = decoys.iter().take(5).sum();
        assert!(lightest_five > 102.0, "decoy sum {lightest_five}");
    }
}
