//! High-cardinality package instances: packages with ~10³ members.
//!
//! Every scenario before this one asked for packages of 3–10 tuples; the
//! paper's procurement workloads routinely select *thousands* of rows under
//! a budget. This family models a bulk purchase order: each row is an
//! order line with a `unit_cost` (uniform 1–3), an independent `utility`
//! (uniform 0.5–10) and a categorical `supplier`. The gauntlet query asks
//! for exactly 1 000 lines under a total-cost budget while maximising
//! utility — a shape whose LP relaxation is nearly integral (cost and
//! utility are independent) but whose *package size* stresses delta
//! evaluation, repair loops and local-search neighbourhood scans.

use minidb::{ColumnType, Schema, Table, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Seed;

const SUPPLIERS: [&str; 8] = [
    "acme", "globex", "initech", "umbrella", "stark", "wayne", "tyrell", "hooli",
];

/// Schema of the bulk-order relation.
pub fn bulk_schema() -> Schema {
    Schema::build(&[
        ("line_id", ColumnType::Int),
        ("unit_cost", ColumnType::Float),
        ("utility", ColumnType::Float),
        ("lead_days", ColumnType::Float),
        ("supplier", ColumnType::Text),
    ])
}

/// `n` bulk order lines (see module docs for the distributions).
pub fn bulk_orders(n: usize, seed: Seed) -> Table {
    let mut t = Table::new("orders", bulk_schema());
    for row in bulk_rows(n, seed) {
        t.insert(row).expect("bulk tuple matches schema");
    }
    t
}

/// [`bulk_orders`] as a lazy, prefix-stable row stream.
pub fn bulk_rows(n: usize, seed: Seed) -> impl Iterator<Item = Tuple> {
    let mut rng = StdRng::seed_from_u64(seed.0);
    (0..n).map(move |i| {
        let cost = rng.random_range(1.0..3.0);
        let utility = rng.random_range(0.5..10.0);
        let lead = rng.random_range(1.0..30.0);
        let supplier = SUPPLIERS[rng.random_range(0..SUPPLIERS.len())];
        Tuple::new(vec![
            Value::Int(i as i64),
            Value::Float((cost * 100.0).round() / 100.0),
            Value::Float((utility * 100.0).round() / 100.0),
            Value::Float(lead.round()),
            Value::Text(supplier.to_string()),
        ])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_and_utilities_stay_in_their_documented_ranges() {
        let t = bulk_orders(500, Seed(3));
        let s = t.schema();
        for row in t.rows() {
            let c = row.get_f64(s, "unit_cost").unwrap();
            let u = row.get_f64(s, "utility").unwrap();
            assert!((1.0..=3.0).contains(&c), "cost {c}");
            assert!((0.5..=10.0).contains(&u), "utility {u}");
        }
    }

    #[test]
    fn a_thousand_cheapest_lines_fit_a_2300_budget_at_2000_rows() {
        // The gauntlet query (COUNT = 1000, SUM(unit_cost) <= 2300) must be
        // feasible at every gauntlet size; sizes are prefix-stable so the
        // smallest size is the binding check.
        let t = bulk_orders(2000, Seed(20140901));
        let s = t.schema();
        let mut costs: Vec<f64> = t
            .rows()
            .iter()
            .map(|r| r.get_f64(s, "unit_cost").unwrap())
            .collect();
        costs.sort_by(f64::total_cmp);
        let cheapest_1000: f64 = costs.iter().take(1000).sum();
        assert!(
            cheapest_1000 <= 2300.0,
            "cheapest 1000 cost {cheapest_1000}"
        );
    }
}
