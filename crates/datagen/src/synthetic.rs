//! Generic numeric tables for micro-benchmarks and property tests.

use minidb::{ColumnType, Schema, Table, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Seed;

/// Schema of the generic benchmark tables: an id plus three numeric
/// attributes (`w`, `v`, `u`) usable as weight / value / auxiliary columns.
pub fn synthetic_schema() -> Schema {
    Schema::build(&[
        ("id", ColumnType::Int),
        ("w", ColumnType::Float),
        ("v", ColumnType::Float),
        ("u", ColumnType::Float),
    ])
}

/// `n` rows with `w ~ U(w_min, w_max)`, `v ~ U(0, 100)`, `u ~ U(0, 1)`.
pub fn uniform_table(name: &str, n: usize, w_min: f64, w_max: f64, seed: Seed) -> Table {
    let mut t = Table::new(name, synthetic_schema());
    for row in uniform_rows(n, w_min, w_max, seed) {
        t.insert(row).expect("synthetic tuple matches schema");
    }
    t
}

/// [`uniform_table`] as a lazy row stream (one row buffered at a time,
/// prefix-stable — see [`crate::recipes::recipe_rows`]).
pub fn uniform_rows(n: usize, w_min: f64, w_max: f64, seed: Seed) -> impl Iterator<Item = Tuple> {
    assert!(w_max > w_min, "w_max must exceed w_min");
    let mut rng = StdRng::seed_from_u64(seed.0);
    (0..n).map(move |i| {
        Tuple::new(vec![
            Value::Int(i as i64),
            Value::Float(rng.random_range(w_min..w_max)),
            Value::Float(rng.random_range(0.0..100.0)),
            Value::Float(rng.random_range(0.0..1.0)),
        ])
    })
}

/// `n` rows whose `w` follows an approximate Zipf(α) distribution over
/// `[w_min, w_max]` — a handful of very heavy tuples and a long light tail,
/// which stresses the cardinality-pruning bounds (MIN/MAX are extreme).
pub fn zipf_table(name: &str, n: usize, alpha: f64, w_min: f64, w_max: f64, seed: Seed) -> Table {
    let mut t = Table::new(name, synthetic_schema());
    for row in zipf_rows(n, alpha, w_min, w_max, seed) {
        t.insert(row).expect("synthetic tuple matches schema");
    }
    t
}

/// [`zipf_table`] as a lazy row stream (one row buffered at a time,
/// prefix-stable — see [`crate::recipes::recipe_rows`]).
pub fn zipf_rows(
    n: usize,
    alpha: f64,
    w_min: f64,
    w_max: f64,
    seed: Seed,
) -> impl Iterator<Item = Tuple> {
    assert!(alpha > 0.0, "alpha must be positive");
    assert!(w_max > w_min, "w_max must exceed w_min");
    let mut rng = StdRng::seed_from_u64(seed.0);
    (0..n).map(move |i| {
        // Power-law skew: raising a uniform sample to the (1 + α) power packs
        // most of the mass near `w_min` and leaves a heavy tail towards
        // `w_max`, which is the shape that stresses MIN/MAX-based pruning.
        let u: f64 = rng.random_range(0.0_f64..1.0).max(1e-12);
        let w = w_min + (w_max - w_min) * u.powf(1.0 + alpha);
        Tuple::new(vec![
            Value::Int(i as i64),
            Value::Float(w),
            Value::Float(rng.random_range(0.0..100.0)),
            Value::Float(rng.random_range(0.0..1.0)),
        ])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::stats::TableStats;

    #[test]
    fn uniform_stays_within_bounds() {
        let t = uniform_table("t", 500, 10.0, 20.0, Seed(1));
        let stats = TableStats::of_table(&t);
        let w = stats.column("w").unwrap();
        assert!(w.min >= 10.0 && w.max <= 20.0);
        assert_eq!(t.len(), 500);
    }

    #[test]
    fn zipf_is_skewed_towards_the_light_end() {
        let t = zipf_table("t", 2000, 1.2, 1.0, 1000.0, Seed(2));
        let s = t.schema();
        let below_mid = t
            .rows()
            .iter()
            .filter(|r| r.get_f64(s, "w").unwrap() < 500.0)
            .count();
        assert!(
            below_mid > 1200,
            "zipf table should be skewed, got {below_mid}/2000 below midpoint"
        );
    }

    #[test]
    #[should_panic(expected = "w_max must exceed w_min")]
    fn invalid_bounds_panic() {
        uniform_table("t", 1, 5.0, 5.0, Seed(1));
    }
}
