//! Synthetic recipe/meal dataset (the demo's meal-planner workload).

use minidb::{ColumnType, Schema, Table, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Seed;

const COURSES: &[&str] = &["breakfast", "lunch", "dinner", "snack", "dessert"];
const CUISINES: &[&str] = &[
    "italian", "mexican", "indian", "japanese", "greek", "american", "thai",
];
const BASES: &[&str] = &[
    "oatmeal",
    "omelette",
    "pancakes",
    "granola",
    "smoothie",
    "salad",
    "soup",
    "sandwich",
    "burrito",
    "pasta",
    "risotto",
    "curry",
    "stir fry",
    "tacos",
    "pizza",
    "burger",
    "steak",
    "salmon",
    "tofu bowl",
    "chili",
    "lasagna",
    "paella",
    "ramen",
    "poke bowl",
    "quiche",
    "stew",
    "kebab",
    "falafel wrap",
    "sushi roll",
    "noodle soup",
    "fried rice",
    "grilled chicken",
    "casserole",
    "frittata",
    "gnocchi",
];
const STYLES: &[&str] = &[
    "classic",
    "spicy",
    "creamy",
    "light",
    "hearty",
    "smoky",
    "herbed",
    "roasted",
    "grilled",
    "baked",
    "slow-cooked",
    "zesty",
    "garlic",
    "honey",
    "lemon",
    "peppered",
];

/// The recipe schema used throughout the examples and benchmarks.
///
/// Columns mirror the nutrition attributes visible in the paper's Figure 1
/// screenshot (calories, protein, fats, carbs, ...) plus the gluten flag used
/// by the running example.
pub fn recipe_schema() -> Schema {
    Schema::build(&[
        ("recipe_id", ColumnType::Int),
        ("name", ColumnType::Text),
        ("course", ColumnType::Text),
        ("cuisine", ColumnType::Text),
        ("calories", ColumnType::Float),
        ("protein", ColumnType::Float),
        ("fat", ColumnType::Float),
        ("carbs", ColumnType::Float),
        ("sugar", ColumnType::Float),
        ("sodium", ColumnType::Float),
        ("fiber", ColumnType::Float),
        ("gluten", ColumnType::Text),
        ("vegetarian", ColumnType::Bool),
        ("prep_minutes", ColumnType::Int),
        ("price", ColumnType::Float),
        ("rating", ColumnType::Float),
    ])
}

/// Generates `n` synthetic recipes.
///
/// Calorie counts are drawn so that three-meal day plans in the
/// 2 000–2 500 kcal window (the paper's example) are feasible but not
/// trivial: most meals fall between 150 and 1 100 kcal with a mean around
/// 550. Macros (protein/fat/carbs) are correlated with calories so that
/// "maximize protein subject to a calorie budget" has meaningful structure.
pub fn recipes(n: usize, seed: Seed) -> Table {
    let mut table = Table::new("recipes", recipe_schema());
    for row in recipe_rows(n, seed) {
        table
            .insert(row)
            .expect("generated tuple matches the recipe schema");
    }
    table
}

/// [`recipes`] as a lazy row stream: yields the same `n` tuples one at a
/// time, so a consumer can fill a table (or feed a columnar build)
/// chunk-at-a-time without a second whole-relation buffer in flight.
/// Generation is prefix-stable — the first `k` rows are identical for every
/// `n >= k` under the same seed.
pub fn recipe_rows(n: usize, seed: Seed) -> impl Iterator<Item = Tuple> {
    let mut rng = StdRng::seed_from_u64(seed.0);
    (0..n).map(move |i| {
        let base = BASES[rng.random_range(0..BASES.len())];
        let style = STYLES[rng.random_range(0..STYLES.len())];
        let course = COURSES[rng.random_range(0..COURSES.len())];
        let cuisine = CUISINES[rng.random_range(0..CUISINES.len())];
        let name = format!("{style} {base} #{i}");

        // Calories: log-normal-ish mixture by course.
        let base_cal: f64 = match course {
            "breakfast" => 420.0,
            "lunch" => 620.0,
            "dinner" => 760.0,
            "snack" => 220.0,
            _ => 330.0,
        };
        let spread: f64 = rng.random_range(-0.55..0.75);
        let calories = (base_cal * (1.0 + spread)).clamp(90.0, 1400.0);

        // Protein fraction between 8% and 40% of calories (4 kcal per gram).
        let protein_frac = rng.random_range(0.08..0.40);
        let protein = (calories * protein_frac / 4.0).round();
        // Fat fraction between 15% and 45% (9 kcal per gram).
        let fat_frac = rng.random_range(0.15..0.45);
        let fat = (calories * fat_frac / 9.0).round();
        // Remaining calories to carbs (4 kcal per gram).
        let carbs = ((calories * (1.0 - protein_frac - fat_frac)).max(0.0) / 4.0).round();
        let sugar = (carbs * rng.random_range(0.05..0.55)).round();
        let sodium = rng.random_range(40.0..1400.0_f64).round();
        let fiber = rng.random_range(0.0..14.0_f64).round();
        let gluten = if rng.random_range(0.0..1.0) < 0.42 {
            "free"
        } else {
            "full"
        };
        let vegetarian = rng.random_range(0.0..1.0) < 0.35;
        let prep_minutes = rng.random_range(5..90_i64);
        let price = (rng.random_range(1.5..18.0_f64) * 100.0).round() / 100.0;
        let rating = (rng.random_range(1.0..5.0_f64) * 10.0).round() / 10.0;

        Tuple::new(vec![
            Value::Int(i as i64),
            Value::Text(name),
            Value::Text(course.to_string()),
            Value::Text(cuisine.to_string()),
            Value::Float(calories.round()),
            Value::Float(protein),
            Value::Float(fat),
            Value::Float(carbs),
            Value::Float(sugar),
            Value::Float(sodium),
            Value::Float(fiber),
            Value::Text(gluten.to_string()),
            Value::Bool(vegetarian),
            Value::Int(prep_minutes),
            Value::Float(price),
            Value::Float(rating),
        ])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::stats::TableStats;

    #[test]
    fn generates_requested_row_count_with_full_schema() {
        let t = recipes(250, Seed(1));
        assert_eq!(t.len(), 250);
        assert_eq!(t.schema().arity(), recipe_schema().arity());
    }

    #[test]
    fn calorie_range_supports_the_paper_example() {
        // The running example needs 3 gluten-free meals totalling 2000-2500
        // kcal; verify the marginals make that feasible.
        let t = recipes(1000, Seed(2));
        let stats = TableStats::of_table(&t);
        let cal = stats.column("calories").unwrap();
        assert!(cal.min >= 90.0);
        assert!(cal.max <= 1400.0);
        assert!(
            cal.mean > 350.0 && cal.mean < 750.0,
            "mean was {}",
            cal.mean
        );
        let gluten_free = t
            .rows()
            .iter()
            .filter(|r| r.values()[11] == Value::Text("free".into()))
            .count();
        assert!(
            gluten_free > 250,
            "only {gluten_free} gluten-free recipes in 1000"
        );
    }

    #[test]
    fn macros_are_consistent_with_calories() {
        let t = recipes(200, Seed(3));
        let s = t.schema();
        for row in t.rows() {
            let cal = row.get_f64(s, "calories").unwrap();
            let protein = row.get_f64(s, "protein").unwrap();
            let fat = row.get_f64(s, "fat").unwrap();
            let carbs = row.get_f64(s, "carbs").unwrap();
            let reconstructed = protein * 4.0 + fat * 9.0 + carbs * 4.0;
            assert!(
                (reconstructed - cal).abs() < 0.2 * cal + 20.0,
                "macros ({reconstructed}) inconsistent with calories ({cal})"
            );
        }
    }
}
