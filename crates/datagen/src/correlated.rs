//! Correlated and anti-correlated attribute pairs.
//!
//! The classic hard-knapsack literature (Pisinger) shows that *strongly
//! correlated* instances — where an item's payoff is proportional to its
//! cost plus a small constant — defeat greedy density ordering and widen
//! branch-and-bound trees: every item has nearly the same density, so LP
//! bounds are uninformative and ties abound. This family plants both
//! regimes in one relation:
//!
//! * `payoff_corr` ≈ `cost × U(0.9, 1.1)` — strongly correlated; maximising
//!   it under a cost budget is the adversarial case;
//! * `payoff_anti` ≈ `110 − cost` (±5) — anti-correlated; cheap items are
//!   the best items, so greedy is near-optimal and the pair acts as the
//!   control arm.
//!
//! Costs are uniform on (10, 100); `grade` buckets rows into quartiles by
//! cost for FILTERed aggregates.

use minidb::{ColumnType, Schema, Table, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Seed;

/// Schema of the assets relation.
pub fn assets_schema() -> Schema {
    Schema::build(&[
        ("asset_id", ColumnType::Int),
        ("cost", ColumnType::Float),
        ("payoff_corr", ColumnType::Float),
        ("payoff_anti", ColumnType::Float),
        ("grade", ColumnType::Text),
    ])
}

/// `n` assets with the correlated/anti-correlated payoff pair.
pub fn assets(n: usize, seed: Seed) -> Table {
    let mut t = Table::new("assets", assets_schema());
    for row in asset_rows(n, seed) {
        t.insert(row).expect("asset tuple matches schema");
    }
    t
}

/// [`assets`] as a lazy, prefix-stable row stream.
pub fn asset_rows(n: usize, seed: Seed) -> impl Iterator<Item = Tuple> {
    let mut rng = StdRng::seed_from_u64(seed.0);
    (0..n).map(move |i| {
        let cost = rng.random_range(10.0..100.0);
        let corr = cost * rng.random_range(0.9..1.1);
        let anti = 110.0 - cost + rng.random_range(-5.0..5.0);
        let grade = match cost {
            c if c < 32.5 => "a",
            c if c < 55.0 => "b",
            c if c < 77.5 => "c",
            _ => "d",
        };
        Tuple::new(vec![
            Value::Int(i as i64),
            Value::Float((cost * 100.0).round() / 100.0),
            Value::Float((corr * 100.0).round() / 100.0),
            Value::Float((anti * 100.0).round() / 100.0),
            Value::Text(grade.to_string()),
        ])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payoffs_track_and_oppose_cost_as_documented() {
        let t = assets(400, Seed(6));
        let s = t.schema();
        for row in t.rows() {
            let cost = row.get_f64(s, "cost").unwrap();
            let corr = row.get_f64(s, "payoff_corr").unwrap();
            let anti = row.get_f64(s, "payoff_anti").unwrap();
            assert!(
                corr >= cost * 0.9 - 0.01 && corr <= cost * 1.1 + 0.01,
                "corr {corr} vs cost {cost}"
            );
            assert!(
                (anti - (110.0 - cost)).abs() <= 5.01,
                "anti {anti} vs cost {cost}"
            );
        }
    }

    #[test]
    fn densities_cluster_near_one_in_the_correlated_arm() {
        // Near-constant value/weight density is what makes the instance hard.
        let t = assets(400, Seed(7));
        let s = t.schema();
        for row in t.rows() {
            let d = row.get_f64(s, "payoff_corr").unwrap() / row.get_f64(s, "cost").unwrap();
            assert!((0.89..=1.11).contains(&d), "density {d}");
        }
    }
}
