//! Synthetic stock dataset (the investment-portfolio scenario).

use minidb::{ColumnType, Schema, Table, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Seed;

const SECTORS: &[&str] = &[
    "technology",
    "healthcare",
    "energy",
    "finance",
    "consumer",
    "industrial",
    "utilities",
    "materials",
];
const HORIZONS: &[&str] = &["short", "long"];

/// Stock schema: one row is a purchasable lot of a stock option.
pub fn stock_schema() -> Schema {
    Schema::build(&[
        ("lot_id", ColumnType::Int),
        ("ticker", ColumnType::Text),
        ("sector", ColumnType::Text),
        ("horizon", ColumnType::Text),
        ("price", ColumnType::Float),
        ("expected_return", ColumnType::Float),
        ("risk", ColumnType::Float),
        ("dividend_yield", ColumnType::Float),
    ])
}

/// Generates `n` stock lots.
///
/// Prices are drawn so that a $50K budget (the intro scenario) buys on the
/// order of 10–40 lots; roughly 30% of lots are technology so the "at least
/// 30% in technology" constraint is binding but satisfiable; expected return
/// is positively correlated with risk so the optimizer has a real trade-off.
pub fn stocks(n: usize, seed: Seed) -> Table {
    let mut t = Table::new("stocks", stock_schema());
    for row in stock_rows(n, seed) {
        t.insert(row).expect("stock tuple matches schema");
    }
    t
}

/// [`stocks`] as a lazy row stream (see [`crate::recipes::recipe_rows`] for
/// the streaming contract: one row buffered at a time, prefix-stable).
pub fn stock_rows(n: usize, seed: Seed) -> impl Iterator<Item = Tuple> {
    let mut rng = StdRng::seed_from_u64(seed.0);
    (0..n).map(move |i| {
        let sector = if rng.random_range(0.0..1.0) < 0.30 {
            "technology"
        } else {
            SECTORS[rng.random_range(1..SECTORS.len())]
        };
        let horizon = HORIZONS[rng.random_range(0..HORIZONS.len())];
        let ticker: String = (0..4)
            .map(|_| (b'A' + rng.random_range(0..26) as u8) as char)
            .collect();
        let price = (rng.random_range(800.0..6000.0_f64)).round();
        let risk = rng.random_range(0.05..0.6_f64);
        // Expected annual return in dollars: correlated with risk and price.
        let expected_return = (price * (0.02 + risk * rng.random_range(0.1..0.4))).round();
        let dividend_yield = (rng.random_range(0.0..0.05_f64) * 1000.0).round() / 1000.0;
        Tuple::new(vec![
            Value::Int(i as i64),
            Value::Text(format!("{ticker}-{i}")),
            Value::Text(sector.to_string()),
            Value::Text(horizon.to_string()),
            Value::Float(price),
            Value::Float(expected_return),
            Value::Float((risk * 100.0).round() / 100.0),
            Value::Float(dividend_yield),
        ])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::stats::TableStats;

    #[test]
    fn size_and_schema() {
        let t = stocks(300, Seed(1));
        assert_eq!(t.len(), 300);
        assert_eq!(t.schema().arity(), stock_schema().arity());
    }

    #[test]
    fn tech_fraction_supports_the_30_percent_constraint() {
        let t = stocks(1000, Seed(2));
        let tech = t
            .rows()
            .iter()
            .filter(|r| r.values()[2] == Value::Text("technology".into()))
            .count();
        assert!(tech > 200 && tech < 450, "tech lots: {tech}");
    }

    #[test]
    fn budget_buys_a_nontrivial_portfolio() {
        let t = stocks(500, Seed(3));
        let stats = TableStats::of_table(&t);
        let price = stats.column("price").unwrap();
        assert!(price.min >= 800.0);
        assert!(price.max <= 6000.0);
        // $50K buys at least ~8 of the most expensive lots.
        assert!(50_000.0 / price.max >= 8.0);
    }

    #[test]
    fn return_is_positive_and_bounded_by_price() {
        let t = stocks(200, Seed(4));
        let s = t.schema();
        for row in t.rows() {
            let price = row.get_f64(s, "price").unwrap();
            let ret = row.get_f64(s, "expected_return").unwrap();
            assert!(ret > 0.0);
            assert!(ret < price * 0.3);
        }
    }
}
