//! TPC-H-lite `lineitem`: the production-scale table of the gauntlet.
//!
//! A deliberately simplified cousin of TPC-H's `lineitem` with the columns
//! package queries actually touch: quantity (1–50), extended price
//! (quantity × a unit price of 100–2 000), discount (0–0.10),
//! tax (0–0.08), a return flag (`A`/`N`/`R`, roughly TPC-H's mix) and a
//! ship mode. Generation is a single prefix-stable stream, so the
//! 10⁵-row CI size and the opt-in 10⁶–10⁷ sizes share every leading row —
//! results at one scale stay comparable with the next.
//!
//! This family is where out-of-core behaviour and view-build parallelism
//! matter: at 10⁶ rows a three-term query materialises ~24 MB of term
//! columns, crossing the default column-memory budget into the paged
//! store.

use minidb::{ColumnType, Schema, Table, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Seed;

const SHIP_MODES: [&str; 7] = ["air", "air_reg", "fob", "mail", "rail", "ship", "truck"];

/// Schema of the lineitem relation.
pub fn lineitem_schema() -> Schema {
    Schema::build(&[
        ("l_linenumber", ColumnType::Int),
        ("l_quantity", ColumnType::Float),
        ("l_extendedprice", ColumnType::Float),
        ("l_discount", ColumnType::Float),
        ("l_tax", ColumnType::Float),
        ("l_returnflag", ColumnType::Text),
        ("l_shipmode", ColumnType::Text),
    ])
}

/// `n` line items (see module docs for the distributions).
pub fn lineitem(n: usize, seed: Seed) -> Table {
    let mut t = Table::new("lineitem", lineitem_schema());
    for row in lineitem_rows(n, seed) {
        t.insert(row).expect("lineitem tuple matches schema");
    }
    t
}

/// [`lineitem`] as a lazy, prefix-stable row stream.
pub fn lineitem_rows(n: usize, seed: Seed) -> impl Iterator<Item = Tuple> {
    let mut rng = StdRng::seed_from_u64(seed.0);
    (0..n).map(move |i| {
        let quantity = rng.random_range(1..=50) as f64;
        let unit_price = rng.random_range(100.0..2000.0);
        let discount = rng.random_range(0..=10) as f64 / 100.0;
        let tax = rng.random_range(0..=8) as f64 / 100.0;
        // Roughly TPC-H's flag mix: half 'N', the rest split 'A'/'R'.
        let flag = match rng.random_range(0..4u32) {
            0 => "A",
            1 => "R",
            _ => "N",
        };
        let mode = SHIP_MODES[rng.random_range(0..SHIP_MODES.len())];
        Tuple::new(vec![
            Value::Int(i as i64),
            Value::Float(quantity),
            Value::Float((quantity * unit_price * 100.0).round() / 100.0),
            Value::Float(discount),
            Value::Float(tax),
            Value::Text(flag.to_string()),
            Value::Text(mode.to_string()),
        ])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantities_prices_and_rates_stay_in_tpch_ranges() {
        let t = lineitem(600, Seed(8));
        let s = t.schema();
        for row in t.rows() {
            let q = row.get_f64(s, "l_quantity").unwrap();
            let p = row.get_f64(s, "l_extendedprice").unwrap();
            let d = row.get_f64(s, "l_discount").unwrap();
            let tax = row.get_f64(s, "l_tax").unwrap();
            assert!(
                (1.0..=50.0).contains(&q) && q.fract() == 0.0,
                "quantity {q}"
            );
            assert!((100.0..=50.0 * 2000.0).contains(&p), "price {p}");
            assert!((0.0..=0.10).contains(&d), "discount {d}");
            assert!((0.0..=0.08).contains(&tax), "tax {tax}");
        }
    }

    #[test]
    fn return_flags_cover_all_three_classes() {
        let t = lineitem(600, Seed(9));
        let s = t.schema();
        for flag in ["A", "N", "R"] {
            let tag = Value::Text(flag.into());
            assert!(
                t.rows()
                    .iter()
                    .any(|r| r.get_named(s, "l_returnflag").unwrap() == &tag),
                "no rows flagged {flag}"
            );
        }
    }
}
