//! `datagen` — seeded synthetic workload generators.
//!
//! The PackageBuilder demo runs on "a rich recipe data set scrapped from
//! online recipe and nutrition websites" plus the travel and investment
//! scenarios of the introduction. Those datasets are not redistributable, so
//! this crate generates synthetic relations with the same schemas and
//! realistic value ranges. All generators are deterministic given a
//! [`Seed`], which keeps benchmarks and tests reproducible.

pub mod bulk;
pub mod correlated;
pub mod knapsack;
pub mod lineitem;
pub mod metrics;
pub mod recipes;
pub mod scenarios;
pub mod stocks;
pub mod synthetic;
pub mod travel;
pub mod wide;

pub use bulk::{bulk_orders, bulk_rows};
pub use correlated::{asset_rows, assets};
pub use knapsack::{knapsack_items, knapsack_rows};
pub use lineitem::{lineitem, lineitem_rows};
pub use metrics::{metric_names, metrics_rows, metrics_table, METRIC_COLUMNS};
pub use recipes::{recipe_rows, recipes};
pub use scenarios::{scenario, scenarios, QueryParams, Scenario, ScenarioQuery};
pub use stocks::{stock_rows, stocks};
pub use synthetic::{uniform_rows, uniform_table, zipf_rows, zipf_table};
pub use travel::{
    car_rows, cars, flight_rows, flights, hotel_rows, hotels, travel_mix, travel_mix_rows,
    travel_option_rows, travel_options,
};
pub use wide::{wide_names, wide_rows, wide_table, WIDE_COLUMNS, WIDE_GROUPS};

use minidb::Catalog;

/// A reproducibility seed shared by every generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seed(pub u64);

impl Default for Seed {
    fn default() -> Self {
        Seed(42)
    }
}

impl Seed {
    /// Derives a sub-seed so different relations generated from the same
    /// top-level seed are decorrelated.
    pub fn derive(&self, salt: u64) -> Seed {
        // SplitMix64 step.
        let mut z = self
            .0
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Seed(z ^ (z >> 31))
    }
}

/// Builds a catalog holding all the demo relations at their default sizes:
/// `recipes` (5 000 rows), `flights`, `hotels`, `cars`, `travel_options`,
/// and `stocks`.
pub fn standard_catalog(seed: Seed) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register(recipes(5_000, seed.derive(1)));
    catalog.register(flights(800, seed.derive(2)));
    catalog.register(hotels(600, seed.derive(3)));
    catalog.register(cars(200, seed.derive(4)));
    catalog.register(travel_options(800, 600, 200, seed.derive(5)));
    catalog.register(stocks(1_200, seed.derive(6)));
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_contains_all_relations() {
        let c = standard_catalog(Seed::default());
        for name in [
            "recipes",
            "flights",
            "hotels",
            "cars",
            "travel_options",
            "stocks",
        ] {
            assert!(c.table(name).is_some(), "missing table {name}");
            assert!(!c.table(name).unwrap().is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = recipes(50, Seed(7));
        let b = recipes(50, Seed(7));
        let c = recipes(50, Seed(8));
        assert_eq!(a.rows(), b.rows());
        assert_ne!(a.rows(), c.rows());
    }

    #[test]
    fn derive_changes_the_seed() {
        let s = Seed(1);
        assert_ne!(s.derive(1), s.derive(2));
        assert_ne!(s.derive(1).0, 1);
    }

    #[test]
    fn row_streams_match_their_collected_tables() {
        // Every scenario's lazy stream must yield exactly the rows its
        // table constructor stores — the streaming path is the same
        // generator, not a reimplementation that could drift.
        let s = Seed(9);
        assert_eq!(
            recipe_rows(40, s).collect::<Vec<_>>().as_slice(),
            recipes(40, s).rows()
        );
        assert_eq!(
            stock_rows(40, s).collect::<Vec<_>>().as_slice(),
            stocks(40, s).rows()
        );
        assert_eq!(
            travel_option_rows(10, 12, 14, s)
                .collect::<Vec<_>>()
                .as_slice(),
            travel_options(10, 12, 14, s).rows()
        );
        assert_eq!(
            uniform_rows(40, 1.0, 2.0, s).collect::<Vec<_>>().as_slice(),
            uniform_table("t", 40, 1.0, 2.0, s).rows()
        );
        assert_eq!(
            zipf_rows(40, 1.1, 1.0, 9.0, s)
                .collect::<Vec<_>>()
                .as_slice(),
            zipf_table("t", 40, 1.1, 1.0, 9.0, s).rows()
        );
        assert_eq!(
            knapsack_rows(40, s).collect::<Vec<_>>().as_slice(),
            knapsack_items(40, s).rows()
        );
        assert_eq!(
            bulk_rows(40, s).collect::<Vec<_>>().as_slice(),
            bulk_orders(40, s).rows()
        );
        assert_eq!(
            metrics_rows(40, s).collect::<Vec<_>>().as_slice(),
            metrics_table(40, s).rows()
        );
        assert_eq!(
            wide_rows(40, s).collect::<Vec<_>>().as_slice(),
            wide_table(40, s).rows()
        );
        assert_eq!(
            asset_rows(40, s).collect::<Vec<_>>().as_slice(),
            assets(40, s).rows()
        );
        assert_eq!(
            lineitem_rows(40, s).collect::<Vec<_>>().as_slice(),
            lineitem(40, s).rows()
        );
        assert_eq!(
            travel_mix_rows(40, s).collect::<Vec<_>>().as_slice(),
            travel_mix(40, s).rows()
        );
    }

    #[test]
    fn row_streams_are_prefix_stable() {
        // Chunked consumers rely on the first k rows being independent of
        // the requested total, so a driver can grow n without reshuffling
        // everything already generated. (The registry test in
        // `scenarios` re-checks this via every registered builder.)
        let s = Seed(10);
        let prefix: Vec<_> = recipe_rows(1000, s).take(25).collect();
        assert_eq!(prefix, recipe_rows(25, s).collect::<Vec<_>>());
        let prefix: Vec<_> = stock_rows(1000, s).take(25).collect();
        assert_eq!(prefix, stock_rows(25, s).collect::<Vec<_>>());
        let prefix: Vec<_> = knapsack_rows(1000, s).take(25).collect();
        assert_eq!(prefix, knapsack_rows(25, s).collect::<Vec<_>>());
        let prefix: Vec<_> = lineitem_rows(1000, s).take(25).collect();
        assert_eq!(prefix, lineitem_rows(25, s).collect::<Vec<_>>());
    }
}
