//! `datagen` — seeded synthetic workload generators.
//!
//! The PackageBuilder demo runs on "a rich recipe data set scrapped from
//! online recipe and nutrition websites" plus the travel and investment
//! scenarios of the introduction. Those datasets are not redistributable, so
//! this crate generates synthetic relations with the same schemas and
//! realistic value ranges. All generators are deterministic given a
//! [`Seed`], which keeps benchmarks and tests reproducible.

pub mod recipes;
pub mod stocks;
pub mod synthetic;
pub mod travel;

pub use recipes::recipes;
pub use stocks::stocks;
pub use synthetic::{uniform_table, zipf_table};
pub use travel::{cars, flights, hotels, travel_options};

use minidb::Catalog;

/// A reproducibility seed shared by every generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seed(pub u64);

impl Default for Seed {
    fn default() -> Self {
        Seed(42)
    }
}

impl Seed {
    /// Derives a sub-seed so different relations generated from the same
    /// top-level seed are decorrelated.
    pub fn derive(&self, salt: u64) -> Seed {
        // SplitMix64 step.
        let mut z = self
            .0
            .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Seed(z ^ (z >> 31))
    }
}

/// Builds a catalog holding all the demo relations at their default sizes:
/// `recipes` (5 000 rows), `flights`, `hotels`, `cars`, `travel_options`,
/// and `stocks`.
pub fn standard_catalog(seed: Seed) -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register(recipes(5_000, seed.derive(1)));
    catalog.register(flights(800, seed.derive(2)));
    catalog.register(hotels(600, seed.derive(3)));
    catalog.register(cars(200, seed.derive(4)));
    catalog.register(travel_options(800, 600, 200, seed.derive(5)));
    catalog.register(stocks(1_200, seed.derive(6)));
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_contains_all_relations() {
        let c = standard_catalog(Seed::default());
        for name in [
            "recipes",
            "flights",
            "hotels",
            "cars",
            "travel_options",
            "stocks",
        ] {
            assert!(c.table(name).is_some(), "missing table {name}");
            assert!(!c.table(name).unwrap().is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = recipes(50, Seed(7));
        let b = recipes(50, Seed(7));
        let c = recipes(50, Seed(8));
        assert_eq!(a.rows(), b.rows());
        assert_ne!(a.rows(), c.rows());
    }

    #[test]
    fn derive_changes_the_seed() {
        let s = Seed(1);
        assert_ne!(s.derive(1), s.derive(2));
        assert_ne!(s.derive(1).0, 1);
    }
}
