//! Synthetic travel datasets (the vacation-planner scenario).

use minidb::{ColumnType, Schema, Table, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Seed;

const DESTINATIONS: &[&str] = &[
    "Cancun",
    "Honolulu",
    "Phuket",
    "Bali",
    "Malé",
    "Fiji",
    "Barbados",
    "Aruba",
    "Mauritius",
    "Tahiti",
];
const AIRLINES: &[&str] = &[
    "AeroSol",
    "PacificJet",
    "TradeWinds",
    "IslandAir",
    "BlueLagoon",
];
const HOTEL_BRANDS: &[&str] = &[
    "Palm", "Coral", "Lagoon", "Breeze", "Sunset", "Tide", "Reef",
];
const CAR_CLASSES: &[&str] = &["compact", "sedan", "suv", "convertible"];

/// Flight schema.
pub fn flight_schema() -> Schema {
    Schema::build(&[
        ("flight_id", ColumnType::Int),
        ("airline", ColumnType::Text),
        ("destination", ColumnType::Text),
        ("price", ColumnType::Float),
        ("duration_hours", ColumnType::Float),
        ("stops", ColumnType::Int),
    ])
}

/// Hotel schema.
pub fn hotel_schema() -> Schema {
    Schema::build(&[
        ("hotel_id", ColumnType::Int),
        ("name", ColumnType::Text),
        ("destination", ColumnType::Text),
        ("price_per_night", ColumnType::Float),
        ("beach_distance_km", ColumnType::Float),
        ("stars", ColumnType::Int),
    ])
}

/// Rental-car schema.
pub fn car_schema() -> Schema {
    Schema::build(&[
        ("car_id", ColumnType::Int),
        ("class", ColumnType::Text),
        ("destination", ColumnType::Text),
        ("price_per_day", ColumnType::Float),
    ])
}

/// Unified travel-options schema used by the vacation-planner PaQL queries.
///
/// The demo paper's PaQL operates on a single base relation per package
/// query, so the vacation scenario materializes flights, hotel stays and car
/// rentals into one relation tagged by `kind`; per-kind cardinality
/// constraints are expressed with `FILTER` aggregates.
pub fn travel_option_schema() -> Schema {
    Schema::build(&[
        ("option_id", ColumnType::Int),
        ("kind", ColumnType::Text),
        ("name", ColumnType::Text),
        ("destination", ColumnType::Text),
        ("price", ColumnType::Float),
        ("beach_distance_km", ColumnType::Float),
        ("comfort", ColumnType::Float),
    ])
}

/// Generates `n` flights.
pub fn flights(n: usize, seed: Seed) -> Table {
    let mut t = Table::new("flights", flight_schema());
    for row in flight_rows(n, seed) {
        t.insert(row).expect("flight tuple matches schema");
    }
    t
}

/// [`flights`] as a lazy row stream (one row buffered at a time,
/// prefix-stable — see [`crate::recipes::recipe_rows`]).
pub fn flight_rows(n: usize, seed: Seed) -> impl Iterator<Item = Tuple> {
    let mut rng = StdRng::seed_from_u64(seed.0);
    (0..n).map(move |i| {
        let airline = AIRLINES[rng.random_range(0..AIRLINES.len())];
        let dest = DESTINATIONS[rng.random_range(0..DESTINATIONS.len())];
        let stops = rng.random_range(0..3_i64);
        let duration = rng.random_range(3.0..18.0_f64) + stops as f64 * 1.5;
        let price =
            (250.0 + duration * rng.random_range(25.0..60.0) - stops as f64 * 80.0).max(120.0);
        Tuple::new(vec![
            Value::Int(i as i64),
            Value::Text(format!("{airline} {:03}", rng.random_range(100..999))),
            Value::Text(dest.to_string()),
            Value::Float(price.round()),
            Value::Float((duration * 10.0).round() / 10.0),
            Value::Int(stops),
        ])
    })
}

/// Generates `n` hotels (price is for a whole 7-night stay).
pub fn hotels(n: usize, seed: Seed) -> Table {
    let mut t = Table::new("hotels", hotel_schema());
    for row in hotel_rows(n, seed) {
        t.insert(row).expect("hotel tuple matches schema");
    }
    t
}

/// [`hotels`] as a lazy row stream (one row buffered at a time,
/// prefix-stable — see [`crate::recipes::recipe_rows`]).
pub fn hotel_rows(n: usize, seed: Seed) -> impl Iterator<Item = Tuple> {
    let mut rng = StdRng::seed_from_u64(seed.0);
    (0..n).map(move |i| {
        let brand = HOTEL_BRANDS[rng.random_range(0..HOTEL_BRANDS.len())];
        let dest = DESTINATIONS[rng.random_range(0..DESTINATIONS.len())];
        let stars = rng.random_range(2..6_i64);
        let beach = (rng.random_range(0.0..12.0_f64) * 10.0).round() / 10.0;
        // Closer to the beach and more stars → pricier.
        let night = 45.0 + stars as f64 * 40.0 + (12.0 - beach) * 8.0 + rng.random_range(0.0..60.0);
        Tuple::new(vec![
            Value::Int(i as i64),
            Value::Text(format!("{brand} {dest} Resort #{i}")),
            Value::Text(dest.to_string()),
            Value::Float(night.round()),
            Value::Float(beach),
            Value::Int(stars),
        ])
    })
}

/// Generates `n` rental cars (price per day).
pub fn cars(n: usize, seed: Seed) -> Table {
    let mut t = Table::new("cars", car_schema());
    for row in car_rows(n, seed) {
        t.insert(row).expect("car tuple matches schema");
    }
    t
}

/// [`cars`] as a lazy row stream (one row buffered at a time,
/// prefix-stable — see [`crate::recipes::recipe_rows`]).
pub fn car_rows(n: usize, seed: Seed) -> impl Iterator<Item = Tuple> {
    let mut rng = StdRng::seed_from_u64(seed.0);
    (0..n).map(move |i| {
        let class = CAR_CLASSES[rng.random_range(0..CAR_CLASSES.len())];
        let dest = DESTINATIONS[rng.random_range(0..DESTINATIONS.len())];
        let base = match class {
            "compact" => 28.0,
            "sedan" => 42.0,
            "suv" => 65.0,
            _ => 90.0,
        };
        let price = base + rng.random_range(0.0..30.0_f64);
        Tuple::new(vec![
            Value::Int(i as i64),
            Value::Text(class.to_string()),
            Value::Text(dest.to_string()),
            Value::Float(price.round()),
        ])
    })
}

/// Generates the unified `travel_options` relation (see
/// [`travel_option_schema`]): one row per flight (round trip price), one per
/// hotel (7-night stay), one per car (7-day rental).
pub fn travel_options(n_flights: usize, n_hotels: usize, n_cars: usize, seed: Seed) -> Table {
    let mut t = Table::new("travel_options", travel_option_schema());
    for row in travel_option_rows(n_flights, n_hotels, n_cars, seed) {
        t.insert(row).expect("travel option tuple matches schema");
    }
    t
}

fn as_f64(v: &Value) -> f64 {
    match v {
        Value::Float(x) => *x,
        Value::Int(x) => *x as f64,
        _ => panic!("numeric column expected"),
    }
}

/// [`travel_options`] as a lazy row stream: flights, then hotels, then cars,
/// each derived on the fly from the corresponding base row stream, so no
/// intermediate table is materialized — at most one source row is in flight.
/// Output is identical to collecting the three base tables first.
pub fn travel_option_rows(
    n_flights: usize,
    n_hotels: usize,
    n_cars: usize,
    seed: Seed,
) -> impl Iterator<Item = Tuple> {
    let mut f = flight_rows(n_flights, seed.derive(10));
    let mut h = hotel_rows(n_hotels, seed.derive(11));
    let mut c = car_rows(n_cars, seed.derive(12));
    let mut rng = StdRng::seed_from_u64(seed.derive(13).0);
    let mut next_id = 0i64;
    std::iter::from_fn(move || {
        let row = if let Some(row) = f.next() {
            // Flight columns: [id, airline, destination, price, duration, stops].
            let stops = as_f64(&row.values()[5]);
            let comfort = (5.0 - stops) + rng.random_range(0.0..2.0);
            Tuple::new(vec![
                Value::Int(next_id),
                Value::Text("flight".into()),
                row.values()[1].clone(),
                row.values()[2].clone(),
                Value::Float(2.0 * as_f64(&row.values()[3])),
                Value::Float(0.0),
                Value::Float((comfort * 10.0).round() / 10.0),
            ])
        } else if let Some(row) = h.next() {
            // Hotel columns: [id, name, destination, price_per_night, beach, stars].
            let stars = as_f64(&row.values()[5]);
            Tuple::new(vec![
                Value::Int(next_id),
                Value::Text("hotel".into()),
                row.values()[1].clone(),
                row.values()[2].clone(),
                Value::Float(7.0 * as_f64(&row.values()[3])),
                row.values()[4].clone(),
                Value::Float(stars * 2.0),
            ])
        } else if let Some(row) = c.next() {
            // Car columns: [id, class, destination, price_per_day].
            Tuple::new(vec![
                Value::Int(next_id),
                Value::Text("car".into()),
                row.values()[1].clone(),
                row.values()[2].clone(),
                Value::Float(7.0 * as_f64(&row.values()[3])),
                Value::Float(0.0),
                Value::Float(rng.random_range(3.0..9.0_f64).round()),
            ])
        } else {
            return None;
        };
        next_id += 1;
        Some(row)
    })
}

/// A single-parameter, **prefix-stable** travel relation for the scenario
/// registry: kinds follow the fixed cycle flight, flight, hotel, hotel,
/// car, so the first `k` rows are identical for every `n ≥ k` — unlike
/// [`travel_options`], whose three segments shift when any count changes.
pub fn travel_mix(n: usize, seed: Seed) -> Table {
    let mut t = Table::new("travel_options", travel_option_schema());
    for row in travel_mix_rows(n, seed) {
        t.insert(row).expect("travel option tuple matches schema");
    }
    t
}

/// [`travel_mix`] as a lazy row stream.
pub fn travel_mix_rows(n: usize, seed: Seed) -> impl Iterator<Item = Tuple> {
    let mut f = flight_rows(n, seed.derive(10));
    let mut h = hotel_rows(n, seed.derive(11));
    let mut c = car_rows(n, seed.derive(12));
    let mut rng = StdRng::seed_from_u64(seed.derive(13).0);
    (0..n).map(move |i| match i % 5 {
        0 | 1 => {
            let row = f.next().expect("flight stream sized to n");
            let stops = as_f64(&row.values()[5]);
            let comfort = (5.0 - stops) + rng.random_range(0.0..2.0);
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::Text("flight".into()),
                row.values()[1].clone(),
                row.values()[2].clone(),
                Value::Float(2.0 * as_f64(&row.values()[3])),
                Value::Float(0.0),
                Value::Float((comfort * 10.0).round() / 10.0),
            ])
        }
        2 | 3 => {
            let row = h.next().expect("hotel stream sized to n");
            let stars = as_f64(&row.values()[5]);
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::Text("hotel".into()),
                row.values()[1].clone(),
                row.values()[2].clone(),
                Value::Float(7.0 * as_f64(&row.values()[3])),
                row.values()[4].clone(),
                Value::Float(stars * 2.0),
            ])
        }
        _ => {
            let row = c.next().expect("car stream sized to n");
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::Text("car".into()),
                row.values()[1].clone(),
                row.values()[2].clone(),
                Value::Float(7.0 * as_f64(&row.values()[3])),
                Value::Float(0.0),
                Value::Float(rng.random_range(3.0..9.0_f64).round()),
            ])
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_schemas() {
        assert_eq!(flights(10, Seed(1)).len(), 10);
        assert_eq!(hotels(10, Seed(1)).len(), 10);
        assert_eq!(cars(10, Seed(1)).len(), 10);
        let t = travel_options(5, 6, 7, Seed(1));
        assert_eq!(t.len(), 18);
        assert_eq!(t.schema().arity(), travel_option_schema().arity());
    }

    #[test]
    fn travel_options_tag_every_kind() {
        let t = travel_options(5, 6, 7, Seed(2));
        let s = t.schema();
        let kinds: Vec<String> = t
            .rows()
            .iter()
            .map(|r| r.values()[s.index_of("kind").unwrap()].to_string())
            .collect();
        assert_eq!(kinds.iter().filter(|k| *k == "flight").count(), 5);
        assert_eq!(kinds.iter().filter(|k| *k == "hotel").count(), 6);
        assert_eq!(kinds.iter().filter(|k| *k == "car").count(), 7);
    }

    #[test]
    fn budget_vacations_are_feasible() {
        // The intro scenario: flights + hotels under $2,000 combined must exist.
        let t = travel_options(200, 200, 50, Seed(3));
        let s = t.schema();
        let cheapest_flight = t
            .rows()
            .iter()
            .filter(|r| r.values()[1] == Value::Text("flight".into()))
            .map(|r| r.get_f64(s, "price").unwrap())
            .fold(f64::INFINITY, f64::min);
        let cheapest_hotel = t
            .rows()
            .iter()
            .filter(|r| r.values()[1] == Value::Text("hotel".into()))
            .map(|r| r.get_f64(s, "price").unwrap())
            .fold(f64::INFINITY, f64::min);
        assert!(
            cheapest_flight + cheapest_hotel < 2000.0,
            "cheapest combo {} should fit the $2000 budget",
            cheapest_flight + cheapest_hotel
        );
    }
}
