//! Many-constraint instances: dozens of SUM/AVG windows over one relation.
//!
//! Sixteen independent metric columns `m00`–`m15`, each uniform on (0, 10).
//! The gauntlet query pins a window on *every* column (16 SUM windows plus
//! 8 AVG windows — two dozen global constraints), which stresses:
//!
//! * the per-term bookkeeping of the columnar view (24+ term columns),
//! * the ILP translation (dozens of rows, dense coefficient matrix),
//! * `Strategy::Auto`'s linearizable route: the query *is* linearizable,
//!   so at sketch-eligible sizes Auto must decide between `SketchRefine`
//!   (whose partition quality degrades with constraint dimensionality) and
//!   the exact ILP.
//!
//! Windows are centred on the population mean so random packages of the
//! requested cardinality are comfortably feasible — the difficulty is the
//! constraint *count*, not tightness.

use minidb::{ColumnType, Schema, Table, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Seed;

/// Number of metric columns (`m00` … `m15`).
pub const METRIC_COLUMNS: usize = 16;

/// Column names `m00` … `m15`, in schema order.
pub fn metric_names() -> Vec<String> {
    (0..METRIC_COLUMNS).map(|j| format!("m{j:02}")).collect()
}

/// Schema of the metrics relation: a row id plus [`METRIC_COLUMNS`] floats.
pub fn metrics_schema() -> Schema {
    let mut cols = vec![minidb::Column::new("row_id", ColumnType::Int)];
    for name in metric_names() {
        cols.push(minidb::Column::new(&name, ColumnType::Float));
    }
    Schema::new(cols).expect("metric column names are unique")
}

/// `n` metric rows, each column independent uniform on (0, 10).
pub fn metrics_table(n: usize, seed: Seed) -> Table {
    let mut t = Table::new("metrics", metrics_schema());
    for row in metrics_rows(n, seed) {
        t.insert(row).expect("metrics tuple matches schema");
    }
    t
}

/// [`metrics_table`] as a lazy, prefix-stable row stream.
pub fn metrics_rows(n: usize, seed: Seed) -> impl Iterator<Item = Tuple> {
    let mut rng = StdRng::seed_from_u64(seed.0);
    (0..n).map(move |i| {
        let mut values = Vec::with_capacity(METRIC_COLUMNS + 1);
        values.push(Value::Int(i as i64));
        for _ in 0..METRIC_COLUMNS {
            let v: f64 = rng.random_range(0.0..10.0);
            values.push(Value::Float((v * 100.0).round() / 100.0));
        }
        Tuple::new(values)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_metric_stays_inside_its_window_support() {
        let t = metrics_table(300, Seed(4));
        let s = t.schema();
        for row in t.rows() {
            for name in metric_names() {
                let v = row.get_f64(s, &name).unwrap();
                assert!((0.0..=10.0).contains(&v), "{name} = {v}");
            }
        }
    }

    #[test]
    fn schema_has_one_id_plus_all_metric_columns() {
        let s = metrics_schema();
        assert_eq!(s.columns().len(), METRIC_COLUMNS + 1);
    }
}
