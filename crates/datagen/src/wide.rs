//! Wide-schema instances: hundreds of columns driving FILTERed aggregates.
//!
//! The relation carries a categorical `grp` column (16 groups `g00`–`g15`)
//! plus [`WIDE_COLUMNS`] numeric columns `w000`, `w001`, … each uniform on
//! (0, 100). The gauntlet query attaches a `FILTER (WHERE R.grp = 'gXX')`
//! SUM cap to *hundreds* of those columns, which stresses:
//!
//! * term-column materialisation (every FILTERed aggregate is its own
//!   dense column in the engine's `CandidateView` — 100+ term columns per
//!   query),
//! * the FILTER-aware chunk metadata behind `pruning::derive_bounds`
//!   (included min/max/sum per chunk per term),
//! * the paged column store: wide views are the first workload whose term
//!   columns outweigh the base table.
//!
//! Caps sit far above what any small package can reach, so feasibility is
//! trivial — the difficulty is schema *width*. The registry also ships an
//! intentionally unreachable FILTERed SUM target for this family, which
//! `derive_bounds` must prove infeasible before any solver runs.

use minidb::{Column, ColumnType, Schema, Table, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Seed;

/// Number of numeric columns (`w000` … ).
pub const WIDE_COLUMNS: usize = 120;

/// Number of categorical groups (`g00` … `g15`).
pub const WIDE_GROUPS: usize = 16;

/// Column names `w000` … in schema order.
pub fn wide_names() -> Vec<String> {
    (0..WIDE_COLUMNS).map(|j| format!("w{j:03}")).collect()
}

/// Schema of the wide relation: row id, group tag, [`WIDE_COLUMNS`] floats.
pub fn wide_schema() -> Schema {
    let mut cols = vec![
        Column::new("row_id", ColumnType::Int),
        Column::new("grp", ColumnType::Text),
    ];
    for name in wide_names() {
        cols.push(Column::new(name, ColumnType::Float));
    }
    Schema::new(cols).expect("wide column names are unique")
}

/// `n` wide rows; groups cycle deterministically modulo the row index so
/// every group holds ~`n / 16` rows at any prefix length.
pub fn wide_table(n: usize, seed: Seed) -> Table {
    let mut t = Table::new("wide", wide_schema());
    for row in wide_rows(n, seed) {
        t.insert(row).expect("wide tuple matches schema");
    }
    t
}

/// [`wide_table`] as a lazy, prefix-stable row stream.
pub fn wide_rows(n: usize, seed: Seed) -> impl Iterator<Item = Tuple> {
    let mut rng = StdRng::seed_from_u64(seed.0);
    (0..n).map(move |i| {
        let mut values = Vec::with_capacity(WIDE_COLUMNS + 2);
        values.push(Value::Int(i as i64));
        values.push(Value::Text(format!("g{:02}", i % WIDE_GROUPS)));
        for _ in 0..WIDE_COLUMNS {
            let v: f64 = rng.random_range(0.0..100.0);
            values.push(Value::Float((v * 10.0).round() / 10.0));
        }
        Tuple::new(values)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_cycle_and_values_stay_nonnegative() {
        let t = wide_table(64, Seed(5));
        let s = t.schema();
        for (i, row) in t.rows().iter().enumerate() {
            assert_eq!(
                row.get_named(s, "grp").unwrap(),
                &Value::Text(format!("g{:02}", i % WIDE_GROUPS))
            );
            for name in wide_names().iter().take(5) {
                let v = row.get_f64(s, name).unwrap();
                assert!((0.0..=100.0).contains(&v), "{name} = {v}");
            }
        }
    }

    #[test]
    fn schema_width_matches_the_documented_constant() {
        assert_eq!(wide_schema().columns().len(), WIDE_COLUMNS + 2);
    }
}
