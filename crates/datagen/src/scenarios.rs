//! The scenario registry: every workload family the engine is tested and
//! benchmarked against, in one enumerable table.
//!
//! Before this registry the property suites (`columnar_oracle`,
//! `determinism`, `parallel_determinism`, `paged_determinism`) each
//! hard-coded the same four scenarios; adding a family meant touching five
//! files and hoping none was forgotten. Now a family added here is
//! automatically covered by:
//!
//! * the **columnar-vs-interpreted oracle** properties (random queries via
//!   [`Scenario::random_query`] over [`Scenario::columns`]),
//! * the **determinism** suites (thread counts, paged vs resident storage,
//!   engine-instance reproducibility — seeded by [`Scenario::exact_query`]),
//! * the **gauntlet** benchmark (`harness -- gauntlet`), which runs every
//!   [`Scenario::queries`] entry at every [`Scenario::gauntlet_sizes`] size
//!   across all engine strategies and gates the result on validity,
//!   cross-thread identity and [`ScenarioQuery::max_gap`].
//!
//! # Adding a scenario
//!
//! 1. Write a generator module with a prefix-stable `*_rows` stream and a
//!    `Table` builder (see [`crate::knapsack`] for the template), plus unit
//!    tests pinning its documented distributions.
//! 2. Append a [`Scenario`] entry in [`scenarios`]: pick a small
//!    `property_n` (tens of rows — the property suites run hundreds of
//!    cases), a branching-heavy `exact_query`, and 1–2 gauntlet queries
//!    with an explicit gap threshold.
//! 3. Run `cargo test` and `cargo run --release -p pb-bench --bin harness
//!    -- gauntlet`; tune `max_gap` to the measured worst gated gap plus
//!    head-room and document any family-specific reasoning here.
//!
//! # Threshold policy
//!
//! `max_gap` bounds the relative objective gap `(oracle − got) / |oracle|`
//! for the *gated* strategies (`Auto`, `Ilp`, `Portfolio`) — the routes a
//! user lands on without opting into a heuristic. Explicitly-chosen
//! heuristics (`Greedy`, `LocalSearch`, `SketchRefine`, truncated
//! enumeration) are recorded in `BENCH_gauntlet.json` but not gated: their
//! role is visibility, not guarantees — the gauntlet measured sketch gaps
//! from 0% (anti-correlated assets) to ~40% (the group-covering wide
//! query), which is the quality-for-scale trade the paper describes, not a
//! bug. `Auto` however is gated at *every* size, so its handoff thresholds
//! must only delegate to a heuristic where that heuristic clears the
//! family threshold. Thresholds are deliberately tight where exact routes
//! stay tractable (≤ 2%) and looser where truncation is expected.

use minidb::Table;

use crate::{
    assets, bulk_orders, knapsack_items, lineitem, metric_names, metrics_table, recipes, stocks,
    travel_mix, uniform_table, wide_names, wide_table, zipf_table, Seed,
};

/// One gauntlet query for a scenario family, with its gate.
#[derive(Debug, Clone)]
pub struct ScenarioQuery {
    /// Stable identifier used in `BENCH_gauntlet.json` rows.
    pub label: &'static str,
    /// Full PaQL text (alias `R`, package `P`) against [`Scenario::relation`].
    pub text: String,
    /// Whether a feasible package exists at every gauntlet size. Queries
    /// with `false` gate the *honesty* path instead of the gap: every
    /// strategy must report "no package", never an invalid one.
    pub expect_feasible: bool,
    /// Maximum relative objective gap vs the oracle tolerated for gated
    /// strategies (see the module-level threshold policy).
    pub max_gap: f64,
}

/// One workload family: a table builder plus the query material every
/// suite needs. See the module docs for what enumerates this.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Registry key (also the `BENCH_gauntlet.json` scenario name).
    pub name: &'static str,
    /// Relation name the builder registers (the `FROM` target).
    pub relation: &'static str,
    /// One-line description for docs and reports.
    pub summary: &'static str,
    /// Builds the table at a given row count and seed. Prefix-stable: the
    /// first `k` rows are identical for every `n ≥ k` at a fixed seed.
    pub build: fn(usize, Seed) -> Table,
    /// Numeric columns the property suites may aggregate over.
    pub columns: &'static [&'static str],
    /// A categorical FILTER clause (alias `R`), if the family has one.
    pub filter: Option<&'static str>,
    /// Row count used by the property suites (small: hundreds of cases).
    pub property_n: usize,
    /// A branching-heavy query the exact core can finish at [`Self::exact_n`]
    /// rows — the seed for determinism and thread-invariance pins.
    pub exact_query: String,
    /// Row count paired with [`Self::exact_query`].
    pub exact_n: usize,
    /// Largest gauntlet size at which exact/enumeration strategies run;
    /// above it the oracle falls back to best-known-over-strategies.
    pub exact_cap: usize,
    /// The `n` grid the gauntlet sweeps (ascending; prefix-stable builds
    /// mean feasibility at the smallest size implies it at the larger).
    pub gauntlet_sizes: [usize; 3],
    /// The gauntlet query set.
    pub queries: Vec<ScenarioQuery>,
}

/// Drawn parameters for [`Scenario::random_query`]; the property suites map
/// proptest draws straight onto this.
#[derive(Debug, Clone, Copy)]
pub struct QueryParams {
    /// COUNT(*) upper bound.
    pub count: u64,
    /// Index into [`Scenario::columns`] (wraps) for the constrained column.
    pub col_a: usize,
    /// Index into [`Scenario::columns`] (wraps) for the objective column.
    pub col_b: usize,
    /// Aggregate selector: SUM / AVG / MIN / MAX (wraps).
    pub agg_pick: usize,
    /// Window lower bound.
    pub lo: f64,
    /// Window width (upper bound is `lo + width`).
    pub width: f64,
    /// Attach the scenario's FILTER clause, if it has one.
    pub use_filter: bool,
    /// REPEAT bound (`None` = no REPEAT clause).
    pub repeat: Option<u32>,
    /// MINIMIZE instead of MAXIMIZE.
    pub minimize: bool,
}

impl Scenario {
    /// Builds a random PaQL query for this family from drawn parameters —
    /// the single query template shared by every property suite.
    pub fn random_query(&self, p: &QueryParams) -> String {
        let cols = self.columns;
        let a = cols[p.col_a % cols.len()];
        let b = cols[p.col_b % cols.len()];
        let agg = ["SUM", "AVG", "MIN", "MAX"][p.agg_pick % 4];
        let repeat = p.repeat.map(|k| format!(" REPEAT {k}")).unwrap_or_default();
        let filter = match (p.use_filter, self.filter) {
            (true, Some(f)) => format!(" FILTER (WHERE {f})"),
            _ => String::new(),
        };
        let dir = if p.minimize { "MINIMIZE" } else { "MAXIMIZE" };
        format!(
            "SELECT PACKAGE(R) AS P FROM {rel} R{repeat} \
             SUCH THAT COUNT(*) <= {count} AND {agg}(P.{a}){filter} BETWEEN {lo:.2} AND {hi:.2} \
             {dir} SUM(P.{b})",
            rel = self.relation,
            count = p.count,
            lo = p.lo,
            hi = p.lo + p.width,
        )
    }
}

fn build_recipes(n: usize, seed: Seed) -> Table {
    recipes(n, seed)
}

fn build_stocks(n: usize, seed: Seed) -> Table {
    stocks(n, seed)
}

fn build_travel(n: usize, seed: Seed) -> Table {
    travel_mix(n, seed)
}

fn build_synthetic(n: usize, seed: Seed) -> Table {
    // Even seeds draw the uniform table, odd seeds the heavy-tailed Zipf —
    // the same split the property suites historically used.
    if seed.0.is_multiple_of(2) {
        uniform_table("t", n, 2.0, 30.0, seed)
    } else {
        zipf_table("t", n, 1.3, 2.0, 30.0, seed)
    }
}

fn build_knapsack(n: usize, seed: Seed) -> Table {
    knapsack_items(n, seed)
}

fn build_bulk(n: usize, seed: Seed) -> Table {
    bulk_orders(n, seed)
}

fn build_metrics(n: usize, seed: Seed) -> Table {
    metrics_table(n, seed)
}

fn build_wide(n: usize, seed: Seed) -> Table {
    wide_table(n, seed)
}

fn build_correlated(n: usize, seed: Seed) -> Table {
    assets(n, seed)
}

fn build_lineitem(n: usize, seed: Seed) -> Table {
    lineitem(n, seed)
}

fn select(relation: &str, clauses: &[String], objective: &str) -> String {
    format!(
        "SELECT PACKAGE(R) AS P FROM {relation} R SUCH THAT {} {objective}",
        clauses.join(" AND ")
    )
}

/// Two dozen SUM/AVG windows, one per metric column — the many-constraint
/// gauntlet query.
fn metrics_gauntlet_query() -> String {
    let mut clauses = vec!["COUNT(*) = 6".to_string()];
    for name in metric_names() {
        clauses.push(format!("SUM(P.{name}) BETWEEN 6 AND 54"));
    }
    for name in metric_names().into_iter().take(8) {
        clauses.push(format!("AVG(P.{name}) BETWEEN 1 AND 9"));
    }
    select("metrics", &clauses, "MAXIMIZE SUM(P.m00)")
}

/// A tighter eight-window variant the exact core can finish quickly.
fn metrics_exact_query() -> String {
    let mut clauses = vec!["COUNT(*) = 5".to_string()];
    for name in metric_names().into_iter().take(8) {
        clauses.push(format!("SUM(P.{name}) BETWEEN 10 AND 40"));
    }
    select("metrics", &clauses, "MAXIMIZE SUM(P.m00)")
}

/// One FILTERed SUM cap per wide column, cycling over groups `g00`–`g03` —
/// hundreds of FILTERed terms, every cap slack. The cycle is deliberately
/// *narrower* than the package: under the engine's SQL semantics a FILTERed
/// SUM over an empty member set is NULL and its constraint unsatisfied
/// (never vacuously ≤ cap), so `COUNT(*) = 4` forces exactly one member
/// from each of the four filtered groups. Cycling all [`crate::WIDE_GROUPS`]
/// would make the query infeasible at any COUNT below 16.
fn wide_gauntlet_query() -> String {
    let mut clauses = vec!["COUNT(*) = 4".to_string()];
    for (j, name) in wide_names().iter().enumerate() {
        clauses.push(format!(
            "SUM(P.{name}) FILTER (WHERE R.grp = 'g{:02}') <= 2000",
            j % 4
        ));
    }
    select("wide", &clauses, "MAXIMIZE SUM(P.w000)")
}

/// A FILTERed SUM target no package can reach: `derive_bounds` must prove
/// this infeasible from chunk metadata before any solver runs.
fn wide_unreachable_query() -> String {
    "SELECT PACKAGE(R) AS P FROM wide R \
     SUCH THAT COUNT(*) <= 6 AND SUM(P.w000) FILTER (WHERE R.grp = 'g00') >= 1000000000 \
     MAXIMIZE SUM(P.w001)"
        .to_string()
}

/// The registry. Order is stable; suites index it by position in proptest
/// draws, so append new families at the end.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "recipes",
            relation: "recipes",
            summary: "meal planning: 16-column mixed-type rows, moderate windows",
            build: build_recipes,
            columns: &["calories", "protein", "fat", "price"],
            filter: Some("R.gluten = 'free'"),
            property_n: 60,
            exact_query: "SELECT PACKAGE(R) AS P FROM recipes R \
                          SUCH THAT COUNT(*) = 4 AND SUM(P.calories) BETWEEN 2400 AND 2600 \
                          MAXIMIZE SUM(P.protein)"
                .to_string(),
            exact_n: 700,
            exact_cap: usize::MAX,
            gauntlet_sizes: [500, 2_000, 8_000],
            queries: vec![ScenarioQuery {
                label: "meal_plan",
                text: "SELECT PACKAGE(R) AS P FROM recipes R \
                       SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
                       MAXIMIZE SUM(P.protein)"
                    .to_string(),
                expect_feasible: true,
                max_gap: 0.02,
            }],
        },
        Scenario {
            name: "stocks",
            relation: "stocks",
            summary: "portfolio building: price/return/risk lots, budget caps",
            build: build_stocks,
            columns: &["price", "expected_return", "risk"],
            filter: Some("R.sector = 'technology'"),
            property_n: 60,
            exact_query: "SELECT PACKAGE(R) AS P FROM stocks R \
                          SUCH THAT COUNT(*) = 3 AND SUM(P.price) <= 2700 \
                          MAXIMIZE SUM(P.expected_return)"
                .to_string(),
            exact_n: 700,
            // Measured (release, seed 20140901): the monolithic ILP proves
            // budget_portfolio in ~0.25s at 500 and ~7s at 2 000, but at
            // 8 000 it burns ~210s only to truncate at the branch-and-bound
            // node cap without a proof — classic hard-knapsack blowup. The
            // uncapped exact strategies stop here; `Auto`'s node-capped race
            // still covers 8 000.
            exact_cap: 2_000,
            gauntlet_sizes: [500, 2_000, 8_000],
            queries: vec![ScenarioQuery {
                label: "budget_portfolio",
                text: "SELECT PACKAGE(R) AS P FROM stocks R \
                       SUCH THAT COUNT(*) <= 10 AND SUM(P.price) <= 20000 \
                       MAXIMIZE SUM(P.expected_return)"
                    .to_string(),
                expect_feasible: true,
                max_gap: 0.02,
            }],
        },
        Scenario {
            name: "travel",
            relation: "travel_options",
            summary: "heterogeneous options (flights/hotels/cars) behind one relation",
            build: build_travel,
            columns: &["price", "comfort"],
            filter: Some("R.kind = 'hotel'"),
            property_n: 50,
            exact_query: "SELECT PACKAGE(R) AS P FROM travel_options R \
                          SUCH THAT COUNT(*) <= 4 AND SUM(P.price) <= 900 \
                          MAXIMIZE SUM(P.comfort)"
                .to_string(),
            exact_n: 700,
            exact_cap: usize::MAX,
            gauntlet_sizes: [500, 2_000, 8_000],
            queries: vec![ScenarioQuery {
                label: "vacation",
                text: "SELECT PACKAGE(R) AS P FROM travel_options R \
                       SUCH THAT COUNT(*) FILTER (WHERE R.kind = 'flight') = 1 \
                       AND COUNT(*) FILTER (WHERE R.kind = 'hotel') = 1 \
                       AND COUNT(*) <= 3 AND SUM(P.price) <= 2500 \
                       MAXIMIZE SUM(P.comfort)"
                    .to_string(),
                expect_feasible: true,
                max_gap: 0.05,
            }],
        },
        Scenario {
            name: "synthetic",
            relation: "t",
            summary: "generic numeric rows; Zipf-heavy tails on odd seeds",
            build: build_synthetic,
            columns: &["w", "v"],
            filter: None,
            property_n: 50,
            exact_query: "SELECT PACKAGE(R) AS P FROM t R \
                          SUCH THAT COUNT(*) = 5 AND SUM(P.w) <= 70 MAXIMIZE SUM(P.v)"
                .to_string(),
            exact_n: 700,
            exact_cap: usize::MAX,
            gauntlet_sizes: [500, 2_000, 8_000],
            queries: vec![ScenarioQuery {
                label: "weight_cap",
                text: "SELECT PACKAGE(R) AS P FROM t R \
                       SUCH THAT COUNT(*) = 5 AND SUM(P.w) <= 70 MAXIMIZE SUM(P.v)"
                    .to_string(),
                expect_feasible: true,
                max_gap: 0.02,
            }],
        },
        Scenario {
            name: "knapsack",
            relation: "knapsack",
            summary: "tight-feasibility window; greedy lands infeasible, repair must cross populations",
            build: build_knapsack,
            columns: &["weight", "value", "density"],
            filter: Some("R.kind = 'decoy'"),
            property_n: 48,
            exact_query: "SELECT PACKAGE(R) AS P FROM knapsack R \
                          SUCH THAT COUNT(*) = 5 AND SUM(P.weight) BETWEEN 98 AND 102 \
                          MAXIMIZE SUM(P.value)"
                .to_string(),
            exact_n: 320,
            // Measured: the near-identical planted weights make the window
            // maximally symmetric, so branch and bound always runs to its
            // node cap without a proof — ~4s at 400, ~15s at 1 600, and the
            // per-node cost keeps growing with n. Cap the uncapped exact
            // strategies at 1 600.
            exact_cap: 1_600,
            gauntlet_sizes: [400, 1_600, 6_400],
            queries: vec![
                ScenarioQuery {
                    label: "tight_window",
                    text: "SELECT PACKAGE(R) AS P FROM knapsack R \
                           SUCH THAT COUNT(*) = 5 AND SUM(P.weight) BETWEEN 98 AND 102 \
                           MAXIMIZE SUM(P.value)"
                        .to_string(),
                    expect_feasible: true,
                    max_gap: 0.05,
                },
                ScenarioQuery {
                    label: "unreachable_window",
                    text: "SELECT PACKAGE(R) AS P FROM knapsack R \
                           SUCH THAT COUNT(*) = 5 AND SUM(P.weight) BETWEEN 1 AND 40 \
                           MAXIMIZE SUM(P.value)"
                        .to_string(),
                    expect_feasible: false,
                    max_gap: 0.0,
                },
            ],
        },
        Scenario {
            name: "bulk",
            relation: "orders",
            summary: "high-cardinality packages: 1000-member purchase orders under budget",
            build: build_bulk,
            columns: &["unit_cost", "utility", "lead_days"],
            filter: Some("R.supplier = 'acme'"),
            property_n: 64,
            exact_query: "SELECT PACKAGE(R) AS P FROM orders R \
                          SUCH THAT COUNT(*) = 12 AND SUM(P.unit_cost) <= 20 \
                          MAXIMIZE SUM(P.utility)"
                .to_string(),
            exact_n: 600,
            exact_cap: usize::MAX,
            gauntlet_sizes: [2_000, 5_000, 12_000],
            queries: vec![ScenarioQuery {
                label: "bulk_1000",
                text: "SELECT PACKAGE(R) AS P FROM orders R \
                       SUCH THAT COUNT(*) = 1000 AND SUM(P.unit_cost) <= 2300 \
                       MAXIMIZE SUM(P.utility)"
                    .to_string(),
                expect_feasible: true,
                max_gap: 0.02,
            }],
        },
        Scenario {
            name: "metrics",
            relation: "metrics",
            summary: "many-constraint queries: 24 SUM/AVG windows over 16 columns",
            build: build_metrics,
            columns: &["m00", "m01", "m07", "m15"],
            filter: None,
            property_n: 48,
            exact_query: metrics_exact_query(),
            exact_n: 256,
            // Measured: 24 simultaneous windows already cost the ILP ~9s
            // (proven) at 1 000 candidates; the many-constraint LP
            // relaxations dominate per-node cost, so larger sizes are left
            // to the heuristics and `Auto`'s capped race.
            exact_cap: 1_000,
            gauntlet_sizes: [1_000, 3_000, 6_000],
            queries: vec![ScenarioQuery {
                label: "many_windows",
                text: metrics_gauntlet_query(),
                expect_feasible: true,
                max_gap: 0.05,
            }],
        },
        Scenario {
            name: "wide",
            relation: "wide",
            summary: "wide schema: 120 columns, one FILTERed SUM term per column",
            build: build_wide,
            columns: &["w000", "w001", "w010", "w050"],
            filter: Some("R.grp = 'g00'"),
            property_n: 40,
            exact_query: "SELECT PACKAGE(R) AS P FROM wide R \
                          SUCH THAT COUNT(*) = 4 AND SUM(P.w000) BETWEEN 150 AND 250 \
                          AND SUM(P.w001) FILTER (WHERE R.grp = 'g01') <= 150 \
                          MAXIMIZE SUM(P.w001)"
                .to_string(),
            exact_n: 256,
            exact_cap: usize::MAX,
            gauntlet_sizes: [600, 1_500, 4_000],
            queries: vec![
                ScenarioQuery {
                    label: "filtered_caps",
                    text: wide_gauntlet_query(),
                    expect_feasible: true,
                    max_gap: 0.01,
                },
                ScenarioQuery {
                    label: "unreachable_target",
                    text: wide_unreachable_query(),
                    expect_feasible: false,
                    max_gap: 0.0,
                },
            ],
        },
        Scenario {
            name: "correlated",
            relation: "assets",
            summary: "strongly correlated cost/payoff pairs (Pisinger-hard) plus an anti-correlated control",
            build: build_correlated,
            columns: &["cost", "payoff_corr", "payoff_anti"],
            filter: Some("R.grade = 'a'"),
            property_n: 56,
            exact_query: "SELECT PACKAGE(R) AS P FROM assets R \
                          SUCH THAT COUNT(*) <= 8 AND SUM(P.cost) <= 300 \
                          MAXIMIZE SUM(P.payoff_corr)"
                .to_string(),
            exact_n: 240,
            // Measured: strongly correlated cost/payoff pairs are the
            // Pisinger-hard regime — the ILP needs ~1.4s at 500 and the
            // node count climbs steeply with n; 2 000 is the last size the
            // uncapped exact strategies attempt.
            exact_cap: 2_000,
            gauntlet_sizes: [500, 2_000, 8_000],
            queries: vec![
                ScenarioQuery {
                    label: "strongly_correlated",
                    text: "SELECT PACKAGE(R) AS P FROM assets R \
                           SUCH THAT COUNT(*) <= 8 AND SUM(P.cost) <= 300 \
                           MAXIMIZE SUM(P.payoff_corr)"
                        .to_string(),
                    expect_feasible: true,
                    max_gap: 0.05,
                },
                ScenarioQuery {
                    label: "anti_correlated",
                    text: "SELECT PACKAGE(R) AS P FROM assets R \
                           SUCH THAT COUNT(*) <= 8 AND SUM(P.cost) <= 300 \
                           MAXIMIZE SUM(P.payoff_anti)"
                        .to_string(),
                    expect_feasible: true,
                    max_gap: 0.02,
                },
            ],
        },
        Scenario {
            name: "lineitem",
            relation: "lineitem",
            summary: "TPC-H-lite order lines at production row counts",
            build: build_lineitem,
            columns: &["l_quantity", "l_extendedprice", "l_discount", "l_tax"],
            filter: Some("R.l_returnflag = 'R'"),
            property_n: 64,
            exact_query: "SELECT PACKAGE(R) AS P FROM lineitem R \
                          SUCH THAT COUNT(*) <= 12 AND SUM(P.l_quantity) <= 120 \
                          MAXIMIZE SUM(P.l_extendedprice)"
                .to_string(),
            exact_n: 500,
            exact_cap: usize::MAX,
            gauntlet_sizes: [10_000, 40_000, 100_000],
            queries: vec![ScenarioQuery {
                label: "quantity_budget",
                text: "SELECT PACKAGE(R) AS P FROM lineitem R \
                       SUCH THAT COUNT(*) <= 40 AND SUM(P.l_quantity) <= 400 \
                       AND SUM(P.l_extendedprice) FILTER (WHERE R.l_returnflag = 'R') <= 100000 \
                       MAXIMIZE SUM(P.l_extendedprice)"
                    .to_string(),
                expect_feasible: true,
                max_gap: 0.02,
            }],
        },
    ]
}

/// Looks a scenario up by its registry [`Scenario::name`].
pub fn scenario(name: &str) -> Option<Scenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_labels_are_unique_and_sizes_ascend() {
        let all = scenarios();
        assert!(all.len() >= 10, "the gauntlet needs >= 6 families");
        for (i, s) in all.iter().enumerate() {
            assert!(
                all[i + 1..].iter().all(|o| o.name != s.name),
                "duplicate scenario name {}",
                s.name
            );
            assert!(
                s.gauntlet_sizes[0] < s.gauntlet_sizes[1]
                    && s.gauntlet_sizes[1] < s.gauntlet_sizes[2],
                "{}: sizes must ascend",
                s.name
            );
            assert!(!s.queries.is_empty(), "{}: no gauntlet queries", s.name);
            for (j, q) in s.queries.iter().enumerate() {
                assert!(
                    s.queries[j + 1..].iter().all(|o| o.label != q.label),
                    "{}: duplicate query label {}",
                    s.name,
                    q.label
                );
                assert!(q.max_gap >= 0.0);
            }
        }
    }

    #[test]
    fn every_builder_is_prefix_stable_and_names_its_relation() {
        for s in scenarios() {
            let small = (s.build)(24, Seed(99));
            let large = (s.build)(48, Seed(99));
            assert_eq!(small.name(), s.relation, "{}: relation mismatch", s.name);
            assert_eq!(
                small.rows(),
                &large.rows()[..small.rows().len()],
                "{}: builder is not prefix-stable",
                s.name
            );
            assert!(
                !small.rows().is_empty(),
                "{}: builder returned no rows",
                s.name
            );
        }
    }

    #[test]
    fn random_query_renders_every_clause() {
        let s = scenario("knapsack").unwrap();
        let q = s.random_query(&QueryParams {
            count: 4,
            col_a: 0,
            col_b: 1,
            agg_pick: 0,
            lo: 50.0,
            width: 100.0,
            use_filter: true,
            repeat: Some(2),
            minimize: false,
        });
        assert!(q.contains("FROM knapsack R REPEAT 2"), "{q}");
        assert!(q.contains("COUNT(*) <= 4"), "{q}");
        assert!(
            q.contains("SUM(P.weight) FILTER (WHERE R.kind = 'decoy')"),
            "{q}"
        );
        assert!(q.contains("BETWEEN 50.00 AND 150.00"), "{q}");
        assert!(q.ends_with("MAXIMIZE SUM(P.value)"), "{q}");
    }
}
