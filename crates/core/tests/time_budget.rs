//! Time-budget regression suite: no solver may ignore its deadline.
//!
//! The contract under test (see `packagebuilder::budget`): with a
//! `time_limit` of 10 ms, every solver terminates within ~2× the limit —
//! measured here with extra absolute slack for debug-profile builds and CI
//! scheduler noise — and returns its best-so-far result with
//! `optimal: false` instead of erroring or running unbounded. Before this
//! suite existed, `GreedySolver`'s repair loop started an `Instant` and
//! never looked at it again: a hostile candidate set ran unbounded.

use std::time::{Duration, Instant};

use datagen::{recipes, scenarios, Seed};
use minidb::{Catalog, Table};
use packagebuilder::budget::Budget;
use packagebuilder::config::{EngineConfig, Strategy};
use packagebuilder::portfolio::PortfolioSolver;
use packagebuilder::solver::{
    EnumerationSolver, GreedySolver, IlpSolver, LocalSearchSolver, SolveOptions, Solver,
};
use packagebuilder::spec::PackageSpec;
use packagebuilder::{PackageEngine, ProgressiveShadingSolver, SketchRefineSolver};
use paql::compile;

/// The budget every solver must honour.
const LIMIT: Duration = Duration::from_millis(10);
/// Fixed per-solve setup that is proportional to the candidate count, not
/// to the time limit, and so does not scale down with it: chiefly the ILP
/// translation (one variable + row entries per candidate; ~30 ms for 15k
/// candidates in a debug build, where this suite runs), plus scheduler
/// noise headroom — `cargo test` runs whole suites concurrently, so on a
/// loaded single-core runner a portfolio race's worker threads can each
/// lose a scheduling quantum between deadline checks.
const SETUP_SLACK: Duration = Duration::from_millis(100);

/// Allowed wall-clock for one budgeted solve: the contract's ~2× factor on
/// the limit, plus the fixed setup slack above.
fn allowed(limit: Duration) -> Duration {
    limit * 2 + SETUP_SLACK
}

/// The largest datagen scenario in the suite: a recipes relation far beyond
/// anything a 10 ms budget could finish, with a query whose repair/search
/// phases are long (a 300-tuple package forces hundreds of greedy repair
/// passes over the full candidate set).
fn hostile_table() -> Table {
    recipes(15_000, Seed(20140901))
}

const HOSTILE_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R \
    SUCH THAT COUNT(*) = 300 AND SUM(P.calories) BETWEEN 150000 AND 180000 \
    MAXIMIZE SUM(P.protein)";

fn spec_for<'a>(table: &'a Table, q: &str) -> PackageSpec<'a> {
    let analyzed = compile(q, table.schema()).unwrap();
    PackageSpec::build(&analyzed, table).unwrap()
}

fn budgeted_options() -> SolveOptions {
    SolveOptions {
        budget: Budget::with_limit(LIMIT),
        ..SolveOptions::default()
    }
}

#[test]
fn every_solver_terminates_within_twice_the_time_limit() {
    let table = hostile_table();
    let spec = spec_for(&table, HOSTILE_QUERY);
    let solvers: Vec<(&str, Box<dyn Solver>)> = vec![
        ("ilp", Box::new(IlpSolver)),
        ("local-search", Box::new(LocalSearchSolver)),
        ("greedy", Box::new(GreedySolver)),
        ("sketch-refine", Box::new(SketchRefineSolver)),
        ("progressive-shading", Box::new(ProgressiveShadingSolver)),
        ("portfolio", Box::new(PortfolioSolver::default())),
    ];
    for (name, solver) in solvers {
        let opts = budgeted_options();
        let start = Instant::now();
        let out = solver
            .solve(spec.view(), &opts)
            .unwrap_or_else(|e| panic!("{name} must truncate, not fail: {e}"));
        let elapsed = start.elapsed();
        assert!(
            elapsed <= allowed(LIMIT),
            "{name} overran its {LIMIT:?} budget: took {elapsed:?} (allowed {:?})",
            allowed(LIMIT)
        );
        assert!(
            !out.optimal,
            "{name} claimed optimality for a truncated solve"
        );
    }
}

#[test]
fn enumeration_terminates_within_twice_the_time_limit_on_20k_candidates() {
    // Regression test for the DFS stack overflow: the search used to recurse
    // once per candidate index, so anything past ~10k candidates blew the
    // thread stack before the budget could even matter. With the explicit
    // worklist the full 20,000-candidate hostile scenario must run — and
    // still honour its 10 ms budget.
    let table = recipes(20_000, Seed(20140901));
    let spec = spec_for(
        &table,
        "SELECT PACKAGE(R) AS P FROM recipes R \
         SUCH THAT COUNT(*) = 40 AND SUM(P.calories) BETWEEN 20000 AND 24000 \
         MAXIMIZE SUM(P.protein)",
    );
    let opts = budgeted_options();
    let start = Instant::now();
    let out = EnumerationSolver { prune: true }
        .solve(spec.view(), &opts)
        .unwrap();
    let elapsed = start.elapsed();
    assert!(
        elapsed <= allowed(LIMIT),
        "pruned enumeration overran its {LIMIT:?} budget: took {elapsed:?}"
    );
    assert!(!out.optimal);
}

#[test]
fn greedy_repair_honours_a_tiny_time_limit_on_a_large_candidate_set() {
    // The original bug: the repair loop (`while violation > 0.0`) never
    // checked SolverConfig::time_limit, so this exact shape — a large
    // candidate set and a high-cardinality window needing hundreds of repair
    // moves — ran unbounded.
    let table = hostile_table();
    let spec = spec_for(&table, HOSTILE_QUERY);
    let opts = SolveOptions {
        budget: Budget::with_limit(Duration::from_millis(1)),
        ..SolveOptions::default()
    };
    let start = Instant::now();
    let out = GreedySolver.solve(spec.view(), &opts).unwrap();
    let elapsed = start.elapsed();
    assert!(
        elapsed <= allowed(Duration::from_millis(1)),
        "greedy ignored a 1 ms budget: took {elapsed:?}"
    );
    assert!(!out.optimal);
    // Best-so-far contract: expiry yields a (possibly empty) truncated
    // result, never an error. Any package it does return must be valid.
    for (p, _) in &out.packages {
        assert!(spec.is_valid(p).unwrap());
    }
}

#[test]
fn expired_budgets_return_immediately_with_best_so_far() {
    let table = hostile_table();
    let spec = spec_for(&table, HOSTILE_QUERY);
    let opts = SolveOptions {
        budget: Budget::with_limit(Duration::ZERO),
        ..SolveOptions::default()
    };
    for solver in [
        Box::new(IlpSolver) as Box<dyn Solver>,
        Box::new(EnumerationSolver { prune: true }),
        Box::new(LocalSearchSolver),
        Box::new(GreedySolver),
        Box::new(SketchRefineSolver),
        Box::new(ProgressiveShadingSolver),
    ] {
        let start = Instant::now();
        let out = solver.solve(spec.view(), &opts).unwrap();
        assert!(!out.optimal);
        assert!(
            start.elapsed() < allowed(Duration::ZERO),
            "{} did not bail out of an already-expired budget",
            solver.strategy()
        );
    }
}

#[test]
fn expired_budgets_bail_out_on_every_registered_scenario() {
    // The registry sweep of the test above: whatever the family's schema or
    // constraint count (24-window metrics, 120-column wide, …), an
    // already-expired budget returns a truncated best-so-far immediately.
    for scenario in scenarios() {
        let table = (scenario.build)(scenario.property_n, Seed(20140901));
        let spec = spec_for(&table, &scenario.exact_query);
        let opts = SolveOptions {
            budget: Budget::with_limit(Duration::ZERO),
            ..SolveOptions::default()
        };
        for solver in [
            Box::new(IlpSolver) as Box<dyn Solver>,
            Box::new(EnumerationSolver { prune: true }),
            Box::new(LocalSearchSolver),
            Box::new(GreedySolver),
            Box::new(SketchRefineSolver),
            Box::new(ProgressiveShadingSolver),
        ] {
            let start = Instant::now();
            let out = solver.solve(spec.view(), &opts).unwrap();
            assert!(!out.optimal, "{}/{}", scenario.name, solver.strategy());
            assert!(
                start.elapsed() < allowed(Duration::ZERO),
                "{}/{} did not bail out of an already-expired budget",
                scenario.name,
                solver.strategy()
            );
            for (p, _) in &out.packages {
                assert!(spec.is_valid(p).unwrap());
            }
        }
    }
}

#[test]
fn expired_budget_entry_bails_the_shading_descent() {
    // Progressive shading's descent solves one sketch per tree layer; an
    // already-expired budget must bail before growing the tree at all, even
    // under a configuration that would build a genuinely deep one.
    let table = hostile_table();
    let spec = spec_for(&table, HOSTILE_QUERY);
    let opts = SolveOptions {
        budget: Budget::with_limit(Duration::ZERO),
        shade_leaf_size: 8,
        shade_fanout: 4,
        ..SolveOptions::default()
    };
    let start = Instant::now();
    let out = ProgressiveShadingSolver.solve(spec.view(), &opts).unwrap();
    assert!(!out.optimal);
    assert!(
        start.elapsed() < allowed(Duration::ZERO),
        "shading did not bail out of an already-expired budget"
    );
    assert!(
        spec.view().partition_memo().tree_len() == 0,
        "an expired budget must not grow (or memoize) the partition tree"
    );
    for (p, _) in &out.packages {
        assert!(spec.is_valid(p).unwrap());
    }
}

#[test]
fn cancellation_stops_a_running_solver() {
    // The stop flag alone (no deadline) must end the race: arm an unlimited
    // budget, trip it, and the solver returns promptly.
    let table = hostile_table();
    let spec = spec_for(&table, HOSTILE_QUERY);
    let opts = SolveOptions::default();
    opts.budget.cancel();
    let start = Instant::now();
    let out = GreedySolver.solve(spec.view(), &opts).unwrap();
    assert!(!out.optimal);
    assert!(start.elapsed() < allowed(Duration::ZERO));
}

#[test]
fn engine_time_budget_reaches_the_solver_and_reports_non_optimal() {
    let mut catalog = Catalog::new();
    catalog.register(hostile_table());
    let engine = PackageEngine::with_config(
        catalog,
        EngineConfig::with_strategy(Strategy::Ilp).with_time_budget(LIMIT),
    );
    let start = Instant::now();
    let result = engine.execute_paql(HOSTILE_QUERY).unwrap();
    let elapsed = start.elapsed();
    // The engine path additionally parses the query and builds the columnar
    // view (linear in the relation, outside the solve budget by design), so
    // it gets one extra helping of setup slack on top of the solver bound.
    assert!(
        elapsed <= allowed(LIMIT) + SETUP_SLACK,
        "engine run overran the configured budget: {elapsed:?}"
    );
    assert!(
        !result.optimal,
        "a truncated engine run must not claim optimality"
    );
}
