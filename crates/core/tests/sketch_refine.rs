//! Sketch→refine contract suite.
//!
//! Three properties, exercised over all four datagen scenarios (recipes,
//! stocks, travel, synthetic uniform):
//!
//! * **validity** — every package the solver returns passes full engine
//!   validation (the interpreted oracle, independent of the columnar view);
//! * **quality floor** — on linearizable queries the objective is never
//!   worse than [`Strategy::Greedy`]'s, and sketch→refine finds a package
//!   whenever greedy does;
//! * **determinism** — same seed ⇒ identical partitioning and identical
//!   package, across independently built engines.
//!
//! Plus the planner policy: at or above [`EngineConfig::sketch_threshold`],
//! `Auto` stops trusting the monolithic ILP's latency for linearizable
//! single-package queries and races a portfolio (whose workers include
//! sketch→refine, with the exact worker node-capped).

use datagen::{recipes, stocks, travel_options, uniform_table, Seed};
use minidb::{Catalog, Table};
use packagebuilder::config::{EngineConfig, Strategy};
use packagebuilder::partition::partition_view;
use packagebuilder::result::StrategyUsed;
use packagebuilder::spec::PackageSpec;
use packagebuilder::{Package, PackageEngine};
use paql::ObjectiveDirection;

/// The four scenario relations with one linearizable query each, at a size
/// where the sketch has real partitions to work with.
fn scenarios(seed: u64) -> Vec<(Table, &'static str)> {
    vec![
        (
            recipes(1_200, Seed(seed)),
            "SELECT PACKAGE(R) AS P FROM recipes R \
             SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
             MAXIMIZE SUM(P.protein)",
        ),
        (
            stocks(1_000, Seed(seed)),
            "SELECT PACKAGE(S) AS P FROM stocks S \
             SUCH THAT COUNT(*) BETWEEN 3 AND 12 AND SUM(P.price) <= 30000 \
             MAXIMIZE SUM(P.expected_return)",
        ),
        (
            travel_options(600, 400, 150, Seed(seed)),
            "SELECT PACKAGE(T) AS P FROM travel_options T \
             SUCH THAT COUNT(*) FILTER (WHERE T.kind = 'flight') = 1 AND \
                       COUNT(*) FILTER (WHERE T.kind = 'hotel') = 1 AND \
                       SUM(P.price) <= 2000 \
             MAXIMIZE SUM(P.comfort)",
        ),
        (
            uniform_table("t", 1_000, 5.0, 20.0, Seed(seed)),
            "SELECT PACKAGE(T) AS P FROM t T \
             SUCH THAT COUNT(*) = 5 AND SUM(P.w) BETWEEN 40 AND 70 \
             MAXIMIZE SUM(P.v)",
        ),
    ]
}

fn engine_for(table: Table, strategy: Strategy, seed: u64) -> PackageEngine {
    let mut catalog = Catalog::new();
    catalog.register(table);
    PackageEngine::with_config(
        catalog,
        EngineConfig::with_strategy(strategy).with_seed(seed),
    )
}

#[test]
fn refined_packages_are_valid_and_never_worse_than_greedy_on_every_scenario() {
    for data_seed in [1u64, 7, 20140901] {
        for (table, query) in scenarios(data_seed) {
            let name = table.name().to_string();
            let parsed = paql::parse(query).unwrap();
            let engine = engine_for(table, Strategy::SketchRefine, 42);
            let spec = engine.build_spec(&parsed).unwrap();
            let sketch = engine
                .execute_with_strategy(&spec, Strategy::SketchRefine)
                .unwrap_or_else(|e| panic!("{name}: sketch-refine failed: {e}"));
            let greedy = engine
                .execute_with_strategy(&spec, Strategy::Greedy)
                .unwrap();
            // Validity is already enforced by the engine's interpreted
            // re-check; assert through the spec as well for a loud message.
            for p in &sketch.packages {
                assert!(spec.is_valid(p).unwrap(), "{name}: invalid package");
            }
            assert!(
                !sketch.optimal,
                "{name}: sketch-refine must not claim optimality"
            );
            if !greedy.is_empty() {
                assert!(
                    !sketch.is_empty(),
                    "{name}: greedy found a package but sketch-refine did not"
                );
                let direction = spec
                    .objective
                    .as_ref()
                    .map(|o| o.direction)
                    .unwrap_or(ObjectiveDirection::Maximize);
                let s = sketch.best_objective();
                let g = greedy.best_objective();
                assert!(
                    s == g || Package::better_objective(direction, s, g),
                    "{name}: sketch-refine objective {s:?} worse than greedy {g:?}"
                );
            }
        }
    }
}

#[test]
fn same_seed_means_identical_partitioning_and_package() {
    for (table, query) in scenarios(5) {
        let name = table.name().to_string();
        // Partitioning: rebuild the spec twice from scratch.
        let analyzed = paql::compile(query, table.schema()).unwrap();
        let spec_a = PackageSpec::build(&analyzed, &table).unwrap();
        let spec_b = PackageSpec::build(&analyzed, &table).unwrap();
        let part_a = partition_view(spec_a.view(), 64, 42);
        let part_b = partition_view(spec_b.view(), 64, 42);
        assert_eq!(part_a.len(), part_b.len(), "{name}: partition count");
        for (x, y) in part_a.partitions().iter().zip(part_b.partitions()) {
            assert_eq!(x.members, y.members, "{name}: members differ");
            assert_eq!(x.centroid, y.centroid, "{name}: centroids differ");
        }
        // Package: two independently built engines, same seed.
        let run = || {
            let mut catalog = Catalog::new();
            catalog.register(table.clone());
            let engine = PackageEngine::with_config(
                catalog,
                EngineConfig::with_strategy(Strategy::SketchRefine).with_seed(42),
            );
            engine.execute_paql(query).unwrap()
        };
        let first = run();
        let second = run();
        assert_eq!(first.packages, second.packages, "{name}: packages differ");
        assert_eq!(
            first.objectives, second.objectives,
            "{name}: objectives differ"
        );
        assert_eq!(
            first.stats.nodes, second.stats.nodes,
            "{name}: nodes differ"
        );
    }
}

#[test]
fn auto_races_a_portfolio_for_large_linearizable_queries() {
    let table = recipes(900, Seed(11));
    let mut catalog = Catalog::new();
    catalog.register(table);
    let config = EngineConfig {
        sketch_threshold: 500, // scaled down so the test stays fast
        ..Default::default()
    };
    let engine = PackageEngine::with_config(catalog, config);
    let query = paql::parse(
        "SELECT PACKAGE(R) AS P FROM recipes R \
         SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
         MAXIMIZE SUM(P.protein)",
    )
    .unwrap();
    let spec = engine.build_spec(&query).unwrap();
    assert_eq!(engine.resolve_strategy(&spec), Strategy::Portfolio);
    let result = engine.execute_spec(&spec).unwrap();
    assert_eq!(result.stats.strategy, StrategyUsed::Portfolio);
    assert!(!result.is_empty());
    // Below the threshold the exact ILP keeps the job.
    let config = EngineConfig {
        sketch_threshold: 5_000,
        ..Default::default()
    };
    let mut catalog = Catalog::new();
    catalog.register(recipes(900, Seed(11)));
    let engine = PackageEngine::with_config(catalog, config);
    let spec = engine.build_spec(&query).unwrap();
    assert_eq!(engine.resolve_strategy(&spec), Strategy::Ilp);
    // A top-k request also keeps the exact ILP (sketch→refine returns a
    // single approximate package and must not silently drop the other k−1).
    let config = EngineConfig {
        sketch_threshold: 500,
        ..Default::default()
    }
    .packages(5);
    let mut catalog = Catalog::new();
    catalog.register(recipes(900, Seed(11)));
    let engine = PackageEngine::with_config(catalog, config);
    let spec = engine.build_spec(&query).unwrap();
    assert_eq!(engine.resolve_strategy(&spec), Strategy::Ilp);
    let result = engine.execute_spec(&spec).unwrap();
    assert_eq!(result.len(), 5, "top-k must survive the sketch threshold");
}

#[test]
fn avg_constrained_queries_route_to_ilp_and_match_the_enumeration_oracle() {
    // Planner-level acceptance for the AVG linearization: AVG-vs-constant is
    // linear now, so `Auto` hands it to the ILP (not local search), and the
    // ILP optimum agrees with the exact enumeration oracle on small inputs.
    let mut catalog = Catalog::new();
    catalog.register(recipes(200, Seed(3)));
    let engine = PackageEngine::new(catalog);
    let query = "SELECT PACKAGE(R) AS P FROM recipes R \
         SUCH THAT COUNT(*) = 3 AND AVG(P.calories) BETWEEN 400 AND 700 \
         MAXIMIZE SUM(P.protein)";
    let result = engine.execute_paql(query).unwrap();
    assert_eq!(result.stats.strategy, StrategyUsed::Ilp);
    assert!(result.optimal);

    let mut catalog = Catalog::new();
    catalog.register(recipes(16, Seed(3)));
    let engine = PackageEngine::new(catalog);
    let parsed = paql::parse(query).unwrap();
    let spec = engine.build_spec(&parsed).unwrap();
    let ilp = engine.execute_with_strategy(&spec, Strategy::Ilp).unwrap();
    let oracle = engine
        .execute_with_strategy(&spec, Strategy::PrunedEnumeration)
        .unwrap();
    assert!(oracle.optimal);
    match (ilp.best_objective(), oracle.best_objective()) {
        (Some(a), Some(b)) => assert!((a - b).abs() < 1e-6, "ilp {a} vs oracle {b}"),
        (None, None) => {}
        other => panic!("ilp and oracle disagree on feasibility: {other:?}"),
    }
}
