//! Property-based tests for the package engine's core invariants.

use datagen::{uniform_table, zipf_table, Seed};
use packagebuilder::enumerate::{enumerate, EnumerationOptions};
use packagebuilder::package::Package;
use packagebuilder::pruning::{derive_bounds, search_space};
use packagebuilder::spec::PackageSpec;
use proptest::prelude::*;

fn spec_query(count: u64, lo: f64, hi: f64) -> String {
    format!(
        "SELECT PACKAGE(T) AS P FROM t T \
         SUCH THAT COUNT(*) <= {count} AND SUM(P.w) BETWEEN {lo:.2} AND {hi:.2} \
         MAXIMIZE SUM(P.v)"
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Pruning soundness (the paper's "without losing any valid solution"):
    /// on exhaustively enumerable instances, every feasible package has a
    /// cardinality inside the derived bounds, and pruned enumeration finds the
    /// same optimum as exhaustive enumeration.
    #[test]
    fn pruning_is_sound_on_random_instances(
        seed in 0u64..10_000,
        skewed in prop::bool::ANY,
        count in 2u64..5,
        lo in 10.0f64..60.0,
        width in 5.0f64..60.0,
    ) {
        let n = 11usize;
        let table = if skewed {
            zipf_table("t", n, 1.3, 2.0, 30.0, Seed(seed))
        } else {
            uniform_table("t", n, 2.0, 30.0, Seed(seed))
        };
        let analyzed = paql::compile(&spec_query(count, lo, lo + width), table.schema()).unwrap();
        let spec = PackageSpec::build(&analyzed, &table).unwrap();
        let bounds = derive_bounds(spec.view()).clamp_to(n as u64);

        // Every feasible subset respects the cardinality bounds.
        for mask in 0u32..(1 << n) {
            let pkg = Package::from_ids(
                (0..n).filter(|i| mask & (1 << i) != 0).map(|i| spec.candidates[i]),
            );
            if spec.is_valid(&pkg).unwrap() {
                let c = pkg.cardinality();
                prop_assert!(c >= bounds.lower && c <= bounds.upper.unwrap_or(u64::MAX),
                    "feasible package of cardinality {} escapes bounds {:?}", c, bounds);
            }
        }

        // Pruned and exhaustive enumeration agree.
        let pruned = enumerate(spec.view(), EnumerationOptions { prune: true, ..Default::default() }).unwrap();
        let full = enumerate(spec.view(), EnumerationOptions { prune: false, ..Default::default() }).unwrap();
        prop_assert_eq!(pruned.packages.is_empty(), full.packages.is_empty());
        if let (Some((_, a)), Some((_, b))) = (pruned.packages.first(), full.packages.first()) {
            prop_assert!((a.unwrap() - b.unwrap()).abs() < 1e-6);
        }
        prop_assert!(pruned.nodes <= full.nodes);
    }

    /// The analytic search-space accounting is consistent: the pruned count
    /// never exceeds the unpruned count, and both are monotone in n.
    #[test]
    fn search_space_accounting_is_consistent(n1 in 5usize..40, extra in 1usize..20) {
        let n2 = n1 + extra;
        let q = "SELECT PACKAGE(T) AS P FROM t T SUCH THAT COUNT(*) = 3";
        let t1 = uniform_table("t", n1, 1.0, 10.0, Seed(1));
        let t2 = uniform_table("t", n2, 1.0, 10.0, Seed(1));
        let s1 = PackageSpec::build(&paql::compile(q, t1.schema()).unwrap(), &t1).unwrap();
        let s2 = PackageSpec::build(&paql::compile(q, t2.schema()).unwrap(), &t2).unwrap();
        let sp1 = search_space(s1.view(), &derive_bounds(s1.view()));
        let sp2 = search_space(s2.view(), &derive_bounds(s2.view()));
        prop_assert!(sp1.pruned_log2.unwrap() <= sp1.unpruned_log2 + 1e-9);
        prop_assert!(sp2.pruned_log2.unwrap() <= sp2.unpruned_log2 + 1e-9);
        prop_assert!(sp2.unpruned_log2 > sp1.unpruned_log2);
        prop_assert!(sp2.pruned_log2.unwrap() >= sp1.pruned_log2.unwrap() - 1e-9);
    }

    /// Package aggregate evaluation is linear in multiplicity: doubling every
    /// multiplicity doubles COUNT and SUM.
    #[test]
    fn aggregates_scale_linearly_with_multiplicity(
        seed in 0u64..1000,
        picks in prop::collection::vec(0usize..20, 1..6),
        factor in 2u32..4,
    ) {
        let table = uniform_table("t", 20, 1.0, 10.0, Seed(seed));
        let q = "SELECT PACKAGE(T) AS P FROM t T REPEAT 8 SUCH THAT COUNT(*) >= 1 MAXIMIZE SUM(P.v)";
        let spec = PackageSpec::build(&paql::compile(q, table.schema()).unwrap(), &table).unwrap();
        let base = Package::from_ids(picks.iter().map(|&i| spec.candidates[i]));
        let scaled = Package::from_members(base.members().map(|(t, m)| (t, m * factor)));

        let sum = |p: &Package| {
            p.eval_aggregate(
                &table,
                &paql::AggCall { func: paql::AggFunc::Sum, arg: Some(minidb::Expr::col("v")), filter: None },
            )
            .unwrap()
            .unwrap()
        };
        prop_assert!((sum(&scaled) - factor as f64 * sum(&base)).abs() < 1e-6);
        prop_assert_eq!(scaled.cardinality(), factor as u64 * base.cardinality());
    }
}
