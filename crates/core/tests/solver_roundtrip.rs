//! Every `Strategy` dispatches through the unified `Solver` trait: the
//! engine's planner and a direct trait-object call must produce identical
//! packages, objectives and `StrategyUsed` stats.

use minidb::Catalog;
use packagebuilder::config::{EngineConfig, Strategy};
use packagebuilder::result::StrategyUsed;
use packagebuilder::solver::{solver_for, SolveOptions};
use packagebuilder::PackageEngine;

use datagen::{recipes, Seed};

const QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R \
    SUCH THAT COUNT(*) = 2 AND SUM(P.calories) <= 1200 MAXIMIZE SUM(P.protein)";

fn engine(n: usize, seed: u64) -> PackageEngine {
    let mut catalog = Catalog::new();
    catalog.register(recipes(n, Seed(seed)));
    PackageEngine::new(catalog)
}

#[test]
fn every_strategy_round_trips_through_the_solver_trait() {
    let engine = engine(20, 1);
    let query = paql::parse(QUERY).unwrap();
    let spec = engine.build_spec(&query).unwrap();
    let opts = SolveOptions::from_config(engine.config());

    let cases = [
        (Strategy::Ilp, StrategyUsed::Ilp),
        (Strategy::PrunedEnumeration, StrategyUsed::PrunedEnumeration),
        (Strategy::Exhaustive, StrategyUsed::Exhaustive),
        (Strategy::LocalSearch, StrategyUsed::LocalSearch),
        (Strategy::Greedy, StrategyUsed::Greedy),
    ];
    for (strategy, expected) in cases {
        // Path 1: the engine planner.
        let via_engine = engine.execute_with_strategy(&spec, strategy).unwrap();
        // Path 2: the trait object, directly on the view.
        let solver = solver_for(strategy).unwrap();
        let via_trait = solver.solve(spec.view(), &opts).unwrap();

        assert_eq!(
            via_engine.stats.strategy, expected,
            "engine stats for {strategy:?}"
        );
        assert_eq!(
            via_trait.stats.strategy, expected,
            "trait stats for {strategy:?}"
        );
        assert_eq!(solver.strategy(), expected);
        let trait_packages: Vec<_> = via_trait.packages.iter().map(|(p, _)| p.clone()).collect();
        assert_eq!(
            via_engine.packages, trait_packages,
            "planner and direct dispatch disagree for {strategy:?}"
        );
        assert_eq!(via_engine.objectives.len(), via_trait.packages.len());
        for ((p, obj), engine_obj) in via_trait.packages.iter().zip(&via_engine.objectives) {
            assert_eq!(obj, engine_obj);
            assert!(
                spec.is_valid(p).unwrap(),
                "{strategy:?} returned an invalid package"
            );
        }
        assert_eq!(via_engine.stats.candidates, spec.candidate_count());
    }
}

#[test]
fn auto_resolution_matches_the_forced_strategy() {
    // Tiny input → Auto resolves to pruned enumeration; the result must be
    // identical to forcing that strategy explicitly.
    let engine = engine(15, 2);
    let query = paql::parse(QUERY).unwrap();
    let spec = engine.build_spec(&query).unwrap();
    let auto = engine.execute_spec(&spec).unwrap();
    let resolved = engine.resolve_strategy(&spec);
    assert_eq!(resolved, Strategy::PrunedEnumeration);
    let forced = engine.execute_with_strategy(&spec, resolved).unwrap();
    assert_eq!(auto.packages, forced.packages);
    assert_eq!(auto.stats.strategy, forced.stats.strategy);
}

#[test]
fn exact_solvers_agree_and_heuristics_never_beat_them() {
    let engine = engine(18, 3);
    let query = paql::parse(QUERY).unwrap();
    let spec = engine.build_spec(&query).unwrap();
    let exact: Vec<f64> = [
        Strategy::Ilp,
        Strategy::PrunedEnumeration,
        Strategy::Exhaustive,
    ]
    .into_iter()
    .map(|s| {
        engine
            .execute_with_strategy(&spec, s)
            .unwrap()
            .best_objective()
            .expect("feasible")
    })
    .collect();
    assert!((exact[0] - exact[1]).abs() < 1e-6);
    assert!((exact[0] - exact[2]).abs() < 1e-6);
    for heuristic in [Strategy::LocalSearch, Strategy::Greedy] {
        if let Some(h) = engine
            .execute_with_strategy(&spec, heuristic)
            .unwrap()
            .best_objective()
        {
            assert!(h <= exact[0] + 1e-6, "{heuristic:?} beat the optimum");
        }
    }
}

#[test]
fn count_expr_terms_linearize_as_inclusion_indicators() {
    // Regression: COUNT(P.col) must contribute 0/1 coefficients to the ILP
    // rows and the enumeration's partial-sum bounds — not the column's
    // values. With value coefficients, ILP and pruned enumeration both
    // returned empty results (marked optimal) while exhaustive found the
    // optimum.
    let engine = engine(12, 5);
    let query = paql::parse(
        "SELECT PACKAGE(R) AS P FROM recipes R \
         SUCH THAT COUNT(P.calories) = 2 MAXIMIZE SUM(P.protein)",
    )
    .unwrap();
    let spec = engine.build_spec(&query).unwrap();
    let exhaustive = engine
        .execute_with_strategy(&spec, Strategy::Exhaustive)
        .unwrap();
    let optimum = exhaustive
        .best_objective()
        .expect("a 2-recipe package exists");
    for strategy in [Strategy::PrunedEnumeration, Strategy::Ilp] {
        let result = engine.execute_with_strategy(&spec, strategy).unwrap();
        let obj = result
            .best_objective()
            .unwrap_or_else(|| panic!("{strategy:?} found no package, exhaustive found {optimum}"));
        assert!(
            (obj - optimum).abs() < 1e-6,
            "{strategy:?}: {obj} vs exhaustive {optimum}"
        );
    }
    // A filtered COUNT(expr) behaves the same way.
    let filtered = paql::parse(
        "SELECT PACKAGE(R) AS P FROM recipes R \
         SUCH THAT COUNT(P.calories) FILTER (WHERE R.gluten = 'free') = 1 AND COUNT(*) = 2 \
         MAXIMIZE SUM(P.protein)",
    )
    .unwrap();
    let spec = engine.build_spec(&filtered).unwrap();
    let exhaustive = engine
        .execute_with_strategy(&spec, Strategy::Exhaustive)
        .unwrap();
    let ilp = engine.execute_with_strategy(&spec, Strategy::Ilp).unwrap();
    match (exhaustive.best_objective(), ilp.best_objective()) {
        (Some(a), Some(b)) => assert!((a - b).abs() < 1e-6, "filtered COUNT(expr): {a} vs {b}"),
        (a, b) => assert_eq!(a.is_some(), b.is_some(), "feasibility disagreement"),
    }
}

#[test]
fn strategy_overrides_via_config_flow_through_the_planner() {
    for (strategy, expected) in [
        (Strategy::LocalSearch, StrategyUsed::LocalSearch),
        (Strategy::Greedy, StrategyUsed::Greedy),
    ] {
        let mut catalog = Catalog::new();
        catalog.register(recipes(60, Seed(4)));
        let engine = PackageEngine::with_config(catalog, EngineConfig::with_strategy(strategy));
        let result = engine.execute_paql(QUERY).unwrap();
        assert_eq!(result.stats.strategy, expected);
        for p in &result.packages {
            let spec = engine.build_spec(&paql::parse(QUERY).unwrap()).unwrap();
            assert!(spec.is_valid(p).unwrap());
        }
    }
}
