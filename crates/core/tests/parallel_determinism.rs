//! Parallel-determinism suite: chunked/parallel evaluation is **bit-identical
//! to the sequential path at every thread count**.
//!
//! The chunked columnar refactor fans view construction, partitioning,
//! greedy repair and the local search's neighbourhood scans out over
//! `ParExec` worker threads. The contract (see `packagebuilder::par`): chunk
//! boundaries are fixed and reductions combine in chunk order, so the thread
//! count may only change wall-clock — never packages, objectives, optimality
//! flags or even the evaluation counters. These tests pin that guarantee
//! across random queries over **every family in the scenario registry**
//! (`datagen::scenarios()`) × thread counts {1, 2, 8}, and separately pin
//! the anytime contract (budget expiry checked per chunk) under an 8-way
//! fan-out.

use std::time::{Duration, Instant};

use datagen::{recipes, scenarios, QueryParams, Seed};
use minidb::{Catalog, Table};
use packagebuilder::budget::Budget;
use packagebuilder::config::{EngineConfig, Strategy};
use packagebuilder::par::ParExec;
use packagebuilder::solver::{GreedySolver, IlpSolver, LocalSearchSolver, SolveOptions, Solver};
use packagebuilder::spec::PackageSpec;
use packagebuilder::{PackageEngine, PackageResult, ProgressiveShadingSolver, SketchRefineSolver};
use proptest::prelude::*;

/// The thread counts every case is evaluated at; 1 is the sequential
/// reference the parallel runs must match bit for bit.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Evaluates `query` on a fresh engine whose thread budget is `threads`.
/// Only `num_threads` varies between runs — the portfolio worker set is
/// pinned to the sequential default so the *configuration* is identical and
/// any result difference is attributable to the fan-out alone.
fn run_at(
    table: Table,
    strategy: Strategy,
    threads: usize,
    query: &str,
) -> Result<PackageResult, String> {
    let mut catalog = Catalog::new();
    catalog.register(table);
    let mut config = EngineConfig::with_strategy(strategy)
        .with_seed(7)
        .with_num_threads(1);
    config.num_threads = threads; // keep the worker set fixed; vary threads only
    PackageEngine::with_config(catalog, config)
        .execute_paql(query)
        .map_err(|e| e.to_string())
}

/// Asserts two runs are bit-identical, counters included.
fn assert_runs_identical(
    a: &Result<PackageResult, String>,
    b: &Result<PackageResult, String>,
    context: &str,
) {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            assert_eq!(x.packages, y.packages, "{context}: packages differ");
            assert_eq!(x.objectives, y.objectives, "{context}: objectives differ");
            assert_eq!(x.optimal, y.optimal, "{context}: optimality differs");
            assert_eq!(x.stats.nodes, y.stats.nodes, "{context}: nodes differ");
            assert_eq!(
                x.stats.iterations, y.stats.iterations,
                "{context}: iterations differ"
            );
        }
        (Err(x), Err(y)) => assert_eq!(x, y, "{context}: errors differ"),
        (x, y) => panic!("{context}: one run failed, the other did not: {x:?} vs {y:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Random queries over every registered scenario, solved at 1/2/8
    /// threads with the Auto planner and both heuristic solvers: identical
    /// outcomes, down to the evaluation counters.
    #[test]
    fn thread_count_never_changes_results(
        scenario_pick in 0usize..64,
        strategy_pick in 0usize..3,
        seed in 0u64..5_000,
        count in 1u64..5,
        col_a in 0usize..4,
        col_b in 0usize..4,
        agg_pick in 0usize..4,
        lo in 10.0f64..500.0,
        width in 10.0f64..2000.0,
        use_filter in prop::bool::ANY,
        minimize in prop::bool::ANY,
    ) {
        let registry = scenarios();
        let scenario = &registry[scenario_pick % registry.len()];
        let strategy = [Strategy::Auto, Strategy::LocalSearch, Strategy::Greedy][strategy_pick];
        let text = scenario.random_query(&QueryParams {
            count, col_a, col_b, agg_pick, lo, width, use_filter, repeat: None, minimize,
        });
        let reference = run_at(
            (scenario.build)(scenario.property_n, Seed(seed)),
            strategy,
            THREAD_COUNTS[0],
            &text,
        );
        for &threads in &THREAD_COUNTS[1..] {
            let run = run_at(
                (scenario.build)(scenario.property_n, Seed(seed)),
                strategy,
                threads,
                &text,
            );
            assert_runs_identical(
                &reference,
                &run,
                &format!("{}/{strategy:?} at {threads} threads (query: {text})", scenario.name),
            );
        }
    }
}

const WIDE_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R \
    SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
    MAXIMIZE SUM(P.protein)";

/// A candidate set wider than one chunk (5000 > CHUNK_WIDTH), so the swap
/// scans, partitioning spreads and column materialization genuinely cross
/// chunk boundaries — the regime where a reduction-order bug would show.
#[test]
fn multi_chunk_candidate_sets_are_thread_count_invariant() {
    for strategy in [
        Strategy::Greedy,
        Strategy::SketchRefine,
        Strategy::ProgressiveShading,
        Strategy::LocalSearch,
    ] {
        let reference = run_at(recipes(5_000, Seed(11)), strategy, 1, WIDE_QUERY);
        assert!(reference.is_ok(), "{strategy:?} failed: {reference:?}");
        for threads in [2usize, 8] {
            let run = run_at(recipes(5_000, Seed(11)), strategy, threads, WIDE_QUERY);
            assert_runs_identical(
                &reference,
                &run,
                &format!("{strategy:?} at {threads} threads, n=5000"),
            );
        }
    }
}

/// Parallel view construction (base scan + column materialization) produces
/// the same columns, inclusion masks and chunk metadata as the sequential
/// build, bit for bit.
#[test]
fn parallel_view_builds_match_sequential_builds() {
    let table = recipes(9_000, Seed(3));
    let analyzed = paql::compile(WIDE_QUERY, table.schema()).unwrap();
    let sequential = PackageSpec::build(&analyzed, &table).unwrap();
    for threads in [2usize, 8] {
        let parallel = PackageSpec::build_par(&analyzed, &table, ParExec::new(threads)).unwrap();
        assert_eq!(sequential.candidates, parallel.candidates);
        assert_eq!(
            sequential.view().terms().len(),
            parallel.view().terms().len()
        );
        for (s, p) in sequential
            .view()
            .terms()
            .iter()
            .zip(parallel.view().terms())
        {
            assert_eq!(s.coeffs_vec(), p.coeffs_vec(), "{threads} threads");
            assert_eq!(s.included_vec(), p.included_vec(), "{threads} threads");
            assert_eq!(s.chunk_meta(), p.chunk_meta(), "{threads} threads");
        }
    }
}

/// The exact core under fan-out: parallel branch and bound (batched frontier
/// solves, merged in batch order — see `lp_solver::branch_bound`) returns
/// bit-identical packages, objectives, optimality flags *and* node/iteration
/// counters at every thread count. The candidate set is wide enough
/// (2 000 ≥ the ILP's parallel threshold) that the thread budget genuinely
/// reaches the solver, so this pins the whole plumbing chain:
/// `EngineConfig::num_threads` → `SolveOptions::par` → `SolverConfig::num_threads`.
#[test]
fn exact_ilp_is_thread_count_invariant() {
    let reference = run_at(recipes(2_000, Seed(11)), Strategy::Ilp, 1, WIDE_QUERY);
    let ok = reference.as_ref().expect("exact solve at n=2000 succeeds");
    assert!(ok.optimal, "the exact worker should prove optimality here");
    for threads in [2usize, 8] {
        let run = run_at(recipes(2_000, Seed(11)), Strategy::Ilp, threads, WIDE_QUERY);
        assert_runs_identical(
            &reference,
            &run,
            &format!("Ilp at {threads} threads, n=2000"),
        );
    }
}

/// Same pin across **every registered scenario** at that scenario's
/// branching-heavy exact query (`Scenario::exact_query` at
/// `Scenario::exact_n` rows), so branch and bound explores a real frontier
/// on every family — an integral root relaxation would make the parallel
/// path trivially identical.
#[test]
fn exact_ilp_is_thread_count_invariant_across_scenarios() {
    for scenario in scenarios() {
        let reference = run_at(
            (scenario.build)(scenario.exact_n, Seed(17)),
            Strategy::Ilp,
            1,
            &scenario.exact_query,
        );
        for threads in [2usize, 8] {
            let run = run_at(
                (scenario.build)(scenario.exact_n, Seed(17)),
                Strategy::Ilp,
                threads,
                &scenario.exact_query,
            );
            assert_runs_identical(
                &reference,
                &run,
                &format!("Ilp/{} at {threads} threads", scenario.name),
            );
        }
    }
}

/// The anytime contract *inside* parallel branch and bound: a budget that
/// expires while a frontier batch is in flight stops the search at the next
/// batch boundary with the incumbent kept — never an error, never an
/// unbounded overrun, never a claimed optimum.
#[test]
fn budget_expiry_mid_batch_keeps_the_anytime_contract() {
    let table = recipes(4_000, Seed(20140901));
    let query = "SELECT PACKAGE(R) AS P FROM recipes R \
        SUCH THAT COUNT(*) = 10 AND SUM(P.calories) BETWEEN 5000 AND 5200 \
        MAXIMIZE SUM(P.protein)";
    let analyzed = paql::compile(query, table.schema()).unwrap();
    let spec = PackageSpec::build(&analyzed, &table).unwrap();
    let limit = Duration::from_millis(30);
    let allowed = limit * 2 + Duration::from_millis(120);
    let opts = SolveOptions {
        budget: Budget::with_limit(limit),
        par: ParExec::new(8),
        ..SolveOptions::default()
    };
    let start = Instant::now();
    let out = IlpSolver
        .solve(spec.view(), &opts)
        .expect("a truncated exact solve degrades, it does not fail");
    let elapsed = start.elapsed();
    assert!(
        elapsed <= allowed,
        "exact solver overran its {limit:?} budget under 8 threads: {elapsed:?}"
    );
    assert!(!out.optimal, "a truncated solve must not claim optimality");
    for (p, _) in &out.packages {
        assert!(spec.is_valid(p).unwrap());
    }
}

/// The anytime contract under fan-out: a budget that expires inside a
/// parallel chunk scan stops the scan at the next chunk boundary and the
/// solver returns its (valid) best-so-far result — never an error, never an
/// unbounded overrun. Mirrors the sequential bounds of `time_budget.rs`.
#[test]
fn budget_expiry_inside_a_parallel_chunk_scan_degrades_gracefully() {
    let table = recipes(15_000, Seed(20140901));
    let query = "SELECT PACKAGE(R) AS P FROM recipes R \
        SUCH THAT COUNT(*) = 300 AND SUM(P.calories) BETWEEN 150000 AND 180000 \
        MAXIMIZE SUM(P.protein)";
    let analyzed = paql::compile(query, table.schema()).unwrap();
    let spec = PackageSpec::build(&analyzed, &table).unwrap();
    let limit = Duration::from_millis(10);
    // Same allowance as the sequential time-budget suite: ~2× the limit plus
    // fixed setup slack for debug builds and scheduler noise.
    let allowed = limit * 2 + Duration::from_millis(60);
    let solvers: Vec<(&str, Box<dyn Solver>)> = vec![
        ("greedy", Box::new(GreedySolver)),
        ("local-search", Box::new(LocalSearchSolver)),
        ("sketch-refine", Box::new(SketchRefineSolver)),
        ("progressive-shading", Box::new(ProgressiveShadingSolver)),
    ];
    for (name, solver) in solvers {
        let opts = SolveOptions {
            budget: Budget::with_limit(limit),
            par: ParExec::new(8),
            ..SolveOptions::default()
        };
        let start = Instant::now();
        let out = solver
            .solve(spec.view(), &opts)
            .unwrap_or_else(|e| panic!("{name} must truncate, not fail: {e}"));
        let elapsed = start.elapsed();
        assert!(
            elapsed <= allowed,
            "{name} overran its {limit:?} budget under 8-way fan-out: {elapsed:?}"
        );
        assert!(!out.optimal, "{name} claimed optimality when truncated");
        for (p, _) in &out.packages {
            assert!(spec.is_valid(p).unwrap(), "{name} returned invalid package");
        }
    }
    // An already-expired budget bails out before any chunk runs.
    let opts = SolveOptions {
        budget: Budget::with_limit(Duration::ZERO),
        par: ParExec::new(8),
        ..SolveOptions::default()
    };
    let start = Instant::now();
    let out = GreedySolver.solve(spec.view(), &opts).unwrap();
    assert!(!out.optimal);
    assert!(start.elapsed() < allowed);
}
