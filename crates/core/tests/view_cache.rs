//! Engine-level tests of the cross-query view cache ([`packagebuilder::cache`]):
//! warm solves must be bit-identical to cold solves, relation mutation must
//! never serve a stale view, and the cached building blocks (columns,
//! partitionings) must actually be reused.

use std::sync::Arc;

use datagen::{recipes, Seed};
use minidb::{Catalog, Tuple, Value};
use packagebuilder::budget::Budget;
use packagebuilder::config::{EngineConfig, Strategy};
use packagebuilder::par::ParExec;
use packagebuilder::{PackageEngine, ViewCache};

const MEAL_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
    SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE SUM(P.protein)";

const SMALL_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R \
    SUCH THAT COUNT(*) = 2 AND SUM(P.calories) <= 1200 MAXIMIZE SUM(P.protein)";

fn engine(n: usize, seed: u64, config: EngineConfig) -> PackageEngine {
    let mut catalog = Catalog::new();
    catalog.register(recipes(n, Seed(seed)));
    PackageEngine::with_config(catalog, config)
}

/// A recipe row no generated recipe can beat: tiny calories, huge protein.
fn super_recipe(id: i64) -> Tuple {
    Tuple::new(vec![
        Value::Int(id),
        Value::Text("engineered protein bar".into()),
        Value::Text("snack".into()),
        Value::Text("american".into()),
        Value::Float(100.0), // calories
        Value::Float(500.0), // protein
        Value::Float(1.0),   // fat
        Value::Float(1.0),   // carbs
        Value::Float(0.0),   // sugar
        Value::Float(50.0),  // sodium
        Value::Float(0.0),   // fiber
        Value::Text("free".into()),
        Value::Bool(true),
        Value::Int(1),
        Value::Float(2.0),
        Value::Float(5.0),
    ])
}

#[test]
fn warm_solves_are_bit_identical_to_cold_solves() {
    // Same engine, same query, every strategy that Auto can deploy plus the
    // sketch path the cache most benefits: the second (cached) solve must
    // return exactly the first solve's package.
    for strategy in [
        Strategy::Auto,
        Strategy::Ilp,
        Strategy::SketchRefine,
        Strategy::LocalSearch,
        Strategy::Greedy,
    ] {
        let e = engine(
            2_000,
            11,
            EngineConfig::with_strategy(strategy).with_seed(11),
        );
        let cold = e.execute_paql(MEAL_QUERY).unwrap();
        let warm = e.execute_paql(MEAL_QUERY).unwrap();
        assert_eq!(
            cold.best(),
            warm.best(),
            "{strategy:?}: warm package differs from cold"
        );
        assert_eq!(cold.objectives, warm.objectives, "{strategy:?}");
        let stats = e.view_cache().stats();
        assert_eq!((stats.misses, stats.hits), (1, 1), "{strategy:?}");
        // The hit rebuilt nothing: every column came from the bank.
        assert_eq!(stats.columns_built, 3, "{strategy:?}");
        assert_eq!(stats.columns_reused, 3, "{strategy:?}");
    }
}

#[test]
fn cached_engines_agree_with_uncached_engines() {
    let cached = engine(1_500, 3, EngineConfig::default().with_seed(3));
    let uncached = engine(
        1_500,
        3,
        EngineConfig::default().with_seed(3).with_cache(false),
    );
    let a = cached.execute_paql(MEAL_QUERY).unwrap();
    let b = cached.execute_paql(MEAL_QUERY).unwrap(); // warm
    let c = uncached.execute_paql(MEAL_QUERY).unwrap();
    assert_eq!(a.best(), c.best());
    assert_eq!(b.best(), c.best());
    assert_eq!(uncached.view_cache().stats().misses, 0, "cache disabled");
    assert!(uncached.view_cache().is_empty());
}

#[test]
fn mutating_the_relation_never_serves_a_stale_view() {
    // The regression the cache must not introduce: solve, mutate the base
    // table, solve again — the second answer must reflect the new contents.
    let mut e = engine(60, 5, EngineConfig::with_strategy(Strategy::Ilp));
    let before = e.execute_paql(SMALL_QUERY).unwrap();
    let stale_objective = before.best_objective().unwrap();

    let id = e.catalog().table("recipes").unwrap().len() as i64;
    e.catalog_mut()
        .table_mut("recipes")
        .unwrap()
        .insert(super_recipe(id))
        .unwrap();

    let after = e.execute_paql(SMALL_QUERY).unwrap();
    let fresh_objective = after.best_objective().unwrap();
    assert!(
        fresh_objective > stale_objective + 100.0,
        "stale view served: {fresh_objective} vs {stale_objective}"
    );
    // The engineered recipe is in the winning package.
    let best = after.best().unwrap();
    assert!(best.tuple_ids().iter().any(|t| t.index() == id as usize));
    // Both solves were misses — the fingerprint moved, nothing could hit.
    let stats = e.view_cache().stats();
    assert_eq!((stats.misses, stats.hits), (2, 0));

    // And a from-scratch engine over the same mutated catalog agrees.
    let fresh = PackageEngine::new(e.catalog().clone());
    let oracle = fresh.execute_paql(SMALL_QUERY).unwrap();
    assert_eq!(after.best(), oracle.best());
}

#[test]
fn re_registering_a_relation_invalidates_too() {
    let mut e = engine(80, 7, EngineConfig::with_strategy(Strategy::Ilp));
    let before = e.execute_paql(SMALL_QUERY).unwrap();
    // Replace the relation wholesale with a differently-seeded table.
    e.catalog_mut().register(recipes(80, Seed(8)));
    let after = e.execute_paql(SMALL_QUERY).unwrap();
    let fresh = PackageEngine::new(e.catalog().clone());
    assert_eq!(
        after.best_objective(),
        fresh.execute_paql(SMALL_QUERY).unwrap().best_objective()
    );
    // (The two seeds may coincidentally share an objective; the strong
    // assertion is agreement with the oracle plus the forced miss below.)
    assert_eq!(e.view_cache().stats().hits, 0);
    assert_eq!(e.view_cache().stats().misses, 2);
    let _ = before;
}

#[test]
fn partitioning_is_computed_once_across_repeated_queries() {
    let e = engine(1_000, 9, EngineConfig::default().with_seed(9));
    let query = paql::parse(MEAL_QUERY).unwrap();
    let spec_a = e.build_spec(&query).unwrap();
    let spec_b = e.build_spec(&query).unwrap();
    let pa = spec_a
        .view()
        .partitioning(64, 9, &Budget::unlimited(), ParExec::sequential())
        .unwrap();
    let pb = spec_b
        .view()
        .partitioning(64, 9, &Budget::unlimited(), ParExec::sequential())
        .unwrap();
    assert!(
        Arc::ptr_eq(&pa, &pb),
        "second spec re-partitioned instead of pulling the memo"
    );
    assert_eq!(pa.len(), pb.len());
}

#[test]
fn sub_ilp_memo_serves_warm_refines_with_identical_stats() {
    // The refine phase memoizes each partition's *proven-optimal* sub-ILP in
    // the cached view's `PartitionMemo`; a repeated query replays the stored
    // assignments and their node/iteration counters instead of re-solving.
    // The contract is the cache PR's, one level deeper: warm must equal cold
    // down to the evaluation counters.
    let e = engine(
        2_000,
        13,
        EngineConfig::with_strategy(Strategy::SketchRefine).with_seed(13),
    );
    let cold = e.execute_paql(MEAL_QUERY).unwrap();
    let query = paql::parse(MEAL_QUERY).unwrap();
    let spec = e.build_spec(&query).unwrap();
    assert!(
        spec.view().partition_memo().sub_ilp_len() > 0,
        "the cold refine pass stored no sub-ILP solutions"
    );
    let warm = e.execute_paql(MEAL_QUERY).unwrap();
    assert_eq!(cold.best(), warm.best());
    assert_eq!(cold.objectives, warm.objectives);
    assert_eq!(cold.stats.nodes, warm.stats.nodes, "node counters drifted");
    assert_eq!(
        cold.stats.iterations, warm.stats.iterations,
        "iteration counters drifted"
    );
}

#[test]
fn engines_can_share_a_cache() {
    let cache = ViewCache::new(8);
    let mut catalog = Catalog::new();
    catalog.register(recipes(400, Seed(13)));
    let a =
        PackageEngine::with_shared_cache(catalog.clone(), EngineConfig::default(), cache.clone());
    let b = PackageEngine::with_shared_cache(catalog, EngineConfig::default(), cache.clone());
    let ra = a.execute_paql(MEAL_QUERY).unwrap();
    let rb = b.execute_paql(MEAL_QUERY).unwrap(); // warm, via a's work
    assert_eq!(ra.best(), rb.best());
    assert_eq!((cache.stats().misses, cache.stats().hits), (1, 1));
    // Cloned engines share too (a clone is another session over the cache).
    let c = a.clone();
    c.execute_paql(MEAL_QUERY).unwrap();
    assert_eq!(cache.stats().hits, 2);
}

#[test]
fn explicit_invalidation_reclaims_entries() {
    let e = engine(200, 17, EngineConfig::default());
    e.execute_paql(MEAL_QUERY).unwrap();
    assert_eq!(e.view_cache().len(), 1);
    e.invalidate_relation("recipes");
    assert!(e.view_cache().is_empty());
    // Next solve rebuilds and re-banks; correctness is unaffected.
    let again = e.execute_paql(MEAL_QUERY).unwrap();
    assert!(!again.is_empty());
    assert_eq!(e.view_cache().len(), 1);
}

#[test]
fn term_subset_queries_extend_rather_than_rebuild() {
    let e = engine(500, 19, EngineConfig::default());
    // Prime with a narrower query (2 terms), then run the meal query (3
    // terms): only SUM(protein) should be materialized the second time.
    e.execute_paql(
        "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
         SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500",
    )
    .unwrap();
    e.execute_paql(MEAL_QUERY).unwrap();
    let stats = e.view_cache().stats();
    assert_eq!((stats.misses, stats.hits), (1, 1));
    assert_eq!(stats.columns_reused, 2);
    assert_eq!(stats.columns_built, 3, "2 on the miss + 1 extension");
}
