//! Regression tests distilled from the workload gauntlet
//! (`harness -- gauntlet` in `pb-bench`): each test pins an engine
//! behaviour the gauntlet's adversarial scenario families first surfaced,
//! at a size small enough for the tier-1 suite.

use datagen::{scenario, Seed};
use minidb::{Catalog, Table};
use packagebuilder::config::{EngineConfig, Strategy};
use packagebuilder::pruning::derive_bounds;
use packagebuilder::spec::PackageSpec;
use packagebuilder::{PackageEngine, PackageResult};
use paql::{compile, parse};

fn engine_for(table: Table, strategy: Strategy) -> PackageEngine {
    let mut catalog = Catalog::new();
    catalog.register(table);
    PackageEngine::with_config(catalog, EngineConfig::with_strategy(strategy).with_seed(42))
}

fn run(table: Table, strategy: Strategy, query: &str) -> PackageResult {
    engine_for(table, strategy)
        .execute_paql(query)
        .unwrap_or_else(|e| panic!("{strategy:?} failed: {e}"))
}

/// The tight-feasibility knapsack: `SUM(weight) BETWEEN 98 AND 102` over a
/// population whose high-value "decoy" rows push a density-greedy pick far
/// over the window, so the greedy construction alone lands infeasible and
/// only cross-population repair (or honestly reporting no package) is
/// acceptable. The engine contract under test: a `Greedy` result is either
/// a *repaired feasible* package or empty — never a silently invalid
/// package handed back as a solution.
#[test]
fn greedy_on_the_tight_knapsack_window_is_repaired_feasible_or_empty() {
    let s = scenario("knapsack").expect("knapsack family is registered");
    let q = &s.queries[0];
    assert_eq!(q.label, "tight_window");
    assert!(q.expect_feasible);

    // The window is genuinely satisfiable: the exact route returns a valid
    // incumbent, which witnesses feasibility even when the optimality
    // *proof* is truncated at the branch-and-bound node cap (the
    // near-identical planted weights make the window highly symmetric, a
    // worst case for bound-based pruning).
    let exact = run((s.build)(s.exact_n, Seed(1)), Strategy::Ilp, &q.text);
    assert!(
        !exact.is_empty(),
        "the tight window must be feasible for this test to mean anything"
    );

    for seed in [1u64, 7, 23] {
        let table = (s.build)(s.exact_n, Seed(seed));
        let analyzed = compile(&q.text, table.schema()).unwrap();
        let spec = PackageSpec::build(&analyzed, &table).unwrap();
        // `execute_paql` returning Ok is itself part of the contract: an
        // invalid package would make the engine's internal re-validation
        // return an error instead.
        let greedy = run((s.build)(s.exact_n, Seed(seed)), Strategy::Greedy, &q.text);
        for p in &greedy.packages {
            assert!(
                spec.is_valid_interpreted(p).unwrap(),
                "seed {seed}: greedy returned an invalid package"
            );
        }
    }
}

/// An unreachable FILTERed SUM target on the wide family:
/// `derive_bounds` must prove infeasibility from chunk metadata alone —
/// the filtered value range caps what any package can reach.
#[test]
fn unreachable_filtered_sum_targets_are_proven_infeasible_by_pruning() {
    let s = scenario("wide").expect("wide family is registered");
    let q = s
        .queries
        .iter()
        .find(|q| q.label == "unreachable_target")
        .expect("the wide family registers its unreachable query");
    assert!(!q.expect_feasible);

    let table = (s.build)(s.property_n, Seed(5));
    let analyzed = compile(&q.text, table.schema()).unwrap();
    let spec = PackageSpec::build(&analyzed, &table).unwrap();
    let bounds = derive_bounds(spec.view())
        .clamp_to(spec.candidate_count() as u64 * spec.view().max_multiplicity() as u64);
    assert!(
        bounds.is_empty(),
        "chunk metadata must prove the 10^9 filtered target unreachable, got {bounds:?}"
    );
}

/// The same proof at the engine level: the contradiction short-circuits in
/// `run_plan` before any solver runs, for *every* strategy — an empty,
/// provably-optimal answer with zero search nodes, in microseconds.
#[test]
fn the_engine_short_circuits_provably_infeasible_queries_before_solving() {
    let s = scenario("wide").expect("wide family is registered");
    let q = s
        .queries
        .iter()
        .find(|q| q.label == "unreachable_target")
        .unwrap();
    for strategy in [
        Strategy::Auto,
        Strategy::Ilp,
        Strategy::PrunedEnumeration,
        Strategy::LocalSearch,
        Strategy::Greedy,
        Strategy::SketchRefine,
        Strategy::Portfolio,
    ] {
        let r = run((s.build)(s.property_n, Seed(5)), strategy, &q.text);
        assert!(r.is_empty(), "{strategy:?}: expected no package");
        assert!(
            r.optimal,
            "{strategy:?}: a proven contradiction is an exact (optimal) answer"
        );
        assert_eq!(
            r.stats.nodes, 0,
            "{strategy:?}: the proof must precede any search"
        );
    }
}

/// The knapsack family's unreachable window (`SUM(weight) BETWEEN 1 AND 40`
/// with `COUNT(*) = 5` over weights ≥ 19.6) is likewise proven infeasible
/// from the paper's cardinality rules: ⌊40 / MIN(weight)⌋ = 2 < 5.
#[test]
fn contradictory_knapsack_windows_short_circuit_from_cardinality_bounds() {
    let s = scenario("knapsack").expect("knapsack family is registered");
    let q = s
        .queries
        .iter()
        .find(|q| q.label == "unreachable_window")
        .expect("the knapsack family registers its unreachable query");
    assert!(!q.expect_feasible);

    let table = (s.build)(s.property_n, Seed(3));
    let analyzed = compile(&q.text, table.schema()).unwrap();
    let spec = PackageSpec::build(&analyzed, &table).unwrap();
    let bounds = derive_bounds(spec.view())
        .clamp_to(spec.candidate_count() as u64 * spec.view().max_multiplicity() as u64);
    assert!(
        bounds.is_empty(),
        "expected contradictory bounds: {bounds:?}"
    );

    let r = run((s.build)(s.property_n, Seed(3)), Strategy::Auto, &q.text);
    assert!(r.is_empty() && r.optimal && r.stats.nodes == 0);
}

/// Pins the `Auto` route per gauntlet family and size. The gauntlet
/// surfaced the misroute this guards against: the old policy handed
/// *every* large linearizable query to sketch→refine unconditionally, so
/// the lineitem family paid a ~2% objective gap (and the travel family
/// came home empty on a feasible query) at sizes where the exact proof is
/// milliseconds-cheap. Above `sketch_threshold`, `Auto` now races a
/// portfolio instead — the node-capped exact worker wins outright where
/// the proof is cheap, and the heuristic workers carry the query where it
/// is not.
#[test]
fn auto_routes_each_gauntlet_family_as_pinned() {
    // (family, rows, expected route for the family's first gauntlet query).
    // Routing keys off the *candidate* count, i.e. rows surviving the
    // query's base predicate — which is why recipes@500 pins `Ilp` while
    // lineitem@10_000 pins `Portfolio`.
    let cases: &[(&str, usize, Strategy)] = &[
        ("recipes", 500, Strategy::Ilp),
        ("recipes", 8_000, Strategy::Portfolio),
        ("stocks", 500, Strategy::Ilp),
        ("stocks", 8_000, Strategy::Portfolio),
        ("knapsack", 400, Strategy::Ilp),
        ("metrics", 1_000, Strategy::Ilp),
        ("wide", 600, Strategy::Ilp),
        ("lineitem", 10_000, Strategy::Portfolio),
    ];
    for &(family, n, expected) in cases {
        let s = scenario(family).unwrap_or_else(|| panic!("{family} is registered"));
        let q = &s.queries[0];
        let engine = engine_for((s.build)(n, Seed(1)), Strategy::Auto);
        let query = parse(&q.text).unwrap();
        let spec = engine.build_spec(&query).unwrap();
        assert_eq!(
            engine.resolve_strategy(&spec),
            expected,
            "{family}@{n} ({})",
            q.label
        );
    }
}

/// The `Auto` portfolio route must node-cap its exact worker — that cap is
/// what bounds the race's latency on branching-hostile instances — while a
/// caller *forcing* `Strategy::Portfolio` keeps the solver's own limits.
#[test]
fn the_auto_portfolio_route_node_caps_its_exact_worker() {
    let s = scenario("recipes").expect("recipes family is registered");
    let q = &s.queries[0];
    let engine = engine_for((s.build)(8_000, Seed(1)), Strategy::Auto);
    let query = parse(&q.text).unwrap();
    let spec = engine.build_spec(&query).unwrap();

    let auto_plan = engine.plan(&spec).unwrap();
    assert_eq!(auto_plan.strategy, Strategy::Portfolio);
    assert_eq!(
        auto_plan.options.solver.max_nodes,
        engine.config().auto_exact_node_cap,
        "the policy-chosen race must cap its exact worker"
    );

    let forced = engine
        .plan_with_strategy(&spec, Strategy::Portfolio)
        .unwrap();
    assert_eq!(
        forced.options.solver.max_nodes,
        engine.config().solver.max_nodes,
        "a forced race keeps the caller's solver limits"
    );
}
