//! Paged-determinism suite: out-of-core column storage is **bit-identical
//! to resident storage**, at every thread count, even under a starved
//! buffer pool.
//!
//! The out-of-core substrate (see `packagebuilder::column_store`) stores a
//! term column as spill-file pages behind an LRU buffer pool instead of one
//! dense vector. The contract: storage mode is invisible to every consumer —
//! packages, objectives, optimality flags and evaluation counters never
//! change, only where the column bytes live. These tests pin that guarantee
//! across random queries over **every family in the scenario registry**
//! (`datagen::scenarios()`) × threads {1, 8} with the pool starved to its
//! 2-page minimum, so every scan genuinely faults pages in and out while
//! solving.

use datagen::{recipes, scenarios, QueryParams, Seed};
use minidb::{Catalog, Table};
use packagebuilder::config::{EngineConfig, Strategy};
use packagebuilder::par::ParExec;
use packagebuilder::spec::PackageSpec;
use packagebuilder::{ColumnPolicy, PackageEngine, PackageResult};
use proptest::prelude::*;

/// Thread counts the paged runs are evaluated at; the resident sequential
/// run is the reference every combination must match bit for bit.
const THREAD_COUNTS: [usize; 2] = [1, 8];

/// The starvation pool: the smallest capacity the store accepts, far below
/// any multi-term view's working set, so scans continuously evict.
const STARVED_POOL_PAGES: usize = 2;

/// Evaluates `query` on a fresh engine pinned to the given storage mode and
/// thread count. Only storage and threads vary between runs — the portfolio
/// worker set is fixed at the sequential default, so any result difference
/// is attributable to paging or fan-out alone.
fn run_with(
    table: Table,
    strategy: Strategy,
    threads: usize,
    pool_pages: Option<usize>,
    query: &str,
) -> Result<PackageResult, String> {
    let mut catalog = Catalog::new();
    catalog.register(table);
    let mut config = EngineConfig::with_strategy(strategy)
        .with_seed(7)
        .with_num_threads(1);
    config.num_threads = threads;
    match pool_pages {
        // Budget 0 forces every build out-of-core through a pool of the
        // given capacity.
        Some(pages) => {
            config = config.with_column_memory_budget(0).with_pool_pages(pages);
        }
        None => config = config.with_column_memory_budget(usize::MAX),
    }
    PackageEngine::with_config(catalog, config)
        .execute_paql(query)
        .map_err(|e| e.to_string())
}

/// Asserts two runs are bit-identical, counters included.
fn assert_runs_identical(
    a: &Result<PackageResult, String>,
    b: &Result<PackageResult, String>,
    context: &str,
) {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            assert_eq!(x.packages, y.packages, "{context}: packages differ");
            assert_eq!(x.objectives, y.objectives, "{context}: objectives differ");
            assert_eq!(x.optimal, y.optimal, "{context}: optimality differs");
            assert_eq!(x.stats.nodes, y.stats.nodes, "{context}: nodes differ");
            assert_eq!(
                x.stats.iterations, y.stats.iterations,
                "{context}: iterations differ"
            );
        }
        (Err(x), Err(y)) => assert_eq!(x, y, "{context}: errors differ"),
        (x, y) => panic!("{context}: one run failed, the other did not: {x:?} vs {y:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Random queries over every registered scenario: a resident sequential
    /// reference run versus out-of-core runs through a 2-page starvation
    /// pool at 1 and 8 threads — identical outcomes, down to the evaluation
    /// counters.
    #[test]
    fn storage_mode_never_changes_results(
        scenario_pick in 0usize..64,
        strategy_pick in 0usize..3,
        seed in 0u64..5_000,
        count in 1u64..5,
        col_a in 0usize..4,
        col_b in 0usize..4,
        agg_pick in 0usize..4,
        lo in 10.0f64..500.0,
        width in 10.0f64..2000.0,
        use_filter in prop::bool::ANY,
        minimize in prop::bool::ANY,
    ) {
        let registry = scenarios();
        let scenario = &registry[scenario_pick % registry.len()];
        let strategy = [Strategy::Auto, Strategy::LocalSearch, Strategy::Greedy][strategy_pick];
        let text = scenario.random_query(&QueryParams {
            count, col_a, col_b, agg_pick, lo, width, use_filter, repeat: None, minimize,
        });
        let reference = run_with(
            (scenario.build)(scenario.property_n, Seed(seed)), strategy, 1, None, &text,
        );
        for &threads in &THREAD_COUNTS {
            let paged = run_with(
                (scenario.build)(scenario.property_n, Seed(seed)),
                strategy,
                threads,
                Some(STARVED_POOL_PAGES),
                &text,
            );
            assert_runs_identical(
                &reference,
                &paged,
                &format!("{}/{strategy:?} paged at {threads} threads (query: {text})", scenario.name),
            );
        }
    }
}

const WIDE_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R \
    SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
    MAXIMIZE SUM(P.protein)";

/// A candidate set spanning multiple chunks (5000 > CHUNK_WIDTH) solved by
/// every heuristic strategy: the partitioning spreads, swap scans and greedy
/// repair all cross page boundaries and still match the resident reference
/// bit for bit at both thread counts. The pool holds 4 of the view's 6
/// pages (3 terms × 2 chunks), so scans keep evicting without degenerating
/// into a miss on every single row access — starvation itself is pinned by
/// the proptest above and the buffer-pool unit tests.
#[test]
fn multi_chunk_solves_are_storage_mode_invariant() {
    for strategy in [
        Strategy::Greedy,
        Strategy::SketchRefine,
        Strategy::ProgressiveShading,
        Strategy::LocalSearch,
    ] {
        let reference = run_with(recipes(5_000, Seed(11)), strategy, 1, None, WIDE_QUERY);
        assert!(reference.is_ok(), "{strategy:?} failed: {reference:?}");
        for &threads in &THREAD_COUNTS {
            let paged = run_with(
                recipes(5_000, Seed(11)),
                strategy,
                threads,
                Some(4),
                WIDE_QUERY,
            );
            assert_runs_identical(
                &reference,
                &paged,
                &format!("{strategy:?} paged at {threads} threads, n=5000"),
            );
        }
    }
}

/// The exact core under paging: branch and bound over a paged view (its
/// constraint rows are linearized through chunk pins) proves the same
/// optimum with the same node and iteration counters as the resident run.
#[test]
fn exact_ilp_is_storage_mode_invariant() {
    let reference = run_with(recipes(2_000, Seed(11)), Strategy::Ilp, 1, None, WIDE_QUERY);
    let ok = reference.as_ref().expect("exact solve at n=2000 succeeds");
    assert!(ok.optimal, "the exact worker should prove optimality here");
    for &threads in &THREAD_COUNTS {
        let paged = run_with(
            recipes(2_000, Seed(11)),
            Strategy::Ilp,
            threads,
            Some(STARVED_POOL_PAGES),
            WIDE_QUERY,
        );
        assert_runs_identical(
            &reference,
            &paged,
            &format!("Ilp paged at {threads} threads, n=2000"),
        );
    }
}

/// The widest registered schema through the starved pool: the wide
/// scenario's 120-column relation drives a FILTERed multi-term view whose
/// term columns dwarf the 2-page pool, and the exact solve still matches
/// the resident reference bit for bit.
#[test]
fn wide_filtered_views_are_storage_mode_invariant() {
    let scenario = datagen::scenario("wide").expect("wide family is registered");
    let reference = run_with(
        (scenario.build)(scenario.exact_n, Seed(13)),
        Strategy::Ilp,
        1,
        None,
        &scenario.exact_query,
    );
    for &threads in &THREAD_COUNTS {
        let paged = run_with(
            (scenario.build)(scenario.exact_n, Seed(13)),
            Strategy::Ilp,
            threads,
            Some(STARVED_POOL_PAGES),
            &scenario.exact_query,
        );
        assert_runs_identical(
            &reference,
            &paged,
            &format!("Ilp/wide paged at {threads} threads"),
        );
    }
}

/// Paged view construction produces the same coefficients, inclusion masks
/// and chunk metadata as the resident build, bit for bit — the foundation
/// the solver-level invariance above rests on.
#[test]
fn paged_view_builds_match_resident_builds() {
    let table = recipes(9_000, Seed(3));
    let analyzed = paql::compile(WIDE_QUERY, table.schema()).unwrap();
    let resident = PackageSpec::build_with(
        &analyzed,
        &table,
        &ColumnPolicy::resident(),
        ParExec::sequential(),
    )
    .unwrap();
    for threads in [1usize, 8] {
        let paged = PackageSpec::build_with(
            &analyzed,
            &table,
            &ColumnPolicy::paged(STARVED_POOL_PAGES),
            ParExec::new(threads),
        )
        .unwrap();
        assert_eq!(resident.candidates, paged.candidates);
        assert_eq!(resident.view().terms().len(), paged.view().terms().len());
        assert!(paged.view().is_paged(), "paged policy must actually spill");
        assert!(!resident.view().is_paged());
        for (r, p) in resident.view().terms().iter().zip(paged.view().terms()) {
            assert_eq!(r.coeffs_vec(), p.coeffs_vec(), "{threads} threads");
            assert_eq!(r.included_vec(), p.included_vec(), "{threads} threads");
            assert_eq!(r.chunk_meta(), p.chunk_meta(), "{threads} threads");
        }
    }
}
