//! Property tests: the columnar [`CandidateView`] path agrees with the
//! interpreted oracle on every scenario.
//!
//! The refactor routed `objective_value`, `violation` and `is_valid` through
//! precomputed columns. The interpreted expression-tree path
//! ([`Package::formula_violation`], [`Package::satisfies`],
//! [`Package::objective_value`]) is kept as the oracle; these properties
//! assert bit-for-bit-close agreement across random queries over all four
//! datagen scenarios (recipes, stocks, travel, synthetic) and random
//! packages, including FILTER terms, non-linear aggregates, REPEAT
//! multiplicities and empty packages.

use minidb::{Table, TupleId};
use packagebuilder::package::Package;
use packagebuilder::spec::PackageSpec;
use proptest::prelude::*;

use datagen::{recipes, stocks, travel_options, uniform_table, zipf_table, Seed};

/// The four datagen scenarios, with a numeric column pool and an optional
/// categorical filter clause each.
#[derive(Debug, Clone, Copy)]
enum Scenario {
    Recipes,
    Stocks,
    Travel,
    Synthetic,
}

impl Scenario {
    fn table(self, seed: u64) -> Table {
        match self {
            Scenario::Recipes => recipes(40, Seed(seed)),
            Scenario::Stocks => stocks(40, Seed(seed)),
            Scenario::Travel => travel_options(20, 15, 5, Seed(seed)),
            Scenario::Synthetic => {
                if seed.is_multiple_of(2) {
                    uniform_table("t", 30, 2.0, 30.0, Seed(seed))
                } else {
                    zipf_table("t", 30, 1.3, 2.0, 30.0, Seed(seed))
                }
            }
        }
    }

    fn relation(self) -> &'static str {
        match self {
            Scenario::Recipes => "recipes",
            Scenario::Stocks => "stocks",
            Scenario::Travel => "travel_options",
            Scenario::Synthetic => "t",
        }
    }

    fn columns(self) -> &'static [&'static str] {
        match self {
            Scenario::Recipes => &["calories", "protein", "fat", "price"],
            Scenario::Stocks => &["price", "expected_return", "risk"],
            Scenario::Travel => &["price", "comfort"],
            Scenario::Synthetic => &["w", "v"],
        }
    }

    /// A categorical FILTER clause, exercised on half the queries.
    fn filter(self) -> Option<&'static str> {
        match self {
            Scenario::Recipes => Some("R.gluten = 'free'"),
            Scenario::Stocks => Some("R.sector = 'technology'"),
            Scenario::Travel => Some("R.kind = 'hotel'"),
            Scenario::Synthetic => None,
        }
    }
}

const SCENARIOS: [Scenario; 4] = [
    Scenario::Recipes,
    Scenario::Stocks,
    Scenario::Travel,
    Scenario::Synthetic,
];

/// Builds a random PaQL query text for a scenario from drawn parameters.
#[allow(clippy::too_many_arguments)]
fn build_query(
    scenario: Scenario,
    count: u64,
    col_a: usize,
    col_b: usize,
    agg_pick: usize,
    lo: f64,
    width: f64,
    use_filter: bool,
    repeat: Option<u32>,
    minimize: bool,
) -> String {
    let rel = scenario.relation();
    let cols = scenario.columns();
    let a = cols[col_a % cols.len()];
    let b = cols[col_b % cols.len()];
    let agg = ["SUM", "AVG", "MIN", "MAX"][agg_pick % 4];
    let repeat = repeat.map(|k| format!(" REPEAT {k}")).unwrap_or_default();
    let filter = match (use_filter, scenario.filter()) {
        (true, Some(f)) => format!(" FILTER (WHERE {f})"),
        _ => String::new(),
    };
    let dir = if minimize { "MINIMIZE" } else { "MAXIMIZE" };
    format!(
        "SELECT PACKAGE(R) AS P FROM {rel} R{repeat} \
         SUCH THAT COUNT(*) <= {count} AND {agg}(P.{a}){filter} BETWEEN {lo:.2} AND {:.2} \
         {dir} SUM(P.{b})",
        lo + width
    )
}

/// Draws a random package over the spec's candidates (possibly empty,
/// possibly with repeated members up to the REPEAT bound).
fn random_package(spec: &PackageSpec<'_>, picks: &[usize], mults: &[u32]) -> Package {
    let mut p = Package::new();
    for (pick, mult) in picks.iter().zip(mults) {
        if spec.candidate_count() == 0 {
            break;
        }
        let tid = spec.candidates[pick % spec.candidate_count()];
        let m = (*mult).clamp(1, spec.max_multiplicity);
        if p.multiplicity(tid) + m <= spec.max_multiplicity {
            p.add(tid, m);
        }
    }
    p
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Columnar objective, violation and validity agree with the interpreted
    /// oracle on random queries and random packages across every scenario.
    #[test]
    fn columnar_matches_interpreted_oracle(
        scenario_pick in 0usize..4,
        seed in 0u64..5_000,
        count in 1u64..5,
        col_a in 0usize..4,
        col_b in 0usize..4,
        agg_pick in 0usize..4,
        lo in 10.0f64..500.0,
        width in 10.0f64..2000.0,
        use_filter in prop::bool::ANY,
        repeat in prop::option::of(2u32..4),
        minimize in prop::bool::ANY,
        picks in prop::collection::vec(0usize..64, 0..6),
        mults in prop::collection::vec(1u32..4, 6),
    ) {
        let scenario = SCENARIOS[scenario_pick];
        let table = scenario.table(seed);
        let text = build_query(
            scenario, count, col_a, col_b, agg_pick, lo, width, use_filter, repeat, minimize,
        );
        let analyzed = paql::compile(&text, table.schema()).expect("generated query compiles");
        let spec = PackageSpec::build(&analyzed, &table).unwrap();
        let package = random_package(&spec, &picks, &mults);

        // Interpreted oracle.
        let formula = spec.formula.as_ref().expect("query has a formula");
        let objective = spec.objective.as_ref().expect("query has an objective");
        let oracle_violation = package.formula_violation(&table, formula).unwrap();
        let oracle_satisfied = package.satisfies(&table, formula).unwrap();
        let oracle_objective = package.objective_value(&table, objective).unwrap();
        let oracle_valid = oracle_satisfied
            && package.max_multiplicity() <= spec.max_multiplicity
            && package
                .members()
                .all(|(tid, _)| spec.candidates.binary_search(&tid).is_ok());

        // Columnar path.
        let view_violation = spec.violation(&package).unwrap();
        let view_objective = spec.objective_value(&package).unwrap();
        let view_valid = spec.is_valid(&package).unwrap();

        prop_assert!(
            close(view_violation, oracle_violation),
            "violation mismatch on {:?}: columnar {} vs interpreted {} (query: {})",
            scenario, view_violation, oracle_violation, text
        );
        match (view_objective, oracle_objective) {
            (Some(a), Some(b)) => prop_assert!(
                close(a, b),
                "objective mismatch on {:?}: {} vs {} (query: {})", scenario, a, b, text
            ),
            (a, b) => prop_assert_eq!(a, b, "objective NULL-ness mismatch (query: {})", text),
        }
        prop_assert_eq!(view_valid, oracle_valid, "validity mismatch (query: {})", text);
        // Feasibility and zero-violation must coincide for member-only packages.
        prop_assert_eq!(oracle_satisfied, oracle_violation == 0.0);
    }

    /// Delta evaluation (`ViewState::score_with`) agrees with a from-scratch
    /// projection after any single swap, across scenarios.
    #[test]
    fn delta_evaluation_matches_fresh_projection(
        scenario_pick in 0usize..4,
        seed in 0u64..5_000,
        count in 2u64..5,
        col_a in 0usize..4,
        col_b in 0usize..4,
        agg_pick in 0usize..4,
        lo in 10.0f64..500.0,
        width in 10.0f64..2000.0,
        out_pick in 0usize..8,
        in_pick in 0usize..64,
    ) {
        let scenario = SCENARIOS[scenario_pick];
        let table = scenario.table(seed);
        let text = build_query(
            scenario, count, col_a, col_b, agg_pick, lo, width, false, None, false,
        );
        let analyzed = paql::compile(&text, table.schema()).unwrap();
        let spec = PackageSpec::build(&analyzed, &table).unwrap();
        let view = spec.view();
        prop_assert!(view.candidate_count() >= 4);

        let start: Vec<TupleId> = view.candidates().iter().copied().take(3).collect();
        let state = view.project(&Package::from_ids(start)).unwrap();
        let out = out_pick % 3;
        let inn = in_pick % view.candidate_count();
        let changes = [(out, -1i64), (inn, 1i64)];

        let (delta_violation, delta_objective) = state.score_with(&changes);
        let mut moved = state.clone();
        moved.apply(out, -1);
        moved.apply(inn, 1);
        let fresh = view.project(&moved.to_package()).unwrap();

        prop_assert!(close(delta_violation, fresh.violation()),
            "delta violation {} vs fresh {} (query: {})", delta_violation, fresh.violation(), text);
        match (delta_objective, fresh.objective_value()) {
            (Some(a), Some(b)) => prop_assert!(close(a, b)),
            (a, b) => prop_assert_eq!(a, b),
        }
    }
}
