//! Property tests: the columnar [`CandidateView`] path agrees with the
//! interpreted oracle on every scenario.
//!
//! The refactor routed `objective_value`, `violation` and `is_valid` through
//! precomputed columns. The interpreted expression-tree path
//! ([`Package::formula_violation`], [`Package::satisfies`],
//! [`Package::objective_value`]) is kept as the oracle; these properties
//! assert bit-for-bit-close agreement across random queries and random
//! packages over **every family in the scenario registry**
//! (`datagen::scenarios()` — recipes through TPC-H-lite lineitem),
//! including FILTER terms, non-linear aggregates, REPEAT multiplicities and
//! empty packages. A family added to the registry is covered here with no
//! test change.

use minidb::TupleId;
use packagebuilder::package::Package;
use packagebuilder::spec::PackageSpec;
use proptest::prelude::*;

use datagen::{scenarios, QueryParams, Seed};

/// Draws a random package over the spec's candidates (possibly empty,
/// possibly with repeated members up to the REPEAT bound).
fn random_package(spec: &PackageSpec<'_>, picks: &[usize], mults: &[u32]) -> Package {
    let mut p = Package::new();
    for (pick, mult) in picks.iter().zip(mults) {
        if spec.candidate_count() == 0 {
            break;
        }
        let tid = spec.candidates[pick % spec.candidate_count()];
        let m = (*mult).clamp(1, spec.max_multiplicity);
        if p.multiplicity(tid) + m <= spec.max_multiplicity {
            p.add(tid, m);
        }
    }
    p
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// Columnar objective, violation and validity agree with the interpreted
    /// oracle on random queries and random packages across every registered
    /// scenario family.
    #[test]
    fn columnar_matches_interpreted_oracle(
        scenario_pick in 0usize..64,
        seed in 0u64..5_000,
        count in 1u64..5,
        col_a in 0usize..4,
        col_b in 0usize..4,
        agg_pick in 0usize..4,
        lo in 10.0f64..500.0,
        width in 10.0f64..2000.0,
        use_filter in prop::bool::ANY,
        repeat in prop::option::of(2u32..4),
        minimize in prop::bool::ANY,
        picks in prop::collection::vec(0usize..64, 0..6),
        mults in prop::collection::vec(1u32..4, 6),
    ) {
        let registry = scenarios();
        let scenario = &registry[scenario_pick % registry.len()];
        let table = (scenario.build)(scenario.property_n, Seed(seed));
        let text = scenario.random_query(&QueryParams {
            count, col_a, col_b, agg_pick, lo, width, use_filter, repeat, minimize,
        });
        let analyzed = paql::compile(&text, table.schema()).expect("generated query compiles");
        let spec = PackageSpec::build(&analyzed, &table).unwrap();
        let package = random_package(&spec, &picks, &mults);

        // Interpreted oracle.
        let formula = spec.formula.as_ref().expect("query has a formula");
        let objective = spec.objective.as_ref().expect("query has an objective");
        let oracle_violation = package.formula_violation(&table, formula).unwrap();
        let oracle_satisfied = package.satisfies(&table, formula).unwrap();
        let oracle_objective = package.objective_value(&table, objective).unwrap();
        let oracle_valid = oracle_satisfied
            && package.max_multiplicity() <= spec.max_multiplicity
            && package
                .members()
                .all(|(tid, _)| spec.candidates.binary_search(&tid).is_ok());

        // Columnar path.
        let view_violation = spec.violation(&package).unwrap();
        let view_objective = spec.objective_value(&package).unwrap();
        let view_valid = spec.is_valid(&package).unwrap();

        prop_assert!(
            close(view_violation, oracle_violation),
            "violation mismatch on {}: columnar {} vs interpreted {} (query: {})",
            scenario.name, view_violation, oracle_violation, text
        );
        match (view_objective, oracle_objective) {
            (Some(a), Some(b)) => prop_assert!(
                close(a, b),
                "objective mismatch on {}: {} vs {} (query: {})", scenario.name, a, b, text
            ),
            (a, b) => prop_assert_eq!(a, b, "objective NULL-ness mismatch (query: {})", text),
        }
        prop_assert_eq!(view_valid, oracle_valid, "validity mismatch (query: {})", text);
        // Feasibility and zero-violation must coincide for member-only packages.
        prop_assert_eq!(oracle_satisfied, oracle_violation == 0.0);
    }

    /// Delta evaluation (`ViewState::score_with`) agrees with a from-scratch
    /// projection after any single swap, across every registered scenario.
    #[test]
    fn delta_evaluation_matches_fresh_projection(
        scenario_pick in 0usize..64,
        seed in 0u64..5_000,
        count in 2u64..5,
        col_a in 0usize..4,
        col_b in 0usize..4,
        agg_pick in 0usize..4,
        lo in 10.0f64..500.0,
        width in 10.0f64..2000.0,
        out_pick in 0usize..8,
        in_pick in 0usize..64,
    ) {
        let registry = scenarios();
        let scenario = &registry[scenario_pick % registry.len()];
        let table = (scenario.build)(scenario.property_n, Seed(seed));
        let text = scenario.random_query(&QueryParams {
            count, col_a, col_b, agg_pick, lo, width,
            use_filter: false, repeat: None, minimize: false,
        });
        let analyzed = paql::compile(&text, table.schema()).unwrap();
        let spec = PackageSpec::build(&analyzed, &table).unwrap();
        let view = spec.view();
        prop_assert!(view.candidate_count() >= 4);

        let start: Vec<TupleId> = view.candidates().iter().copied().take(3).collect();
        let state = view.project(&Package::from_ids(start)).unwrap();
        let out = out_pick % 3;
        let inn = in_pick % view.candidate_count();
        let changes = [(out, -1i64), (inn, 1i64)];

        let (delta_violation, delta_objective) = state.score_with(&changes);
        let mut moved = state.clone();
        moved.apply(out, -1);
        moved.apply(inn, 1);
        let fresh = view.project(&moved.to_package()).unwrap();

        prop_assert!(close(delta_violation, fresh.violation()),
            "delta violation {} vs fresh {} (query: {})", delta_violation, fresh.violation(), text);
        match (delta_objective, fresh.objective_value()) {
            (Some(a), Some(b)) => prop_assert!(close(a, b)),
            (a, b) => prop_assert_eq!(a, b),
        }
    }
}
