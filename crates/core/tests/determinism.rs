//! Determinism suite: same seed + same query ⇒ identical outcome.
//!
//! Every sequential solver must be a pure function of (view, options) — two
//! runs from independently built engines return byte-identical packages,
//! objectives and optimality flags. The portfolio adds threads, so it cannot
//! promise cross-run timing, but with a single worker it must be a pure
//! wrapper: exactly the underlying solver's result. The cross-instance
//! guarantee is additionally pinned on **every family in the scenario
//! registry** (`datagen::scenarios()`), so a new workload cannot ship
//! without it.

use datagen::{recipes, scenarios, Seed};
use minidb::{Catalog, Table};
use packagebuilder::config::{EngineConfig, Strategy};
use packagebuilder::{PackageEngine, PackageResult};

fn engine_for(table: Table, strategy: Strategy, seed: u64) -> PackageEngine {
    let mut catalog = Catalog::new();
    catalog.register(table);
    PackageEngine::with_config(
        catalog,
        EngineConfig::with_strategy(strategy).with_seed(seed),
    )
}

fn engine(n: usize, strategy: Strategy, seed: u64) -> PackageEngine {
    engine_for(recipes(n, Seed(7)), strategy, seed)
}

fn run(n: usize, strategy: Strategy, seed: u64, query: &str) -> PackageResult {
    engine(n, strategy, seed)
        .execute_paql(query)
        .unwrap_or_else(|e| panic!("{strategy:?} failed: {e}"))
}

const LINEAR_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R \
    SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
    MAXIMIZE SUM(P.protein)";

// AVG-vs-constant is linearizable since the multiply-through-by-COUNT
// rewrite; AVG vs AVG is one of the shapes that genuinely is not.
const NON_LINEAR_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R \
    SUCH THAT COUNT(*) = 3 AND AVG(P.calories) >= AVG(P.protein) \
    MAXIMIZE SUM(P.protein)";

fn assert_identical(a: &PackageResult, b: &PackageResult, context: &str) {
    assert_eq!(a.packages, b.packages, "{context}: packages differ");
    assert_eq!(a.objectives, b.objectives, "{context}: objectives differ");
    assert_eq!(a.optimal, b.optimal, "{context}: optimality differs");
    assert_eq!(
        a.stats.strategy, b.stats.strategy,
        "{context}: strategy differs"
    );
    assert_eq!(a.stats.nodes, b.stats.nodes, "{context}: nodes differ");
    assert_eq!(
        a.stats.iterations, b.stats.iterations,
        "{context}: iterations differ"
    );
}

#[test]
fn sequential_solvers_are_deterministic_across_engine_instances() {
    // (strategy, relation size): enumeration needs tiny inputs, the rest run
    // on a few hundred candidates.
    let cases = [
        (Strategy::Ilp, 200),
        (Strategy::PrunedEnumeration, 16),
        (Strategy::Exhaustive, 14),
        (Strategy::LocalSearch, 200),
        (Strategy::Greedy, 200),
        (Strategy::SketchRefine, 400),
    ];
    for (strategy, n) in cases {
        for seed in [1u64, 42] {
            let first = run(n, strategy, seed, LINEAR_QUERY);
            let second = run(n, strategy, seed, LINEAR_QUERY);
            assert_identical(&first, &second, &format!("{strategy:?} seed {seed}"));
        }
    }
}

/// Every registered scenario family, solved twice by independently built
/// engines on its own branching-heavy query: identical results, counters
/// included. Feasibility is irrelevant here — an honestly-infeasible answer
/// must be just as reproducible as an optimum.
#[test]
fn every_registered_scenario_is_deterministic_across_engine_instances() {
    for scenario in scenarios() {
        for strategy in [Strategy::Greedy, Strategy::LocalSearch, Strategy::Auto] {
            let solve = || {
                engine_for(
                    (scenario.build)(scenario.property_n, Seed(23)),
                    strategy,
                    42,
                )
                .execute_paql(&scenario.exact_query)
                .unwrap_or_else(|e| panic!("{strategy:?}/{} failed: {e}", scenario.name))
            };
            let first = solve();
            let second = solve();
            assert_identical(&first, &second, &format!("{strategy:?}/{}", scenario.name));
        }
    }
}

#[test]
fn local_search_is_deterministic_on_non_linear_queries_too() {
    for seed in [3u64, 99] {
        let first = run(250, Strategy::LocalSearch, seed, NON_LINEAR_QUERY);
        let second = run(250, Strategy::LocalSearch, seed, NON_LINEAR_QUERY);
        assert_identical(&first, &second, &format!("local search seed {seed}"));
    }
}

#[test]
fn different_seeds_may_differ_but_stay_valid() {
    // Not a determinism requirement per se, but the guard that the seed is
    // actually reaching the randomized components: local search results are
    // valid under every seed.
    for seed in [1u64, 2, 3] {
        let r = run(200, Strategy::LocalSearch, seed, LINEAR_QUERY);
        assert!(!r.is_empty());
    }
}

#[test]
fn single_worker_portfolio_matches_the_underlying_solver() {
    for worker in [
        Strategy::Ilp,
        Strategy::LocalSearch,
        Strategy::Greedy,
        Strategy::SketchRefine,
    ] {
        let mut portfolio_engine = engine(200, Strategy::Portfolio, 42);
        portfolio_engine.config_mut().portfolio_workers = vec![worker];
        let raced = portfolio_engine.execute_paql(LINEAR_QUERY).unwrap();
        let alone = run(200, worker, 42, LINEAR_QUERY);
        assert_eq!(raced.packages, alone.packages, "worker {worker:?}");
        assert_eq!(raced.objectives, alone.objectives, "worker {worker:?}");
        assert_eq!(raced.optimal, alone.optimal, "worker {worker:?}");
        // The race aggregates its workers' counters; with one worker the
        // totals are exactly the underlying solver's.
        assert_eq!(raced.stats.nodes, alone.stats.nodes, "worker {worker:?}");
        assert_eq!(
            raced.stats.iterations, alone.stats.iterations,
            "worker {worker:?}"
        );
    }
}

#[test]
fn full_portfolio_race_is_deterministic_on_linear_queries() {
    // With an unlimited budget the exact worker always finishes and always
    // supersedes the heuristics, so even the multi-threaded race has one
    // reproducible answer on linear queries.
    let first = run(300, Strategy::Portfolio, 42, LINEAR_QUERY);
    let second = run(300, Strategy::Portfolio, 42, LINEAR_QUERY);
    assert_eq!(first.packages, second.packages);
    assert_eq!(first.objectives, second.objectives);
    assert!(first.optimal && second.optimal);
}
