//! Cross-query caching of materialized views and partitionings.
//!
//! Real package-query workloads repeat: the same relation and base (`WHERE`)
//! predicate are queried over and over with varying global constraints and
//! objectives — a meal planner re-solving per user, a portfolio screener
//! re-running per rebalance. SketchRefine (PVLDB 2016) and Progressive
//! Shading (2023) both amortize an *offline* partitioning across such
//! queries; this module extends that idea to everything
//! [`crate::spec::PackageSpec::build`] used to recompute per query:
//!
//! * **[`ViewCache`]** — an LRU cache of *term banks*, keyed by
//!   `(relation fingerprint, normalized base predicate)`. A bank holds the
//!   candidate tuple list, candidate statistics, and every term column
//!   (coefficients + inclusion mask) any past query over that key has
//!   materialized. Lookups reuse by **subset**, not exact match: a query
//!   whose aggregate terms are all in the bank builds its view without
//!   touching the base table at all, and a query that adds terms pays only
//!   for the missing columns (the bank then grows to cover them).
//! * **[`PartitionMemo`]** — a shared memo of sketch→refine partitionings,
//!   keyed by `(max_partition_size, seed)`. Every
//!   [`CandidateView`] carries one; views assembled from the same bank (and
//!   the same term signature) share one memo, so the k-d partitioning is
//!   computed once and every later query — and every portfolio worker —
//!   pulls the memoized [`Partitioning`].
//!
//! # Staleness is impossible by construction
//!
//! Cache keys embed [`minidb::Table::fingerprint`], a stamp refreshed on
//! every table mutation. Mutating a relation (or re-registering it) changes
//! the fingerprint, so every cached entry for the old contents silently
//! stops matching — a stale view can never be served. The explicit
//! [`ViewCache::invalidate_relation`] / [`ViewCache::clear`] APIs exist to
//! reclaim memory, not for correctness.
//!
//! # Determinism
//!
//! A cache hit is *bit-identical* to a cold build: columns are reused
//! verbatim, term interning order is the query's own, and partitioning is
//! deterministic per seed — so a warm solve returns exactly the package a
//! cold solve would (the `view_cache` test suite asserts this).
//!
//! ```
//! use packagebuilder::PackageEngine;
//! use datagen::{recipes, Seed};
//! use minidb::Catalog;
//!
//! let mut catalog = Catalog::new();
//! catalog.register(recipes(500, Seed(7)));
//! let engine = PackageEngine::new(catalog);
//! let query = "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
//!     SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
//!     MAXIMIZE SUM(P.protein)";
//!
//! let cold = engine.execute_paql(query).unwrap();
//! let warm = engine.execute_paql(query).unwrap(); // hits the view cache
//! assert_eq!(cold.best(), warm.best());
//! let stats = engine.view_cache().stats();
//! assert_eq!((stats.misses, stats.hits), (1, 1));
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

use minidb::stats::TableStats;
use minidb::{Expr, Table, TupleId};
use paql::{AggCall, PaqlQuery};

use crate::budget::Budget;
use crate::par::ParExec;
use crate::partition::{
    build_partition_tree, partition_view_budgeted, PartitionTree, Partitioning,
};
use crate::spec::base_candidates_par;
use crate::view::{CandidateView, TermColumn};
use crate::PbResult;

/// Default number of `(relation, predicate)` entries a
/// [`ViewCache`] retains (see
/// [`crate::config::EngineConfig::view_cache_capacity`]).
pub const DEFAULT_VIEW_CACHE_CAPACITY: usize = 16;

/// Default byte budget for cached payload across every bank (resident +
/// spilled column bytes plus partition-memo bytes): 256 MiB. Enforced after each
/// write-back — least-recently-used banks are evicted until the cache fits,
/// and if the freshest bank alone overflows, it is reset to the current
/// query's columns (memos go with it — their signatures index the old column
/// order). Resets and evictions only cost a rebuild, never correctness.
pub const DEFAULT_CACHE_BYTE_BUDGET: usize = 256 << 20;

/// Growth bound on each bank's partition-memo table. Memo contents now weigh
/// into the byte budget ([`DEFAULT_CACHE_BYTE_BUDGET`], via
/// [`PartitionMemo::approx_bytes`]); this count cap remains as a backstop
/// against pathological workloads that accumulate many near-empty memos (one
/// per term signature). An overflowing memo table is simply cleared.
const MAX_BANK_MEMOS: usize = 32;

/// A shared memo of sketch→refine partitionings for one view's columns.
///
/// Keyed by `(max_partition_size, seed)` — the only partitioning inputs
/// besides the columns themselves. Clones share storage (`Arc`), which is
/// the mechanism behind partition reuse: every [`CandidateView`] cloned or
/// assembled from the same cached columns holds a clone of one memo, so
/// whichever solver partitions first pays, and everyone after reads.
///
/// Since the warm-started exact core, the memo also carries **refinement
/// sub-ILP solutions** (see [`PartitionMemo::sub_ilp`]): a repeated package
/// query re-derives bit-identical per-partition sub-problems, and their
/// proven-optimal solutions are as reusable as the partitioning itself.
#[derive(Clone, Default)]
pub struct PartitionMemo {
    inner: Arc<Mutex<MemoMap>>,
    trees: Arc<Mutex<TreeMap>>,
    subs: Arc<Mutex<SubMap>>,
}

/// `(max_partition_size, seed)` → the memoized partitioning.
type MemoMap = HashMap<(usize, u64), Arc<Partitioning>>;

/// `(leaf_size, fanout, seed)` → the memoized partition tree (progressive
/// shading). The leaf layer is the `(leaf_size, seed)` entry of [`MemoMap`]
/// (one shared `Arc`), so a tree memo only adds the grouping layers.
type TreeMap = HashMap<(usize, usize, u64), Arc<PartitionTree>>;

/// Bit-exact sub-ILP key → its proven-optimal solution.
type SubMap = HashMap<Vec<u64>, Arc<SubIlpSolution>>;

/// Growth bound for the sub-ILP solution memo; on overflow the map is
/// cleared (a perf reset, never a correctness event — see
/// [`PartitionMemo::store_sub_ilp`]).
const MAX_SUB_MEMOS: usize = 1024;

/// A memoized refinement sub-ILP outcome: the assignment (candidate index,
/// multiplicity) plus the solver work it originally cost, so stats stay
/// identical between a solved and a memo-served run.
#[derive(Debug, Clone)]
pub struct SubIlpSolution {
    /// Chosen `(candidate index, multiplicity)` pairs, in member order.
    pub assignment: Vec<(usize, u32)>,
    /// Branch-and-bound nodes of the original solve.
    pub nodes: u64,
    /// Simplex iterations of the original solve.
    pub iterations: u64,
}

impl PartitionMemo {
    fn lock(&self) -> MutexGuard<'_, MemoMap> {
        // A poisoning panic cannot leave the map half-written (single
        // insert), so recover instead of cascading.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The memoized partitioning for `(max_partition_size, seed)`, computing
    /// (and memoizing) it on first request — with the k-d spread scans fanned
    /// out over `par`. Returns `None` — memoizing nothing — when `budget`
    /// expires mid-computation, exactly like [`partition_view_budgeted`].
    /// The thread count never changes the partitioning (chunk-ordered
    /// reductions), so memo entries computed at different `par` values are
    /// interchangeable.
    pub fn get_or_compute(
        &self,
        view: &CandidateView,
        max_partition_size: usize,
        seed: u64,
        budget: &Budget,
        par: ParExec,
    ) -> Option<Arc<Partitioning>> {
        let key = (max_partition_size, seed);
        if let Some(p) = self.lock().get(&key) {
            return Some(p.clone());
        }
        // Compute outside the lock: partitioning is deterministic, so two
        // concurrent computations produce identical results and the first
        // insert wins without blocking anyone.
        let fresh = Arc::new(partition_view_budgeted(
            view,
            max_partition_size,
            seed,
            budget,
            par,
        )?);
        Some(self.lock().entry(key).or_insert(fresh).clone())
    }

    fn lock_trees(&self) -> MutexGuard<'_, TreeMap> {
        self.trees.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The memoized partition tree for `(leaf_size, fanout, seed)`, growing
    /// it on first request: the leaf partitioning comes through
    /// [`PartitionMemo::get_or_compute`] (so it is the *same* `Arc` the flat
    /// sketch→refine path memoizes for `(leaf_size, seed)`), then
    /// [`build_partition_tree`] stacks the grouping layers. Returns `None` —
    /// memoizing nothing — when `budget` expires mid-computation. Like the
    /// flat memo, entries computed at different `par` values are
    /// interchangeable (tree construction is chunk-order deterministic).
    pub fn tree_or_compute(
        &self,
        view: &CandidateView,
        leaf_size: usize,
        fanout: usize,
        seed: u64,
        budget: &Budget,
        par: ParExec,
    ) -> Option<Arc<PartitionTree>> {
        // Normalized exactly like `build_partition_tree` clamps it, so
        // degenerate fanouts share one memo slot instead of duplicating.
        let fanout = fanout.max(2);
        let key = (leaf_size, fanout, seed);
        if let Some(t) = self.lock_trees().get(&key) {
            return Some(t.clone());
        }
        let leaves = self.get_or_compute(view, leaf_size, seed, budget, par)?;
        let fresh = Arc::new(build_partition_tree(leaves, fanout, seed, budget, par)?);
        Some(self.lock_trees().entry(key).or_insert(fresh).clone())
    }

    /// Number of memoized partitionings.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Number of memoized partition trees.
    pub fn tree_len(&self) -> usize {
        self.lock_trees().len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty() && self.lock_trees().is_empty() && self.lock_subs().is_empty()
    }

    /// Rough heap footprint of everything this memo retains — flat
    /// partitionings, partition-tree layers and sub-ILP solutions — so the
    /// view cache can weigh memos into its byte budget (a 10^7-candidate
    /// partitioning is ~100 MB of assignment + member indices, far from the
    /// rounding error the pre-shading accounting treated it as). Tree leaf
    /// layers are shared `Arc`s with the flat map and deliberately not
    /// double-counted.
    pub fn approx_bytes(&self) -> usize {
        let parts: usize = self.lock().values().map(|p| p.approx_bytes()).sum();
        let trees: usize = self.lock_trees().values().map(|t| t.approx_bytes()).sum();
        let subs: usize = self
            .lock_subs()
            .iter()
            .map(|(k, s)| (k.len() + 2 * s.assignment.len()) * 8 + 64)
            .sum();
        parts + trees + subs
    }

    fn lock_subs(&self) -> MutexGuard<'_, SubMap> {
        self.subs.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The memoized solution of a refinement sub-ILP, if this exact
    /// sub-problem has been solved to optimality before.
    ///
    /// `key` is a **bit-exact encoding** of the whole sub-problem (member
    /// coefficients, operators, effective right-hand sides, bounds — see
    /// `sub_ilp_key` in [`crate::sketch_refine`]), compared by value, so a
    /// hit guarantees the solver would reproduce the stored assignment
    /// exactly: serving it from the memo cannot change any result, only the
    /// time it takes. That is the same cold-equals-warm contract the view
    /// cache keeps.
    pub fn sub_ilp(&self, key: &[u64]) -> Option<Arc<SubIlpSolution>> {
        self.lock_subs().get(key).cloned()
    }

    /// Memoizes a sub-ILP solution under its bit-exact key. Callers must
    /// only store solutions **proven optimal** for the keyed problem — a
    /// limit-truncated incumbent depends on where the budget happened to
    /// expire, which is exactly the nondeterminism the memo must not replay.
    pub fn store_sub_ilp(&self, key: Vec<u64>, solution: SubIlpSolution) {
        let mut subs = self.lock_subs();
        if subs.len() >= MAX_SUB_MEMOS {
            subs.clear();
        }
        subs.insert(key, Arc::new(solution));
    }

    /// Number of memoized sub-ILP solutions.
    pub fn sub_ilp_len(&self) -> usize {
        self.lock_subs().len()
    }
}

impl fmt::Debug for PartitionMemo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PartitionMemo({} entries)", self.len())
    }
}

/// The cache key: which relation contents and which base predicate a bank of
/// materialized columns belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViewKey {
    /// The relation name, lowercased (matching the catalog's namespace).
    pub relation: String,
    /// [`Table::fingerprint`] at materialization time. Mutation refreshes
    /// the table's stamp, so entries for old contents can never match again.
    pub fingerprint: u64,
    /// Canonical rendering of the base (`WHERE`) predicate (empty when the
    /// query has none). Rendering the parsed AST normalizes whitespace and
    /// parenthesization, so textual variants of one predicate share a key.
    pub predicate: String,
}

impl ViewKey {
    /// The key for a query's base scan of `table`.
    pub fn of(table: &Table, where_clause: Option<&Expr>) -> ViewKey {
        ViewKey {
            relation: table.name().to_ascii_lowercase(),
            fingerprint: table.fingerprint(),
            predicate: where_clause.map(|p| p.to_string()).unwrap_or_default(),
        }
    }
}

/// Everything materialized so far for one `(relation, predicate)` key: the
/// query-independent building blocks of a [`CandidateView`], growing as
/// queries request new aggregate terms.
struct TermBank {
    candidates: Vec<TupleId>,
    stats: TableStats,
    term_keys: Vec<AggCall>,
    /// `Arc`ed so a hit-path snapshot is a refcount bump per column, not a
    /// deep copy of every column the bank has ever materialized; the data is
    /// copied exactly once per view, for the columns the view actually uses.
    columns: Vec<Arc<TermColumn>>,
    /// Partition memos per term *signature* (the bank column indices a view
    /// uses, in the view's order). Partitioning splits along a view's term
    /// columns, so only views over the same columns in the same order may
    /// share a memo — sharing more would silently change solver results
    /// between cold and warm runs.
    memos: HashMap<Vec<usize>, PartitionMemo>,
}

impl TermBank {
    /// In-memory column-payload bytes this bank holds.
    fn resident_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.resident_bytes()).sum()
    }

    /// Spill-file column-payload bytes this bank keeps alive (a banked paged
    /// column pins its spill store — and therefore its file — for exactly as
    /// long as the bank can serve it).
    fn spilled_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.spilled_bytes()).sum()
    }

    /// Approximate heap bytes of the bank's partition/tree/sub-ILP memos.
    /// Counted against the cache byte budget alongside the columns: a large
    /// view's partitioning rivals a column in size, so leaving memos outside
    /// the accounting (as before progressive shading) would let the cache
    /// silently exceed its budget by whole partitionings.
    fn memo_bytes(&self) -> usize {
        // pb-lint: allow(no-hash-iteration) — a commutative sum over the
        // values; the iteration order cannot reach the total.
        self.memos.values().map(|m| m.approx_bytes()).sum()
    }
}

/// Counters describing a cache's activity (see [`ViewCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Lookups answered from a bank: candidate evaluation and statistics
    /// were skipped. The base table is still consulted when the query adds
    /// terms the bank lacks (that shows up in `columns_built`); a hit with
    /// `columns_built` unchanged touched the table not at all.
    pub hits: u64,
    /// Lookups that built a fresh bank.
    pub misses: u64,
    /// Term columns served from a bank.
    pub columns_reused: u64,
    /// Term columns materialized from the base table (on misses and on hits
    /// that extended the bank with new terms).
    pub columns_built: u64,
    /// In-memory column-payload bytes currently banked, across all entries.
    pub resident_bytes: usize,
    /// Spill-file column-payload bytes currently kept alive by banked paged
    /// columns, across all entries. Tracked separately from `resident_bytes`
    /// because the two compete for different resources (RAM vs disk), but
    /// both count against the cache's byte budget.
    pub spilled_bytes: usize,
    /// Approximate heap bytes of banked partition memos (flat partitionings,
    /// partition trees and sub-ILP solutions), across all entries. Also
    /// counted against the byte budget — a 10^7-candidate partitioning is
    /// column-sized, not free.
    pub memo_bytes: usize,
}

struct CacheInner {
    capacity: usize,
    /// Total column-payload bytes (resident + spilled) the cache may retain.
    byte_budget: usize,
    /// Most-recently-used first; evictions pop from the back.
    entries: Vec<(ViewKey, TermBank)>,
    hits: u64,
    misses: u64,
    columns_reused: u64,
    columns_built: u64,
}

impl CacheInner {
    fn total_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(_, b)| b.resident_bytes() + b.spilled_bytes() + b.memo_bytes())
            .sum()
    }
}

/// An LRU cache of materialized view columns (and, via [`PartitionMemo`],
/// partitionings), shared by every clone of an engine — see the module docs
/// for the design and the staleness argument.
///
/// Clones share storage: cloning an engine (or passing a `ViewCache` to
/// [`crate::engine::PackageEngine::with_shared_cache`]) yields sessions that
/// warm each other's queries. All methods take `&self`; the cache is
/// internally synchronized and `Send + Sync`.
#[derive(Clone)]
pub struct ViewCache {
    inner: Arc<Mutex<CacheInner>>,
}

impl ViewCache {
    /// A cache retaining at most `capacity` `(relation, predicate)` banks
    /// under the default byte budget ([`DEFAULT_CACHE_BYTE_BUDGET`]).
    /// Capacity 0 disables storage: every lookup builds cold.
    pub fn new(capacity: usize) -> Self {
        Self::with_byte_budget(capacity, DEFAULT_CACHE_BYTE_BUDGET)
    }

    /// [`ViewCache::new`] with an explicit column-payload byte budget
    /// (resident + spilled combined). Enforced after every write-back by
    /// evicting least-recently-used banks; a single bank larger than the
    /// whole budget is reset to the newest query's columns (which are always
    /// retained, so a hot query stays warm however small the budget).
    pub fn with_byte_budget(capacity: usize, byte_budget: usize) -> Self {
        ViewCache {
            inner: Arc::new(Mutex::new(CacheInner {
                capacity,
                byte_budget,
                entries: Vec::new(),
                hits: 0,
                misses: 0,
                columns_reused: 0,
                columns_built: 0,
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Builds the columnar view for `query` over `table`, reusing every
    /// cached building block available under the query's [`ViewKey`] and
    /// extending the bank with whatever had to be materialized. The returned
    /// view is bit-identical to a cold [`CandidateView::build`] — see the
    /// module docs.
    ///
    /// The cache lock is held only to snapshot and to write back — never
    /// across candidate evaluation or column materialization — so engines
    /// sharing a cache do not serialize their (potentially expensive) cold
    /// builds behind one another.
    pub fn view_for(&self, query: &PaqlQuery, table: &Table) -> PbResult<CandidateView> {
        self.view_for_par(query, table, ParExec::sequential())
    }

    /// [`ViewCache::view_for`] with candidate evaluation and cache-miss
    /// column materialization fanned out over `par` (the engine passes its
    /// configured executor here). Thread count never changes the resulting
    /// view, so warm hits primed at any `par` serve every other.
    pub fn view_for_par(
        &self,
        query: &PaqlQuery,
        table: &Table,
        par: ParExec,
    ) -> PbResult<CandidateView> {
        self.view_for_with(
            query,
            table,
            &crate::column_store::ColumnPolicy::default(),
            par,
        )
    }

    /// [`ViewCache::view_for_par`] under an explicit
    /// [`crate::column_store::ColumnPolicy`] governing whether cache-miss
    /// columns are built resident or paged (see
    /// [`CandidateView::build_par_with`]). Banked columns keep the storage
    /// mode they were built with — storage mode never changes any result, so
    /// hits primed under one policy serve queries running under another.
    pub fn view_for_with(
        &self,
        query: &PaqlQuery,
        table: &Table,
        policy: &crate::column_store::ColumnPolicy,
        par: ParExec,
    ) -> PbResult<CandidateView> {
        let key = ViewKey::of(table, query.where_clause.as_ref());

        // Phase 1 — snapshot the bank (if any) under the lock. Column
        // vectors are cloned here; that is a plain memcpy, orders of
        // magnitude cheaper than the evaluation they replace.
        let snapshot = {
            let mut inner = self.lock();
            if inner.capacity == 0 {
                // Disabled: behave exactly like the uncached path.
                drop(inner);
                let candidates = base_candidates_par(table, query.where_clause.as_ref(), par)?;
                return CandidateView::build_par_with(
                    table,
                    candidates,
                    query.max_multiplicity(),
                    query.such_that.clone(),
                    query.objective.clone(),
                    policy,
                    par,
                );
            }
            match inner.entries.iter().position(|(k, _)| *k == key) {
                Some(pos) => {
                    inner.hits += 1;
                    // Move to front (most recently used).
                    let entry = inner.entries.remove(pos);
                    inner.entries.insert(0, entry);
                    let bank = &inner.entries[0].1;
                    Some((
                        bank.candidates.clone(),
                        bank.stats.clone(),
                        bank.term_keys.clone(),
                        bank.columns.clone(),
                    ))
                }
                None => {
                    inner.misses += 1;
                    None
                }
            }
        };

        // Phase 2 — build the view outside the lock.
        let (mut view, reused) = match snapshot {
            Some((candidates, stats, term_keys, columns)) => {
                let mut reused = 0u64;
                let view = CandidateView::assemble_par_with(
                    table,
                    candidates,
                    stats,
                    query.max_multiplicity(),
                    query.such_that.clone(),
                    query.objective.clone(),
                    |call: &AggCall| {
                        let col = term_keys
                            .iter()
                            .position(|k| k == call)
                            .map(|i| TermColumn::clone(&columns[i]));
                        reused += col.is_some() as u64;
                        col
                    },
                    policy,
                    par,
                )?;
                (view, reused)
            }
            None => {
                let candidates = base_candidates_par(table, query.where_clause.as_ref(), par)?;
                let view = CandidateView::build_par_with(
                    table,
                    candidates,
                    query.max_multiplicity(),
                    query.such_that.clone(),
                    query.objective.clone(),
                    policy,
                    par,
                )?;
                (view, 0)
            }
        };

        // Phase 3 — write back under the lock: grow (or create) the bank
        // with the columns this query added, then hand the view the shared
        // partition memo for its term signature. A concurrent builder of the
        // same key may have banked meanwhile; adopting into whatever is
        // resident keeps both callers sharing one memo (contents are
        // deterministic, so whoever wrote first wrote the same columns).
        let mut inner = self.lock();
        inner.columns_reused += reused;
        inner.columns_built += view.terms().len() as u64 - reused;
        let bank = match inner.entries.iter().position(|(k, _)| *k == key) {
            Some(pos) => {
                let entry = inner.entries.remove(pos);
                inner.entries.insert(0, entry);
                &mut inner.entries[0].1
            }
            None => {
                // Miss path, or the entry was evicted while we built.
                let bank = TermBank {
                    candidates: view.candidates().to_vec(),
                    stats: view.stats().clone(),
                    term_keys: Vec::new(),
                    columns: Vec::new(),
                    memos: HashMap::new(),
                };
                inner.entries.insert(0, (key, bank));
                let capacity = inner.capacity;
                inner.entries.truncate(capacity);
                &mut inner.entries[0].1
            }
        };
        if bank.memos.len() >= MAX_BANK_MEMOS {
            bank.memos.clear();
        }
        let mut sig = adopt_columns(bank, &view);
        // Byte-accurate budget enforcement (see [`DEFAULT_CACHE_BYTE_BUDGET`]
        // and [`ViewCache::with_byte_budget`]): evict least-recently-used
        // banks until the cache fits its byte budget; if the freshest bank
        // alone still overflows, reset it to exactly this query's columns
        // (and drop its memos — their signatures index the old column order).
        // The current query's own columns are always retained, so however
        // small the budget, a repeated query stays warm.
        while inner.total_bytes() > inner.byte_budget && inner.entries.len() > 1 {
            inner.entries.pop();
        }
        if inner.total_bytes() > inner.byte_budget {
            let bank = &mut inner.entries[0].1;
            bank.term_keys.clear();
            bank.columns.clear();
            bank.memos.clear();
            sig = adopt_columns(bank, &view);
        }
        view.set_partition_memo(inner.entries[0].1.memos.entry(sig).or_default().clone());
        Ok(view)
    }

    /// Drops every cached bank for `relation` (case-insensitive). Purely a
    /// memory-reclamation affordance — fingerprinted keys already guarantee
    /// mutated relations never hit (see the module docs).
    pub fn invalidate_relation(&self, relation: &str) {
        let relation = relation.to_ascii_lowercase();
        self.lock().entries.retain(|(k, _)| k.relation != relation);
    }

    /// Drops every cached bank.
    pub fn clear(&self) {
        self.lock().entries.clear();
    }

    /// Activity counters and current size.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            entries: inner.entries.len(),
            hits: inner.hits,
            misses: inner.misses,
            columns_reused: inner.columns_reused,
            columns_built: inner.columns_built,
            resident_bytes: inner.entries.iter().map(|(_, b)| b.resident_bytes()).sum(),
            spilled_bytes: inner.entries.iter().map(|(_, b)| b.spilled_bytes()).sum(),
            memo_bytes: inner.entries.iter().map(|(_, b)| b.memo_bytes()).sum(),
        }
    }

    /// Number of resident banks.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// True when no bank is resident.
    pub fn is_empty(&self) -> bool {
        self.lock().entries.is_empty()
    }
}

impl Default for ViewCache {
    fn default() -> Self {
        ViewCache::new(DEFAULT_VIEW_CACHE_CAPACITY)
    }
}

impl fmt::Debug for ViewCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        write!(
            f,
            "ViewCache({} entries, {} hits, {} misses)",
            stats.entries, stats.hits, stats.misses
        )
    }
}

/// Copies `view`'s columns that the bank does not have yet into the bank and
/// returns the view's term signature (its columns as bank indices, in view
/// order) — the key under which views may share a [`PartitionMemo`].
fn adopt_columns(bank: &mut TermBank, view: &CandidateView) -> Vec<usize> {
    view.term_keys()
        .iter()
        .zip(view.terms())
        .map(
            |(call, column)| match bank.term_keys.iter().position(|k| k == call) {
                Some(i) => i,
                None => {
                    bank.term_keys.push(call.clone());
                    bank.columns.push(Arc::new(column.clone()));
                    bank.term_keys.len() - 1
                }
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::base_candidates;
    use datagen::{recipes, Seed};
    use paql::parse;

    const MEAL: &str = "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
        SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE SUM(P.protein)";

    fn view_pair(cache: &ViewCache, table: &Table, q: &str) -> (CandidateView, CandidateView) {
        let query = parse(q).unwrap();
        (
            cache.view_for(&query, table).unwrap(),
            cache.view_for(&query, table).unwrap(),
        )
    }

    /// A build pinned to resident storage, so byte-budget arithmetic in the
    /// tests below is exact regardless of the `PB_COLUMN_BUDGET` environment.
    fn view_resident(cache: &ViewCache, query: &PaqlQuery, table: &Table) -> CandidateView {
        cache
            .view_for_with(
                query,
                table,
                &crate::column_store::ColumnPolicy::resident(),
                ParExec::sequential(),
            )
            .unwrap()
    }

    #[test]
    fn repeated_queries_hit_and_reuse_every_column() {
        let t = recipes(300, Seed(1));
        let cache = ViewCache::new(4);
        let (a, b) = view_pair(&cache, &t, MEAL);
        assert_eq!(a.candidates(), b.candidates());
        assert_eq!(a.terms().len(), b.terms().len());
        for (x, y) in a.terms().iter().zip(b.terms()) {
            assert_eq!(x.coeffs_vec(), y.coeffs_vec());
            assert_eq!(x.included_vec(), y.included_vec());
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.columns_built, 3, "COUNT, SUM(cal), SUM(protein)");
        assert_eq!(stats.columns_reused, 3);
        // Byte accounting sees the three banked columns.
        let banked: usize = a
            .terms()
            .iter()
            .map(|t| t.resident_bytes() + t.spilled_bytes())
            .sum();
        assert_eq!(stats.resident_bytes + stats.spilled_bytes, banked);
    }

    #[test]
    fn bank_growth_is_bounded_by_the_byte_budget() {
        // Every query introduces a novel FILTER term on the same
        // (relation, predicate) key; the bank must not grow past the byte
        // budget (here: room for about four 50-row columns).
        let t = recipes(50, Seed(42));
        let one_column = crate::column_store::column_bytes(50);
        let cache = ViewCache::with_byte_budget(4, 4 * one_column + one_column / 2);
        let query_with_threshold = |c: usize| {
            parse(&format!(
                "SELECT PACKAGE(R) AS P FROM recipes R \
                 SUCH THAT COUNT(*) FILTER (WHERE R.calories > {c}) >= 0"
            ))
            .unwrap()
        };
        for c in 0..64 {
            view_resident(&cache, &query_with_threshold(c), &t);
            let stats = cache.stats();
            assert!(
                stats.resident_bytes + stats.spilled_bytes <= 4 * one_column + one_column / 2,
                "bank exceeded its byte budget after query {c}"
            );
        }
        assert_eq!(cache.len(), 1, "one key throughout");
        // The most recent term survived the last reset and is served warm...
        let built = cache.stats().columns_built;
        view_resident(&cache, &query_with_threshold(63), &t);
        assert_eq!(cache.stats().columns_built, built, "recent term banked");
        // ...while the very first term was dropped by a reset and rebuilds.
        view_resident(&cache, &query_with_threshold(0), &t);
        assert_eq!(cache.stats().columns_built, built + 1, "old term evicted");
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_banks_first() {
        // Distinct WHERE predicates are distinct banks; with room for about
        // two single-column banks, priming a third must evict the stalest
        // bank, not the freshest.
        let t = recipes(50, Seed(43));
        let one_column = crate::column_store::column_bytes(50);
        // Predicates every row passes, so all three banks weigh exactly one
        // full column and the budget arithmetic below is exact.
        let cache = ViewCache::with_byte_budget(8, 2 * one_column + one_column / 2);
        let queries: Vec<PaqlQuery> = ["R.calories > 0", "R.calories > -1", "R.calories > -2"]
            .iter()
            .map(|w| {
                parse(&format!(
                    "SELECT PACKAGE(R) AS P FROM recipes R WHERE {w} SUCH THAT COUNT(*) = 1"
                ))
                .unwrap()
            })
            .collect();
        view_resident(&cache, &queries[0], &t);
        view_resident(&cache, &queries[1], &t);
        assert_eq!(cache.len(), 2);
        view_resident(&cache, &queries[2], &t); // over budget: evicts [0]
        assert_eq!(cache.len(), 2, "byte budget evicted one bank");
        view_resident(&cache, &queries[1], &t);
        assert_eq!(cache.stats().hits, 1, "fresh bank survived");
        view_resident(&cache, &queries[0], &t);
        assert_eq!(cache.stats().misses, 4, "stale bank was the victim");
    }

    #[test]
    fn cached_views_match_cold_builds_exactly() {
        let t = recipes(200, Seed(2));
        let cache = ViewCache::new(4);
        let query = parse(MEAL).unwrap();
        let warm = {
            cache.view_for(&query, &t).unwrap(); // prime
            cache.view_for(&query, &t).unwrap()
        };
        let cold = {
            let candidates = base_candidates(&t, query.where_clause.as_ref()).unwrap();
            CandidateView::build(
                &t,
                candidates,
                query.max_multiplicity(),
                query.such_that.clone(),
                query.objective.clone(),
            )
            .unwrap()
        };
        assert_eq!(warm.candidates(), cold.candidates());
        assert_eq!(warm.term_keys(), cold.term_keys());
        for (w, c) in warm.terms().iter().zip(cold.terms()) {
            assert_eq!(w.coeffs_vec(), c.coeffs_vec());
            assert_eq!(w.included_vec(), c.included_vec());
        }
    }

    #[test]
    fn adding_terms_extends_the_bank_instead_of_rebuilding() {
        let t = recipes(300, Seed(3));
        let cache = ViewCache::new(4);
        let narrow = parse(
            "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
             SUCH THAT COUNT(*) = 3 AND SUM(P.calories) <= 2500",
        )
        .unwrap();
        let wide = parse(MEAL).unwrap();
        cache.view_for(&narrow, &t).unwrap();
        let v = cache.view_for(&wide, &t).unwrap();
        assert_eq!(v.terms().len(), 3);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // COUNT and SUM(calories) came from the bank; only SUM(protein) was
        // materialized on the second query.
        assert_eq!(stats.columns_reused, 2);
        assert_eq!(stats.columns_built, 3);
        // The narrower query now reuses the grown bank wholesale.
        cache.view_for(&narrow, &t).unwrap();
        assert_eq!(cache.stats().columns_reused, 4);
        assert_eq!(cache.stats().columns_built, 3);
    }

    #[test]
    fn partition_memo_is_shared_across_hits_with_the_same_terms() {
        let t = recipes(500, Seed(4));
        let cache = ViewCache::new(4);
        let (a, b) = view_pair(&cache, &t, MEAL);
        let pa = a
            .partitioning(64, 7, &Budget::unlimited(), ParExec::sequential())
            .unwrap();
        let pb = b
            .partitioning(64, 7, &Budget::unlimited(), ParExec::sequential())
            .unwrap();
        assert!(Arc::ptr_eq(&pa, &pb), "partitioning computed twice");
        // A different (size, seed) is a different memo slot, not a clash.
        let pc = b
            .partitioning(32, 7, &Budget::unlimited(), ParExec::sequential())
            .unwrap();
        assert!(!Arc::ptr_eq(&pa, &pc));
    }

    #[test]
    fn mutation_changes_the_key_so_stale_banks_cannot_hit() {
        let mut t = recipes(100, Seed(5));
        let cache = ViewCache::new(4);
        let query = parse(MEAL).unwrap();
        cache.view_for(&query, &t).unwrap();
        // Mutate: the fingerprint moves, the old bank can never match.
        let extra = t.rows()[0].clone();
        t.insert(extra).unwrap();
        let v = cache.view_for(&query, &t).unwrap();
        assert_eq!(cache.stats().hits, 0);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(v.candidates().len() as u64, {
            let fresh = base_candidates(&t, query.where_clause.as_ref()).unwrap();
            fresh.len() as u64
        });
    }

    #[test]
    fn lru_evicts_the_least_recently_used_bank() {
        let t = recipes(50, Seed(6));
        let cache = ViewCache::new(2);
        let queries: Vec<PaqlQuery> = ["R.calories > 100", "R.calories > 200", "R.calories > 300"]
            .iter()
            .map(|w| {
                parse(&format!(
                    "SELECT PACKAGE(R) AS P FROM recipes R WHERE {w} SUCH THAT COUNT(*) = 1"
                ))
                .unwrap()
            })
            .collect();
        cache.view_for(&queries[0], &t).unwrap();
        cache.view_for(&queries[1], &t).unwrap();
        cache.view_for(&queries[2], &t).unwrap(); // evicts queries[0]
        assert_eq!(cache.len(), 2);
        cache.view_for(&queries[0], &t).unwrap();
        assert_eq!(cache.stats().misses, 4, "evicted entry rebuilt");
    }

    #[test]
    fn invalidation_and_zero_capacity_behave() {
        let t = recipes(50, Seed(7));
        let cache = ViewCache::new(4);
        let query = parse(MEAL).unwrap();
        cache.view_for(&query, &t).unwrap();
        assert_eq!(cache.len(), 1);
        cache.invalidate_relation("RECIPES");
        assert!(cache.is_empty());

        let disabled = ViewCache::new(0);
        disabled.view_for(&query, &t).unwrap();
        disabled.view_for(&query, &t).unwrap();
        assert!(disabled.is_empty());
        assert_eq!(disabled.stats().hits, 0);
    }
}
