//! Cooperative deadlines and cancellation for solvers.
//!
//! The interface layer promises an *anytime* answer: a package now, a better
//! one if you wait. That promise requires every solver to honour one shared
//! wall-clock budget *and* to stop when a racing solver has already produced
//! a result that cannot be improved. [`Budget`] is that substrate: a deadline
//! measured from when the budget was armed, plus a shared stop flag that the
//! [`crate::portfolio::PortfolioSolver`] (or any external controller) can set
//! to cancel in-flight work.
//!
//! Solvers check [`Budget::expired`] inside their hot loops and return their
//! best-so-far result with `optimal: false` when it trips — expiry is a
//! quality downgrade, never an error. Cloning a `Budget` shares the stop
//! flag, so one `cancel()` reaches every solver holding a clone.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A wall-clock budget with cooperative cancellation.
///
/// A budget is *armed* at construction: the deadline is `now + limit`. Clones
/// share the cancellation flag (an `Arc<AtomicBool>`) but the deadline is
/// plain data, so a clone observes exactly the same expiry as the original.
/// Use [`Budget::rearmed`] to obtain an independent budget with the same
/// limit but a fresh start time and a fresh flag (the engine does this once
/// per plan execution, so re-running a plan never sees a stale deadline or a
/// tripped flag from a previous portfolio race), and [`Budget::child`] for a
/// budget that *observes* this one's cancellation but owns its own flag (a
/// portfolio cancels its workers through a child without tripping the
/// caller's budget as a side effect).
///
/// The contract every solver implements: when `expired()` turns true, stop at
/// the next check point and return the best result found so far with
/// `optimal: false`.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Wall-clock allowance (None = unlimited).
    limit: Option<Duration>,
    /// When the budget was armed.
    started: Instant,
    /// Shared cancellation flag; set by `cancel()` on any clone.
    stop: Arc<AtomicBool>,
    /// Ancestor flags this budget observes but never sets (see
    /// [`Budget::child`]).
    parents: Vec<Arc<AtomicBool>>,
}

impl Budget {
    /// A budget with no deadline (it can still be cancelled).
    pub fn unlimited() -> Self {
        Budget::starting_now(None)
    }

    /// Arms a budget now: the deadline is `now + limit` (or never, for
    /// `None`).
    pub fn starting_now(limit: Option<Duration>) -> Self {
        Budget {
            limit,
            started: Instant::now(),
            stop: Arc::new(AtomicBool::new(false)),
            parents: Vec::new(),
        }
    }

    /// Arms a budget with a concrete time limit.
    pub fn with_limit(limit: Duration) -> Self {
        Budget::starting_now(Some(limit))
    }

    /// True when the budget is spent: a stop flag (own or an ancestor's) was
    /// set or the deadline has passed. This is the check solvers run inside
    /// their hot loops.
    pub fn expired(&self) -> bool {
        if self.cancelled() {
            return true;
        }
        match self.limit {
            Some(limit) => self.started.elapsed() >= limit,
            None => false,
        }
    }

    /// Sets the shared stop flag: every solver holding a clone (or a child)
    /// of this budget observes `expired()` at its next check point. Ancestor
    /// budgets are *not* affected.
    pub fn cancel(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// True when `cancel()` was called on this budget, any clone of it, or
    /// any ancestor it was derived from (regardless of the deadline).
    pub fn cancelled(&self) -> bool {
        self.stop.load(Ordering::Relaxed) || self.parents.iter().any(|p| p.load(Ordering::Relaxed))
    }

    /// A budget with the same limit, start time and ancestors as this one,
    /// plus a fresh flag of its own. The child observes every cancellation
    /// the parent would, but cancelling the child never trips the parent —
    /// the isolation a portfolio race needs to cancel its workers without
    /// mutating the caller's options.
    pub fn child(&self) -> Budget {
        let mut parents = self.parents.clone();
        parents.push(Arc::clone(&self.stop));
        Budget {
            limit: self.limit,
            started: self.started,
            stop: Arc::new(AtomicBool::new(false)),
            parents,
        }
    }

    /// The wall-clock allowance this budget was armed with.
    pub fn limit(&self) -> Option<Duration> {
        self.limit
    }

    /// The absolute deadline, when a limit is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.limit.map(|l| self.started + l)
    }

    /// Time since the budget was armed (solvers use this for their stats, so
    /// deadline semantics and elapsed-time reporting share one clock).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// An independent budget with the same limit, a fresh start time, an
    /// untripped stop flag and no ancestors.
    pub fn rearmed(&self) -> Budget {
        Budget::starting_now(self.limit)
    }

    /// The shared stop flag, for wiring into substrates that cannot depend on
    /// this crate (the LP solver's `SolverConfig::stop`).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Projects this budget into an LP-solver configuration: the deadline
    /// (capped by any tighter deadline already present) and this budget's
    /// stop flags — *appended*, so a stop flag the caller installed keeps
    /// working — letting cancellation reach the simplex pivot loop.
    pub fn apply_to_solver(&self, config: &mut lp_solver::SolverConfig) {
        config.stop.push(self.stop_flag());
        config.stop.extend(self.parents.iter().cloned());
        config.deadline = match (config.deadline, self.deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budgets_never_expire_on_their_own() {
        let b = Budget::unlimited();
        assert!(!b.expired());
        assert!(b.deadline().is_none());
        assert!(b.limit().is_none());
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let b = Budget::unlimited();
        let clone = b.clone();
        assert!(!clone.expired());
        b.cancel();
        assert!(clone.expired());
        assert!(clone.cancelled());
        // Rearming produces a fresh, untripped flag.
        let fresh = clone.rearmed();
        assert!(!fresh.expired());
    }

    #[test]
    fn child_budgets_observe_but_never_trip_the_parent() {
        let parent = Budget::unlimited();
        let child = parent.child();
        let grandchild = child.child();
        // Cancelling a child is invisible upwards.
        child.cancel();
        assert!(child.expired());
        assert!(grandchild.expired(), "descendants observe an ancestor");
        assert!(!parent.expired(), "cancel must not leak to the parent");
        // Cancelling the parent reaches every descendant.
        let parent2 = Budget::unlimited();
        let child2 = parent2.child().child();
        parent2.cancel();
        assert!(child2.expired());
        assert!(child2.cancelled());
    }

    #[test]
    fn deadlines_expire() {
        let b = Budget::with_limit(Duration::ZERO);
        assert!(b.expired());
        let b = Budget::with_limit(Duration::from_secs(3600));
        assert!(!b.expired());
    }

    #[test]
    fn applies_the_tighter_deadline_to_the_lp_solver() {
        let mut cfg = lp_solver::SolverConfig::default();
        let b = Budget::with_limit(Duration::from_millis(5));
        b.apply_to_solver(&mut cfg);
        assert_eq!(cfg.stop.len(), 1);
        let first = cfg.deadline.unwrap();
        // A looser budget must not push the deadline back out, and its flag
        // joins (not replaces) the earlier one.
        let loose = Budget::with_limit(Duration::from_secs(3600));
        loose.apply_to_solver(&mut cfg);
        assert_eq!(cfg.deadline, Some(first));
        assert_eq!(cfg.stop.len(), 2);
        b.cancel();
        assert!(cfg.interrupted(), "every contributed flag stays live");
    }
}
