//! Greedy construction of starting packages for the local search and the
//! standalone [`crate::solver::GreedySolver`], plus the shared
//! feasibility-repair pass the greedy solver and the sketch→refine fallback
//! both run.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::budget::Budget;
use crate::ilp::linearize_objective;
use crate::package::Package;
use crate::par::ParExec;
use crate::pruning::derive_bounds;
use crate::view::{CandidateView, ViewState};

/// How to pick the tuples of a starting package.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartHeuristic {
    /// Highest objective coefficient first (density-ordered greedy).
    Greedy,
    /// Uniformly random candidates ("which can be constructed, for example,
    /// at random" — Section 4.2).
    Random,
}

/// Builds a starting package of a plausible cardinality: the lower
/// cardinality bound when one is known (the smallest package that could
/// possibly be feasible), otherwise a small constant.
pub fn starting_package(
    view: &CandidateView,
    heuristic: StartHeuristic,
    rng: &mut StdRng,
) -> Package {
    let n = view.candidate_count();
    if n == 0 {
        return Package::new();
    }
    let bounds = derive_bounds(view).clamp_to(n as u64 * view.max_multiplicity() as u64);
    let target = starting_cardinality(view, bounds.lower, bounds.upper);

    // Order candidates by the chosen heuristic.
    let mut order: Vec<usize> = (0..n).collect();
    match heuristic {
        StartHeuristic::Random => order.shuffle(rng),
        StartHeuristic::Greedy => {
            let coeffs = linearize_objective(view).ok().flatten().map(|l| l.coeffs);
            match coeffs {
                Some(c) => {
                    let maximize = matches!(view.direction(), paql::ObjectiveDirection::Maximize);
                    order.sort_by(|&a, &b| {
                        let x = c[a];
                        let y = c[b];
                        if maximize {
                            y.total_cmp(&x)
                        } else {
                            x.total_cmp(&y)
                        }
                    });
                }
                None => order.shuffle(rng),
            }
        }
    }

    let mut package = Package::new();
    let mut placed = 0u64;
    'outer: for round in 0..view.max_multiplicity() {
        for &i in &order {
            if placed >= target {
                break 'outer;
            }
            // First pass adds each tuple once; later passes add repetitions
            // (only relevant for REPEAT queries).
            let _ = round;
            if package.multiplicity(view.candidates()[i]) < view.max_multiplicity() {
                package.add(view.candidates()[i], 1);
                placed += 1;
            }
        }
        if view.max_multiplicity() == 1 {
            break;
        }
    }
    package
}

/// Feasibility-repair pass: accept single add/drop moves while they strictly
/// reduce the violation (delta-evaluated on the view's columns). Each pass
/// scans the whole candidate set in fixed-width chunks fanned out over
/// `par`; per-chunk local bests combine in chunk order (first strictly
/// better move wins, exactly the sequential scan's tie-breaking), so the
/// repair trajectory is bit-identical at every thread count. The budget is
/// checked per chunk, not per element: a chunk that observes expiry marks
/// the pass interrupted and the state is left at its best-so-far.
/// Returns `(evaluations, moves)` for the caller's stats.
pub(crate) fn repair_to_feasibility(
    state: &mut ViewState<'_>,
    budget: &Budget,
    par: ParExec,
) -> (u64, u64) {
    let view = state.view();
    let n = view.candidate_count();
    let max_mult = view.max_multiplicity() as i64;
    let mut evaluations = 0u64;
    let mut moves = 0u64;
    let mut violation = state.violation();
    while violation > 0.0 && !budget.expired() {
        // One pass: chunk-local best move (`None` chunk = expired marker).
        let chunk_bests = {
            let snapshot: &ViewState<'_> = state;
            par.run_chunks(n, |_, range| {
                if budget.expired() {
                    return None;
                }
                let mut evals = 0u64;
                let mut best: Option<(f64, usize, i64)> = None;
                for idx in range {
                    for delta in [1i64, -1] {
                        let mult = snapshot.multiplicity(idx) as i64;
                        if mult + delta < 0 || mult + delta > max_mult {
                            continue;
                        }
                        evals += 1;
                        let (v, _) = snapshot.score_with(&[(idx, delta)]);
                        if v + 1e-9 < best.map_or(violation, |(b, _, _)| b) {
                            best = Some((v, idx, delta));
                        }
                    }
                }
                Some((evals, best))
            })
        };
        let mut expired = false;
        let mut best_change: Option<(usize, i64)> = None;
        let mut best_violation = violation;
        for chunk in chunk_bests {
            let Some((evals, best)) = chunk else {
                expired = true;
                break;
            };
            evaluations += evals;
            if let Some((v, idx, delta)) = best {
                if v + 1e-9 < best_violation {
                    best_violation = v;
                    best_change = Some((idx, delta));
                }
            }
        }
        if expired {
            break;
        }
        match best_change {
            Some((idx, delta)) => {
                state.apply(idx, delta);
                violation = best_violation;
                moves += 1;
            }
            None => break, // stuck — the repair gives up, feasible or not
        }
    }
    (evaluations, moves)
}

fn starting_cardinality(view: &CandidateView, lower: u64, upper: Option<u64>) -> u64 {
    let capacity = view.candidate_count() as u64 * view.max_multiplicity() as u64;
    let fallback = 3u64.min(capacity);
    let target = if lower > 0 {
        lower
    } else {
        match upper {
            Some(u) if u < fallback => u,
            _ => fallback,
        }
    };
    target.min(capacity)
}

/// Generates a random cardinality inside the pruning bounds, used by restart
/// rounds so different restarts explore different package sizes.
pub fn random_cardinality(view: &CandidateView, rng: &mut StdRng) -> u64 {
    let capacity = (view.candidate_count() as u64 * view.max_multiplicity() as u64).max(1);
    let bounds = derive_bounds(view).clamp_to(capacity);
    let lo = bounds.lower.max(1).min(capacity);
    let hi = bounds.upper.unwrap_or(lo + 4).clamp(lo, capacity);
    rng.random_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PackageSpec;
    use datagen::{recipes, Seed};
    use minidb::Table;
    use paql::compile;
    use rand::SeedableRng;

    fn spec_for<'a>(table: &'a Table, q: &str) -> PackageSpec<'a> {
        let analyzed = compile(q, table.schema()).unwrap();
        PackageSpec::build(&analyzed, table).unwrap()
    }

    #[test]
    fn greedy_start_prefers_high_objective_tuples() {
        let t = recipes(100, Seed(1));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 3 MAXIMIZE SUM(P.protein)",
        );
        let mut rng = StdRng::seed_from_u64(1);
        let p = starting_package(spec.view(), StartHeuristic::Greedy, &mut rng);
        assert_eq!(p.cardinality(), 3);
        // The greedy start should contain the single highest-protein recipe.
        let best = spec
            .candidates
            .iter()
            .max_by(|a, b| {
                t.value_f64(**a, "protein")
                    .unwrap()
                    .total_cmp(&t.value_f64(**b, "protein").unwrap())
            })
            .copied()
            .unwrap();
        assert!(p.multiplicity(best) >= 1, "{}", p.render(&t));
    }

    #[test]
    fn random_start_respects_cardinality_and_multiplicity() {
        let t = recipes(60, Seed(2));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 5 AND SUM(P.calories) <= 4000",
        );
        let mut rng = StdRng::seed_from_u64(7);
        let p = starting_package(spec.view(), StartHeuristic::Random, &mut rng);
        assert_eq!(p.cardinality(), 5);
        assert!(p.max_multiplicity() <= 1);
    }

    #[test]
    fn repeat_queries_can_exceed_distinct_candidates() {
        let t = recipes(2, Seed(3));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R REPEAT 3 SUCH THAT COUNT(*) = 5",
        );
        let mut rng = StdRng::seed_from_u64(3);
        let p = starting_package(spec.view(), StartHeuristic::Greedy, &mut rng);
        assert_eq!(p.cardinality(), 5);
        assert!(p.max_multiplicity() <= 3);
    }

    #[test]
    fn empty_candidate_set_yields_empty_package() {
        let t = recipes(20, Seed(4));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.calories < 0 SUCH THAT COUNT(*) = 3",
        );
        let mut rng = StdRng::seed_from_u64(4);
        assert!(starting_package(spec.view(), StartHeuristic::Greedy, &mut rng).is_empty());
    }

    #[test]
    fn random_cardinality_stays_in_bounds() {
        let t = recipes(50, Seed(5));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) >= 2 AND COUNT(*) <= 6",
        );
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let c = random_cardinality(spec.view(), &mut rng);
            assert!((2..=6).contains(&c), "cardinality {c} out of bounds");
        }
    }
}
