//! Offline candidate partitioning for the sketch→refine solver.
//!
//! SketchRefine (Brucato, Abouzied, Meliou: "Scalable Package Queries in
//! Relational Database Systems", PVLDB 9(7), 2016) and its successor
//! Progressive Shading (Mai et al.: "Scaling Package Queries to a Billion
//! Tuples via Progressive Partitioning", 2023) both rest on the same offline
//! step: group the candidate tuples into size-bounded partitions that are
//! *tight* on the quality-sensitive attributes — the attributes the query's
//! constraints and objective aggregate over — and summarize each partition by
//! one representative row so a tiny "sketch" problem can stand in for the
//! full one.
//!
//! This module implements that step over the columnar
//! [`CandidateView`]: a k-d-style recursive median split of the candidate
//! index space along the view's term coefficient columns (those *are* the
//! quality-sensitive attributes — every aggregate the query can observe has a
//! column here). Splitting always halves the widest remaining column, so the
//! partitions end up compact in the coordinates that matter and nothing else.
//! The result is deterministic given a seed: the seed only rotates the scan
//! order used to break ties between equally-wide columns.

use crate::par::ParExec;
use crate::view::CandidateView;

/// One partition of the candidate set.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Candidate indices (into the view's candidate order), ascending.
    pub members: Vec<usize>,
    /// The representative row: per-term mean coefficient over the members
    /// (excluded members contribute 0, exactly as they do to the term's
    /// aggregates).
    pub centroid: Vec<f64>,
}

impl Partition {
    /// Total multiplicity capacity of this partition: how many package slots
    /// its members can fill under the view's `REPEAT` bound.
    pub fn capacity(&self, view: &CandidateView) -> u64 {
        self.members.len() as u64 * view.max_multiplicity() as u64
    }

    /// Mean of an arbitrary per-candidate coefficient column over the
    /// members — the partition's "representative coefficient" for that
    /// column. This is what the sketch problem aggregates constraint rows
    /// with.
    pub fn mean_of(&self, coeffs: &[f64]) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        self.members.iter().map(|&i| coeffs[i]).sum::<f64>() / self.members.len() as f64
    }
}

/// A size-bounded partitioning of a view's candidate set.
#[derive(Debug, Clone)]
pub struct Partitioning {
    partitions: Vec<Partition>,
    /// Candidate index → partition id.
    assignment: Vec<usize>,
}

impl Partitioning {
    /// The partitions, ordered by their smallest member index (stable ids).
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Partition id of a candidate index.
    pub fn partition_of(&self, candidate_idx: usize) -> usize {
        self.assignment[candidate_idx]
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True when the view had no candidates.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }
}

/// Partitions the view's candidates into groups of at most
/// `max_partition_size` by recursive median splits of the widest term
/// column. Deterministic given `seed` (the seed breaks ties between
/// equally-wide columns by rotating the scan order).
pub fn partition_view(view: &CandidateView, max_partition_size: usize, seed: u64) -> Partitioning {
    partition_view_budgeted(
        view,
        max_partition_size,
        seed,
        &crate::budget::Budget::unlimited(),
        ParExec::sequential(),
    )
    // pb-lint: allow(no-panic-in-solver-paths) — invariant: the only error
    // path in the budgeted variant is budget expiry, and an unlimited
    // budget cannot expire.
    .expect("an unlimited budget cannot expire")
}

/// [`partition_view`] with a cooperative deadline and a chunk fan-out
/// executor. The split worklist checks the budget between iterations and
/// returns `None` on expiry, so a caller whose budget ran out
/// mid-partitioning (the sketch solver after a slow greedy baseline) stops
/// within one split instead of finishing the whole `O(n log n)` job. The
/// widest-column spread scans — the data-heavy part of each split — fan out
/// over `par` in fixed-width member chunks; min/max reductions combine in
/// chunk order, so the partitioning is bit-identical at every thread count,
/// and a completed run is identical to the unbudgeted one.
pub fn partition_view_budgeted(
    view: &CandidateView,
    max_partition_size: usize,
    seed: u64,
    budget: &crate::budget::Budget,
    par: ParExec,
) -> Option<Partitioning> {
    let n = view.candidate_count();
    let max_size = max_partition_size.max(1);
    let terms = view.terms();

    let mut leaves: Vec<Vec<usize>> = Vec::new();
    let mut work: Vec<Vec<usize>> = if n == 0 {
        Vec::new()
    } else {
        vec![(0..n).collect()]
    };
    while let Some(mut members) = work.pop() {
        if budget.expired() {
            return None;
        }
        if members.len() <= max_size {
            leaves.push(members);
            continue;
        }
        // Pick the widest coefficient column over this subset; the seed
        // rotates the scan start so ties resolve per seed, deterministically.
        // The per-column scan is chunked over the member list (min/max are
        // order-independent, so the fan-out cannot change the pick); small
        // subsets deep in the recursion fall back to the inline loop
        // automatically because they span a single chunk.
        let mut best: Option<(usize, f64)> = None;
        let dims = terms.len();
        for k in 0..dims {
            let d = (k + seed as usize) % dims;
            // Resident columns keep the direct-slice chunk fan-out; paged
            // columns scan through chunk-bucketed pins (min/max combination
            // is order-independent, so both give the identical spread).
            let (lo, hi) = match terms[d].resident_coeffs() {
                Some(col) => par
                    .fold_chunks(
                        members.len(),
                        |_, range| {
                            let mut lo = f64::INFINITY;
                            let mut hi = f64::NEG_INFINITY;
                            for &i in &members[range] {
                                lo = lo.min(col[i]);
                                hi = hi.max(col[i]);
                            }
                            (lo, hi)
                        },
                        |a, b| (a.0.min(b.0), a.1.max(b.1)),
                    )
                    .unwrap_or((f64::INFINITY, f64::NEG_INFINITY)),
                None => terms[d].minmax_over(&members),
            };
            let spread = hi - lo;
            if spread > best.map(|(_, s)| s).unwrap_or(0.0) {
                best = Some((d, spread));
            }
        }
        if let Some((d, _)) = best {
            match terms[d].resident_coeffs() {
                Some(col) => {
                    members.sort_by(|&a, &b| col[a].total_cmp(&col[b]).then(a.cmp(&b)));
                }
                None => {
                    // Gather the sort keys once (one pool pin per distinct
                    // chunk) and sort a permutation — the comparator mirrors
                    // the resident one exactly, so the split is identical.
                    let keys = terms[d].gather_coeffs(&members);
                    let mut order: Vec<u32> = (0..members.len() as u32).collect();
                    order.sort_by(|&x, &y| {
                        keys[x as usize]
                            .total_cmp(&keys[y as usize])
                            .then(members[x as usize].cmp(&members[y as usize]))
                    });
                    members = order.iter().map(|&p| members[p as usize]).collect();
                }
            }
        }
        // No splittable column (no terms, or all values identical): the
        // members are still in ascending index order, so halving by position
        // stays deterministic.
        let right = members.split_off(members.len() / 2);
        work.push(right);
        work.push(members);
    }

    let mut partitions: Vec<Partition> = leaves
        .into_iter()
        .map(|mut members| {
            members.sort_unstable();
            // Members are ascending, so the paged path's in-order chunk
            // cursor accumulates in the same order the resident slice scan
            // does — bit-identical centroids.
            let centroid = terms
                .iter()
                .map(|t| match t.resident_coeffs() {
                    Some(col) => {
                        members.iter().map(|&i| col[i]).sum::<f64>() / members.len() as f64
                    }
                    None => t.sum_over_sorted(&members) / members.len() as f64,
                })
                .collect();
            Partition { members, centroid }
        })
        .collect();
    partitions.sort_by_key(|p| p.members[0]);

    let mut assignment = vec![0usize; n];
    for (pid, p) in partitions.iter().enumerate() {
        for &i in &p.members {
            assignment[i] = pid;
        }
    }
    Some(Partitioning {
        partitions,
        assignment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PackageSpec;
    use datagen::{recipes, Seed};
    use minidb::Table;
    use paql::compile;

    fn view_for(table: &Table, q: &str) -> CandidateView {
        let analyzed = compile(q, table.schema()).unwrap();
        PackageSpec::build(&analyzed, table).unwrap().view().clone()
    }

    const QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R \
        SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
        MAXIMIZE SUM(P.protein)";

    #[test]
    fn partitions_cover_every_candidate_exactly_once() {
        let t = recipes(500, Seed(1));
        let v = view_for(&t, QUERY);
        let p = partition_view(&v, 32, 7);
        let mut seen = vec![false; v.candidate_count()];
        for (pid, part) in p.partitions().iter().enumerate() {
            assert!(!part.members.is_empty());
            assert!(part.members.len() <= 32);
            for &i in &part.members {
                assert!(!seen[i], "candidate {i} appears in two partitions");
                seen[i] = true;
                assert_eq!(p.partition_of(i), pid);
            }
        }
        assert!(seen.iter().all(|&s| s), "some candidate unassigned");
    }

    #[test]
    fn partitioning_is_deterministic_per_seed() {
        let t = recipes(400, Seed(2));
        let v = view_for(&t, QUERY);
        let a = partition_view(&v, 16, 42);
        let b = partition_view(&v, 16, 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.partitions().iter().zip(b.partitions()) {
            assert_eq!(x.members, y.members);
            assert_eq!(x.centroid, y.centroid);
        }
    }

    #[test]
    fn partitions_are_tight_on_the_split_columns() {
        // The per-partition spread of the widest column must be (weakly)
        // smaller than the global spread — that's the whole point of
        // quality-aware splitting.
        let t = recipes(600, Seed(3));
        let v = view_for(&t, QUERY);
        let p = partition_view(&v, 16, 1);
        for (d, term) in v.terms().iter().enumerate() {
            let coeffs = term.coeffs_vec();
            let global_lo = coeffs.iter().cloned().fold(f64::INFINITY, f64::min);
            let global_hi = coeffs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if global_hi - global_lo <= 0.0 {
                continue;
            }
            let mut max_local = 0.0f64;
            for part in p.partitions() {
                let lo = part
                    .members
                    .iter()
                    .map(|&i| coeffs[i])
                    .fold(f64::INFINITY, f64::min);
                let hi = part
                    .members
                    .iter()
                    .map(|&i| coeffs[i])
                    .fold(f64::NEG_INFINITY, f64::max);
                max_local = max_local.max(hi - lo);
            }
            assert!(
                max_local <= global_hi - global_lo,
                "term {d}: local spread exceeds global"
            );
        }
    }

    #[test]
    fn empty_and_tiny_views_partition_cleanly() {
        let t = recipes(5, Seed(4));
        let v = view_for(&t, QUERY);
        let p = partition_view(&v, 16, 0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.partitions()[0].members.len(), 5);

        let t = recipes(20, Seed(5));
        let analyzed = compile(
            "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.calories < 0 SUCH THAT COUNT(*) = 1",
            t.schema(),
        )
        .unwrap();
        let spec = PackageSpec::build(&analyzed, &t).unwrap();
        let p = partition_view(spec.view(), 16, 0);
        assert!(p.is_empty());
    }

    #[test]
    fn centroids_are_member_means() {
        let t = recipes(100, Seed(6));
        let v = view_for(&t, QUERY);
        let p = partition_view(&v, 8, 3);
        for part in p.partitions() {
            for (d, term) in v.terms().iter().enumerate() {
                let mean = part.mean_of(&term.coeffs_vec());
                assert!((part.centroid[d] - mean).abs() < 1e-12);
            }
        }
    }
}
