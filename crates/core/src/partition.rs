//! Offline candidate partitioning for the sketch→refine solver.
//!
//! SketchRefine (Brucato, Abouzied, Meliou: "Scalable Package Queries in
//! Relational Database Systems", PVLDB 9(7), 2016) and its successor
//! Progressive Shading (Mai et al.: "Scaling Package Queries to a Billion
//! Tuples via Progressive Partitioning", 2023) both rest on the same offline
//! step: group the candidate tuples into size-bounded partitions that are
//! *tight* on the quality-sensitive attributes — the attributes the query's
//! constraints and objective aggregate over — and summarize each partition by
//! one representative row so a tiny "sketch" problem can stand in for the
//! full one.
//!
//! This module implements that step over the columnar
//! [`CandidateView`]: a k-d-style recursive median split of the candidate
//! index space along the view's term coefficient columns (those *are* the
//! quality-sensitive attributes — every aggregate the query can observe has a
//! column here). Splitting always halves the widest remaining column, so the
//! partitions end up compact in the coordinates that matter and nothing else.
//! The result is deterministic given a seed: the seed only rotates the scan
//! order used to break ties between equally-wide columns.

use std::borrow::Cow;
use std::sync::Arc;

use crate::par::ParExec;
use crate::view::CandidateView;

/// One partition of the candidate set.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Candidate indices (into the view's candidate order), ascending.
    pub members: Vec<usize>,
    /// The representative row: per-term mean coefficient over the members
    /// (excluded members contribute 0, exactly as they do to the term's
    /// aggregates).
    pub centroid: Vec<f64>,
}

impl Partition {
    /// Total multiplicity capacity of this partition: how many package slots
    /// its members can fill under the view's `REPEAT` bound.
    pub fn capacity(&self, view: &CandidateView) -> u64 {
        self.members.len() as u64 * view.max_multiplicity() as u64
    }

    /// Mean of an arbitrary per-candidate coefficient column over the
    /// members — the partition's "representative coefficient" for that
    /// column. This is what the sketch problem aggregates constraint rows
    /// with.
    pub fn mean_of(&self, coeffs: &[f64]) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        self.members.iter().map(|&i| coeffs[i]).sum::<f64>() / self.members.len() as f64
    }
}

/// A size-bounded partitioning of a view's candidate set.
#[derive(Debug, Clone)]
pub struct Partitioning {
    partitions: Vec<Partition>,
    /// Candidate index → partition id.
    assignment: Vec<usize>,
}

impl Partitioning {
    /// The partitions, ordered by their smallest member index (stable ids).
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Rough heap footprint in bytes (assignment, member lists, centroids),
    /// for cache byte accounting — at 10^7 candidates a partitioning weighs
    /// on the order of the columns it splits, so the view cache must count
    /// it against its byte budget.
    pub fn approx_bytes(&self) -> usize {
        self.assignment.len() * 8
            + self
                .partitions
                .iter()
                .map(|p| (p.members.len() + p.centroid.len()) * 8 + 48)
                .sum::<usize>()
    }

    /// Partition id of a candidate index.
    pub fn partition_of(&self, candidate_idx: usize) -> usize {
        self.assignment[candidate_idx]
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True when the view had no candidates.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }
}

/// Partitions the view's candidates into groups of at most
/// `max_partition_size` by recursive median splits of the widest term
/// column. Deterministic given `seed` (the seed breaks ties between
/// equally-wide columns by rotating the scan order).
pub fn partition_view(view: &CandidateView, max_partition_size: usize, seed: u64) -> Partitioning {
    partition_view_budgeted(
        view,
        max_partition_size,
        seed,
        &crate::budget::Budget::unlimited(),
        ParExec::sequential(),
    )
    // pb-lint: allow(no-panic-in-solver-paths) — invariant: the only error
    // path in the budgeted variant is budget expiry, and an unlimited
    // budget cannot expire.
    .expect("an unlimited budget cannot expire")
}

/// [`partition_view`] with a cooperative deadline and a chunk fan-out
/// executor. The split worklist checks the budget between iterations and
/// returns `None` on expiry, so a caller whose budget ran out
/// mid-partitioning (the sketch solver after a slow greedy baseline) stops
/// within one split instead of finishing the whole `O(n log n)` job. The
/// widest-column spread scans — the data-heavy part of each split — fan out
/// over `par` in fixed-width member chunks; min/max reductions combine in
/// chunk order, so the partitioning is bit-identical at every thread count,
/// and a completed run is identical to the unbudgeted one.
pub fn partition_view_budgeted(
    view: &CandidateView,
    max_partition_size: usize,
    seed: u64,
    budget: &crate::budget::Budget,
    par: ParExec,
) -> Option<Partitioning> {
    let n = view.candidate_count();
    let max_size = max_partition_size.max(1);
    let terms = view.terms();
    if budget.expired() {
        return None;
    }
    // The split recursion reads members in *value* order, so once subsets
    // scatter across the column a paged view would fault the buffer pool on
    // nearly every access (at 10^7 candidates this thrash, not the solve,
    // dominated the wall clock: ~10^8 pool misses). Materialize each key
    // column once with a sequential chunk scan instead — transient
    // O(n · #terms) scratch, the same order as the member worklists this
    // function already holds — and run the resident algorithm against the
    // snapshot; chunk-order copies are bit-identical to the resident bytes,
    // so the resulting partitioning is too.
    let cols: Vec<Cow<'_, [f64]>> = terms
        .iter()
        .map(|t| match t.resident_coeffs() {
            Some(col) => Cow::Borrowed(col),
            None => Cow::Owned(t.coeffs_vec()),
        })
        .collect();

    let mut leaves: Vec<Vec<usize>> = Vec::new();
    let mut work: Vec<Vec<usize>> = if n == 0 {
        Vec::new()
    } else {
        vec![(0..n).collect()]
    };
    while let Some(mut members) = work.pop() {
        if budget.expired() {
            return None;
        }
        if members.len() <= max_size {
            leaves.push(members);
            continue;
        }
        // Pick the widest coefficient column over this subset; the seed
        // rotates the scan start so ties resolve per seed, deterministically.
        // The per-column scan is chunked over the member list (min/max are
        // order-independent, so the fan-out cannot change the pick); small
        // subsets deep in the recursion fall back to the inline loop
        // automatically because they span a single chunk.
        let mut best: Option<(usize, f64)> = None;
        let dims = terms.len();
        for k in 0..dims {
            let d = (k + seed as usize) % dims;
            let col = &cols[d];
            let (lo, hi) = par
                .fold_chunks(
                    members.len(),
                    |_, range| {
                        let mut lo = f64::INFINITY;
                        let mut hi = f64::NEG_INFINITY;
                        for &i in &members[range] {
                            lo = lo.min(col[i]);
                            hi = hi.max(col[i]);
                        }
                        (lo, hi)
                    },
                    |a, b| (a.0.min(b.0), a.1.max(b.1)),
                )
                .unwrap_or((f64::INFINITY, f64::NEG_INFINITY));
            let spread = hi - lo;
            if spread > best.map(|(_, s)| s).unwrap_or(0.0) {
                best = Some((d, spread));
            }
        }
        if let Some((d, _)) = best {
            let col = &cols[d];
            members.sort_by(|&a, &b| col[a].total_cmp(&col[b]).then(a.cmp(&b)));
        }
        // No splittable column (no terms, or all values identical): the
        // members are still in ascending index order, so halving by position
        // stays deterministic.
        let right = members.split_off(members.len() / 2);
        work.push(right);
        work.push(members);
    }

    let mut partitions: Vec<Partition> = leaves
        .into_iter()
        .map(|mut members| {
            members.sort_unstable();
            let centroid = cols
                .iter()
                .map(|col| members.iter().map(|&i| col[i]).sum::<f64>() / members.len() as f64)
                .collect();
            Partition { members, centroid }
        })
        .collect();
    partitions.sort_by_key(|p| p.members[0]);

    let mut assignment = vec![0usize; n];
    for (pid, p) in partitions.iter().enumerate() {
        for &i in &p.members {
            assignment[i] = pid;
        }
    }
    Some(Partitioning {
        partitions,
        assignment,
    })
}

/// One internal node of a [`PartitionTree`] layer.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Ids of this node's children in the layer below — leaf partition ids
    /// for the lowest internal layer, node indices into the previous
    /// [`PartitionTree::layers`] entry above that. Always ascending.
    pub children: Vec<usize>,
    /// Total number of underlying candidates below this node.
    pub weight: usize,
    /// The node's representative row: per-term weighted mean of the
    /// children's centroids, which (by induction over the layers) equals the
    /// plain mean over every underlying candidate — the same quantity a leaf
    /// [`Partition::centroid`] holds, one aggregation level up.
    pub centroid: Vec<f64>,
}

impl TreeNode {
    /// Total multiplicity capacity of the node's subtree: how many package
    /// slots its underlying candidates can fill under the `REPEAT` bound.
    pub fn capacity(&self, view: &CandidateView) -> u64 {
        self.weight as u64 * view.max_multiplicity() as u64
    }
}

/// A hierarchical partitioning: the flat leaf [`Partitioning`] plus a stack
/// of progressively coarser grouping layers, as in Progressive Shading
/// (Mai et al., 2023). The shading solver sketches over the coarsest layer's
/// representatives and descends, so no ILP it ever builds has more than
/// roughly `fanout²` variables regardless of the candidate count.
///
/// # Invariants
///
/// * **Exact cover per layer.** The leaves partition the candidate set
///   (every candidate in exactly one leaf), and each layer's nodes partition
///   the layer below: every child id appears in exactly one node's
///   `children`, and `children` lists are ascending.
/// * **Fine → coarse order.** `layers[0]` groups the leaf partitions;
///   `layers[i]` groups `layers[i-1]`. The last entry is the coarsest layer
///   and has at most `fanout` nodes; every node has at most `fanout`
///   children (and, by the median split, at least `fanout/2` except in a
///   degenerate last group). `layers` is empty when the leaf count is
///   already ≤ `fanout`.
/// * **Exact aggregates.** A node's `weight` is the sum of its descendants'
///   member counts and its `centroid` the weight-proportional mean of its
///   children's centroids, accumulated in ascending child order — so the
///   representatives are a pure function of the leaf layer, independent of
///   thread count or storage mode. The leaf layer itself is built by
///   [`partition_view_budgeted`], whose scans stream through
///   `TermColumn::chunk` cursors on paged views; the upper layers only ever
///   touch the (small, resident) centroid matrix derived from it.
/// * **Determinism.** Given the same view, `fanout`, and `seed`, the tree is
///   bit-identical at every thread count: the grouping reuses the same
///   widest-column median split as the leaf layer (seed-rotated tie scan,
///   `total_cmp` ordering, position-stable halving).
#[derive(Debug, Clone)]
pub struct PartitionTree {
    leaves: Arc<Partitioning>,
    layers: Vec<Vec<TreeNode>>,
}

impl PartitionTree {
    /// The leaf partitioning the tree was grown from.
    pub fn leaves(&self) -> &Partitioning {
        &self.leaves
    }

    /// The shared handle to the leaf partitioning (the same `Arc` the flat
    /// sketch→refine memo holds when leaf size and seed match).
    pub fn leaves_arc(&self) -> &Arc<Partitioning> {
        &self.leaves
    }

    /// Grouping layers, finest first, coarsest last (see the type docs).
    pub fn layers(&self) -> &[Vec<TreeNode>] {
        &self.layers
    }

    /// Number of grouping layers above the leaves.
    pub fn height(&self) -> usize {
        self.layers.len()
    }

    /// Rough heap footprint in bytes, for cache byte accounting.
    pub fn approx_bytes(&self) -> usize {
        self.layers
            .iter()
            .flatten()
            .map(|n| (n.children.len() + n.centroid.len()) * 8 + 48)
            .sum()
    }
}

/// Grows the grouping layers of a [`PartitionTree`] over an already-built
/// leaf partitioning. Returns `None` on budget expiry. The centroid matrix
/// of each layer is small (one row per node), so this never touches the
/// columns again — paged views pay their I/O in the leaf build only.
pub fn build_partition_tree(
    leaves: Arc<Partitioning>,
    fanout: usize,
    seed: u64,
    budget: &crate::budget::Budget,
    par: ParExec,
) -> Option<PartitionTree> {
    let fanout = fanout.max(2);
    let mut layers: Vec<Vec<TreeNode>> = Vec::new();
    let mut points: Vec<(usize, Vec<f64>)> = leaves
        .partitions()
        .iter()
        .map(|p| (p.members.len(), p.centroid.clone()))
        .collect();
    while points.len() > fanout {
        let groups = split_points(&points, fanout, seed, budget, par)?;
        let nodes: Vec<TreeNode> = groups
            .into_iter()
            .map(|children| {
                let weight: usize = children.iter().map(|&c| points[c].0).sum();
                let dims = points.first().map(|p| p.1.len()).unwrap_or(0);
                let mut centroid = vec![0.0; dims];
                for &c in &children {
                    let (w, cent) = &points[c];
                    for (d, v) in cent.iter().enumerate() {
                        centroid[d] += *v * *w as f64;
                    }
                }
                for v in &mut centroid {
                    *v /= weight as f64;
                }
                TreeNode {
                    children,
                    weight,
                    centroid,
                }
            })
            .collect();
        points = nodes
            .iter()
            .map(|n| (n.weight, n.centroid.clone()))
            .collect();
        layers.push(nodes);
    }
    Some(PartitionTree { leaves, layers })
}

/// The same worklist median split as [`partition_view_budgeted`], over an
/// in-memory point set (`(weight, centroid)` rows) instead of the view's
/// columns. Groups come back with ascending members, ordered by smallest
/// member — the stable-id convention the flat partitioning uses.
fn split_points(
    points: &[(usize, Vec<f64>)],
    max_size: usize,
    seed: u64,
    budget: &crate::budget::Budget,
    par: ParExec,
) -> Option<Vec<Vec<usize>>> {
    let n = points.len();
    let dims = points.first().map(|p| p.1.len()).unwrap_or(0);
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut work: Vec<Vec<usize>> = if n == 0 {
        Vec::new()
    } else {
        vec![(0..n).collect()]
    };
    while let Some(mut members) = work.pop() {
        if budget.expired() {
            return None;
        }
        if members.len() <= max_size {
            members.sort_unstable();
            groups.push(members);
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for k in 0..dims {
            let d = (k + seed as usize) % dims;
            let (lo, hi) = par
                .fold_chunks(
                    members.len(),
                    |_, range| {
                        let mut lo = f64::INFINITY;
                        let mut hi = f64::NEG_INFINITY;
                        for &i in &members[range] {
                            let v = points[i].1[d];
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                        (lo, hi)
                    },
                    |a, b| (a.0.min(b.0), a.1.max(b.1)),
                )
                .unwrap_or((f64::INFINITY, f64::NEG_INFINITY));
            let spread = hi - lo;
            if spread > best.map(|(_, s)| s).unwrap_or(0.0) {
                best = Some((d, spread));
            }
        }
        if let Some((d, _)) = best {
            members.sort_by(|&a, &b| points[a].1[d].total_cmp(&points[b].1[d]).then(a.cmp(&b)));
        }
        let right = members.split_off(members.len() / 2);
        work.push(right);
        work.push(members);
    }
    groups.sort_by_key(|g| g[0]);
    Some(groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PackageSpec;
    use datagen::{recipes, Seed};
    use minidb::Table;
    use paql::compile;

    fn view_for(table: &Table, q: &str) -> CandidateView {
        let analyzed = compile(q, table.schema()).unwrap();
        PackageSpec::build(&analyzed, table).unwrap().view().clone()
    }

    const QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R \
        SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
        MAXIMIZE SUM(P.protein)";

    #[test]
    fn partitions_cover_every_candidate_exactly_once() {
        let t = recipes(500, Seed(1));
        let v = view_for(&t, QUERY);
        let p = partition_view(&v, 32, 7);
        let mut seen = vec![false; v.candidate_count()];
        for (pid, part) in p.partitions().iter().enumerate() {
            assert!(!part.members.is_empty());
            assert!(part.members.len() <= 32);
            for &i in &part.members {
                assert!(!seen[i], "candidate {i} appears in two partitions");
                seen[i] = true;
                assert_eq!(p.partition_of(i), pid);
            }
        }
        assert!(seen.iter().all(|&s| s), "some candidate unassigned");
    }

    #[test]
    fn partitioning_is_deterministic_per_seed() {
        let t = recipes(400, Seed(2));
        let v = view_for(&t, QUERY);
        let a = partition_view(&v, 16, 42);
        let b = partition_view(&v, 16, 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.partitions().iter().zip(b.partitions()) {
            assert_eq!(x.members, y.members);
            assert_eq!(x.centroid, y.centroid);
        }
    }

    #[test]
    fn partitions_are_tight_on_the_split_columns() {
        // The per-partition spread of the widest column must be (weakly)
        // smaller than the global spread — that's the whole point of
        // quality-aware splitting.
        let t = recipes(600, Seed(3));
        let v = view_for(&t, QUERY);
        let p = partition_view(&v, 16, 1);
        for (d, term) in v.terms().iter().enumerate() {
            let coeffs = term.coeffs_vec();
            let global_lo = coeffs.iter().cloned().fold(f64::INFINITY, f64::min);
            let global_hi = coeffs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if global_hi - global_lo <= 0.0 {
                continue;
            }
            let mut max_local = 0.0f64;
            for part in p.partitions() {
                let lo = part
                    .members
                    .iter()
                    .map(|&i| coeffs[i])
                    .fold(f64::INFINITY, f64::min);
                let hi = part
                    .members
                    .iter()
                    .map(|&i| coeffs[i])
                    .fold(f64::NEG_INFINITY, f64::max);
                max_local = max_local.max(hi - lo);
            }
            assert!(
                max_local <= global_hi - global_lo,
                "term {d}: local spread exceeds global"
            );
        }
    }

    #[test]
    fn empty_and_tiny_views_partition_cleanly() {
        let t = recipes(5, Seed(4));
        let v = view_for(&t, QUERY);
        let p = partition_view(&v, 16, 0);
        assert_eq!(p.len(), 1);
        assert_eq!(p.partitions()[0].members.len(), 5);

        let t = recipes(20, Seed(5));
        let analyzed = compile(
            "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.calories < 0 SUCH THAT COUNT(*) = 1",
            t.schema(),
        )
        .unwrap();
        let spec = PackageSpec::build(&analyzed, &t).unwrap();
        let p = partition_view(spec.view(), 16, 0);
        assert!(p.is_empty());
    }

    #[test]
    fn centroids_are_member_means() {
        let t = recipes(100, Seed(6));
        let v = view_for(&t, QUERY);
        let p = partition_view(&v, 8, 3);
        for part in p.partitions() {
            for (d, term) in v.terms().iter().enumerate() {
                let mean = part.mean_of(&term.coeffs_vec());
                assert!((part.centroid[d] - mean).abs() < 1e-12);
            }
        }
    }

    fn tree_for(n: usize, leaf: usize, fanout: usize, seed: u64) -> (Table, PartitionTree) {
        let t = recipes(n, Seed(11));
        let v = view_for(&t, QUERY);
        let leaves = Arc::new(partition_view(&v, leaf, seed));
        let tree = build_partition_tree(
            leaves,
            fanout,
            seed,
            &crate::budget::Budget::unlimited(),
            ParExec::sequential(),
        )
        .unwrap();
        (t, tree)
    }

    #[test]
    fn tree_layers_cover_each_level_exactly_once() {
        let (_t, tree) = tree_for(1200, 8, 4, 7);
        assert!(tree.height() >= 2, "1200/8 leaves at fanout 4 must stack");
        let mut below = tree.leaves().len();
        for layer in tree.layers() {
            assert!(layer.len() <= below);
            let mut seen = vec![false; below];
            for node in layer {
                assert!(!node.children.is_empty());
                assert!(node.children.len() <= 4);
                assert!(node.children.windows(2).all(|w| w[0] < w[1]));
                for &c in &node.children {
                    assert!(!seen[c], "child {c} grouped twice");
                    seen[c] = true;
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "some child of the layer unassigned"
            );
            below = layer.len();
        }
        let top = tree.layers().last().unwrap();
        assert!(top.len() <= 4, "coarsest layer exceeds the fanout");
    }

    #[test]
    fn tree_node_aggregates_match_their_descendants() {
        let (t, tree) = tree_for(800, 8, 4, 3);
        let v = view_for(&t, QUERY);
        // Walk each layer and check weight / centroid against the exact
        // member set reachable below the node.
        let leaf_members: Vec<&[usize]> = tree
            .leaves()
            .partitions()
            .iter()
            .map(|p| p.members.as_slice())
            .collect();
        let mut below: Vec<Vec<usize>> = leaf_members.iter().map(|m| m.to_vec()).collect();
        for layer in tree.layers() {
            let mut next: Vec<Vec<usize>> = Vec::new();
            for node in layer {
                let mut members: Vec<usize> = node
                    .children
                    .iter()
                    .flat_map(|&c| below[c].iter().copied())
                    .collect();
                members.sort_unstable();
                assert_eq!(node.weight, members.len());
                for (d, term) in v.terms().iter().enumerate() {
                    let coeffs = term.coeffs_vec();
                    let mean =
                        members.iter().map(|&i| coeffs[i]).sum::<f64>() / members.len() as f64;
                    assert!(
                        (node.centroid[d] - mean).abs() < 1e-9,
                        "layer node centroid drifts from the descendant mean"
                    );
                }
                next.push(members);
            }
            below = next;
        }
    }

    #[test]
    fn tree_construction_is_deterministic_and_thread_invariant() {
        let t = recipes(1000, Seed(12));
        let v = view_for(&t, QUERY);
        let leaves = Arc::new(partition_view(&v, 8, 5));
        let budget = crate::budget::Budget::unlimited();
        let a = build_partition_tree(leaves.clone(), 4, 5, &budget, ParExec::sequential()).unwrap();
        let par = ParExec::new(4);
        let b = build_partition_tree(leaves, 4, 5, &budget, par).unwrap();
        assert_eq!(a.height(), b.height());
        for (la, lb) in a.layers().iter().zip(b.layers()) {
            assert_eq!(la.len(), lb.len());
            for (x, y) in la.iter().zip(lb) {
                assert_eq!(x.children, y.children);
                assert_eq!(x.weight, y.weight);
                assert_eq!(x.centroid, y.centroid);
            }
        }
    }

    #[test]
    fn small_leaf_sets_need_no_layers() {
        let (_t, tree) = tree_for(60, 16, 8, 0);
        assert!(tree.leaves().len() <= 8);
        assert_eq!(tree.height(), 0);
    }
}
