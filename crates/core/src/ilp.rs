//! Translation of package queries into integer linear programs.
//!
//! "We will show how a PaQL query is translated into a linear program and
//! then solved using existing constraint solvers" (paper Section 7). The
//! translation introduces one integer variable `x_i ∈ [0, REPEAT]` per
//! candidate tuple; linear global constraints (COUNT/SUM, optionally
//! filtered) become linear rows, and the objective becomes the LP objective.
//!
//! Since the columnar refactor the translation is a projection of the
//! [`CandidateView`]: a COUNT/SUM term's coefficient column *is* its linear
//! row, so linearization never touches the base table or evaluates an
//! expression per tuple — it combines precomputed columns.
//!
//! Not every PaQL query is linearizable: MIN/MAX aggregates, `<>`
//! comparisons, and non-conjunctive formulas (OR/NOT) have no direct linear
//! form — exactly the "solver limitations" the paper discusses in Section 5.
//! Global AVG comparisons against constants *are* linearizable by the
//! classical multiply-through-by-COUNT rewrite
//! (`AVG(attr) ⋈ c ⟺ SUM(attr) − c·COUNT ⋈ 0 ∧ COUNT ≥ 1`); only the
//! genuinely non-linear AVG shapes (AVG vs AVG, AVG objectives) fall back to
//! enumeration or local search.

use lp_solver::{ConstraintOp, LpError, Problem, Sense, SolverConfig, Status, VarId, VarType};
use paql::{AggFunc, CmpOp, ObjectiveDirection};

use crate::budget::Budget;
use crate::error::PbError;
use crate::package::Package;
use crate::par::ParExec;
use crate::result::{EvalStats, StrategyUsed};
use crate::view::{CandidateView, CompiledConstraint, CompiledExpr, CompiledFormula};
use crate::PbResult;

/// A linear function of the candidate multiplicities: `Σ coeffs[i]·x_i + constant`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearAgg {
    /// Coefficient per candidate (indexed like the view's candidates).
    pub coeffs: Vec<f64>,
    /// Constant offset.
    pub constant: f64,
}

impl LinearAgg {
    fn constant(n: usize, value: f64) -> Self {
        LinearAgg {
            coeffs: vec![0.0; n],
            constant: value,
        }
    }

    fn combine(mut self, other: &LinearAgg, scale: f64) -> Self {
        for (a, b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a += scale * b;
        }
        self.constant += scale * other.constant;
        self
    }

    fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0.0)
    }

    fn scale(mut self, k: f64) -> Self {
        for c in self.coeffs.iter_mut() {
            *c *= k;
        }
        self.constant *= k;
        self
    }
}

/// One linearized global constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearConstraint {
    /// Coefficients per candidate.
    pub coeffs: Vec<f64>,
    /// Constraint direction.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// Why a query could not be linearized (reported in diagnostics and used by
/// the auto-strategy to pick a fallback).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NonLinearReason {
    /// The formula contains OR or NOT.
    NotConjunctive,
    /// An aggregate is AVG, MIN or MAX.
    NonLinearAggregate(&'static str),
    /// A `<>` comparison appears.
    NotEqualComparison,
    /// Aggregates are multiplied or divided by each other.
    NonLinearArithmetic,
    /// An AVG aggregate is compared against something other than a constant
    /// (e.g. AVG vs AVG): multiplying through by COUNT no longer yields a
    /// linear row.
    AvgVsNonConstant,
    /// An AVG aggregate appears in the objective, where there is no
    /// comparison to multiply through by COUNT.
    AvgInObjective,
}

impl std::fmt::Display for NonLinearReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NonLinearReason::NotConjunctive => write!(f, "the SUCH THAT formula contains OR/NOT"),
            NonLinearReason::NonLinearAggregate(a) => {
                write!(f, "aggregate {a} is not linear in tuple multiplicities")
            }
            NonLinearReason::NotEqualComparison => write!(f, "'<>' comparisons are not linear"),
            NonLinearReason::NonLinearArithmetic => {
                write!(f, "aggregates are multiplied or divided together")
            }
            NonLinearReason::AvgVsNonConstant => {
                write!(
                    f,
                    "AVG is only linearizable when compared against a constant bound"
                )
            }
            NonLinearReason::AvgInObjective => {
                write!(f, "an AVG objective has no comparison to linearize against")
            }
        }
    }
}

/// Linearizes a compiled global expression into coefficients over the
/// candidates. COUNT/SUM terms contribute their precomputed coefficient
/// columns verbatim; AVG/MIN/MAX terms are the non-linear obstacle.
pub fn linearize_expr(
    view: &CandidateView,
    expr: &CompiledExpr,
) -> Result<LinearAgg, NonLinearReason> {
    let n = view.candidate_count();
    match expr {
        CompiledExpr::Literal(x) => Ok(LinearAgg::constant(n, *x)),
        CompiledExpr::Term(id) => {
            let term = &view.terms()[*id];
            if !term.func.is_linear() {
                return Err(NonLinearReason::NonLinearAggregate(term.func.name()));
            }
            debug_assert!(matches!(term.func, AggFunc::Count | AggFunc::Sum));
            Ok(LinearAgg {
                coeffs: term.coeffs_vec(),
                constant: 0.0,
            })
        }
        CompiledExpr::Binary { op, lhs, rhs } => {
            let l = linearize_expr(view, lhs)?;
            let r = linearize_expr(view, rhs)?;
            use paql::ast::GlobalArithOp::*;
            match op {
                Add => Ok(l.combine(&r, 1.0)),
                Sub => Ok(l.combine(&r, -1.0)),
                Mul => {
                    if l.is_constant() {
                        Ok(r.scale(l.constant))
                    } else if r.is_constant() {
                        Ok(l.scale(r.constant))
                    } else {
                        Err(NonLinearReason::NonLinearArithmetic)
                    }
                }
                Div => {
                    if r.is_constant() && r.constant != 0.0 {
                        Ok(l.scale(1.0 / r.constant))
                    } else {
                        Err(NonLinearReason::NonLinearArithmetic)
                    }
                }
            }
        }
    }
}

/// Strict inequalities are approximated by a small epsilon; package
/// attribute sums are far coarser than 1e-6 in every workload we generate.
const EPS: f64 = 1e-6;

/// Translates a comparison into `ConstraintOp` + rhs, with the epsilon
/// approximation for strict inequalities. `<>` has no linear form.
fn comparison_row(op: CmpOp, bound: f64) -> Result<(ConstraintOp, f64), NonLinearReason> {
    Ok(match op {
        CmpOp::LtEq => (ConstraintOp::Le, bound),
        CmpOp::Lt => (ConstraintOp::Le, bound - EPS),
        CmpOp::GtEq => (ConstraintOp::Ge, bound),
        CmpOp::Gt => (ConstraintOp::Ge, bound + EPS),
        CmpOp::Eq => (ConstraintOp::Eq, bound),
        CmpOp::NotEq => return Err(NonLinearReason::NotEqualComparison),
    })
}

/// The term id when `expr` is a lone AVG aggregate call.
fn lone_avg_term(view: &CandidateView, expr: &CompiledExpr) -> Option<usize> {
    match expr {
        CompiledExpr::Term(id) if view.terms()[*id].func == AggFunc::Avg => Some(*id),
        _ => None,
    }
}

/// Mirrors a comparison when its operands are swapped (`a op b` ⟺ `b op' a`).
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::LtEq => CmpOp::GtEq,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::GtEq => CmpOp::LtEq,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::NotEq => CmpOp::NotEq,
    }
}

/// Linearizes a global AVG comparison against a constant:
/// `AVG(attr) ⋈ c  ⟺  SUM(attr) − c·COUNT(included) ⋈ 0  ∧  COUNT(included) ≥ 1`.
///
/// The multiplication by COUNT is sound because the support row forces a
/// positive count; the support row itself encodes that `AVG ⋈ c` is
/// *unsatisfied* (not vacuously true) when the aggregate is NULL, exactly
/// matching the interpreted and columnar evaluation semantics. The COUNT in
/// both rows uses the AVG term's own inclusion mask, so `FILTER`ed AVG
/// aggregates divide by the filtered count, as they should.
fn linearize_avg_comparison(
    view: &CandidateView,
    term_id: usize,
    op: CmpOp,
    bound: f64,
) -> Result<Vec<LinearConstraint>, NonLinearReason> {
    let term = &view.terms()[term_id];
    // One chunk pin serves both rows (paged columns fault each page once).
    let mut main: Vec<f64> = Vec::with_capacity(term.len());
    let mut support: Vec<f64> = Vec::with_capacity(term.len());
    for c in 0..term.chunk_meta().len() {
        let chunk = term.chunk(c);
        let coeffs = chunk.coeffs();
        for (i, &x) in coeffs.iter().enumerate() {
            if chunk.included(i) {
                main.push(x - bound);
                support.push(1.0);
            } else {
                main.push(0.0);
                support.push(0.0);
            }
        }
    }
    let (row_op, rhs) = comparison_row(op, 0.0)?;
    Ok(vec![
        LinearConstraint {
            coeffs: main,
            op: row_op,
            rhs,
        },
        LinearConstraint {
            coeffs: support,
            op: ConstraintOp::Ge,
            rhs: 1.0,
        },
    ])
}

/// Linearizes one compiled constraint into `Σ c_i x_i op rhs` rows — one row
/// for a plain linear comparison, two for an AVG-vs-constant comparison (the
/// multiplied-through row plus its non-NULL support row).
pub fn linearize_constraint(
    view: &CandidateView,
    c: &CompiledConstraint,
) -> Result<Vec<LinearConstraint>, NonLinearReason> {
    let lhs = linearize_expr(view, &c.lhs);
    let rhs = linearize_expr(view, &c.rhs);
    if let (Ok(lhs), Ok(rhs)) = (&lhs, &rhs) {
        // Move everything to the left: (lhs - rhs) op 0.
        let diff = lhs.clone().combine(rhs, -1.0);
        let bound = -diff.constant;
        let (op, rhs) = comparison_row(c.op, bound)?;
        return Ok(vec![LinearConstraint {
            coeffs: diff.coeffs,
            op,
            rhs,
        }]);
    }
    // The direct path failed; a global AVG compared against a constant is
    // still classically linearizable by multiplying through by COUNT.
    match (lone_avg_term(view, &c.lhs), lone_avg_term(view, &c.rhs)) {
        (Some(id), None) => match rhs {
            Ok(r) if r.is_constant() => linearize_avg_comparison(view, id, c.op, r.constant),
            Ok(_) | Err(NonLinearReason::NonLinearAggregate("AVG")) => {
                Err(NonLinearReason::AvgVsNonConstant)
            }
            Err(e) => Err(e),
        },
        (None, Some(id)) => match lhs {
            Ok(l) if l.is_constant() => {
                linearize_avg_comparison(view, id, mirror(c.op), l.constant)
            }
            Ok(_) | Err(NonLinearReason::NonLinearAggregate("AVG")) => {
                Err(NonLinearReason::AvgVsNonConstant)
            }
            Err(e) => Err(e),
        },
        (Some(_), Some(_)) => Err(NonLinearReason::AvgVsNonConstant),
        (None, None) => {
            // Reaching this arm means the direct path above failed, so at
            // least one side carries an error; if both somehow linearized,
            // degrade to the generic obstacle rather than panicking
            // mid-solve on a user query.
            let err = lhs
                .err()
                .or(rhs.err())
                .unwrap_or(NonLinearReason::AvgVsNonConstant);
            // An AVG buried inside arithmetic (e.g. `2 * AVG(x) <= 10`) is
            // reported with the precise AVG reason rather than the generic
            // aggregate obstacle.
            if err == NonLinearReason::NonLinearAggregate("AVG") {
                Err(NonLinearReason::AvgVsNonConstant)
            } else {
                Err(err)
            }
        }
    }
}

/// Appends the ids of every SUM term reachable from `expr`. SUM shares SQL's
/// NULL-over-empty semantics with AVG: a SUM whose inclusion set is empty
/// (all members FILTERed out, or an empty package) is NULL, and a constraint
/// with a NULL side is *unsatisfied* — never vacuously true. The direct
/// linearization maps that empty sum to 0, so each of these terms needs a
/// non-NULL support row. COUNT needs none: it is 0 over the empty set, never
/// NULL.
fn collect_sum_terms(view: &CandidateView, expr: &CompiledExpr, out: &mut Vec<usize>) {
    match expr {
        CompiledExpr::Literal(_) => {}
        CompiledExpr::Term(id) => {
            if view.terms()[*id].func == AggFunc::Sum {
                out.push(*id);
            }
        }
        CompiledExpr::Binary { lhs, rhs, .. } => {
            collect_sum_terms(view, lhs, out);
            collect_sum_terms(view, rhs, out);
        }
    }
}

/// The term id when `expr` is a lone SUM aggregate call.
fn lone_sum_term(view: &CandidateView, expr: &CompiledExpr) -> Option<usize> {
    match expr {
        CompiledExpr::Term(id) if view.terms()[*id].func == AggFunc::Sum => Some(*id),
        _ => None,
    }
}

/// Whether `0 op bound` holds — i.e. whether a SUM whose inclusion set is
/// empty could still satisfy a lone comparison against `bound` under the
/// (wrong) 0-for-NULL reading. When it cannot, the comparison row itself
/// already excludes the empty subset and the term needs no support row —
/// keeping the common `SUM(x) ≥ large` shapes at one dense row instead of
/// two matters for LP pivot cost on big candidate sets.
fn zero_satisfies(op: CmpOp, bound: f64) -> bool {
    match op {
        CmpOp::Lt => 0.0 < bound,
        CmpOp::LtEq => 0.0 <= bound,
        CmpOp::Gt => 0.0 > bound,
        CmpOp::GtEq => 0.0 >= bound,
        CmpOp::Eq => bound == 0.0,
        CmpOp::NotEq => bound != 0.0,
    }
}

/// The non-NULL support row for a term: `Σ included_i · x_i ≥ 1`, i.e. the
/// package holds at least one member the term's FILTER admits. Mirrors the
/// support row [`linearize_avg_comparison`] emits for AVG.
fn support_row(view: &CandidateView, term_id: usize) -> LinearConstraint {
    let coeffs = view.terms()[term_id]
        .included_vec()
        .into_iter()
        .map(|included| if included { 1.0 } else { 0.0 })
        .collect();
    LinearConstraint {
        coeffs,
        op: ConstraintOp::Ge,
        rhs: 1.0,
    }
}

/// Collects the atoms of a compiled formula when it is purely conjunctive.
fn conjunctive_atoms(f: &CompiledFormula) -> Option<Vec<&CompiledConstraint>> {
    fn walk<'a>(f: &'a CompiledFormula, out: &mut Vec<&'a CompiledConstraint>) -> bool {
        match f {
            CompiledFormula::Atom(c) => {
                out.push(c);
                true
            }
            CompiledFormula::And(a, b) => walk(a, out) && walk(b, out),
            CompiledFormula::Or(..) | CompiledFormula::Not(_) => false,
        }
    }
    let mut out = Vec::new();
    walk(f, &mut out).then_some(out)
}

/// Linearizes the view's `SUCH THAT` formula (must be conjunctive). Views
/// without a formula linearize to no constraints; AVG-vs-constant atoms
/// contribute two rows each (see [`linearize_constraint`]), and every
/// distinct SUM term appearing in a constraint contributes one non-NULL
/// support row (see `collect_sum_terms`) so the linear relaxation cannot
/// satisfy `SUM(…) FILTER (…) ⋈ c` by emptying the filtered subset — the
/// engine's SQL semantics make that sum NULL and the constraint unsatisfied.
pub fn linearize_formula(view: &CandidateView) -> Result<Vec<LinearConstraint>, NonLinearReason> {
    let formula = match view.compiled_formula() {
        None => return Ok(Vec::new()),
        Some(f) => f,
    };
    let atoms = conjunctive_atoms(formula).ok_or(NonLinearReason::NotConjunctive)?;
    let mut rows = Vec::with_capacity(atoms.len());
    let mut sum_terms = Vec::new();
    let mut covered = Vec::new();
    for c in atoms {
        rows.extend(linearize_constraint(view, c)?);
        collect_sum_terms(view, &c.lhs, &mut sum_terms);
        collect_sum_terms(view, &c.rhs, &mut sum_terms);
        // A lone `SUM ⋈ constant` atom that the empty subset fails (e.g.
        // `SUM(x) ≥ 150000`) already excludes that subset through its own
        // comparison row; its term needs no separate support row.
        if let Some(id) = lone_sum_term(view, &c.lhs) {
            if let Ok(r) = linearize_expr(view, &c.rhs) {
                if r.is_constant() && !zero_satisfies(c.op, r.constant) {
                    covered.push(id);
                }
            }
        } else if let Some(id) = lone_sum_term(view, &c.rhs) {
            if let Ok(l) = linearize_expr(view, &c.lhs) {
                if l.is_constant() && !zero_satisfies(mirror(c.op), l.constant) {
                    covered.push(id);
                }
            }
        }
    }
    sum_terms.sort_unstable();
    sum_terms.dedup();
    sum_terms.retain(|id| !covered.contains(id));
    // Distinct terms often share one inclusion mask — a wide schema FILTERing
    // many columns by the same handful of predicates (the `wide` gauntlet
    // family) would otherwise emit one identical dense row per column. The
    // support row depends only on the mask, so one row per mask suffices.
    let mut seen_masks: Vec<Vec<bool>> = Vec::new();
    for id in sum_terms {
        let mask = view.terms()[id].included_vec();
        if seen_masks.contains(&mask) {
            continue;
        }
        rows.push(support_row(view, id));
        seen_masks.push(mask);
    }
    Ok(rows)
}

/// Linearizes the view's objective, when it has one. An AVG objective stays
/// rejected — there is no comparison to multiply the COUNT through.
pub fn linearize_objective(view: &CandidateView) -> Result<Option<LinearAgg>, NonLinearReason> {
    match view.compiled_objective() {
        None => Ok(None),
        Some(expr) => match linearize_expr(view, expr) {
            Err(NonLinearReason::NonLinearAggregate("AVG")) => Err(NonLinearReason::AvgInObjective),
            other => other.map(Some),
        },
    }
}

/// Checks whether the whole query (formula + objective) is linearizable,
/// returning the first obstacle found.
pub fn linearization_obstacle(view: &CandidateView) -> Option<NonLinearReason> {
    if let Err(r) = linearize_formula(view) {
        return Some(r);
    }
    if let Err(r) = linearize_objective(view) {
        return Some(r);
    }
    None
}

/// The translated ILP together with its variable mapping.
pub struct IlpTranslation {
    /// The MILP problem (one integer variable per candidate).
    pub problem: Problem,
    /// Variable ids, indexed like the view's candidates.
    pub vars: Vec<VarId>,
}

/// Translates a view into an ILP.
pub fn translate(view: &CandidateView) -> PbResult<IlpTranslation> {
    let sense = match view.direction() {
        ObjectiveDirection::Maximize => Sense::Maximize,
        ObjectiveDirection::Minimize => Sense::Minimize,
    };
    let mut problem = Problem::new(sense);
    let vars: Vec<VarId> = view
        .candidates()
        .iter()
        .map(|tid| {
            problem.add_var(
                format!("x_{tid}"),
                VarType::Integer,
                0.0,
                view.max_multiplicity() as f64,
            )
        })
        .collect();

    let constraints = linearize_formula(view)
        .map_err(|r| PbError::Unsupported(format!("cannot translate to ILP: {r}")))?;
    for (idx, lc) in constraints.into_iter().enumerate() {
        let terms: Vec<(VarId, f64)> = lc
            .coeffs
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0.0)
            .map(|(i, &c)| (vars[i], c))
            .collect();
        problem.add_constraint_terms(format!("g{idx}"), &terms, lc.op, lc.rhs);
    }

    let objective = linearize_objective(view)
        .map_err(|r| PbError::Unsupported(format!("cannot translate objective to ILP: {r}")))?;
    if let Some(lin) = objective {
        for (i, c) in lin.coeffs.iter().enumerate() {
            if *c != 0.0 {
                problem.set_objective_coeff(vars[i], *c);
            }
        }
    }
    Ok(IlpTranslation { problem, vars })
}

/// Result of the ILP strategy.
pub struct IlpOutcome {
    /// Valid packages found, best first, with their objective values.
    pub packages: Vec<(Package, Option<f64>)>,
    /// True when every solve ran to proven optimality; false when a time,
    /// node or cancellation limit stopped the search (the packages are then
    /// the best incumbents found, not provably optimal).
    pub complete: bool,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

/// Minimum candidate count before the ILP hands its thread budget to the
/// branch-and-bound layer. Below this a node LP solves in microseconds and
/// per-solve worker spawn would dominate — small problems (sketch-refine
/// sub-ILPs among them) stay inline. A size threshold, never a thread-count
/// one, so it cannot affect result determinism.
const PAR_MIN_CANDIDATES: usize = 512;

/// Solves a view with the ILP strategy, returning up to `num_packages`
/// packages (additional packages require binary multiplicities and use
/// no-good cuts, per the paper's Section 5 discussion).
///
/// The `budget` is threaded down to the branch-and-bound node loop and the
/// simplex pivot loop; on expiry the incumbents found so far come back with
/// `complete: false` rather than an error.
pub fn solve_ilp(
    view: &CandidateView,
    solver: &SolverConfig,
    num_packages: usize,
    budget: &Budget,
) -> PbResult<IlpOutcome> {
    solve_ilp_par(view, solver, num_packages, budget, ParExec::sequential())
}

/// [`solve_ilp`] with a thread budget: `par.threads()` is handed to the
/// branch-and-bound layer (via [`SolverConfig::num_threads`]), which solves
/// each frontier batch's LP relaxations concurrently. Results are
/// bit-identical at every thread count — the solver's batch boundaries and
/// merge order are fixed — so this is purely a latency knob.
pub fn solve_ilp_par(
    view: &CandidateView,
    solver: &SolverConfig,
    num_packages: usize,
    budget: &Budget,
    par: ParExec,
) -> PbResult<IlpOutcome> {
    // pb-lint: allow(time-containment) — stats clock only: stamps
    // solve_time_ms on the outcome; the deadline lives in the budget.
    let start = std::time::Instant::now();
    // An already-spent budget skips even the translation (building one
    // variable and row set per candidate is itself linear in the view).
    if budget.expired() {
        return Ok(IlpOutcome {
            packages: Vec::new(),
            complete: false,
            stats: EvalStats {
                strategy: StrategyUsed::Ilp,
                candidates: view.candidate_count(),
                nodes: 0,
                iterations: 0,
                elapsed: start.elapsed(),
            },
        });
    }
    let IlpTranslation { mut problem, vars } = translate(view)?;
    let mut config = solver.clone();
    budget.apply_to_solver(&mut config);
    if view.candidate_count() >= PAR_MIN_CANDIDATES {
        config.num_threads = par.threads();
    }

    let mut packages = Vec::new();
    let mut complete = true;
    let mut total_iterations = 0usize;
    let mut total_nodes = 0usize;

    let want = num_packages.max(1);
    for round in 0..want {
        if budget.expired() {
            complete = false;
            break;
        }
        let solution = match lp_solver::solve(&problem, &config) {
            // Limits without an incumbent are a truncated search, not a
            // failed one: report what previous rounds found, non-optimal.
            Err(LpError::Interrupted) | Err(LpError::NodeLimit) => {
                complete = false;
                break;
            }
            other => other?,
        };
        total_iterations += solution.iterations;
        total_nodes += solution.nodes;
        if solution.status == Status::LimitReached {
            complete = false;
        }
        if !solution.status.has_solution() {
            break;
        }
        if solution.status == Status::Unbounded {
            return Err(PbError::Unsupported(
                "the package objective is unbounded (add an upper cardinality or budget constraint)".into(),
            ));
        }
        let mut package = Package::new();
        for (i, &var) in vars.iter().enumerate() {
            let mult = solution.value_rounded(var);
            if mult > 0 {
                package.add(view.candidates()[i], mult as u32);
            }
        }
        // The solver result should always be valid; re-check defensively so a
        // numerical artefact can never surface as a wrong answer.
        if !view.is_valid(&package) {
            return Err(PbError::Internal(
                "solver returned a package that fails validation".into(),
            ));
        }
        let objective = view.objective_value(&package);
        packages.push((package, objective));

        if round + 1 < want {
            if view.max_multiplicity() > 1 {
                // No-good cuts need binary variables; stop after the first
                // package for REPEAT queries (documented limitation).
                break;
            }
            lp_solver::cuts::add_no_good_cut(
                &mut problem,
                &solution,
                &vars,
                format!("cut{round}"),
            )?;
        }
    }

    Ok(IlpOutcome {
        packages,
        complete,
        stats: EvalStats {
            strategy: StrategyUsed::Ilp,
            candidates: view.candidate_count(),
            nodes: total_nodes as u64,
            iterations: total_iterations as u64,
            elapsed: start.elapsed(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PackageSpec;
    use datagen::{recipes, stocks, Seed};
    use minidb::Table;
    use paql::compile;

    fn spec_for<'a>(table: &'a Table, q: &str) -> PackageSpec<'a> {
        let analyzed = compile(q, table.schema()).unwrap();
        PackageSpec::build(&analyzed, table).unwrap()
    }

    #[test]
    fn meal_plan_query_translates_and_solves() {
        let t = recipes(120, Seed(1));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
             SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
             MAXIMIZE SUM(P.protein)",
        );
        let out = solve_ilp(
            spec.view(),
            &SolverConfig::default(),
            1,
            &Budget::unlimited(),
        )
        .unwrap();
        assert_eq!(out.packages.len(), 1);
        let (pkg, obj) = &out.packages[0];
        assert_eq!(pkg.cardinality(), 3);
        assert!(spec.is_valid(pkg).unwrap());
        assert!(obj.unwrap() > 0.0);
    }

    #[test]
    fn linearize_detects_non_linear_queries() {
        let t = recipes(50, Seed(2));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 3 OR COUNT(*) = 4",
        );
        assert!(matches!(
            linearization_obstacle(spec.view()),
            Some(NonLinearReason::NotConjunctive)
        ));

        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) <> 3",
        );
        assert!(matches!(
            linearization_obstacle(spec.view()),
            Some(NonLinearReason::NotEqualComparison)
        ));

        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT SUM(P.calories) * SUM(P.protein) <= 100",
        );
        assert!(matches!(
            linearization_obstacle(spec.view()),
            Some(NonLinearReason::NonLinearArithmetic)
        ));

        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT MIN(P.calories) >= 100 AND COUNT(*) = 3",
        );
        assert!(matches!(
            linearization_obstacle(spec.view()),
            Some(NonLinearReason::NonLinearAggregate("MIN"))
        ));
    }

    #[test]
    fn avg_against_constants_is_linearizable_but_avg_vs_avg_is_not() {
        let t = recipes(50, Seed(2));
        // AVG ⋈ constant (either side, BETWEEN included) linearizes now.
        for q in [
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT AVG(P.calories) <= 600 AND COUNT(*) = 3",
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT 600 >= AVG(P.calories) AND COUNT(*) = 3",
            "SELECT PACKAGE(R) AS P FROM recipes R \
             SUCH THAT COUNT(*) = 3 AND AVG(P.calories) BETWEEN 400 AND 700 MAXIMIZE SUM(P.protein)",
        ] {
            let spec = spec_for(&t, q);
            assert!(
                linearization_obstacle(spec.view()).is_none(),
                "expected linearizable: {q}"
            );
        }
        // AVG vs AVG and AVG inside arithmetic stay rejected, precisely.
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT AVG(P.calories) >= AVG(P.protein)",
        );
        assert!(matches!(
            linearization_obstacle(spec.view()),
            Some(NonLinearReason::AvgVsNonConstant)
        ));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT AVG(P.calories) <= SUM(P.protein)",
        );
        assert!(matches!(
            linearization_obstacle(spec.view()),
            Some(NonLinearReason::AvgVsNonConstant)
        ));
        // An AVG objective has no comparison to multiply through.
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 3 MAXIMIZE AVG(P.protein)",
        );
        assert!(matches!(
            linearization_obstacle(spec.view()),
            Some(NonLinearReason::AvgInObjective)
        ));
    }

    #[test]
    fn avg_constrained_queries_solve_via_ilp_and_match_enumeration() {
        let t = recipes(16, Seed(9));
        let q = "SELECT PACKAGE(R) AS P FROM recipes R \
                 SUCH THAT COUNT(*) = 3 AND AVG(P.calories) BETWEEN 400 AND 700 \
                 MAXIMIZE SUM(P.protein)";
        let spec = spec_for(&t, q);
        let ilp = solve_ilp(
            spec.view(),
            &SolverConfig::default(),
            1,
            &Budget::unlimited(),
        )
        .unwrap();
        let oracle = crate::enumerate::enumerate(
            spec.view(),
            crate::enumerate::EnumerationOptions::default(),
        )
        .unwrap();
        assert!(oracle.complete, "oracle must be exact");
        let a = ilp.packages.first().map(|(_, o)| o.unwrap());
        let b = oracle.packages.first().map(|(_, o)| o.unwrap());
        match (a, b) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-6, "ilp {x} vs enumeration {y}"),
            (None, None) => {}
            other => panic!("ilp and enumeration disagree on feasibility: {other:?}"),
        }
        for (p, _) in &ilp.packages {
            assert!(spec.is_valid(p).unwrap());
        }
    }

    #[test]
    fn avg_linearization_never_accepts_the_empty_aggregate() {
        // AVG(x) <= c over an empty (or fully filtered-out) member set is
        // NULL, which does NOT satisfy the constraint; the support row must
        // keep the ILP from exploiting 0 − c·0 ⋈ 0 vacuously.
        let t = recipes(30, Seed(10));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R \
             SUCH THAT AVG(P.calories) FILTER (WHERE R.gluten = 'free') <= 600 \
             MINIMIZE COUNT(*)",
        );
        assert!(linearization_obstacle(spec.view()).is_none());
        let out = solve_ilp(
            spec.view(),
            &SolverConfig::default(),
            1,
            &Budget::unlimited(),
        )
        .unwrap();
        // The minimizer would love the empty package, but that makes the AVG
        // NULL: any returned package must contain a gluten-free member.
        let (pkg, _) = out.packages.first().expect("a singleton package exists");
        assert!(pkg.cardinality() >= 1);
        assert!(spec.is_valid(pkg).unwrap());
    }

    #[test]
    fn filtered_aggregates_and_ratios_stay_linear() {
        let t = stocks(150, Seed(3));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(S) AS P FROM stocks S \
             SUCH THAT SUM(P.price) <= 50000 AND \
                       SUM(P.price) FILTER (WHERE S.sector = 'technology') >= 0.3 * SUM(P.price) AND \
                       COUNT(*) >= 5 \
             MAXIMIZE SUM(P.expected_return)",
        );
        assert!(linearization_obstacle(spec.view()).is_none());
        let out = solve_ilp(
            spec.view(),
            &SolverConfig::default(),
            1,
            &Budget::unlimited(),
        )
        .unwrap();
        let (pkg, _) = &out.packages[0];
        assert!(spec.is_valid(pkg).unwrap());
        // Verify the 30% constraint numerically.
        let schema = t.schema();
        let total: f64 = pkg
            .members()
            .map(|(tid, m)| t.require(tid).unwrap().get_f64(schema, "price").unwrap() * m as f64)
            .sum();
        let tech: f64 = pkg
            .members()
            .filter(|(tid, _)| {
                t.require(*tid)
                    .unwrap()
                    .get_named(schema, "sector")
                    .unwrap()
                    .to_string()
                    == "technology"
            })
            .map(|(tid, m)| t.require(tid).unwrap().get_f64(schema, "price").unwrap() * m as f64)
            .sum();
        assert!(total <= 50_000.0 + 1e-6);
        assert!(tech >= 0.3 * total - 1e-6);
    }

    #[test]
    fn infeasible_queries_return_no_packages() {
        let t = recipes(60, Seed(4));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 2 AND SUM(P.calories) >= 100000",
        );
        let out = solve_ilp(
            spec.view(),
            &SolverConfig::default(),
            1,
            &Budget::unlimited(),
        )
        .unwrap();
        assert!(out.packages.is_empty());
    }

    #[test]
    fn multiple_packages_via_no_good_cuts_are_distinct_and_ordered() {
        let t = recipes(40, Seed(5));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 2 AND SUM(P.calories) <= 1500 \
             MAXIMIZE SUM(P.protein)",
        );
        let out = solve_ilp(
            spec.view(),
            &SolverConfig::default(),
            4,
            &Budget::unlimited(),
        )
        .unwrap();
        assert_eq!(out.packages.len(), 4);
        for (p, _) in &out.packages {
            assert!(spec.is_valid(p).unwrap());
        }
        // Distinct supports.
        for i in 0..out.packages.len() {
            for j in i + 1..out.packages.len() {
                assert_ne!(out.packages[i].0, out.packages[j].0);
            }
        }
        // Non-increasing objective.
        for w in out.packages.windows(2) {
            assert!(w[0].1.unwrap() >= w[1].1.unwrap() - 1e-6);
        }
    }

    #[test]
    fn repeat_queries_use_multiplicities() {
        let t = recipes(30, Seed(6));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R REPEAT 3 \
             SUCH THAT COUNT(*) = 3 AND SUM(P.calories) <= 4200 MAXIMIZE SUM(P.protein)",
        );
        let out = solve_ilp(
            spec.view(),
            &SolverConfig::default(),
            1,
            &Budget::unlimited(),
        )
        .unwrap();
        let (pkg, _) = &out.packages[0];
        assert_eq!(pkg.cardinality(), 3);
        assert!(pkg.max_multiplicity() <= 3);
        // With repetition allowed, the best plan usually repeats the
        // highest-protein recipe; at minimum it must be valid.
        assert!(spec.is_valid(pkg).unwrap());
    }

    #[test]
    fn unbounded_objective_is_reported() {
        let t = recipes(30, Seed(7));
        // No cardinality bound and REPEAT 1 still bounds the objective, so use
        // a spec with no constraints at all but minimize: minimizing protein
        // yields the empty package (objective NULL→None) — check that the ILP
        // path handles the no-constraint case gracefully instead.
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R MAXIMIZE SUM(P.protein)",
        );
        let out = solve_ilp(
            spec.view(),
            &SolverConfig::default(),
            1,
            &Budget::unlimited(),
        )
        .unwrap();
        // Every recipe has positive protein → optimum takes all of them.
        let (pkg, _) = &out.packages[0];
        assert_eq!(pkg.cardinality(), 30);
    }

    #[test]
    fn linear_rows_equal_the_view_columns() {
        let t = recipes(25, Seed(8));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R \
             SUCH THAT SUM(P.calories) <= 2000 MAXIMIZE SUM(P.protein)",
        );
        let rows = linearize_formula(spec.view()).unwrap();
        // The comparison row plus the SUM term's non-NULL support row.
        assert_eq!(rows.len(), 2);
        // The SUM(calories) row is the calories column verbatim.
        for (i, &tid) in spec.candidates.iter().enumerate() {
            let cal = t.value_f64(tid, "calories").unwrap();
            assert!((rows[0].coeffs[i] - cal).abs() < 1e-12);
        }
        // The support row admits every candidate (no FILTER) and demands one.
        assert_eq!(rows[1].op, ConstraintOp::Ge);
        assert!((rows[1].rhs - 1.0).abs() < 1e-12);
        assert!(rows[1].coeffs.iter().all(|&c| c == 1.0));
    }

    #[test]
    fn filtered_sum_constraints_never_accept_the_empty_subset() {
        // Regression test from the gauntlet's wide family: with
        // `SUM(x) FILTER (WHERE …) <= c` the linear relaxation used to treat
        // an empty filtered subset as 0 <= c and return packages with no
        // qualifying member — which the engine's SQL NULL semantics reject
        // (`SUM` over an empty set is NULL, and a NULL side never satisfies
        // its constraint). The support row makes the ILP's feasible region
        // exactly the engine-valid packages again.
        let scenario = datagen::scenario("wide").expect("wide family is registered");
        let table = (scenario.build)(40, Seed(23));
        let spec = spec_for(&table, &scenario.exact_query);
        let out = solve_ilp(
            spec.view(),
            &SolverConfig::default(),
            1,
            &Budget::unlimited(),
        )
        .unwrap();
        let (pkg, _) = out.packages.first().expect("the window is feasible");
        assert!(spec.is_valid(pkg).unwrap());
        assert!(spec.is_valid_interpreted(pkg).unwrap());
        // The FILTERed term's subset is genuinely non-empty.
        let schema = table.schema();
        assert!(pkg.members().any(|(tid, _)| {
            table
                .require(tid)
                .unwrap()
                .get_named(schema, "grp")
                .unwrap()
                .to_string()
                == "g01"
        }));
    }
}
