//! Translation of package queries into integer linear programs.
//!
//! "We will show how a PaQL query is translated into a linear program and
//! then solved using existing constraint solvers" (paper Section 7). The
//! translation introduces one integer variable `x_i ∈ [0, REPEAT]` per
//! candidate tuple; linear global constraints (COUNT/SUM, optionally
//! filtered) become linear rows, and the objective becomes the LP objective.
//!
//! Not every PaQL query is linearizable: AVG/MIN/MAX aggregates, `<>`
//! comparisons, and non-conjunctive formulas (OR/NOT) have no direct linear
//! form — exactly the "solver limitations" the paper discusses in Section 5.
//! For those queries the engine falls back to enumeration or local search.

use std::time::Instant;

use lp_solver::{ConstraintOp, Problem, Sense, SolverConfig, Status, VarId, VarType};
use minidb::eval::{eval, eval_predicate};
use paql::{AggFunc, CmpOp, GlobalConstraint, GlobalExpr, GlobalFormula, ObjectiveDirection};

use crate::error::PbError;
use crate::package::Package;
use crate::result::{EvalStats, StrategyUsed};
use crate::spec::PackageSpec;
use crate::PbResult;

/// A linear function of the candidate multiplicities: `Σ coeffs[i]·x_i + constant`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearAgg {
    /// Coefficient per candidate (indexed like `spec.candidates`).
    pub coeffs: Vec<f64>,
    /// Constant offset.
    pub constant: f64,
}

impl LinearAgg {
    fn constant(n: usize, value: f64) -> Self {
        LinearAgg { coeffs: vec![0.0; n], constant: value }
    }

    fn combine(mut self, other: &LinearAgg, scale: f64) -> Self {
        for (a, b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a += scale * b;
        }
        self.constant += scale * other.constant;
        self
    }

    fn is_constant(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0.0)
    }

    fn scale(mut self, k: f64) -> Self {
        for c in self.coeffs.iter_mut() {
            *c *= k;
        }
        self.constant *= k;
        self
    }
}

/// One linearized global constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearConstraint {
    /// Coefficients per candidate.
    pub coeffs: Vec<f64>,
    /// Constraint direction.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// Why a query could not be linearized (reported in diagnostics and used by
/// the auto-strategy to pick a fallback).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NonLinearReason {
    /// The formula contains OR or NOT.
    NotConjunctive,
    /// An aggregate is AVG, MIN or MAX.
    NonLinearAggregate(&'static str),
    /// A `<>` comparison appears.
    NotEqualComparison,
    /// Aggregates are multiplied or divided by each other.
    NonLinearArithmetic,
}

impl std::fmt::Display for NonLinearReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NonLinearReason::NotConjunctive => write!(f, "the SUCH THAT formula contains OR/NOT"),
            NonLinearReason::NonLinearAggregate(a) => write!(f, "aggregate {a} is not linear in tuple multiplicities"),
            NonLinearReason::NotEqualComparison => write!(f, "'<>' comparisons are not linear"),
            NonLinearReason::NonLinearArithmetic => write!(f, "aggregates are multiplied or divided together"),
        }
    }
}

/// Linearizes a global expression into coefficients over the candidates.
pub fn linearize_expr(spec: &PackageSpec<'_>, expr: &GlobalExpr) -> Result<LinearAgg, NonLinearReason> {
    let n = spec.candidate_count();
    match expr {
        GlobalExpr::Literal(x) => Ok(LinearAgg::constant(n, *x)),
        GlobalExpr::Agg(call) => {
            let func = call.func;
            if !func.is_linear() {
                return Err(NonLinearReason::NonLinearAggregate(func.name()));
            }
            let schema = spec.table.schema();
            let mut coeffs = vec![0.0; n];
            for (i, &tid) in spec.candidates.iter().enumerate() {
                let tuple = spec.table.get(tid).expect("candidate ids come from the table");
                if let Some(filter) = &call.filter {
                    match eval_predicate(filter, schema, tuple) {
                        Ok(true) => {}
                        _ => continue,
                    }
                }
                coeffs[i] = match (func, &call.arg) {
                    (AggFunc::Count, _) => 1.0,
                    (AggFunc::Sum, Some(arg)) => match eval(arg, schema, tuple) {
                        Ok(v) => v.as_f64().unwrap_or(0.0),
                        Err(_) => 0.0,
                    },
                    _ => 0.0,
                };
            }
            Ok(LinearAgg { coeffs, constant: 0.0 })
        }
        GlobalExpr::Binary { op, lhs, rhs } => {
            let l = linearize_expr(spec, lhs)?;
            let r = linearize_expr(spec, rhs)?;
            use paql::ast::GlobalArithOp::*;
            match op {
                Add => Ok(l.combine(&r, 1.0)),
                Sub => Ok(l.combine(&r, -1.0)),
                Mul => {
                    if l.is_constant() {
                        Ok(r.scale(l.constant))
                    } else if r.is_constant() {
                        Ok(l.scale(r.constant))
                    } else {
                        Err(NonLinearReason::NonLinearArithmetic)
                    }
                }
                Div => {
                    if r.is_constant() && r.constant != 0.0 {
                        Ok(l.scale(1.0 / r.constant))
                    } else {
                        Err(NonLinearReason::NonLinearArithmetic)
                    }
                }
            }
        }
    }
}

/// Linearizes one constraint into `Σ c_i x_i op rhs` form.
pub fn linearize_constraint(
    spec: &PackageSpec<'_>,
    c: &GlobalConstraint,
) -> Result<LinearConstraint, NonLinearReason> {
    let lhs = linearize_expr(spec, &c.lhs)?;
    let rhs = linearize_expr(spec, &c.rhs)?;
    // Move everything to the left: (lhs - rhs) op 0.
    let diff = lhs.combine(&rhs, -1.0);
    let bound = -diff.constant;
    // Strict inequalities are approximated by a small epsilon; package
    // attribute sums are far coarser than 1e-6 in every workload we generate.
    const EPS: f64 = 1e-6;
    let (op, rhs) = match c.op {
        CmpOp::LtEq => (ConstraintOp::Le, bound),
        CmpOp::Lt => (ConstraintOp::Le, bound - EPS),
        CmpOp::GtEq => (ConstraintOp::Ge, bound),
        CmpOp::Gt => (ConstraintOp::Ge, bound + EPS),
        CmpOp::Eq => (ConstraintOp::Eq, bound),
        CmpOp::NotEq => return Err(NonLinearReason::NotEqualComparison),
    };
    Ok(LinearConstraint { coeffs: diff.coeffs, op, rhs })
}

/// Linearizes the whole `SUCH THAT` formula (must be conjunctive).
pub fn linearize_formula(
    spec: &PackageSpec<'_>,
    formula: &GlobalFormula,
) -> Result<Vec<LinearConstraint>, NonLinearReason> {
    if !formula.is_conjunctive() {
        return Err(NonLinearReason::NotConjunctive);
    }
    formula
        .atoms()
        .into_iter()
        .map(|c| linearize_constraint(spec, c))
        .collect()
}

/// Checks whether the whole query (formula + objective) is linearizable,
/// returning the first obstacle found.
pub fn linearization_obstacle(spec: &PackageSpec<'_>) -> Option<NonLinearReason> {
    if let Some(formula) = &spec.formula {
        if let Err(r) = linearize_formula(spec, formula) {
            return Some(r);
        }
    }
    if let Some(obj) = &spec.objective {
        if let Err(r) = linearize_expr(spec, &obj.expr) {
            return Some(r);
        }
    }
    None
}

/// The translated ILP together with its variable mapping.
pub struct IlpTranslation {
    /// The MILP problem (one integer variable per candidate).
    pub problem: Problem,
    /// Variable ids, indexed like `spec.candidates`.
    pub vars: Vec<VarId>,
}

/// Translates a spec into an ILP.
pub fn translate(spec: &PackageSpec<'_>) -> PbResult<IlpTranslation> {
    let direction = spec
        .objective
        .as_ref()
        .map(|o| o.direction)
        .unwrap_or(ObjectiveDirection::Maximize);
    let sense = match direction {
        ObjectiveDirection::Maximize => Sense::Maximize,
        ObjectiveDirection::Minimize => Sense::Minimize,
    };
    let mut problem = Problem::new(sense);
    let vars: Vec<VarId> = spec
        .candidates
        .iter()
        .map(|tid| {
            problem.add_var(
                format!("x_{tid}"),
                VarType::Integer,
                0.0,
                spec.max_multiplicity as f64,
            )
        })
        .collect();

    if let Some(formula) = &spec.formula {
        let constraints = linearize_formula(spec, formula)
            .map_err(|r| PbError::Unsupported(format!("cannot translate to ILP: {r}")))?;
        for (idx, lc) in constraints.into_iter().enumerate() {
            let terms: Vec<(VarId, f64)> = lc
                .coeffs
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0.0)
                .map(|(i, &c)| (vars[i], c))
                .collect();
            problem.add_constraint_terms(format!("g{idx}"), &terms, lc.op, lc.rhs);
        }
    }

    if let Some(obj) = &spec.objective {
        let lin = linearize_expr(spec, &obj.expr)
            .map_err(|r| PbError::Unsupported(format!("cannot translate objective to ILP: {r}")))?;
        for (i, c) in lin.coeffs.iter().enumerate() {
            if *c != 0.0 {
                problem.set_objective_coeff(vars[i], *c);
            }
        }
    }
    Ok(IlpTranslation { problem, vars })
}

/// Result of the ILP strategy.
pub struct IlpOutcome {
    /// Valid packages found, best first, with their objective values.
    pub packages: Vec<(Package, Option<f64>)>,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

/// Solves a spec with the ILP strategy, returning up to `num_packages`
/// packages (additional packages require binary multiplicities and use
/// no-good cuts, per the paper's Section 5 discussion).
pub fn solve_ilp(spec: &PackageSpec<'_>, solver: &SolverConfig, num_packages: usize) -> PbResult<IlpOutcome> {
    let start = Instant::now();
    let IlpTranslation { mut problem, vars } = translate(spec)?;

    let mut packages = Vec::new();
    let mut total_iterations = 0usize;
    let mut total_nodes = 0usize;

    let want = num_packages.max(1);
    for round in 0..want {
        let solution = lp_solver::solve(&problem, solver)?;
        total_iterations += solution.iterations;
        total_nodes += solution.nodes;
        if !solution.status.has_solution() {
            break;
        }
        if solution.status == Status::Unbounded {
            return Err(PbError::Unsupported(
                "the package objective is unbounded (add an upper cardinality or budget constraint)".into(),
            ));
        }
        let mut package = Package::new();
        for (i, &var) in vars.iter().enumerate() {
            let mult = solution.value_rounded(var);
            if mult > 0 {
                package.add(spec.candidates[i], mult as u32);
            }
        }
        // The solver result should always be valid; re-check defensively so a
        // numerical artefact can never surface as a wrong answer.
        if !spec.is_valid(&package)? {
            return Err(PbError::Internal(
                "solver returned a package that fails validation".into(),
            ));
        }
        let objective = spec.objective_value(&package)?;
        packages.push((package, objective));

        if round + 1 < want {
            if spec.max_multiplicity > 1 {
                // No-good cuts need binary variables; stop after the first
                // package for REPEAT queries (documented limitation).
                break;
            }
            lp_solver::cuts::add_no_good_cut(&mut problem, &solution, &vars, format!("cut{round}"))?;
        }
    }

    Ok(IlpOutcome {
        packages,
        stats: EvalStats {
            strategy: StrategyUsed::Ilp,
            candidates: spec.candidate_count(),
            nodes: total_nodes as u64,
            iterations: total_iterations as u64,
            elapsed: start.elapsed(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{recipes, stocks, Seed};
    use minidb::Table;
    use paql::compile;

    fn spec_for<'a>(table: &'a Table, q: &str) -> PackageSpec<'a> {
        let analyzed = compile(q, table.schema()).unwrap();
        PackageSpec::build(&analyzed, table).unwrap()
    }

    #[test]
    fn meal_plan_query_translates_and_solves() {
        let t = recipes(120, Seed(1));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
             SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
             MAXIMIZE SUM(P.protein)",
        );
        let out = solve_ilp(&spec, &SolverConfig::default(), 1).unwrap();
        assert_eq!(out.packages.len(), 1);
        let (pkg, obj) = &out.packages[0];
        assert_eq!(pkg.cardinality(), 3);
        assert!(spec.is_valid(pkg).unwrap());
        assert!(obj.unwrap() > 0.0);
    }

    #[test]
    fn linearize_detects_non_linear_queries() {
        let t = recipes(50, Seed(2));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT AVG(P.calories) <= 600 AND COUNT(*) = 3",
        );
        assert!(matches!(
            linearization_obstacle(&spec),
            Some(NonLinearReason::NonLinearAggregate("AVG"))
        ));

        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 3 OR COUNT(*) = 4",
        );
        assert!(matches!(linearization_obstacle(&spec), Some(NonLinearReason::NotConjunctive)));

        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) <> 3",
        );
        assert!(matches!(linearization_obstacle(&spec), Some(NonLinearReason::NotEqualComparison)));

        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT SUM(P.calories) * SUM(P.protein) <= 100",
        );
        assert!(matches!(linearization_obstacle(&spec), Some(NonLinearReason::NonLinearArithmetic)));
    }

    #[test]
    fn filtered_aggregates_and_ratios_stay_linear() {
        let t = stocks(150, Seed(3));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(S) AS P FROM stocks S \
             SUCH THAT SUM(P.price) <= 50000 AND \
                       SUM(P.price) FILTER (WHERE S.sector = 'technology') >= 0.3 * SUM(P.price) AND \
                       COUNT(*) >= 5 \
             MAXIMIZE SUM(P.expected_return)",
        );
        assert!(linearization_obstacle(&spec).is_none());
        let out = solve_ilp(&spec, &SolverConfig::default(), 1).unwrap();
        let (pkg, _) = &out.packages[0];
        assert!(spec.is_valid(pkg).unwrap());
        // Verify the 30% constraint numerically.
        let schema = t.schema();
        let total: f64 = pkg
            .members()
            .map(|(tid, m)| t.require(tid).unwrap().get_f64(schema, "price").unwrap() * m as f64)
            .sum();
        let tech: f64 = pkg
            .members()
            .filter(|(tid, _)| {
                t.require(*tid).unwrap().get_named(schema, "sector").unwrap().to_string() == "technology"
            })
            .map(|(tid, m)| t.require(tid).unwrap().get_f64(schema, "price").unwrap() * m as f64)
            .sum();
        assert!(total <= 50_000.0 + 1e-6);
        assert!(tech >= 0.3 * total - 1e-6);
    }

    #[test]
    fn infeasible_queries_return_no_packages() {
        let t = recipes(60, Seed(4));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 2 AND SUM(P.calories) >= 100000",
        );
        let out = solve_ilp(&spec, &SolverConfig::default(), 1).unwrap();
        assert!(out.packages.is_empty());
    }

    #[test]
    fn multiple_packages_via_no_good_cuts_are_distinct_and_ordered() {
        let t = recipes(40, Seed(5));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 2 AND SUM(P.calories) <= 1500 \
             MAXIMIZE SUM(P.protein)",
        );
        let out = solve_ilp(&spec, &SolverConfig::default(), 4).unwrap();
        assert_eq!(out.packages.len(), 4);
        for (p, _) in &out.packages {
            assert!(spec.is_valid(p).unwrap());
        }
        // Distinct supports.
        for i in 0..out.packages.len() {
            for j in i + 1..out.packages.len() {
                assert_ne!(out.packages[i].0, out.packages[j].0);
            }
        }
        // Non-increasing objective.
        for w in out.packages.windows(2) {
            assert!(w[0].1.unwrap() >= w[1].1.unwrap() - 1e-6);
        }
    }

    #[test]
    fn repeat_queries_use_multiplicities() {
        let t = recipes(30, Seed(6));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R REPEAT 3 \
             SUCH THAT COUNT(*) = 3 AND SUM(P.calories) <= 4200 MAXIMIZE SUM(P.protein)",
        );
        let out = solve_ilp(&spec, &SolverConfig::default(), 1).unwrap();
        let (pkg, _) = &out.packages[0];
        assert_eq!(pkg.cardinality(), 3);
        assert!(pkg.max_multiplicity() <= 3);
        // With repetition allowed, the best plan usually repeats the
        // highest-protein recipe; at minimum it must be valid.
        assert!(spec.is_valid(pkg).unwrap());
    }

    #[test]
    fn unbounded_objective_is_reported() {
        let t = recipes(30, Seed(7));
        // No cardinality bound and REPEAT 1 still bounds the objective, so use
        // a spec with no constraints at all but minimize: minimizing protein
        // yields the empty package (objective NULL→None) — check that the ILP
        // path handles the no-constraint case gracefully instead.
        let spec = spec_for(&t, "SELECT PACKAGE(R) AS P FROM recipes R MAXIMIZE SUM(P.protein)");
        let out = solve_ilp(&spec, &SolverConfig::default(), 1).unwrap();
        // Every recipe has positive protein → optimum takes all of them.
        let (pkg, _) = &out.packages[0];
        assert_eq!(pkg.cardinality(), 30);
    }
}
