//! Packages: multisets of tuples, and their aggregate semantics.
//!
//! The aggregate-evaluation methods here ([`Package::eval_aggregate`],
//! [`Package::formula_violation`], [`Package::satisfies`],
//! [`Package::objective_value`]) are the *interpreted* path: they walk the
//! expression AST per member tuple against the base table. Production
//! evaluation routes through the columnar [`crate::view::CandidateView`]
//! instead; the interpreted path survives as the correctness oracle (see
//! `tests/columnar_oracle.rs`) and for ad-hoc evaluation outside a candidate
//! set (e.g. the 2-D summary's coordinates).

use std::collections::BTreeMap;
use std::fmt;

use minidb::eval::{eval, eval_predicate};
use minidb::{Table, TupleId};
use paql::{
    AggCall, AggFunc, CmpOp, GlobalConstraint, GlobalExpr, GlobalFormula, Objective,
    ObjectiveDirection,
};

use crate::PbResult;

/// A package: a multiset of tuples from one base relation.
///
/// "Semantically, PACKAGE constructs multisets from subsets of tuples from
/// the base relations listed in the FROM clause" (Section 2). Tuples are
/// referenced by [`TupleId`] with an explicit multiplicity, so packages stay
/// small and cheap to clone no matter how wide the tuples are.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Package {
    members: BTreeMap<TupleId, u32>,
}

impl Package {
    /// The empty package.
    pub fn new() -> Self {
        Package::default()
    }

    /// A package from `(tuple, multiplicity)` pairs.
    pub fn from_members<I: IntoIterator<Item = (TupleId, u32)>>(members: I) -> Self {
        let mut p = Package::new();
        for (t, m) in members {
            p.add(t, m);
        }
        p
    }

    /// A package containing each listed tuple once.
    pub fn from_ids<I: IntoIterator<Item = TupleId>>(ids: I) -> Self {
        Package::from_members(ids.into_iter().map(|t| (t, 1)))
    }

    /// Adds `multiplicity` copies of a tuple.
    pub fn add(&mut self, tuple: TupleId, multiplicity: u32) {
        if multiplicity == 0 {
            return;
        }
        *self.members.entry(tuple).or_insert(0) += multiplicity;
    }

    /// Removes up to `multiplicity` copies of a tuple, returning how many
    /// copies were actually removed.
    pub fn remove(&mut self, tuple: TupleId, multiplicity: u32) -> u32 {
        match self.members.get_mut(&tuple) {
            None => 0,
            Some(m) => {
                let removed = (*m).min(multiplicity);
                *m -= removed;
                if *m == 0 {
                    self.members.remove(&tuple);
                }
                removed
            }
        }
    }

    /// Multiplicity of a tuple (0 when absent).
    pub fn multiplicity(&self, tuple: TupleId) -> u32 {
        self.members.get(&tuple).copied().unwrap_or(0)
    }

    /// Total number of tuples counting multiplicities (`COUNT(*)`).
    pub fn cardinality(&self) -> u64 {
        self.members.values().map(|&m| m as u64).sum()
    }

    /// Number of *distinct* tuples.
    pub fn distinct_count(&self) -> usize {
        self.members.len()
    }

    /// True when the package has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterator over `(tuple, multiplicity)` pairs in tuple order.
    pub fn members(&self) -> impl Iterator<Item = (TupleId, u32)> + '_ {
        self.members.iter().map(|(t, m)| (*t, *m))
    }

    /// The distinct tuple ids in the package.
    pub fn tuple_ids(&self) -> Vec<TupleId> {
        self.members.keys().copied().collect()
    }

    /// The largest multiplicity of any member (0 for an empty package).
    pub fn max_multiplicity(&self) -> u32 {
        self.members.values().copied().max().unwrap_or(0)
    }

    /// Evaluates one aggregate over the package.
    ///
    /// Multiplicities weight `COUNT`, `SUM` and `AVG`; `MIN`/`MAX` range over
    /// the distinct member tuples. Members whose `FILTER` predicate is false
    /// (or NULL) do not contribute. Aggregates over an empty contribution set
    /// return `None` (SQL NULL), except `COUNT`, which returns 0.
    pub fn eval_aggregate(&self, table: &Table, call: &AggCall) -> PbResult<Option<f64>> {
        let schema = table.schema();
        let mut count: u64 = 0;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut any = false;
        for (tid, mult) in self.members() {
            let tuple = table.require(tid)?;
            if let Some(filter) = &call.filter {
                if !eval_predicate(filter, schema, tuple)? {
                    continue;
                }
            }
            let value = match &call.arg {
                None => None,
                Some(arg) => {
                    let v = eval(arg, schema, tuple)?;
                    if v.is_null() {
                        // NULL contributions are skipped for SUM/AVG/MIN/MAX
                        // and for COUNT(expr), matching SQL.
                        if call.func != AggFunc::Count {
                            continue;
                        }
                        None
                    } else {
                        Some(v.expect_f64(&format!("argument of {}", call.func.name()))?)
                    }
                }
            };
            match call.func {
                AggFunc::Count => {
                    // COUNT(expr) skips NULL expr values; COUNT(*) counts all.
                    if call.arg.is_none() || value.is_some() {
                        count += mult as u64;
                        any = true;
                    }
                }
                AggFunc::Sum | AggFunc::Avg => {
                    if let Some(v) = value {
                        sum += v * mult as f64;
                        count += mult as u64;
                        any = true;
                    }
                }
                AggFunc::Min | AggFunc::Max => {
                    if let Some(v) = value {
                        min = min.min(v);
                        max = max.max(v);
                        any = true;
                    }
                }
            }
        }
        Ok(match call.func {
            AggFunc::Count => Some(count as f64),
            AggFunc::Sum => {
                if any {
                    Some(sum)
                } else {
                    None
                }
            }
            AggFunc::Avg => {
                if count > 0 {
                    Some(sum / count as f64)
                } else {
                    None
                }
            }
            AggFunc::Min => any.then_some(min),
            AggFunc::Max => any.then_some(max),
        })
    }

    /// Evaluates a global expression over the package. Returns `None` when a
    /// sub-aggregate is NULL (e.g. SUM over an empty package) or a division
    /// by zero occurs.
    pub fn eval_global_expr(&self, table: &Table, expr: &GlobalExpr) -> PbResult<Option<f64>> {
        Ok(match expr {
            GlobalExpr::Literal(x) => Some(*x),
            GlobalExpr::Agg(call) => self.eval_aggregate(table, call)?,
            GlobalExpr::Binary { op, lhs, rhs } => {
                let l = self.eval_global_expr(table, lhs)?;
                let r = self.eval_global_expr(table, rhs)?;
                match (l, r) {
                    (Some(a), Some(b)) => match op {
                        paql::ast::GlobalArithOp::Add => Some(a + b),
                        paql::ast::GlobalArithOp::Sub => Some(a - b),
                        paql::ast::GlobalArithOp::Mul => Some(a * b),
                        paql::ast::GlobalArithOp::Div => {
                            if b == 0.0 {
                                None
                            } else {
                                Some(a / b)
                            }
                        }
                    },
                    _ => None,
                }
            }
        })
    }

    /// Evaluates one global constraint. A constraint whose sides cannot be
    /// evaluated (NULL aggregate) is *not* satisfied, mirroring SQL `WHERE`
    /// semantics for unknown.
    pub fn satisfies_constraint(&self, table: &Table, c: &GlobalConstraint) -> PbResult<bool> {
        let lhs = self.eval_global_expr(table, &c.lhs)?;
        let rhs = self.eval_global_expr(table, &c.rhs)?;
        Ok(match (lhs, rhs) {
            (Some(a), Some(b)) => c.op.compare(a, b),
            _ => false,
        })
    }

    /// Evaluates the whole `SUCH THAT` formula.
    pub fn satisfies(&self, table: &Table, formula: &GlobalFormula) -> PbResult<bool> {
        Ok(match formula {
            GlobalFormula::Atom(c) => self.satisfies_constraint(table, c)?,
            GlobalFormula::And(a, b) => self.satisfies(table, a)? && self.satisfies(table, b)?,
            GlobalFormula::Or(a, b) => self.satisfies(table, a)? || self.satisfies(table, b)?,
            GlobalFormula::Not(a) => !self.satisfies(table, a)?,
        })
    }

    /// Evaluates the objective; `None` when it cannot be evaluated (e.g. the
    /// package is empty and the objective is a SUM).
    pub fn objective_value(&self, table: &Table, objective: &Objective) -> PbResult<Option<f64>> {
        self.eval_global_expr(table, &objective.expr)
    }

    /// A quantitative violation measure for one constraint: 0 when satisfied,
    /// otherwise the absolute amount by which the comparison fails (used by
    /// the local search to hill-climb towards feasibility).
    pub fn constraint_violation(&self, table: &Table, c: &GlobalConstraint) -> PbResult<f64> {
        let lhs = self.eval_global_expr(table, &c.lhs)?;
        let rhs = self.eval_global_expr(table, &c.rhs)?;
        let (a, b) = match (lhs, rhs) {
            (Some(a), Some(b)) => (a, b),
            // Un-evaluable constraints get a large fixed penalty so the search
            // moves towards packages where they become evaluable.
            _ => return Ok(1e9),
        };
        Ok(match c.op {
            CmpOp::Eq => (a - b).abs(),
            CmpOp::NotEq => {
                if c.op.compare(a, b) {
                    0.0
                } else {
                    1.0
                }
            }
            CmpOp::Lt | CmpOp::LtEq => (a - b).max(0.0),
            CmpOp::Gt | CmpOp::GtEq => (b - a).max(0.0),
        })
    }

    /// Total violation across every atom of a formula. For disjunctions the
    /// branch with the smallest violation counts, so a package that satisfies
    /// either side of an OR is not penalized.
    pub fn formula_violation(&self, table: &Table, formula: &GlobalFormula) -> PbResult<f64> {
        Ok(match formula {
            GlobalFormula::Atom(c) => self.constraint_violation(table, c)?,
            GlobalFormula::And(a, b) => {
                self.formula_violation(table, a)? + self.formula_violation(table, b)?
            }
            GlobalFormula::Or(a, b) => self
                .formula_violation(table, a)?
                .min(self.formula_violation(table, b)?),
            GlobalFormula::Not(a) => {
                // NOT has no smooth violation measure; use 0/1.
                if self.satisfies(table, a)? {
                    1.0
                } else {
                    0.0
                }
            }
        })
    }

    /// Renders the package contents (rows and multiplicities) as text.
    pub fn render(&self, table: &Table) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "package with {} tuples ({} distinct):\n",
            self.cardinality(),
            self.distinct_count()
        ));
        for (tid, mult) in self.members() {
            if let Some(t) = table.get(tid) {
                out.push_str(&format!("  {tid} x{mult}: {t}\n"));
            }
        }
        out
    }

    /// Signed comparison of two objective values under a direction, treating
    /// `None` as the worst possible value.
    pub fn better_objective(direction: ObjectiveDirection, a: Option<f64>, b: Option<f64>) -> bool {
        match (a, b) {
            (None, _) => false,
            (Some(_), None) => true,
            (Some(x), Some(y)) => match direction {
                ObjectiveDirection::Maximize => x > y + 1e-9,
                ObjectiveDirection::Minimize => x < y - 1e-9,
            },
        }
    }
}

impl fmt::Display for Package {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .members()
            .map(|(t, m)| {
                if m == 1 {
                    t.to_string()
                } else {
                    format!("{t}x{m}")
                }
            })
            .collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::{tuple, ColumnType, Schema, Table};
    use paql::ast::GlobalArithOp;
    use paql::{AggCall, GlobalConstraint};

    fn table() -> Table {
        let schema = Schema::build(&[
            ("name", ColumnType::Text),
            ("calories", ColumnType::Float),
            ("protein", ColumnType::Float),
            ("gluten", ColumnType::Text),
        ]);
        let mut t = Table::new("recipes", schema);
        t.insert(tuple!("oatmeal", 320.0, 12.0, "free")).unwrap();
        t.insert(tuple!("pasta", 640.0, 20.0, "full")).unwrap();
        t.insert(tuple!("salad", 210.0, 6.0, "free")).unwrap();
        t.insert(tuple!("steak", 520.0, 45.0, "free")).unwrap();
        t
    }

    fn pkg(ids: &[u32]) -> Package {
        Package::from_ids(ids.iter().map(|&i| TupleId(i)))
    }

    #[test]
    fn multiset_bookkeeping() {
        let mut p = Package::new();
        p.add(TupleId(0), 2);
        p.add(TupleId(1), 1);
        p.add(TupleId(0), 1);
        assert_eq!(p.cardinality(), 4);
        assert_eq!(p.distinct_count(), 2);
        assert_eq!(p.multiplicity(TupleId(0)), 3);
        assert_eq!(p.max_multiplicity(), 3);
        assert_eq!(p.remove(TupleId(0), 5), 3);
        assert_eq!(p.multiplicity(TupleId(0)), 0);
        assert_eq!(p.to_string(), "{t1}");
    }

    #[test]
    fn aggregates_respect_multiplicities() {
        let t = table();
        let mut p = Package::new();
        p.add(TupleId(0), 2); // 2x oatmeal
        p.add(TupleId(2), 1); // salad
        let count = p
            .eval_aggregate(
                &t,
                &AggCall {
                    func: AggFunc::Count,
                    arg: None,
                    filter: None,
                },
            )
            .unwrap();
        assert_eq!(count, Some(3.0));
        let sum = p
            .eval_aggregate(
                &t,
                &AggCall {
                    func: AggFunc::Sum,
                    arg: Some(minidb::Expr::col("calories")),
                    filter: None,
                },
            )
            .unwrap();
        assert_eq!(sum, Some(2.0 * 320.0 + 210.0));
        let avg = p
            .eval_aggregate(
                &t,
                &AggCall {
                    func: AggFunc::Avg,
                    arg: Some(minidb::Expr::col("calories")),
                    filter: None,
                },
            )
            .unwrap();
        assert_eq!(avg, Some((2.0 * 320.0 + 210.0) / 3.0));
        let max = p
            .eval_aggregate(
                &t,
                &AggCall {
                    func: AggFunc::Max,
                    arg: Some(minidb::Expr::col("calories")),
                    filter: None,
                },
            )
            .unwrap();
        assert_eq!(max, Some(320.0));
    }

    #[test]
    fn filtered_aggregates_skip_non_matching_members() {
        let t = table();
        let p = pkg(&[0, 1, 2]);
        let gluten_free_count = p
            .eval_aggregate(
                &t,
                &AggCall {
                    func: AggFunc::Count,
                    arg: None,
                    filter: Some(minidb::Expr::col("gluten").eq(minidb::Expr::lit("free"))),
                },
            )
            .unwrap();
        assert_eq!(gluten_free_count, Some(2.0));
    }

    #[test]
    fn empty_package_aggregates() {
        let t = table();
        let p = Package::new();
        assert_eq!(
            p.eval_aggregate(
                &t,
                &AggCall {
                    func: AggFunc::Count,
                    arg: None,
                    filter: None
                }
            )
            .unwrap(),
            Some(0.0)
        );
        assert_eq!(
            p.eval_aggregate(
                &t,
                &AggCall {
                    func: AggFunc::Sum,
                    arg: Some(minidb::Expr::col("calories")),
                    filter: None
                }
            )
            .unwrap(),
            None
        );
    }

    #[test]
    fn paper_meal_plan_constraints() {
        let t = table();
        // COUNT(*) = 3 AND SUM(calories) BETWEEN 2000 AND 2500 is infeasible on
        // this tiny table (max total = 320+640+520 = 1480), so check a relaxed
        // variant and the violation measure.
        let formula = paql::parser::parse_global_formula(
            "COUNT(*) = 3 AND SUM(calories) BETWEEN 1000 AND 1500",
        )
        .unwrap();
        let good = pkg(&[0, 1, 3]); // 320+640+520 = 1480
        assert!(good.satisfies(&t, &formula).unwrap());
        let bad = pkg(&[0, 2]); // two tuples, 530 calories
        assert!(!bad.satisfies(&t, &formula).unwrap());
        assert!(bad.formula_violation(&t, &formula).unwrap() > 0.0);
        assert_eq!(good.formula_violation(&t, &formula).unwrap(), 0.0);
    }

    #[test]
    fn ratio_constraint_via_global_expr() {
        let t = table();
        let p = pkg(&[0, 1, 3]);
        // protein of gluten-free members >= 50% of total protein
        let constraint = GlobalConstraint {
            lhs: GlobalExpr::Agg(AggCall {
                func: AggFunc::Sum,
                arg: Some(minidb::Expr::col("protein")),
                filter: Some(minidb::Expr::col("gluten").eq(minidb::Expr::lit("free"))),
            }),
            op: CmpOp::GtEq,
            rhs: GlobalExpr::Binary {
                op: GlobalArithOp::Mul,
                lhs: Box::new(GlobalExpr::Literal(0.5)),
                rhs: Box::new(GlobalExpr::agg(AggFunc::Sum, "protein")),
            },
        };
        // gluten-free protein = 12 + 45 = 57, total = 77 → 57 >= 38.5 ✓
        assert!(p.satisfies_constraint(&t, &constraint).unwrap());
    }

    #[test]
    fn or_and_not_formula_semantics() {
        let t = table();
        let p = pkg(&[2]); // 210 calories, 1 tuple
        let f = paql::parser::parse_global_formula("COUNT(*) = 5 OR SUM(calories) <= 300").unwrap();
        assert!(p.satisfies(&t, &f).unwrap());
        assert_eq!(p.formula_violation(&t, &f).unwrap(), 0.0);
        let g = paql::parser::parse_global_formula("NOT (COUNT(*) = 1)").unwrap();
        assert!(!p.satisfies(&t, &g).unwrap());
        assert_eq!(p.formula_violation(&t, &g).unwrap(), 1.0);
    }

    #[test]
    fn objective_comparison_handles_none() {
        use ObjectiveDirection::*;
        assert!(Package::better_objective(Maximize, Some(2.0), Some(1.0)));
        assert!(!Package::better_objective(Maximize, Some(1.0), Some(2.0)));
        assert!(Package::better_objective(Minimize, Some(1.0), Some(2.0)));
        assert!(Package::better_objective(Maximize, Some(1.0), None));
        assert!(!Package::better_objective(Maximize, None, Some(1.0)));
    }

    #[test]
    fn render_lists_members() {
        let t = table();
        let p = pkg(&[0, 3]);
        let text = p.render(&t);
        assert!(text.contains("oatmeal"));
        assert!(text.contains("steak"));
        assert!(text.contains("2 tuples"));
    }
}
