//! Visual summary of the package space (paper Section 3.2).
//!
//! "The system analyzes the current query specification and selects two
//! dimensions to visually layout the valid packages along. Users can use the
//! visual summary to navigate through the available packages by selecting
//! glyphs that represent them."
//!
//! [`summarize`] picks the two dimensions (the objective column first, then
//! the numeric columns referenced by global constraints, then any remaining
//! numeric column) and lays every package out as a glyph with both raw and
//! normalized coordinates. The interface draws the glyphs; the engine side is
//! the part reproduced and benchmarked here (experiment E5).

use paql::{GlobalExpr, GlobalFormula};

use crate::package::Package;
use crate::spec::PackageSpec;
use crate::PbResult;

/// One glyph in the 2-D summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Glyph {
    /// Index of the package in the input list.
    pub package_index: usize,
    /// Raw coordinate along the first dimension (e.g. total calories).
    pub x: f64,
    /// Raw coordinate along the second dimension.
    pub y: f64,
    /// `x` rescaled into `[0, 1]` over all glyphs.
    pub x_norm: f64,
    /// `y` rescaled into `[0, 1]` over all glyphs.
    pub y_norm: f64,
    /// Whether this glyph is the currently selected package (the interface
    /// highlights "the current package's position in the result space").
    pub selected: bool,
}

/// The 2-D package-space summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceSummary {
    /// Label of the first dimension (e.g. `SUM(calories)`).
    pub x_label: String,
    /// Label of the second dimension.
    pub y_label: String,
    /// One glyph per package.
    pub glyphs: Vec<Glyph>,
    /// Raw value ranges, `(min, max)` per dimension.
    pub x_range: (f64, f64),
    /// Raw value ranges, `(min, max)` per dimension.
    pub y_range: (f64, f64),
}

/// Chooses the two summary dimensions for a spec: the objective column first,
/// then columns referenced by SUM constraints, then any numeric column of the
/// relation. Returns `(x_column, y_column)`.
pub fn choose_dimensions(spec: &PackageSpec<'_>) -> (String, String) {
    let mut dims: Vec<String> = Vec::new();
    let push = |col: String, dims: &mut Vec<String>| {
        if !dims.iter().any(|d| d.eq_ignore_ascii_case(&col)) {
            dims.push(col);
        }
    };
    if let Some(obj) = &spec.objective {
        for agg in obj.expr.aggregates() {
            if let Some(minidb::Expr::Column(c)) = &agg.arg {
                push(c.clone(), &mut dims);
            }
        }
    }
    if let Some(formula) = &spec.formula {
        collect_formula_columns(formula, &mut |c| push(c, &mut dims));
    }
    for col in spec.table.schema().numeric_columns() {
        push(col.to_string(), &mut dims);
        if dims.len() >= 2 {
            break;
        }
    }
    let x = dims.first().cloned().unwrap_or_else(|| "count".to_string());
    let y = dims.get(1).cloned().unwrap_or_else(|| "count".to_string());
    (x, y)
}

fn collect_formula_columns(formula: &GlobalFormula, push: &mut impl FnMut(String)) {
    for atom in formula.atoms() {
        for expr in [&atom.lhs, &atom.rhs] {
            collect_expr_columns(expr, push);
        }
    }
}

fn collect_expr_columns(expr: &GlobalExpr, push: &mut impl FnMut(String)) {
    match expr {
        GlobalExpr::Agg(a) => {
            if let Some(minidb::Expr::Column(c)) = &a.arg {
                push(c.clone());
            }
        }
        GlobalExpr::Literal(_) => {}
        GlobalExpr::Binary { lhs, rhs, .. } => {
            collect_expr_columns(lhs, push);
            collect_expr_columns(rhs, push);
        }
    }
}

/// Computes the coordinate of a package along one dimension: the sum of the
/// column over the package (or the cardinality for the pseudo-dimension
/// `count`).
fn coordinate(spec: &PackageSpec<'_>, package: &Package, column: &str) -> PbResult<f64> {
    if column.eq_ignore_ascii_case("count") {
        return Ok(package.cardinality() as f64);
    }
    let call = paql::AggCall {
        func: paql::AggFunc::Sum,
        arg: Some(minidb::Expr::col(column)),
        filter: None,
    };
    Ok(package.eval_aggregate(spec.table, &call)?.unwrap_or(0.0))
}

/// Lays out `packages` in the 2-D space chosen by [`choose_dimensions`].
/// `selected` marks the glyph of the package the user is currently viewing.
pub fn summarize(
    spec: &PackageSpec<'_>,
    packages: &[Package],
    selected: Option<usize>,
) -> PbResult<SpaceSummary> {
    let (x_col, y_col) = choose_dimensions(spec);
    let mut glyphs = Vec::with_capacity(packages.len());
    for (i, p) in packages.iter().enumerate() {
        let x = coordinate(spec, p, &x_col)?;
        let y = coordinate(spec, p, &y_col)?;
        glyphs.push(Glyph {
            package_index: i,
            x,
            y,
            x_norm: 0.0,
            y_norm: 0.0,
            selected: selected == Some(i),
        });
    }
    let (x_min, x_max) = min_max(glyphs.iter().map(|g| g.x));
    let (y_min, y_max) = min_max(glyphs.iter().map(|g| g.y));
    for g in glyphs.iter_mut() {
        g.x_norm = normalize(g.x, x_min, x_max);
        g.y_norm = normalize(g.y, y_min, y_max);
    }
    Ok(SpaceSummary {
        x_label: format!("SUM({x_col})"),
        y_label: format!("SUM({y_col})"),
        glyphs,
        x_range: (x_min, x_max),
        y_range: (y_min, y_max),
    })
}

fn min_max(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if min > max {
        (0.0, 0.0)
    } else {
        (min, max)
    }
}

fn normalize(v: f64, min: f64, max: f64) -> f64 {
    if max > min {
        (v - min) / (max - min)
    } else {
        0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{recipes, Seed};
    use minidb::Table;
    use paql::compile;

    fn spec_for<'a>(table: &'a Table, q: &str) -> PackageSpec<'a> {
        let analyzed = compile(q, table.schema()).unwrap();
        PackageSpec::build(&analyzed, table).unwrap()
    }

    const MEAL_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
        SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE SUM(P.protein)";

    #[test]
    fn dimensions_prefer_objective_then_constraint_columns() {
        let t = recipes(60, Seed(1));
        let spec = spec_for(&t, MEAL_QUERY);
        let (x, y) = choose_dimensions(&spec);
        assert_eq!(x, "protein");
        assert_eq!(y, "calories");
    }

    #[test]
    fn dimensions_fall_back_to_numeric_columns() {
        let t = recipes(60, Seed(2));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 2",
        );
        let (x, y) = choose_dimensions(&spec);
        assert_ne!(x, y);
        assert!(t.schema().index_of(&x).is_some());
        assert!(t.schema().index_of(&y).is_some());
    }

    #[test]
    fn glyph_layout_normalizes_coordinates() {
        let t = recipes(100, Seed(3));
        let spec = spec_for(&t, MEAL_QUERY);
        let packages: Vec<Package> = (0..10)
            .map(|i| Package::from_ids(spec.candidates.iter().copied().skip(i).take(3)))
            .collect();
        let summary = summarize(&spec, &packages, Some(2)).unwrap();
        assert_eq!(summary.glyphs.len(), 10);
        assert!(summary
            .glyphs
            .iter()
            .all(|g| (0.0..=1.0).contains(&g.x_norm)));
        assert!(summary
            .glyphs
            .iter()
            .all(|g| (0.0..=1.0).contains(&g.y_norm)));
        assert_eq!(summary.glyphs.iter().filter(|g| g.selected).count(), 1);
        assert!(summary.x_label.contains("protein"));
        // Raw coordinates must equal the package sums.
        let p0_protein: f64 = packages[0]
            .members()
            .map(|(id, m)| t.value_f64(id, "protein").unwrap() * m as f64)
            .sum();
        assert!((summary.glyphs[0].x - p0_protein).abs() < 1e-9);
    }

    #[test]
    fn empty_package_list_yields_empty_summary() {
        let t = recipes(20, Seed(4));
        let spec = spec_for(&t, MEAL_QUERY);
        let summary = summarize(&spec, &[], None).unwrap();
        assert!(summary.glyphs.is_empty());
        assert_eq!(summary.x_range, (0.0, 0.0));
    }

    #[test]
    fn single_package_is_centered() {
        let t = recipes(20, Seed(5));
        let spec = spec_for(&t, MEAL_QUERY);
        let p = Package::from_ids(spec.candidates.iter().copied().take(3));
        let summary = summarize(&spec, &[p], Some(0)).unwrap();
        assert_eq!(summary.glyphs[0].x_norm, 0.5);
        assert!(summary.glyphs[0].selected);
    }
}
