//! The data-parallel chunk executor behind the columnar core.
//!
//! Every hot loop in the engine — column materialization, the base-predicate
//! candidate scan, the k-d partitioner's spread scans, greedy repair and the
//! local search's neighbourhood scan — walks the candidate set in
//! **fixed-width chunks** of [`CHUNK_WIDTH`] elements. [`ParExec`] fans those
//! chunks out over scoped `std::thread` workers (no external dependencies)
//! and hands the per-chunk results back **in chunk order**, which is the
//! whole determinism story:
//!
//! * Chunk boundaries depend only on the element count, never on the thread
//!   count, so every chunk computes exactly the same value no matter which
//!   worker runs it or when.
//! * Reductions combine per-chunk results left to right (chunk 0 first), so
//!   floating-point rounding and tie-breaking ("first strictly better move
//!   wins") are identical at every `num_threads` — including 1, where the
//!   executor degrades to a plain sequential loop over the same chunks with
//!   no thread machinery at all.
//!
//! Together these make solver results **bit-identical regardless of thread
//! count**; `tests/parallel_determinism.rs` asserts exactly that across the
//! datagen scenarios, and the `harness -- parallel` experiment gates it in
//! release mode.
//!
//! The anytime contract survives fan-out because callers check their
//! cooperative [`crate::budget::Budget`] **per chunk, not per element**: a
//! chunk closure that observes expiry returns an "expired" marker instead of
//! scanning, the chunk-order reduction stops at the first marker, and the
//! solver returns its best-so-far result exactly as the sequential code
//! would.
//!
//! Thread budgets are a shared resource: [`ParExec::split`] divides one
//! executor's threads among concurrent consumers, which is how the portfolio
//! race gives each racing worker `num_threads / workers` threads for its own
//! intra-solver fan-out instead of oversubscribing the host.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Width of one column chunk, in elements. 4096 `f64`s = 32 KiB — two or
/// eight L1 data caches' worth depending on the core, and a multiple of
/// every SIMD vector width in sight, so per-chunk inner loops vectorize and
/// stay cache-resident. The width is a fixed constant (never derived from
/// the thread count): chunk boundaries are part of the determinism contract.
pub const CHUNK_WIDTH: usize = 4096;

/// Number of fixed-width chunks covering `n` elements (0 for an empty range).
pub fn chunk_count(n: usize) -> usize {
    n.div_ceil(CHUNK_WIDTH)
}

/// The half-open element range of chunk `c` over `n` elements.
pub fn chunk_range(c: usize, n: usize) -> Range<usize> {
    let start = c * CHUNK_WIDTH;
    start..(start + CHUNK_WIDTH).min(n)
}

/// A chunk fan-out executor with a fixed thread budget.
///
/// Cheap to copy and to pass down through [`crate::solver::SolveOptions`];
/// carries nothing but the thread count. With `threads() == 1` (or a single
/// chunk of work) every operation runs inline on the caller's thread —
/// sequential evaluation is the degenerate case of the same chunked code
/// path, not a separate implementation, which is what keeps the two
/// bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParExec {
    threads: usize,
}

impl ParExec {
    /// An executor that never spawns: all chunks run inline, in order.
    pub fn sequential() -> Self {
        ParExec { threads: 1 }
    }

    /// An executor with a thread budget of `threads` (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ParExec {
            threads: threads.max(1),
        }
    }

    /// The thread budget.
    pub fn threads(self) -> usize {
        self.threads
    }

    /// Divides this executor's thread budget among `ways` concurrent
    /// consumers (at least 1 each). The portfolio race uses this so `W`
    /// racing workers and their intra-solver fan-out share one core budget:
    /// each worker's executor gets `threads / W`.
    pub fn split(self, ways: usize) -> ParExec {
        ParExec::new(self.threads / ways.max(1))
    }

    /// Maps every [`CHUNK_WIDTH`]-wide chunk of `0..n` through `f`,
    /// returning the results **in chunk order**.
    ///
    /// `f` is called with `(chunk_index, element_range)` exactly once per
    /// chunk. Workers pull chunks from a shared counter, so the *assignment*
    /// of chunks to threads is timing-dependent — but the result vector is
    /// not: slot `c` always holds `f(c, chunk_range(c, n))`, and `f` must be
    /// a pure function of its arguments (plus captured shared state) for the
    /// executor's determinism guarantee to mean anything.
    pub fn run_chunks<R, F>(self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        self.run_chunks_width(n, CHUNK_WIDTH, f)
    }

    /// [`ParExec::run_chunks`] with an explicit chunk width, for work whose
    /// natural unit is larger than one element (e.g. one partition of the
    /// sketch solver). The width must never be derived from the thread
    /// count — fixed boundaries are what keep results thread-independent.
    pub fn run_chunks_width<R, F>(self, n: usize, width: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        let width = width.max(1);
        let chunks = n.div_ceil(width);
        let range = |c: usize| (c * width)..((c + 1) * width).min(n);
        let workers = self.threads.min(chunks);
        if workers <= 1 {
            // Sequential degradation: same chunks, same order, no threads.
            return (0..chunks).map(|c| f(c, range(c))).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = (0..chunks).map(|_| None).collect();
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(usize, R)>();
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks {
                        break;
                    }
                    if tx.send((c, f(c, range(c)))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (c, r) in rx {
                slots[c] = Some(r);
            }
        });
        // Every chunk index was claimed exactly once and either sent its
        // result or panicked — and a worker panic propagates out of the
        // scope above before this line can run.
        slots
            .into_iter()
            .map(|s| s.expect("scoped worker filled every chunk slot"))
            .collect()
    }

    /// Maps chunks through `f` and folds the results **in chunk order**
    /// (`None` for an empty range). The left-to-right fold is what makes
    /// floating-point reductions and first-wins tie-breaking independent of
    /// the thread count.
    pub fn fold_chunks<R, F, G>(self, n: usize, f: F, fold: G) -> Option<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
        G: FnMut(R, R) -> R,
    {
        self.run_chunks(n, f).into_iter().reduce(fold)
    }
}

impl Default for ParExec {
    fn default() -> Self {
        ParExec::sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn chunk_math_covers_the_range_exactly_once() {
        for n in [
            0usize,
            1,
            CHUNK_WIDTH - 1,
            CHUNK_WIDTH,
            CHUNK_WIDTH + 1,
            3 * CHUNK_WIDTH + 17,
        ] {
            let chunks = chunk_count(n);
            let mut covered = 0usize;
            for c in 0..chunks {
                let r = chunk_range(c, n);
                assert_eq!(r.start, covered, "gap before chunk {c} at n={n}");
                assert!(r.len() <= CHUNK_WIDTH);
                assert!(!r.is_empty());
                covered = r.end;
            }
            assert_eq!(covered, n, "chunks must cover 0..{n}");
        }
    }

    #[test]
    fn results_arrive_in_chunk_order_at_every_thread_count() {
        let n = 5 * CHUNK_WIDTH + 123;
        let expected: Vec<(usize, usize)> = ParExec::sequential()
            .run_chunks(n, |c, r| (c, r.len()))
            .into_iter()
            .collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let got = ParExec::new(threads).run_chunks(n, |c, r| (c, r.len()));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn fold_is_left_to_right_in_chunk_order() {
        let n = 4 * CHUNK_WIDTH;
        // A non-commutative fold detects any deviation from chunk order.
        let seq = ParExec::sequential()
            .fold_chunks(
                n,
                |c, _| vec![c],
                |mut a, b| {
                    a.extend(b);
                    a
                },
            )
            .unwrap();
        assert_eq!(seq, vec![0, 1, 2, 3]);
        let par = ParExec::new(4)
            .fold_chunks(
                n,
                |c, _| vec![c],
                |mut a, b| {
                    a.extend(b);
                    a
                },
            )
            .unwrap();
        assert_eq!(par, seq);
        assert_eq!(ParExec::new(4).fold_chunks(0, |c, _| c, |a, _| a), None);
    }

    #[test]
    fn every_chunk_runs_exactly_once_in_parallel() {
        let n = 16 * CHUNK_WIDTH;
        let calls = AtomicU64::new(0);
        let out = ParExec::new(8).run_chunks(n, |c, _| {
            calls.fetch_add(1, Ordering::Relaxed);
            c
        });
        assert_eq!(calls.load(Ordering::Relaxed), 16);
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn split_divides_the_thread_budget() {
        assert_eq!(ParExec::new(8).split(4).threads(), 2);
        assert_eq!(ParExec::new(8).split(3).threads(), 2);
        assert_eq!(ParExec::new(2).split(4).threads(), 1);
        assert_eq!(ParExec::new(1).split(0).threads(), 1);
        assert_eq!(ParExec::new(0).threads(), 1, "budget clamps to 1");
    }

    #[test]
    fn explicit_widths_respect_boundaries() {
        let got = ParExec::new(3).run_chunks_width(10, 4, |c, r| (c, r.start, r.end));
        assert_eq!(got, vec![(0, 0, 4), (1, 4, 8), (2, 8, 10)]);
    }
}
