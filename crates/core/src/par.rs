//! The data-parallel chunk executor behind the columnar core.
//!
//! Every hot loop in the engine — column materialization, the base-predicate
//! candidate scan, the k-d partitioner's spread scans, greedy repair and the
//! local search's neighbourhood scan — walks the candidate set in
//! **fixed-width chunks** of [`CHUNK_WIDTH`] elements. [`ParExec`] fans those
//! chunks out over scoped `std::thread` workers (no external dependencies)
//! and hands the per-chunk results back **in chunk order**, which is the
//! whole determinism story:
//!
//! * Chunk boundaries depend only on the element count, never on the thread
//!   count, so every chunk computes exactly the same value no matter which
//!   worker runs it or when.
//! * Reductions combine per-chunk results left to right (chunk 0 first), so
//!   floating-point rounding and tie-breaking ("first strictly better move
//!   wins") are identical at every `num_threads` — including 1, where the
//!   executor degrades to a plain sequential loop over the same chunks with
//!   no thread machinery at all.
//!
//! Together these make solver results **bit-identical regardless of thread
//! count**; `tests/parallel_determinism.rs` asserts exactly that across the
//! datagen scenarios, and the `harness -- parallel` experiment gates it in
//! release mode.
//!
//! The anytime contract survives fan-out because callers check their
//! cooperative [`crate::budget::Budget`] **per chunk, not per element**: a
//! chunk closure that observes expiry returns an "expired" marker instead of
//! scanning, the chunk-order reduction stops at the first marker, and the
//! solver returns its best-so-far result exactly as the sequential code
//! would.
//!
//! Thread budgets are a shared resource: [`ParExec::split`] divides one
//! executor's threads among concurrent consumers, which is how the portfolio
//! race gives each racing worker `num_threads / workers` threads for its own
//! intra-solver fan-out instead of oversubscribing the host.
//!
//! # The persistent pool
//!
//! Fan-outs execute on a process-wide pool of long-lived worker threads
//! (spawned lazily on the first parallel scan, one per host core), not on
//! per-scan `std::thread::scope` spawns: a package query runs hundreds of
//! chunked scans, and ~50 µs of spawn/join per scan was pure overhead. The
//! pool is **help-first**: the caller posts a job asking for up to
//! `threads − 1` helpers, then immediately starts claiming chunks itself
//! from the same shared counter. Helpers that arrive late (or never,
//! because the pool is busy with another scan) only *speed the scan up* —
//! the caller alone is always sufficient, so nested fan-outs and a
//! saturated pool degrade to inline execution instead of deadlocking.
//! Chunk *results* still land in their chunk-index slot, so which thread
//! ran what remains invisible to the caller.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ops::Range;

/// Width of one column chunk, in elements. 4096 `f64`s = 32 KiB — two or
/// eight L1 data caches' worth depending on the core, and a multiple of
/// every SIMD vector width in sight, so per-chunk inner loops vectorize and
/// stay cache-resident. The width is a fixed constant (never derived from
/// the thread count): chunk boundaries are part of the determinism contract.
pub const CHUNK_WIDTH: usize = 4096;

/// Number of fixed-width chunks covering `n` elements (0 for an empty range).
pub fn chunk_count(n: usize) -> usize {
    n.div_ceil(CHUNK_WIDTH)
}

/// The half-open element range of chunk `c` over `n` elements.
pub fn chunk_range(c: usize, n: usize) -> Range<usize> {
    let start = c * CHUNK_WIDTH;
    start..(start + CHUNK_WIDTH).min(n)
}

/// A chunk fan-out executor with a fixed thread budget.
///
/// Cheap to copy and to pass down through [`crate::solver::SolveOptions`];
/// carries nothing but the thread count. With `threads() == 1` (or a single
/// chunk of work) every operation runs inline on the caller's thread —
/// sequential evaluation is the degenerate case of the same chunked code
/// path, not a separate implementation, which is what keeps the two
/// bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParExec {
    threads: usize,
}

impl ParExec {
    /// An executor that never spawns: all chunks run inline, in order.
    pub fn sequential() -> Self {
        ParExec { threads: 1 }
    }

    /// An executor with a thread budget of `threads` (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ParExec {
            threads: threads.max(1),
        }
    }

    /// The thread budget.
    pub fn threads(self) -> usize {
        self.threads
    }

    /// Divides this executor's thread budget among `ways` concurrent
    /// consumers (at least 1 each). The portfolio race uses this so `W`
    /// racing workers and their intra-solver fan-out share one core budget:
    /// each worker's executor gets `threads / W`.
    pub fn split(self, ways: usize) -> ParExec {
        ParExec::new(self.threads / ways.max(1))
    }

    /// Maps every [`CHUNK_WIDTH`]-wide chunk of `0..n` through `f`,
    /// returning the results **in chunk order**.
    ///
    /// `f` is called with `(chunk_index, element_range)` exactly once per
    /// chunk. Workers pull chunks from a shared counter, so the *assignment*
    /// of chunks to threads is timing-dependent — but the result vector is
    /// not: slot `c` always holds `f(c, chunk_range(c, n))`, and `f` must be
    /// a pure function of its arguments (plus captured shared state) for the
    /// executor's determinism guarantee to mean anything.
    pub fn run_chunks<R, F>(self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        self.run_chunks_width(n, CHUNK_WIDTH, f)
    }

    /// [`ParExec::run_chunks`] with an explicit chunk width, for work whose
    /// natural unit is larger than one element (e.g. one partition of the
    /// sketch solver). The width must never be derived from the thread
    /// count — fixed boundaries are what keep results thread-independent.
    pub fn run_chunks_width<R, F>(self, n: usize, width: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        let width = width.max(1);
        let chunks = n.div_ceil(width);
        let range = |c: usize| (c * width)..((c + 1) * width).min(n);
        let workers = self.threads.min(chunks);
        if workers <= 1 {
            // Sequential degradation: same chunks, same order, no threads.
            return (0..chunks).map(|c| f(c, range(c))).collect();
        }

        // Parallel path: result slots indexed by chunk, filled exactly once
        // by whichever thread claims the chunk, read only after the job's
        // completion barrier.
        let slots: Vec<Slot<R>> = (0..chunks)
            .map(|_| Slot(UnsafeCell::new(MaybeUninit::uninit())))
            .collect();

        /// Monomorphized chunk runner handed to the type-erased pool job.
        ///
        /// # Safety
        /// `ctx` must point at a live `Ctx<R, F>` whose `slots` array has
        /// `>= chunks` entries, and each `c` must be claimed at most once.
        unsafe fn run_one<R, F>(ctx: *const (), c: usize)
        where
            R: Send,
            F: Fn(usize, Range<usize>) -> R + Sync,
        {
            // SAFETY: the caller contract above guarantees `ctx` points at a
            // live `Ctx<R, F>` for the whole fan-out.
            let ctx = unsafe { &*(ctx as *const Ctx<R, F>) };
            let start = c * ctx.width;
            // SAFETY: `ctx.f` was taken from a live `&F` in
            // `run_chunks_width`, which blocks until the fan-out completes.
            let r = unsafe { (*ctx.f)(c, start..(start + ctx.width).min(ctx.n)) };
            // SAFETY: chunk `c` is claimed exactly once (atomic counter in
            // the pool job), so this thread has exclusive access to slot
            // `c`; the caller reads it only after the completion barrier.
            unsafe { (*(*ctx.slots.add(c)).0.get()).write(r) };
        }

        let ctx = Ctx {
            n,
            width,
            slots: slots.as_ptr(),
            f: &f as *const F,
        };
        let panicked = pool::run_erased(
            chunks,
            workers - 1,
            &ctx as *const Ctx<R, F> as *const (),
            run_one::<R, F>,
        );
        if panicked {
            // Initialized results leak rather than risking a double read;
            // mirrors the old scoped executor, where a worker panic
            // propagated out of the scope before any slot was consumed.
            std::mem::forget(slots);
            // pb-lint: allow(no-panic-in-solver-paths) — deliberate re-raise:
            // a worker panicked, and propagating on the caller's thread
            // preserves the pre-pool scoped-executor contract instead of
            // inventing an error value for a programming bug.
            panic!("parallel chunk worker panicked");
        }
        slots
            .into_iter()
            // SAFETY: the completion barrier in `run_erased` (Acquire on the
            // done counter) ordered every slot write before this point, and
            // every chunk ran exactly once, so each slot is initialized.
            .map(|s| unsafe { s.0.into_inner().assume_init() })
            .collect()
    }

    /// Maps chunks through `f` and folds the results **in chunk order**
    /// (`None` for an empty range). The left-to-right fold is what makes
    /// floating-point reductions and first-wins tie-breaking independent of
    /// the thread count.
    pub fn fold_chunks<R, F, G>(self, n: usize, f: F, fold: G) -> Option<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
        G: FnMut(R, R) -> R,
    {
        self.run_chunks(n, f).into_iter().reduce(fold)
    }
}

impl Default for ParExec {
    fn default() -> Self {
        ParExec::sequential()
    }
}

/// One result slot, written once by the claiming thread and read once by the
/// caller after the completion barrier.
struct Slot<R>(UnsafeCell<MaybeUninit<R>>);

// SAFETY: the pool protocol guarantees exclusive access per slot — each
// chunk index is claimed by exactly one thread (atomic counter), and the
// caller reads only after observing `done == chunks` with Acquire ordering.
unsafe impl<R: Send> Sync for Slot<R> {}

/// Raw-pointer context for a type-erased fan-out; lives on the caller's
/// stack for the duration of `pool::run_erased`, which must not return while
/// any thread can still dereference it (see the pool's safety argument).
struct Ctx<R, F> {
    n: usize,
    width: usize,
    slots: *const Slot<R>,
    f: *const F,
}

/// The process-wide persistent worker pool.
///
/// # Protocol
///
/// [`run_erased`](pool::run_erased) publishes a [`Job`](pool::Job) — a claim
/// counter over `chunks` indices plus a type-erased chunk runner — enqueues
/// up to `helpers` references to it for the pool's long-lived workers, and
/// then **helps**: the calling thread claims chunks from the same counter
/// until none remain, and finally blocks on the job's completion latch
/// (`done == chunks`). Helpers do the same claim loop when they pick the job
/// up; a helper that arrives after the counter is exhausted returns without
/// ever touching the job's context pointer.
///
/// # Safety argument
///
/// The job holds a raw pointer into the caller's stack frame. That pointer
/// is dereferenced only inside `run_chunk(ctx, c)` for a successfully
/// claimed `c < chunks`, and every such call must finish (incrementing
/// `done` with Release) before the caller's wait on `done == chunks`
/// (Acquire) can succeed — so no dereference can happen after `run_erased`
/// returns. Stale job references left in the queue by a fast scan are
/// harmless: their claim counter is exhausted, so late workers drop them
/// without a dereference.
///
/// # Why helping matters
///
/// The caller never *depends* on the pool: if every worker is busy with
/// another scan (or the pool failed to spawn), the caller simply runs all
/// chunks itself. That makes nested fan-outs trivially deadlock-free — an
/// inner scan posted from a pool worker is just another job that its caller
/// can fully drain alone.
mod pool {
    use std::collections::VecDeque;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    /// Upper bound on pool threads, above any sane core count for this
    /// workload.
    const MAX_POOL_THREADS: usize = 64;

    /// A posted fan-out: helpers and the caller claim chunk indices from
    /// `next` and run `run_chunk` on each; `done` is the completion latch.
    pub(super) struct Job {
        next: AtomicUsize,
        chunks: usize,
        done: AtomicUsize,
        panicked: AtomicBool,
        ctx: *const (),
        // SAFETY: contract on `run_erased` — only ever called with this
        // job's `ctx` and a claimed chunk index `c < chunks`.
        run_chunk: unsafe fn(*const (), usize),
        lock: Mutex<()>,
        cv: Condvar,
    }

    // SAFETY: `ctx` crosses threads by design; the dereference discipline is
    // documented on the module. Everything else in the struct is Sync.
    unsafe impl Send for Job {}
    // SAFETY: shared access is `&self`-only — atomic claim/latch counters
    // plus the Mutex/Condvar pair; `ctx` is only ever read, and `run_chunk`
    // guards its own per-chunk exclusivity via the claim counter.
    unsafe impl Sync for Job {}

    impl Job {
        /// Claims and runs chunks until the counter is exhausted. Run by the
        /// caller and by any helper that picks the job up.
        fn help(&self) {
            loop {
                let c = self.next.fetch_add(1, Ordering::Relaxed);
                if c >= self.chunks {
                    return;
                }
                // A panicking chunk still counts as done (otherwise the
                // caller's latch would hang); the caller re-raises.
                // SAFETY: `c` came from the claim counter, so it is claimed
                // exactly once and `< chunks`; `ctx` stays live until the
                // caller's `wait_done` returns (contract on `run_erased`).
                let r = catch_unwind(AssertUnwindSafe(|| unsafe {
                    (self.run_chunk)(self.ctx, c)
                }));
                if r.is_err() {
                    self.panicked.store(true, Ordering::Relaxed);
                }
                if self.done.fetch_add(1, Ordering::Release) + 1 == self.chunks {
                    let _g = self.lock.lock().unwrap();
                    self.cv.notify_all();
                }
            }
        }

        /// Blocks until every chunk has run. The Acquire load pairs with the
        /// Release increments in [`Job::help`], ordering all slot writes
        /// before the caller's reads.
        fn wait_done(&self) {
            let mut g = self.lock.lock().unwrap();
            while self.done.load(Ordering::Acquire) < self.chunks {
                g = self.cv.wait(g).unwrap();
            }
        }
    }

    struct Shared {
        queue: Mutex<VecDeque<Arc<Job>>>,
        work: Condvar,
    }

    struct Pool {
        shared: Arc<Shared>,
        /// Worker threads actually spawned (0 if the host refused).
        workers: usize,
    }

    static POOL: OnceLock<Pool> = OnceLock::new();

    fn pool() -> &'static Pool {
        POOL.get_or_init(|| {
            let shared = Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                work: Condvar::new(),
            });
            let want = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(MAX_POOL_THREADS);
            let mut workers = 0;
            for _ in 0..want {
                let sh = Arc::clone(&shared);
                // This is the contained thread home clippy.toml points at.
                #[allow(clippy::disallowed_methods)]
                let spawned = std::thread::Builder::new()
                    .name("pb-par-worker".into())
                    .spawn(move || worker_main(&sh));
                if spawned.is_ok() {
                    workers += 1;
                }
            }
            Pool { shared, workers }
        })
    }

    fn worker_main(sh: &Shared) {
        loop {
            let job = {
                let mut q = sh.queue.lock().unwrap();
                loop {
                    if let Some(j) = q.pop_front() {
                        break j;
                    }
                    q = sh.work.wait(q).unwrap();
                }
            };
            job.help();
        }
    }

    /// Runs `chunks` chunk invocations of `run_chunk` with up to `helpers`
    /// pool workers assisting the calling thread. Returns whether any chunk
    /// panicked (the caller re-raises; results must then not be read).
    ///
    /// # Safety (for callers)
    ///
    /// `ctx` must stay valid until this function returns, and
    /// `run_chunk(ctx, c)` must be safe for every `c < chunks` claimed at
    /// most once. Both hold for the single call site in
    /// [`ParExec::run_chunks_width`](super::ParExec::run_chunks_width).
    pub(super) fn run_erased(
        chunks: usize,
        helpers: usize,
        ctx: *const (),
        // SAFETY: see the `# Safety (for callers)` contract above.
        run_chunk: unsafe fn(*const (), usize),
    ) -> bool {
        let job = Arc::new(Job {
            next: AtomicUsize::new(0),
            chunks,
            done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            ctx,
            run_chunk,
            lock: Mutex::new(()),
            cv: Condvar::new(),
        });
        let p = pool();
        let helpers = helpers.min(p.workers);
        if helpers > 0 {
            let mut q = p.shared.queue.lock().unwrap();
            for _ in 0..helpers {
                q.push_back(Arc::clone(&job));
            }
            drop(q);
            p.shared.work.notify_all();
        }
        job.help();
        job.wait_done();
        job.panicked.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn chunk_math_covers_the_range_exactly_once() {
        for n in [
            0usize,
            1,
            CHUNK_WIDTH - 1,
            CHUNK_WIDTH,
            CHUNK_WIDTH + 1,
            3 * CHUNK_WIDTH + 17,
        ] {
            let chunks = chunk_count(n);
            let mut covered = 0usize;
            for c in 0..chunks {
                let r = chunk_range(c, n);
                assert_eq!(r.start, covered, "gap before chunk {c} at n={n}");
                assert!(r.len() <= CHUNK_WIDTH);
                assert!(!r.is_empty());
                covered = r.end;
            }
            assert_eq!(covered, n, "chunks must cover 0..{n}");
        }
    }

    #[test]
    fn results_arrive_in_chunk_order_at_every_thread_count() {
        let n = 5 * CHUNK_WIDTH + 123;
        let expected: Vec<(usize, usize)> = ParExec::sequential()
            .run_chunks(n, |c, r| (c, r.len()))
            .into_iter()
            .collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let got = ParExec::new(threads).run_chunks(n, |c, r| (c, r.len()));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn fold_is_left_to_right_in_chunk_order() {
        let n = 4 * CHUNK_WIDTH;
        // A non-commutative fold detects any deviation from chunk order.
        let seq = ParExec::sequential()
            .fold_chunks(
                n,
                |c, _| vec![c],
                |mut a, b| {
                    a.extend(b);
                    a
                },
            )
            .unwrap();
        assert_eq!(seq, vec![0, 1, 2, 3]);
        let par = ParExec::new(4)
            .fold_chunks(
                n,
                |c, _| vec![c],
                |mut a, b| {
                    a.extend(b);
                    a
                },
            )
            .unwrap();
        assert_eq!(par, seq);
        assert_eq!(ParExec::new(4).fold_chunks(0, |c, _| c, |a, _| a), None);
    }

    #[test]
    fn every_chunk_runs_exactly_once_in_parallel() {
        let n = 16 * CHUNK_WIDTH;
        let calls = AtomicU64::new(0);
        let out = ParExec::new(8).run_chunks(n, |c, _| {
            calls.fetch_add(1, Ordering::Relaxed);
            c
        });
        assert_eq!(calls.load(Ordering::Relaxed), 16);
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn split_divides_the_thread_budget() {
        assert_eq!(ParExec::new(8).split(4).threads(), 2);
        assert_eq!(ParExec::new(8).split(3).threads(), 2);
        assert_eq!(ParExec::new(2).split(4).threads(), 1);
        assert_eq!(ParExec::new(1).split(0).threads(), 1);
        assert_eq!(ParExec::new(0).threads(), 1, "budget clamps to 1");
    }

    #[test]
    fn explicit_widths_respect_boundaries() {
        let got = ParExec::new(3).run_chunks_width(10, 4, |c, r| (c, r.start, r.end));
        assert_eq!(got, vec![(0, 0, 4), (1, 4, 8), (2, 8, 10)]);
    }

    #[test]
    fn pool_survives_many_back_to_back_scans() {
        // The persistent pool must hand back correct, ordered results across
        // repeated fan-outs (the per-query pattern: hundreds of scans reuse
        // the same long-lived workers).
        let n = 7 * CHUNK_WIDTH + 11;
        let expected: Vec<usize> = ParExec::sequential().run_chunks(n, |_, r| r.len());
        for _ in 0..50 {
            assert_eq!(ParExec::new(4).run_chunks(n, |_, r| r.len()), expected);
        }
    }

    #[test]
    fn nested_fan_out_does_not_deadlock() {
        // An outer scan whose chunk closures themselves fan out: inner jobs
        // may find every pool worker busy, in which case their callers drain
        // the chunks alone. Results stay ordered at both levels.
        let outer = 4 * CHUNK_WIDTH;
        let got = ParExec::new(4).run_chunks(outer, |c, _| {
            let inner: usize = ParExec::new(4)
                .run_chunks_width(3 * CHUNK_WIDTH, CHUNK_WIDTH, |ic, _| ic)
                .into_iter()
                .sum();
            (c, inner)
        });
        let want: Vec<(usize, usize)> = (0..4).map(|c| (c, 3)).collect();
        assert_eq!(got, want);
    }
}
