//! Query results and evaluation statistics.

use std::fmt;
use std::time::Duration;

use minidb::Table;

use crate::package::Package;

/// Which strategy actually produced a result (the `Auto` policy resolves to
/// one of these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyUsed {
    /// ILP translation + branch and bound.
    Ilp,
    /// Enumeration with cardinality/partial-sum pruning.
    PrunedEnumeration,
    /// Exhaustive enumeration.
    Exhaustive,
    /// Greedy construction + local search.
    LocalSearch,
    /// Pure greedy construction with feasibility repair.
    Greedy,
    /// A portfolio race across several solvers (the stats aggregate every
    /// worker; the packages come from the winning worker).
    Portfolio,
    /// Partition → sketch → refine (the stats aggregate the greedy baseline,
    /// the sketch ILP and every per-partition sub-ILP).
    SketchRefine,
    /// Hierarchical sketch→refine over a partition tree (the stats
    /// aggregate the greedy baseline, every per-layer sketch ILP of the
    /// descent and every leaf sub-ILP).
    ProgressiveShading,
}

impl fmt::Display for StrategyUsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StrategyUsed::Ilp => "ilp",
            StrategyUsed::PrunedEnumeration => "pruned-enumeration",
            StrategyUsed::Exhaustive => "exhaustive",
            StrategyUsed::LocalSearch => "local-search",
            StrategyUsed::Greedy => "greedy",
            StrategyUsed::Portfolio => "portfolio",
            StrategyUsed::SketchRefine => "sketch-refine",
            StrategyUsed::ProgressiveShading => "progressive-shading",
        };
        write!(f, "{s}")
    }
}

/// Statistics about one query evaluation.
#[derive(Debug, Clone)]
pub struct EvalStats {
    /// Strategy that produced the result.
    pub strategy: StrategyUsed,
    /// Number of candidate tuples after base constraints.
    pub candidates: usize,
    /// Search nodes expanded (enumeration, branch and bound) or local-search
    /// moves examined.
    pub nodes: u64,
    /// Simplex iterations (ILP) or neighbour evaluations (local search).
    pub iterations: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl EvalStats {
    /// Stats placeholder for strategies that track nothing yet.
    pub fn empty(strategy: StrategyUsed) -> Self {
        EvalStats {
            strategy,
            candidates: 0,
            nodes: 0,
            iterations: 0,
            elapsed: Duration::ZERO,
        }
    }
}

/// The result of evaluating a package query: zero or more valid packages,
/// best first when the query has an objective.
#[derive(Debug, Clone)]
pub struct PackageResult {
    /// Valid packages, best first.
    pub packages: Vec<Package>,
    /// Objective value per package (None when the query has no objective).
    pub objectives: Vec<Option<f64>>,
    /// Whether the strategy proves optimality of the first package
    /// (ILP/enumeration do, local search does not).
    pub optimal: bool,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl PackageResult {
    /// An empty (infeasible or not-found) result.
    pub fn empty(stats: EvalStats) -> Self {
        PackageResult {
            packages: Vec::new(),
            objectives: Vec::new(),
            optimal: false,
            stats,
        }
    }

    /// Builds a result from `(package, objective)` pairs.
    pub fn from_pairs(pairs: Vec<(Package, Option<f64>)>, optimal: bool, stats: EvalStats) -> Self {
        let (packages, objectives) = pairs.into_iter().unzip();
        PackageResult {
            packages,
            objectives,
            optimal,
            stats,
        }
    }

    /// The best package, if any was found.
    pub fn best(&self) -> Option<&Package> {
        self.packages.first()
    }

    /// The best objective value, if any.
    pub fn best_objective(&self) -> Option<f64> {
        self.objectives.first().copied().flatten()
    }

    /// True when no valid package was found.
    pub fn is_empty(&self) -> bool {
        self.packages.is_empty()
    }

    /// Number of packages returned.
    pub fn len(&self) -> usize {
        self.packages.len()
    }

    /// Human-readable report: the best package's rows plus summary lines.
    pub fn describe(&self, table: &Table) -> String {
        let mut out = String::new();
        match self.best() {
            None => out.push_str("no valid package found\n"),
            Some(p) => {
                out.push_str(&p.render(table));
                if let Some(obj) = self.best_objective() {
                    out.push_str(&format!("objective value: {obj:.3}\n"));
                }
            }
        }
        out.push_str(&format!(
            "strategy: {} ({} candidates, {} nodes, {} iterations, {:.3} ms){}\n",
            self.stats.strategy,
            self.stats.candidates,
            self.stats.nodes,
            self.stats.iterations,
            self.stats.elapsed.as_secs_f64() * 1e3,
            if self.optimal { ", optimal" } else { "" }
        ));
        if self.len() > 1 {
            out.push_str(&format!("({} packages returned)\n", self.len()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::{tuple, ColumnType, Schema, TupleId};

    fn table() -> Table {
        let mut t = Table::new(
            "t",
            Schema::build(&[("name", ColumnType::Text), ("v", ColumnType::Float)]),
        );
        t.insert(tuple!("a", 1.0)).unwrap();
        t.insert(tuple!("b", 2.0)).unwrap();
        t
    }

    #[test]
    fn empty_result_reports_no_package() {
        let r = PackageResult::empty(EvalStats::empty(StrategyUsed::Ilp));
        assert!(r.is_empty());
        assert!(r.best().is_none());
        assert!(r.describe(&table()).contains("no valid package"));
    }

    #[test]
    fn from_pairs_orders_and_describes() {
        let t = table();
        let p1 = Package::from_ids([TupleId(0), TupleId(1)]);
        let p2 = Package::from_ids([TupleId(1)]);
        let r = PackageResult::from_pairs(
            vec![(p1, Some(3.0)), (p2, Some(2.0))],
            true,
            EvalStats::empty(StrategyUsed::PrunedEnumeration),
        );
        assert_eq!(r.len(), 2);
        assert_eq!(r.best_objective(), Some(3.0));
        let text = r.describe(&t);
        assert!(text.contains("objective value: 3.000"));
        assert!(text.contains("pruned-enumeration"));
        assert!(text.contains("optimal"));
        assert!(text.contains("2 packages"));
    }
}
