//! Out-of-core backing storage for term columns: spill files, pages and the
//! LRU buffer pool.
//!
//! A [`crate::view::TermColumn`] is logically a sequence of fixed-width
//! chunks ([`crate::par::CHUNK_WIDTH`] elements, the same grid every chunked
//! scan and reduction in the engine runs on). This module supplies the
//! *paged* representation of that sequence: column chunks serialized to a
//! process-local spill file, faulted back on demand through a small buffer
//! pool. The resident representation (dense in-memory vectors) lives in
//! [`crate::view`]; both representations expose the identical chunk-cursor
//! API, so every consumer above the storage layer is oblivious to where a
//! chunk's bytes currently are.
//!
//! # Page layout
//!
//! One page holds exactly one column chunk:
//!
//! * [`crate::par::CHUNK_WIDTH`] little-endian-native `f64` coefficients
//!   (tail chunks are zero-padded to full width), followed by
//! * [`MASK_WORDS_PER_CHUNK`] `u64` inclusion-mask words (bit `i % 64` of
//!   word `i / 64` set ⟺ element `i` of the chunk is included).
//!
//! Every page is therefore [`PAGE_BYTES`] bytes and page `p` starts at file
//! offset `p · PAGE_BYTES` — no directory, no indirection: a column stores
//! its first page id and chunk `c` lives on page `first + c`.
//!
//! # Pinning rules
//!
//! [`SpillStore::read`] returns a [`PageGuard`] — an `Arc` over the decoded
//! frame. A page is *pinned* while any guard for it is alive: the pool may
//! drop the page from its table (so a later access re-reads the file), but
//! the frame's memory is only freed when the last guard goes. Pinning can
//! therefore never deadlock or block a concurrent scan, at the price of the
//! pool temporarily overshooting its capacity when more pages are pinned
//! than it can hold (a *starvation pool*, e.g. `PB_POOL_PAGES=2` under an
//! 8-way [`crate::par::ParExec`] fan-out — the stress configuration CI runs).
//!
//! # Determinism contract
//!
//! Paging is storage, not computation: a faulted chunk decodes to exactly
//! the bytes the build wrote, chunk boundaries stay the fixed
//! [`crate::par::CHUNK_WIDTH`] grid, and per-chunk metadata
//! ([`crate::view::ChunkMeta`]) is computed once at build time from the
//! chunk buffer — before it is spilled — so resident and paged columns are
//! bit-identical sources and every result derived from them (packages,
//! objectives, solver counters) is too, at every thread count and every pool
//! size. Only the pool's *hit/miss counters* are timing-dependent; they are
//! observability, deliberately kept out of every solver result.
//!
//! # Spill-file lifecycle
//!
//! A [`SpillStore`] creates one file under the OS temp directory, named by
//! process id and a process-wide counter so concurrent stores never collide.
//! Columns built through one view build share that view's store (and its
//! pool); the file is deleted when the last `Arc<SpillStore>` drops — banked
//! columns in a [`crate::cache::ViewCache`] keep it alive exactly as long as
//! they are served.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::par::{chunk_count, CHUNK_WIDTH};

/// Inclusion-mask words per page: one bit per chunk element.
/// `CHUNK_WIDTH` is a multiple of 64, so chunks and words never straddle.
pub const MASK_WORDS_PER_CHUNK: usize = CHUNK_WIDTH / 64;

/// Bytes per page: a full-width coefficient chunk plus its mask words.
pub const PAGE_BYTES: usize = CHUNK_WIDTH * 8 + MASK_WORDS_PER_CHUNK * 8;

/// Default resident budget (bytes of column data per view build) above which
/// [`crate::spec::PackageSpec::build`] switches to paged columns: 1 GiB.
pub const DEFAULT_COLUMN_MEMORY_BUDGET: usize = 1 << 30;

/// Default buffer-pool capacity, in pages (~33 MiB).
pub const DEFAULT_POOL_PAGES: usize = 1024;

/// Pools smaller than this cannot make progress pinning a chunk per scan;
/// policies clamp up to it.
pub const MIN_POOL_PAGES: usize = 2;

/// The default resident budget: the `PB_COLUMN_BUDGET` environment variable
/// (bytes; `0` forces every column through the paged path — the CI stress
/// leg) when set, otherwise [`DEFAULT_COLUMN_MEMORY_BUDGET`].
pub fn default_column_memory_budget() -> usize {
    match std::env::var("PB_COLUMN_BUDGET")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(b) => b,
        None => DEFAULT_COLUMN_MEMORY_BUDGET,
    }
}

/// The default buffer-pool capacity in pages: the `PB_POOL_PAGES`
/// environment variable when set to a positive integer (clamped to
/// [`MIN_POOL_PAGES`]), otherwise [`DEFAULT_POOL_PAGES`].
pub fn default_pool_pages() -> usize {
    match std::env::var("PB_POOL_PAGES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(p) if p >= 1 => p.max(MIN_POOL_PAGES),
        _ => DEFAULT_POOL_PAGES,
    }
}

/// Bytes one column of `len` candidates occupies (coefficients plus
/// chunk-aligned inclusion-mask words) — the unit both the paged-mode
/// decision and the [`crate::cache::ViewCache`] byte accounting use.
pub fn column_bytes(len: usize) -> usize {
    len * 8 + chunk_count(len) * MASK_WORDS_PER_CHUNK * 8
}

/// How a view build stores its term columns: resident below the budget,
/// paged (spill file + buffer pool) above it.
///
/// The decision is made once per view over the *estimated total* column
/// bytes (`#terms × `[`column_bytes`]`(n)`), so all columns one build
/// materializes share a mode — and a store. [`ColumnPolicy::default`] reads
/// the `PB_COLUMN_BUDGET` / `PB_POOL_PAGES` environment overrides, which is
/// how the CI stress leg forces the whole test suite through 4-page pools;
/// [`crate::config::EngineConfig`] carries an explicit policy
/// ([`crate::config::EngineConfig::column_memory_budget`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnPolicy {
    /// Estimated column bytes above which a build goes paged.
    pub memory_budget: usize,
    /// Buffer-pool capacity, in pages, for stores this policy creates.
    pub pool_pages: usize,
}

impl ColumnPolicy {
    /// The environment-derived policy (`PB_COLUMN_BUDGET`, `PB_POOL_PAGES`).
    pub fn from_env() -> Self {
        ColumnPolicy {
            memory_budget: default_column_memory_budget(),
            pool_pages: default_pool_pages(),
        }
    }

    /// Always-resident storage (today's layout, zero-cost path).
    pub fn resident() -> Self {
        ColumnPolicy {
            memory_budget: usize::MAX,
            pool_pages: DEFAULT_POOL_PAGES,
        }
    }

    /// Always-paged storage through a pool of `pool_pages` pages (clamped to
    /// [`MIN_POOL_PAGES`]) — what the paged-vs-resident test suites use.
    pub fn paged(pool_pages: usize) -> Self {
        ColumnPolicy {
            memory_budget: 0,
            pool_pages: pool_pages.max(MIN_POOL_PAGES),
        }
    }

    /// True when a view of `terms` columns over `len` candidates should be
    /// built paged under this policy. Empty views stay resident: there is
    /// nothing to spill.
    pub fn wants_paged(&self, terms: usize, len: usize) -> bool {
        len > 0 && terms > 0 && terms.saturating_mul(column_bytes(len)) > self.memory_budget
    }
}

impl Default for ColumnPolicy {
    fn default() -> Self {
        ColumnPolicy::from_env()
    }
}

/// Buffer-pool activity counters (process-wide, aggregated over every
/// [`SpillStore`]) — see [`pool_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Page reads answered from the pool.
    pub hits: u64,
    /// Page reads that faulted the page in from the spill file.
    pub misses: u64,
    /// Unpinned pages dropped to make room.
    pub evictions: u64,
    /// Pages written to spill files (column chunks spilled).
    pub pages_spilled: u64,
}

static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_MISSES: AtomicU64 = AtomicU64::new(0);
static GLOBAL_EVICTIONS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_SPILLED: AtomicU64 = AtomicU64::new(0);
static STORE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Process-wide buffer-pool counters, summed over every store that ever
/// lived. The harness snapshots this around each measured cell and records
/// the delta in the BENCH json; counters are monotone and never reset.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        hits: GLOBAL_HITS.load(Ordering::Relaxed),
        misses: GLOBAL_MISSES.load(Ordering::Relaxed),
        evictions: GLOBAL_EVICTIONS.load(Ordering::Relaxed),
        pages_spilled: GLOBAL_SPILLED.load(Ordering::Relaxed),
    }
}

/// One decoded page: a full-width coefficient chunk and its mask words.
struct Frame {
    coeffs: Box<[f64]>,
    mask: Box<[u64]>,
}

/// A pinned page. The pool may evict the page's table entry while guards
/// are alive; the frame's memory lives until the last guard drops (see the
/// module docs on pinning).
#[derive(Clone)]
pub struct PageGuard {
    frame: Arc<Frame>,
}

impl PageGuard {
    /// The first `len` coefficients of the pinned chunk.
    #[inline]
    pub fn coeffs(&self, len: usize) -> &[f64] {
        &self.frame.coeffs[..len]
    }

    /// The chunk's inclusion-mask words.
    #[inline]
    pub fn mask(&self) -> &[u64] {
        &self.frame.mask
    }

    /// Whether element `i` of the pinned chunk is included.
    #[inline]
    pub fn included(&self, i: usize) -> bool {
        (self.frame.mask[i / 64] >> (i % 64)) & 1 == 1
    }
}

struct PoolEntry {
    frame: Arc<Frame>,
    /// Monotone recency stamp; the smallest unpinned stamp is evicted first.
    stamp: u64,
}

struct Pool {
    frames: HashMap<u64, PoolEntry>,
    tick: u64,
}

/// A write-once spill file plus its LRU buffer pool.
///
/// Pages are appended during column materialization (columns are immutable
/// after construction, so the pool is a pure read cache — no dirty pages, no
/// write-back) and read back through [`SpillStore::read`]. The file is
/// deleted when the last `Arc<SpillStore>` drops.
pub struct SpillStore {
    file: Mutex<File>,
    path: PathBuf,
    pages: AtomicU64,
    pool: Mutex<Pool>,
    pool_pages: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl SpillStore {
    /// Creates an empty store whose pool holds at most `pool_pages` pages
    /// (clamped to [`MIN_POOL_PAGES`]). The backing file is created eagerly
    /// so creation fails loudly when the temp directory is unwritable.
    pub fn create(pool_pages: usize) -> io::Result<Arc<SpillStore>> {
        let path = std::env::temp_dir().join(format!(
            "pb-columns-{}-{}.spill",
            std::process::id(),
            STORE_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        Ok(Arc::new(SpillStore {
            file: Mutex::new(file),
            path,
            pages: AtomicU64::new(0),
            pool: Mutex::new(Pool {
                frames: HashMap::new(),
                tick: 0,
            }),
            pool_pages: pool_pages.max(MIN_POOL_PAGES),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }))
    }

    fn lock_file(&self) -> MutexGuard<'_, File> {
        self.file.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_pool(&self) -> MutexGuard<'_, Pool> {
        self.pool.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Path of the backing file (tests assert cleanup; diagnostics print it).
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Pages written so far.
    pub fn page_count(&self) -> u64 {
        self.pages.load(Ordering::Relaxed)
    }

    /// Pool capacity, in pages.
    pub fn pool_pages(&self) -> usize {
        self.pool_pages
    }

    /// This store's own `(hits, misses, evictions)` counters (the global
    /// [`pool_stats`] aggregates all stores).
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }

    /// Appends one column chunk (`coeffs` and `included` of equal length,
    /// at most [`CHUNK_WIDTH`]; tail chunks are zero-padded to a full page)
    /// and returns its page id. Chunks of one column must be appended in
    /// chunk order — the column addresses page `first + c` for chunk `c`.
    pub fn append_chunk(&self, coeffs: &[f64], included: &[bool]) -> io::Result<u64> {
        assert_eq!(coeffs.len(), included.len());
        assert!(coeffs.len() <= CHUNK_WIDTH);
        let mut buf = vec![0u8; PAGE_BYTES];
        for (i, &c) in coeffs.iter().enumerate() {
            buf[i * 8..i * 8 + 8].copy_from_slice(&c.to_ne_bytes());
        }
        let mask_base = CHUNK_WIDTH * 8;
        let mut words = [0u64; MASK_WORDS_PER_CHUNK];
        for (i, &inc) in included.iter().enumerate() {
            if inc {
                words[i / 64] |= 1u64 << (i % 64);
            }
        }
        for (w, &word) in words.iter().enumerate() {
            buf[mask_base + w * 8..mask_base + w * 8 + 8].copy_from_slice(&word.to_ne_bytes());
        }
        let page = self.pages.fetch_add(1, Ordering::Relaxed);
        let mut file = self.lock_file();
        file.seek(SeekFrom::Start(page * PAGE_BYTES as u64))?;
        file.write_all(&buf)?;
        GLOBAL_SPILLED.fetch_add(1, Ordering::Relaxed);
        Ok(page)
    }

    /// Pins `page`, faulting it in from the spill file on a pool miss and
    /// evicting the least-recently-used *unpinned* page when the pool is
    /// full. When every resident page is pinned the pool overshoots instead
    /// of blocking (see the module docs), so concurrent scans always make
    /// progress.
    ///
    /// # Panics
    ///
    /// On I/O errors reading the spill file — the store wrote this page
    /// itself, so a failed read means the environment destroyed the file
    /// under a live store, which no caller can meaningfully handle.
    pub fn read(&self, page: u64) -> PageGuard {
        debug_assert!(page < self.page_count());
        let mut pool = self.lock_pool();
        pool.tick += 1;
        let tick = pool.tick;
        if let Some(entry) = pool.frames.get_mut(&page) {
            entry.stamp = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
            return PageGuard {
                frame: entry.frame.clone(),
            };
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        GLOBAL_MISSES.fetch_add(1, Ordering::Relaxed);
        // Fault the page in. Holding the pool lock across the read
        // serializes concurrent misses but guarantees each page is decoded
        // once; spill reads are the slow path by definition.
        let frame = Arc::new(self.read_frame(page).unwrap_or_else(|e| {
            panic!(
                "spill file {} lost under a live store (page {page}): {e}",
                self.path.display()
            )
        }));
        while pool.frames.len() >= self.pool_pages {
            // Evict the stalest unpinned page (guards hold an Arc, so a
            // pinned page has strong_count > 1). Ties cannot happen: stamps
            // are unique.
            let victim = pool
                .frames
                // pb-lint: allow(no-hash-iteration) — LRU victim scan:
                // min_by_key over *unique* stamps is order-independent, so
                // map iteration order cannot change which page is evicted.
                .iter()
                .filter(|(_, e)| Arc::strong_count(&e.frame) == 1)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(&p, _)| p);
            match victim {
                Some(p) => {
                    pool.frames.remove(&p);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    GLOBAL_EVICTIONS.fetch_add(1, Ordering::Relaxed);
                }
                // Everything is pinned: overshoot rather than deadlock.
                None => break,
            }
        }
        pool.frames.insert(
            page,
            PoolEntry {
                frame: frame.clone(),
                stamp: tick,
            },
        );
        PageGuard { frame }
    }

    fn read_frame(&self, page: u64) -> io::Result<Frame> {
        let mut buf = vec![0u8; PAGE_BYTES];
        {
            let mut file = self.lock_file();
            file.seek(SeekFrom::Start(page * PAGE_BYTES as u64))?;
            file.read_exact(&mut buf)?;
        }
        let mut coeffs = vec![0.0f64; CHUNK_WIDTH].into_boxed_slice();
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = f64::from_ne_bytes(buf[i * 8..i * 8 + 8].try_into().unwrap());
        }
        let mask_base = CHUNK_WIDTH * 8;
        let mut mask = vec![0u64; MASK_WORDS_PER_CHUNK].into_boxed_slice();
        for (w, word) in mask.iter_mut().enumerate() {
            *word = u64::from_ne_bytes(
                buf[mask_base + w * 8..mask_base + w * 8 + 8]
                    .try_into()
                    .unwrap(),
            );
        }
        Ok(Frame { coeffs, mask })
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        // Best effort: a failed unlink leaks one temp file, never data.
        let _ = std::fs::remove_file(&self.path);
    }
}

impl std::fmt::Debug for SpillStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (hits, misses, evictions) = self.counters();
        write!(
            f,
            "SpillStore({} pages, pool {} pages, {hits} hits, {misses} misses, {evictions} evictions)",
            self.page_count(),
            self.pool_pages,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::ParExec;

    /// A recognizable chunk: element `i` of chunk `c` holds `c·W + i`, odd
    /// elements included — plus a few adversarial bit patterns in chunk 0.
    fn test_chunk(c: usize, len: usize) -> (Vec<f64>, Vec<bool>) {
        let mut coeffs: Vec<f64> = (0..len).map(|i| (c * CHUNK_WIDTH + i) as f64).collect();
        if c == 0 && len >= 4 {
            coeffs[0] = -0.0;
            coeffs[1] = f64::NEG_INFINITY;
            coeffs[2] = f64::MIN_POSITIVE / 2.0; // subnormal
            coeffs[3] = 1e308;
        }
        let included = (0..len).map(|i| i % 2 == 1).collect();
        (coeffs, included)
    }

    #[test]
    fn pages_round_trip_bit_exactly() {
        let store = SpillStore::create(4).unwrap();
        for c in 0..3usize {
            let len = if c == 2 { 100 } else { CHUNK_WIDTH };
            let (coeffs, included) = test_chunk(c, len);
            let page = store.append_chunk(&coeffs, &included).unwrap();
            assert_eq!(page, c as u64);
            let guard = store.read(page);
            for (i, &x) in coeffs.iter().enumerate() {
                assert_eq!(
                    guard.coeffs(len)[i].to_bits(),
                    x.to_bits(),
                    "chunk {c} elem {i}"
                );
                assert_eq!(guard.included(i), included[i]);
            }
        }
    }

    #[test]
    fn lru_eviction_respects_capacity_and_counts() {
        let store = SpillStore::create(2).unwrap();
        for c in 0..4usize {
            let (coeffs, included) = test_chunk(c, CHUNK_WIDTH);
            store.append_chunk(&coeffs, &included).unwrap();
        }
        // Cold reads: all misses; pages 0 and 1 then resident.
        store.read(0);
        store.read(1);
        assert_eq!(store.counters(), (0, 2, 0));
        // Re-reads hit.
        store.read(0);
        store.read(1);
        assert_eq!(store.counters(), (2, 2, 0));
        // Page 2 evicts page 0 (stalest); page 0 then misses again.
        store.read(2);
        assert_eq!(store.counters(), (2, 3, 1));
        store.read(0);
        assert_eq!(store.counters(), (2, 4, 2));
        // Page 2 was touched more recently than 1, so 1 was the victim.
        store.read(2);
        assert_eq!(store.counters(), (3, 4, 2));
    }

    #[test]
    fn pinned_pages_survive_eviction_and_starved_pools_overshoot() {
        let store = SpillStore::create(2).unwrap();
        for c in 0..4usize {
            let (coeffs, included) = test_chunk(c, CHUNK_WIDTH);
            store.append_chunk(&coeffs, &included).unwrap();
        }
        let g0 = store.read(0);
        let g1 = store.read(1);
        // Both resident pages are pinned: faulting two more pages must not
        // block and must leave the pinned data intact.
        let g2 = store.read(2);
        let g3 = store.read(3);
        assert_eq!(g0.coeffs(CHUNK_WIDTH)[5], 5.0);
        assert_eq!(g1.coeffs(CHUNK_WIDTH)[5], (CHUNK_WIDTH + 5) as f64);
        assert_eq!(g2.coeffs(CHUNK_WIDTH)[5], (2 * CHUNK_WIDTH + 5) as f64);
        assert_eq!(g3.coeffs(CHUNK_WIDTH)[5], (3 * CHUNK_WIDTH + 5) as f64);
        drop((g0, g1, g2, g3));
        // With the pins gone the pool trims back to capacity on the next
        // fault — and the previously pinned pages' contents re-read intact.
        store.read(0);
        assert_eq!(store.read(0).coeffs(CHUNK_WIDTH)[7], 7.0);
    }

    #[test]
    fn concurrent_parexec_scans_pin_and_unpin_safely() {
        // A 2-page starvation pool under an 8-way chunk fan-out: every
        // worker pins, reads and unpins concurrently; contents must be
        // correct everywhere and the pool must end within bounds.
        let store = SpillStore::create(2).unwrap();
        let chunks = 16usize;
        for c in 0..chunks {
            let (coeffs, included) = test_chunk(c, CHUNK_WIDTH);
            store.append_chunk(&coeffs, &included).unwrap();
        }
        let par = ParExec::new(8);
        let sums = par.run_chunks(chunks * CHUNK_WIDTH, |c, range| {
            let guard = store.read(c as u64);
            let coeffs = guard.coeffs(range.len());
            let mut sum = 0.0;
            for (i, &x) in coeffs.iter().enumerate() {
                if guard.included(i) {
                    sum += x;
                }
            }
            sum
        });
        assert_eq!(sums.len(), chunks);
        for (c, &sum) in sums.iter().enumerate() {
            let (coeffs, included) = test_chunk(c, CHUNK_WIDTH);
            let expect: f64 = coeffs
                .iter()
                .zip(&included)
                .filter(|(_, &inc)| inc)
                .map(|(&x, _)| x)
                .sum();
            assert_eq!(sum, expect, "chunk {c}");
        }
        let (hits, misses, _) = store.counters();
        assert_eq!(hits + misses, chunks as u64);
    }

    #[test]
    fn spill_file_is_cleaned_up_on_drop() {
        let store = SpillStore::create(2).unwrap();
        let (coeffs, included) = test_chunk(0, 64);
        store.append_chunk(&coeffs, &included).unwrap();
        let path = store.path().to_path_buf();
        assert!(path.exists(), "spill file must exist while the store lives");
        // A pinned guard does not keep the *file* alive — only the frame.
        let guard = store.read(0);
        drop(store);
        assert!(!path.exists(), "spill file must be deleted on drop");
        assert_eq!(guard.coeffs(64)[5], 5.0, "pinned frame outlives the file");
    }

    #[test]
    fn policy_thresholds_and_env_defaults() {
        assert!(!ColumnPolicy::resident().wants_paged(3, 10_000_000));
        assert!(ColumnPolicy::paged(2).wants_paged(1, 1));
        assert!(!ColumnPolicy::paged(2).wants_paged(0, 100));
        assert!(!ColumnPolicy::paged(2).wants_paged(3, 0));
        let p = ColumnPolicy {
            memory_budget: column_bytes(10_000) * 2,
            pool_pages: 8,
        };
        assert!(!p.wants_paged(2, 10_000));
        assert!(p.wants_paged(3, 10_000));
        assert_eq!(ColumnPolicy::paged(0).pool_pages, MIN_POOL_PAGES);
        assert_eq!(PAGE_BYTES, CHUNK_WIDTH * 8 + MASK_WORDS_PER_CHUNK * 8);
    }
}
