//! Cardinality-based pruning (paper Section 4.1).
//!
//! "Given a global constraint C, our pruning strategy identifies a lower
//! cardinality bound l and an upper cardinality bound u for any package that
//! can satisfy C." The bounds come from the constraint's own constants and
//! the MIN/MAX statistics of the aggregated column over the candidate tuples:
//!
//! * `a ≤ COUNT(*) ≤ b`  →  `l = a`, `u = b`;
//! * `L ≤ SUM(col) ≤ U`  →  `l = ⌈L / MAX(col)⌉`, `u = ⌊U / MIN(col)⌋`
//!   (the upper bound requires `MIN(col) > 0`, the lower bound `MAX(col) > 0`).
//!
//! Bounds derived from different constraints intersect. With `n` candidate
//! tuples and no repetition, pruning shrinks the search space from `2^n` to
//! `Σ_{k=l}^{u} C(n,k)` "without losing any valid solution".
//!
//! Since the chunked column layout, the MIN/MAX of an aggregated expression
//! comes from the term column's per-chunk metadata
//! ([`crate::view::TermColumn::chunk_meta`], combined in chunk order —
//! `O(#chunks)`, no rescans): the range covers exactly the entries that can
//! contribute to the aggregate, so `FILTER`ed SUM constraints get a sound
//! *tighter* lower bound from the filtered value range, and SUM over
//! arbitrary argument expressions (not just plain columns) yields bounds at
//! all. Whole-column candidate statistics remain the fallback.

use paql::{AggCall, AggFunc, CmpOp, GlobalConstraint, GlobalExpr, GlobalFormula};

use crate::view::CandidateView;

/// Inclusive cardinality bounds for any valid package.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CardinalityBounds {
    /// Minimum total cardinality (counting multiplicities).
    pub lower: u64,
    /// Maximum total cardinality, when one could be derived.
    pub upper: Option<u64>,
}

impl CardinalityBounds {
    /// The trivial bounds `[0, ∞)`.
    pub fn unbounded() -> Self {
        CardinalityBounds {
            lower: 0,
            upper: None,
        }
    }

    /// Intersects two bounds (tightest of each side).
    pub fn intersect(&self, other: &CardinalityBounds) -> CardinalityBounds {
        CardinalityBounds {
            lower: self.lower.max(other.lower),
            upper: match (self.upper, other.upper) {
                (None, u) | (u, None) => u,
                (Some(a), Some(b)) => Some(a.min(b)),
            },
        }
    }

    /// True when no cardinality can satisfy the bounds.
    pub fn is_empty(&self) -> bool {
        matches!(self.upper, Some(u) if u < self.lower)
    }

    /// Clamps the upper bound by the maximum reachable cardinality
    /// (`n · max_multiplicity`).
    pub fn clamp_to(&self, max_cardinality: u64) -> CardinalityBounds {
        CardinalityBounds {
            lower: self.lower,
            upper: Some(self.upper.unwrap_or(max_cardinality).min(max_cardinality)),
        }
    }
}

/// Derives cardinality bounds for a candidate view. Bounds are only
/// extracted from constraints that participate in every conjunct of the
/// formula (pruning must never exclude a valid solution, so disjunctive
/// branches contribute nothing).
pub fn derive_bounds(view: &CandidateView) -> CardinalityBounds {
    let mut bounds = CardinalityBounds::unbounded();
    if let Some(formula) = view.formula() {
        for atom in conjunctive_atoms(formula) {
            bounds = bounds.intersect(&bounds_from_constraint(view, atom));
        }
    }
    bounds
}

/// Collects atoms that are conjunctively required (i.e. not under OR or NOT).
fn conjunctive_atoms(formula: &GlobalFormula) -> Vec<&GlobalConstraint> {
    let mut out = Vec::new();
    fn walk<'a>(f: &'a GlobalFormula, out: &mut Vec<&'a GlobalConstraint>) {
        match f {
            GlobalFormula::Atom(c) => out.push(c),
            GlobalFormula::And(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            // Atoms under OR/NOT are not individually binding.
            GlobalFormula::Or(..) | GlobalFormula::Not(_) => {}
        }
    }
    walk(formula, &mut out);
    out
}

/// Bounds implied by a single constraint, following the paper's two rules.
fn bounds_from_constraint(view: &CandidateView, c: &GlobalConstraint) -> CardinalityBounds {
    // Normalize to "aggregate cmp constant".
    let (agg, op, constant) = match (&c.lhs, extract_constant(&c.rhs)) {
        (GlobalExpr::Agg(a), Some(k)) => (a, c.op, k),
        _ => match (extract_constant(&c.lhs), &c.rhs) {
            (Some(k), GlobalExpr::Agg(a)) => (a, flip(c.op), k),
            _ => return CardinalityBounds::unbounded(),
        },
    };
    // Filtered aggregates only constrain the filtered sub-multiset, so they
    // yield a *lower* bound (the package contains at least those members) but
    // no upper bound on total cardinality.
    let filtered = agg.filter.is_some();

    match agg.func {
        AggFunc::Count => {
            let k = constant;
            let (mut lower, mut upper) = (None, None);
            match op {
                CmpOp::Eq => {
                    lower = Some(k.ceil() as u64);
                    upper = Some(k.floor() as u64);
                }
                CmpOp::LtEq => upper = Some(k.floor() as u64),
                CmpOp::Lt => upper = Some((k.ceil() - 1.0).max(0.0) as u64),
                CmpOp::GtEq => lower = Some(k.ceil() as u64),
                CmpOp::Gt => lower = Some(k.floor() as u64 + 1),
                CmpOp::NotEq => {}
            }
            if filtered {
                upper = None;
            }
            CardinalityBounds {
                lower: lower.unwrap_or(0),
                upper,
            }
        }
        AggFunc::Sum => {
            let range = match contribution_range(view, agg) {
                Some(range) => range,
                None => return CardinalityBounds::unbounded(),
            };
            let mut bounds = CardinalityBounds::unbounded();
            // Lower bound: SUM(col) >= L with L > 0 needs at least ⌈L / MAX⌉ tuples.
            let lower_target = match op {
                CmpOp::GtEq | CmpOp::Gt | CmpOp::Eq => Some(constant),
                _ => None,
            };
            if let Some(target) = lower_target {
                if target > 0.0 && range.max > 0.0 {
                    bounds.lower = (target / range.max).ceil() as u64;
                }
                // Infeasibility probe from the chunked partial sums: with no
                // negative contribution, even the full candidate set at
                // maximum multiplicity reaches only r·Σ — a lower target
                // beyond that is unsatisfiable by any package. (Sound for
                // filtered aggregates too: only included entries can ever
                // contribute to the sum.)
                if range.min >= 0.0 && target > range.sum * view.max_multiplicity() as f64 {
                    return CardinalityBounds {
                        lower: 1,
                        upper: Some(0),
                    };
                }
            }
            // Upper bound: SUM(col) <= U with every value ≥ MIN > 0 allows at
            // most ⌊U / MIN⌋ tuples. The cap assumes *every* package member
            // contributes at least MIN, so it is only sound when the
            // aggregate skips nobody: no FILTER (members outside the filter
            // raise cardinality without raising the sum — see above) and no
            // excluded candidates (a NULL argument does the same).
            let upper_target = match op {
                CmpOp::LtEq | CmpOp::Lt | CmpOp::Eq => Some(constant),
                _ => None,
            };
            if let Some(target) = upper_target {
                if range.min > 0.0 && !filtered && range.covers_all {
                    bounds.upper = Some((target / range.min).floor().max(0.0) as u64);
                }
            }
            bounds
        }
        // AVG/MIN/MAX do not constrain cardinality.
        _ => CardinalityBounds::unbounded(),
    }
}

/// What an aggregate's contributing candidates look like: the MIN/MAX/Σ of
/// their per-tuple contributions, and whether *every* candidate contributes
/// (no `FILTER` rejections, no NULL arguments) — the condition the
/// ⌊U / MIN⌋ upper bound needs to be sound.
struct ContributionRange {
    min: f64,
    max: f64,
    sum: f64,
    covers_all: bool,
}

/// The [`ContributionRange`] of an aggregate over the candidates that can
/// actually contribute to it.
///
/// Preferred source: the term column's chunked metadata
/// ([`crate::view::TermColumn::chunk_meta`], per-chunk partials combined in
/// chunk order) — every formula atom has a term column, the range respects
/// the aggregate's own `FILTER`/NULL inclusion mask, and it works for
/// arbitrary argument expressions. Fallback (e.g. when nothing is included
/// and the metadata is empty): whole-column candidate statistics, matching
/// the pre-chunking behaviour.
fn contribution_range(view: &CandidateView, agg: &AggCall) -> Option<ContributionRange> {
    if let Some(idx) = view.term_keys().iter().position(|k| k == agg) {
        let term = &view.terms()[idx];
        if let (Some(min), Some(max)) = (term.included_min(), term.included_max()) {
            return Some(ContributionRange {
                min,
                max,
                sum: term.included_sum(),
                covers_all: term.included_count() == term.len() as u64,
            });
        }
    }
    let col = match &agg.arg {
        Some(minidb::Expr::Column(c)) => c,
        _ => return None,
    };
    let stats = view.stats().column(col)?;
    (!stats.is_empty()).then_some(ContributionRange {
        min: stats.min,
        max: stats.max,
        sum: stats.sum,
        covers_all: stats.nulls == 0,
    })
}

fn extract_constant(e: &GlobalExpr) -> Option<f64> {
    match e {
        GlobalExpr::Literal(x) => Some(*x),
        GlobalExpr::Binary { op, lhs, rhs } => {
            let a = extract_constant(lhs)?;
            let b = extract_constant(rhs)?;
            Some(match op {
                paql::ast::GlobalArithOp::Add => a + b,
                paql::ast::GlobalArithOp::Sub => a - b,
                paql::ast::GlobalArithOp::Mul => a * b,
                paql::ast::GlobalArithOp::Div => {
                    if b == 0.0 {
                        return None;
                    }
                    a / b
                }
            })
        }
        GlobalExpr::Agg(_) => None,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::LtEq => CmpOp::GtEq,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::GtEq => CmpOp::LtEq,
        other => other,
    }
}

/// Search-space accounting for the E1 experiment: how many candidate packages
/// exist before and after cardinality pruning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchSpace {
    /// log2 of the unpruned candidate count `(r+1)^n`.
    pub unpruned_log2: f64,
    /// log2 of the pruned candidate count `Σ_{k=l}^{u} C(n,k)` (only
    /// available for `REPEAT 1`, i.e. set semantics).
    pub pruned_log2: Option<f64>,
}

impl SearchSpace {
    /// The unpruned candidate count (may be `inf` for large `n`).
    pub fn unpruned(&self) -> f64 {
        self.unpruned_log2.exp2()
    }

    /// The pruned candidate count (may be `inf` for large `n`).
    pub fn pruned(&self) -> Option<f64> {
        self.pruned_log2.map(f64::exp2)
    }

    /// Reduction factor `unpruned / pruned` in log2.
    pub fn reduction_log2(&self) -> Option<f64> {
        self.pruned_log2.map(|p| self.unpruned_log2 - p)
    }
}

/// Computes the search-space sizes for a view and bounds.
pub fn search_space(view: &CandidateView, bounds: &CardinalityBounds) -> SearchSpace {
    let n = view.candidate_count() as u64;
    let r = view.max_multiplicity() as f64;
    let unpruned_log2 = n as f64 * (r + 1.0).log2();
    let pruned_log2 = if view.max_multiplicity() == 1 {
        let clamped = bounds.clamp_to(n);
        let lo = clamped.lower.min(n);
        let hi = clamped.upper.unwrap_or(n).min(n);
        if hi < lo {
            Some(f64::NEG_INFINITY)
        } else {
            Some(log2_sum_binomials(n, lo, hi))
        }
    } else {
        None
    };
    SearchSpace {
        unpruned_log2,
        pruned_log2,
    }
}

/// log2 of `Σ_{k=lo}^{hi} C(n,k)` computed in log space to avoid overflow.
pub fn log2_sum_binomials(n: u64, lo: u64, hi: u64) -> f64 {
    let mut total_log2 = f64::NEG_INFINITY;
    for k in lo..=hi {
        let l = log2_binomial(n, k);
        total_log2 = log2_add(total_log2, l);
    }
    total_log2
}

/// log2 of the binomial coefficient `C(n, k)`.
pub fn log2_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    let mut acc = 0.0f64;
    for i in 0..k {
        acc += ((n - i) as f64).log2() - ((i + 1) as f64).log2();
    }
    acc
}

fn log2_add(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a > b { (a, b) } else { (b, a) };
    hi + (1.0 + (lo - hi).exp2()).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PackageSpec;
    use datagen::{uniform_table, Seed};
    use minidb::Table;
    use paql::compile;

    fn spec_for<'a>(table: &'a Table, q: &str) -> PackageSpec<'a> {
        let analyzed = compile(q, table.schema()).unwrap();
        PackageSpec::build(&analyzed, table).unwrap()
    }

    #[test]
    fn count_constraints_bound_cardinality_directly() {
        let t = uniform_table("t", 30, 10.0, 20.0, Seed(1));
        let spec = spec_for(&t, "SELECT PACKAGE(T) AS P FROM t T SUCH THAT COUNT(*) = 3");
        let b = derive_bounds(spec.view());
        assert_eq!(
            b,
            CardinalityBounds {
                lower: 3,
                upper: Some(3)
            }
        );

        let spec = spec_for(
            &t,
            "SELECT PACKAGE(T) AS P FROM t T SUCH THAT COUNT(*) >= 2 AND COUNT(*) < 7",
        );
        let b = derive_bounds(spec.view());
        assert_eq!(
            b,
            CardinalityBounds {
                lower: 2,
                upper: Some(6)
            }
        );
    }

    #[test]
    fn sum_constraints_use_min_max_statistics() {
        // w ∈ [10, 20]: SUM(w) BETWEEN 100 AND 120 → l = ceil(100/20) = 5,
        // u = floor(120/10) = 12.
        let t = uniform_table("t", 50, 10.0, 20.0, Seed(2));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(T) AS P FROM t T SUCH THAT SUM(P.w) BETWEEN 100 AND 120",
        );
        let b = derive_bounds(spec.view());
        assert!(b.lower >= 5, "lower bound {} should be at least 5", b.lower);
        assert!(b.lower <= 6);
        let u = b.upper.unwrap();
        assert!(u <= 12, "upper bound {u} should be at most 12");
        assert!(u >= 10);
    }

    #[test]
    fn null_skipping_members_void_the_upper_bound() {
        // ⌊U / MIN⌋ assumes every member contributes at least MIN; a NULL
        // argument contributes nothing while still raising COUNT(*), so the
        // cap must not be derived. Regression for the chunk-metadata range:
        // {the 60-contributor + two NULL rows} is a valid package that a
        // ⌊100/60⌋ = 1 upper bound would wrongly prune.
        use minidb::{Column, ColumnType, Schema, Tuple, Value};
        let schema = Schema::new(vec![Column::new("a", ColumnType::Float)]).unwrap();
        let mut t = Table::new("t", schema);
        t.insert(Tuple::new(vec![Value::Float(60.0)])).unwrap();
        for _ in 0..3 {
            t.insert(Tuple::new(vec![Value::Null])).unwrap();
        }
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(T) AS P FROM t T SUCH THAT COUNT(*) >= 3 AND SUM(P.a) <= 100",
        );
        let b = derive_bounds(spec.view());
        assert_eq!(b.upper, None, "NULL-skipping members must void the cap");
        assert!(!b.is_empty());
        let pkg = crate::package::Package::from_ids([
            minidb::TupleId(0),
            minidb::TupleId(1),
            minidb::TupleId(2),
        ]);
        assert!(
            spec.is_valid(&pkg).unwrap(),
            "the pruned-away package is valid"
        );
    }

    #[test]
    fn expression_arguments_yield_bounds_from_chunk_metadata() {
        // Pre-chunking, only plain-column SUMs had statistics; the term
        // column covers arbitrary argument expressions. w ∈ [10, 20] so
        // w + w ∈ [20, 40]: SUM(w + w) >= 200 needs ≥ ⌈200/40⌉ = 5 members,
        // and <= 400 allows ≤ ⌊400/20⌋ = 20.
        let t = uniform_table("t", 50, 10.0, 20.0, Seed(11));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(T) AS P FROM t T SUCH THAT SUM(P.w + P.w) BETWEEN 200 AND 400",
        );
        let b = derive_bounds(spec.view());
        assert!(b.lower >= 5, "lower {} should be at least 5", b.lower);
        let u = b.upper.expect("full coverage permits an upper bound");
        assert!(u <= 20, "upper {u} should be at most 20");
    }

    #[test]
    fn unreachable_sum_targets_prove_infeasibility() {
        // 5 tuples with w ≤ 20: no package reaches SUM(w) >= 1000, which the
        // chunked partial sums prove without running any solver.
        let t = uniform_table("t", 5, 10.0, 20.0, Seed(12));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(T) AS P FROM t T SUCH THAT SUM(P.w) >= 1000",
        );
        assert!(derive_bounds(spec.view()).is_empty());
        // A reachable target stays feasible.
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(T) AS P FROM t T SUCH THAT SUM(P.w) >= 30",
        );
        assert!(!derive_bounds(spec.view()).is_empty());
        // REPEAT raises the reachable total: the same 1000 target may need
        // many copies but is no longer provably impossible at REPEAT 50.
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(T) AS P FROM t T REPEAT 50 SUCH THAT SUM(P.w) >= 1000",
        );
        assert!(!derive_bounds(spec.view()).is_empty());
    }

    #[test]
    fn disjunctive_atoms_do_not_tighten_bounds() {
        let t = uniform_table("t", 20, 1.0, 2.0, Seed(3));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(T) AS P FROM t T SUCH THAT COUNT(*) = 3 OR COUNT(*) = 10",
        );
        assert_eq!(derive_bounds(spec.view()), CardinalityBounds::unbounded());
    }

    #[test]
    fn contradictory_bounds_are_detected() {
        let t = uniform_table("t", 20, 1.0, 2.0, Seed(4));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(T) AS P FROM t T SUCH THAT COUNT(*) >= 5 AND COUNT(*) <= 2",
        );
        assert!(derive_bounds(spec.view()).is_empty());
    }

    #[test]
    fn pruning_never_excludes_a_valid_package() {
        // Soundness check on a small instance: enumerate all subsets and
        // verify every feasible one has cardinality within the bounds.
        let t = uniform_table("t", 12, 5.0, 15.0, Seed(5));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(T) AS P FROM t T SUCH THAT SUM(P.w) BETWEEN 30 AND 45 AND COUNT(*) <= 6",
        );
        let bounds = derive_bounds(spec.view()).clamp_to(spec.candidate_count() as u64);
        let n = spec.candidate_count();
        for mask in 0u32..(1 << n) {
            let ids: Vec<_> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| spec.candidates[i])
                .collect();
            let pkg = crate::package::Package::from_ids(ids);
            if spec.is_valid(&pkg).unwrap() {
                let c = pkg.cardinality();
                assert!(
                    c >= bounds.lower,
                    "valid package of cardinality {c} below lower bound {}",
                    bounds.lower
                );
                assert!(
                    c <= bounds.upper.unwrap(),
                    "valid package of cardinality {c} above upper bound"
                );
            }
        }
    }

    #[test]
    fn search_space_matches_closed_forms() {
        let t = uniform_table("t", 20, 1.0, 2.0, Seed(6));
        let spec = spec_for(&t, "SELECT PACKAGE(T) AS P FROM t T SUCH THAT COUNT(*) = 3");
        let bounds = derive_bounds(spec.view());
        let space = search_space(spec.view(), &bounds);
        assert!((space.unpruned_log2 - 20.0).abs() < 1e-9);
        // C(20,3) = 1140.
        assert!((space.pruned().unwrap() - 1140.0).abs() < 1e-6);
        assert!(space.reduction_log2().unwrap() > 9.0);
    }

    #[test]
    fn log2_binomial_matches_exact_values() {
        assert!((log2_binomial(10, 5).exp2() - 252.0).abs() < 1e-9);
        assert!((log2_binomial(20, 0).exp2() - 1.0).abs() < 1e-12);
        assert_eq!(log2_binomial(5, 9), f64::NEG_INFINITY);
        // Large values stay finite in log space.
        assert!(log2_binomial(5000, 2500).is_finite());
    }

    #[test]
    fn repeat_queries_have_no_pruned_closed_form() {
        let t = uniform_table("t", 10, 1.0, 2.0, Seed(7));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(T) AS P FROM t T REPEAT 3 SUCH THAT COUNT(*) = 3",
        );
        let space = search_space(spec.view(), &derive_bounds(spec.view()));
        assert!(space.pruned_log2.is_none());
        assert!((space.unpruned_log2 - 10.0 * 4.0f64.log2()).abs() < 1e-9);
    }
}
