//! Constraint suggestion (paper Section 3.1).
//!
//! "As a user interacts with the template by highlighting elements in the
//! sample package, PackageBuilder suggests constraints. For example, when the
//! user selects a cell within the 'fats' column, the system proposes several
//! constraints that would restrict the amount of fat in each meal, and
//! objectives that would minimize the total amount of fat."
//!
//! [`suggest`] maps a highlight (cell, column, row or a set of values) to a
//! ranked list of candidate base constraints, global constraints and
//! objectives, each carrying both its PaQL fragment and the natural-language
//! description the interface shows.

use minidb::{ColumnType, Table, TupleId};

use crate::error::PbError;
use crate::PbResult;

/// What the user highlighted in the package template.
#[derive(Debug, Clone, PartialEq)]
pub enum Highlight {
    /// One cell: a tuple and a column.
    Cell {
        /// The highlighted tuple.
        tuple: TupleId,
        /// The highlighted column.
        column: String,
    },
    /// A whole column.
    Column {
        /// The highlighted column.
        column: String,
    },
    /// A whole row (tuple).
    Row {
        /// The highlighted tuple.
        tuple: TupleId,
    },
    /// Several cells in the same column.
    Values {
        /// The column the cells belong to.
        column: String,
        /// The highlighted tuples.
        tuples: Vec<TupleId>,
    },
}

/// What kind of clause a suggestion contributes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuggestionKind {
    /// A per-tuple predicate for the `WHERE` clause.
    BaseConstraint,
    /// A per-package predicate for the `SUCH THAT` clause.
    GlobalConstraint,
    /// A `MAXIMIZE`/`MINIMIZE` clause.
    Objective,
}

/// One suggested constraint or objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// Which clause the suggestion belongs to.
    pub kind: SuggestionKind,
    /// The PaQL fragment to splice into the query.
    pub paql: String,
    /// The natural-language description shown in the interface.
    pub description: String,
}

/// Produces constraint and objective suggestions for a highlight, in the
/// order the interface should present them.
pub fn suggest(
    table: &Table,
    package_alias: &str,
    highlight: &Highlight,
) -> PbResult<Vec<Suggestion>> {
    match highlight {
        Highlight::Cell { tuple, column } => suggest_for_cell(table, package_alias, *tuple, column),
        Highlight::Column { column } => suggest_for_column(table, package_alias, column),
        Highlight::Row { tuple } => suggest_for_row(table, *tuple),
        Highlight::Values { column, tuples } => {
            suggest_for_values(table, package_alias, column, tuples)
        }
    }
}

fn column_type(table: &Table, column: &str) -> PbResult<ColumnType> {
    table
        .schema()
        .column(column)
        .map(|c| c.ty)
        .ok_or_else(|| PbError::Db(minidb::DbError::UnknownColumn(column.to_string())))
}

fn suggest_for_cell(
    table: &Table,
    package_alias: &str,
    tuple: TupleId,
    column: &str,
) -> PbResult<Vec<Suggestion>> {
    let ty = column_type(table, column)?;
    let row = table.require(tuple)?;
    let value = row.get_named(table.schema(), column)?;
    let mut out = Vec::new();
    if ty.is_numeric() {
        let v = value.expect_f64("highlighted cell")?;
        out.push(Suggestion {
            kind: SuggestionKind::BaseConstraint,
            paql: format!("{column} <= {v}"),
            description: format!("every tuple in the package has {column} at most {v}"),
        });
        out.push(Suggestion {
            kind: SuggestionKind::BaseConstraint,
            paql: format!("{column} >= {v}"),
            description: format!("every tuple in the package has {column} at least {v}"),
        });
        out.push(Suggestion {
            kind: SuggestionKind::GlobalConstraint,
            paql: format!("SUM({package_alias}.{column}) <= {}", v * 3.0),
            description: format!("the total {column} of the package is at most {}", v * 3.0),
        });
        out.push(Suggestion {
            kind: SuggestionKind::Objective,
            paql: format!("MINIMIZE SUM({package_alias}.{column})"),
            description: format!("prefer packages with the smallest total {column}"),
        });
    } else {
        out.push(Suggestion {
            kind: SuggestionKind::BaseConstraint,
            paql: format!("{column} = '{value}'"),
            description: format!("every tuple in the package has {column} equal to '{value}'"),
        });
        out.push(Suggestion {
            kind: SuggestionKind::GlobalConstraint,
            paql: format!("COUNT(*) FILTER (WHERE {column} = '{value}') >= 1"),
            description: format!(
                "the package contains at least one tuple with {column} = '{value}'"
            ),
        });
    }
    Ok(out)
}

fn suggest_for_column(
    table: &Table,
    package_alias: &str,
    column: &str,
) -> PbResult<Vec<Suggestion>> {
    let ty = column_type(table, column)?;
    let mut out = Vec::new();
    if ty.is_numeric() {
        let stats = minidb::stats::TableStats::of_table(table);
        let s = stats.require(column)?;
        let mid = (s.min + s.max) / 2.0;
        out.push(Suggestion {
            kind: SuggestionKind::Objective,
            paql: format!("MAXIMIZE SUM({package_alias}.{column})"),
            description: format!("prefer packages with the largest total {column}"),
        });
        out.push(Suggestion {
            kind: SuggestionKind::Objective,
            paql: format!("MINIMIZE SUM({package_alias}.{column})"),
            description: format!("prefer packages with the smallest total {column}"),
        });
        out.push(Suggestion {
            kind: SuggestionKind::GlobalConstraint,
            paql: format!(
                "SUM({package_alias}.{column}) BETWEEN {} AND {}",
                s.mean.round(),
                (3.0 * s.mean).round()
            ),
            description: format!(
                "the total {column} of the package is between {} and {}",
                s.mean.round(),
                (3.0 * s.mean).round()
            ),
        });
        out.push(Suggestion {
            kind: SuggestionKind::BaseConstraint,
            paql: format!("{column} <= {mid}"),
            description: format!("every tuple has {column} at most {mid}"),
        });
    } else {
        out.push(Suggestion {
            kind: SuggestionKind::GlobalConstraint,
            paql: "COUNT(*) >= 1".to_string(),
            description: "the package is not empty".to_string(),
        });
    }
    Ok(out)
}

fn suggest_for_row(table: &Table, tuple: TupleId) -> PbResult<Vec<Suggestion>> {
    let row = table.require(tuple)?;
    let mut out = Vec::new();
    // Text attributes of the highlighted row become "more like this" filters.
    for (idx, col) in table.schema().columns().iter().enumerate() {
        if col.ty == ColumnType::Text {
            let value = &row.values()[idx];
            if value.is_null() {
                continue;
            }
            out.push(Suggestion {
                kind: SuggestionKind::BaseConstraint,
                paql: format!("{} = '{}'", col.name, value),
                description: format!(
                    "only tuples with {} = '{}' (like the highlighted one)",
                    col.name, value
                ),
            });
        }
    }
    Ok(out)
}

fn suggest_for_values(
    table: &Table,
    package_alias: &str,
    column: &str,
    tuples: &[TupleId],
) -> PbResult<Vec<Suggestion>> {
    let ty = column_type(table, column)?;
    if !ty.is_numeric() || tuples.is_empty() {
        return suggest_for_column(table, package_alias, column);
    }
    let mut values = Vec::with_capacity(tuples.len());
    for t in tuples {
        values.push(table.value_f64(*t, column)?);
    }
    // pb-lint: allow(no-nan-unsafe-ordering) — suggestion text only: the
    // range feeds a human-readable constraint hint, never solver ordering.
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    // pb-lint: allow(no-nan-unsafe-ordering) — suggestion text only: the
    // range feeds a human-readable constraint hint, never solver ordering.
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = values.iter().sum();
    Ok(vec![
        Suggestion {
            kind: SuggestionKind::BaseConstraint,
            paql: format!("{column} BETWEEN {min} AND {max}"),
            description: format!(
                "every tuple has {column} between {min} and {max} (the highlighted range)"
            ),
        },
        Suggestion {
            kind: SuggestionKind::GlobalConstraint,
            paql: format!(
                "SUM({package_alias}.{column}) BETWEEN {} AND {}",
                (0.9 * sum).round(),
                (1.1 * sum).round()
            ),
            description: format!(
                "the total {column} stays within 10% of the highlighted total ({sum})"
            ),
        },
        Suggestion {
            kind: SuggestionKind::Objective,
            paql: format!("MAXIMIZE SUM({package_alias}.{column})"),
            description: format!("prefer packages with the largest total {column}"),
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{recipes, Seed};
    use paql::parser::{parse_base_expr, parse_global_formula};

    #[test]
    fn cell_suggestions_for_numeric_columns_parse_as_paql() {
        let t = recipes(50, Seed(1));
        let suggestions = suggest(
            &t,
            "P",
            &Highlight::Cell {
                tuple: TupleId(3),
                column: "fat".into(),
            },
        )
        .unwrap();
        assert!(suggestions.len() >= 3);
        assert!(suggestions
            .iter()
            .any(|s| s.kind == SuggestionKind::Objective));
        for s in &suggestions {
            match s.kind {
                SuggestionKind::BaseConstraint => {
                    parse_base_expr(&s.paql).expect("base suggestion must parse");
                }
                SuggestionKind::GlobalConstraint => {
                    parse_global_formula(&s.paql).expect("global suggestion must parse");
                }
                SuggestionKind::Objective => {
                    assert!(s.paql.starts_with("MAXIMIZE") || s.paql.starts_with("MINIMIZE"))
                }
            }
        }
    }

    #[test]
    fn cell_suggestions_for_text_columns_use_equality() {
        let t = recipes(50, Seed(2));
        let suggestions = suggest(
            &t,
            "P",
            &Highlight::Cell {
                tuple: TupleId(0),
                column: "gluten".into(),
            },
        )
        .unwrap();
        assert!(suggestions.iter().any(|s| s.paql.contains("gluten = '")));
        assert!(suggestions.iter().any(|s| s.paql.contains("FILTER")));
    }

    #[test]
    fn column_suggestions_include_both_objective_directions() {
        let t = recipes(50, Seed(3));
        let suggestions = suggest(
            &t,
            "P",
            &Highlight::Column {
                column: "protein".into(),
            },
        )
        .unwrap();
        let objectives: Vec<_> = suggestions
            .iter()
            .filter(|s| s.kind == SuggestionKind::Objective)
            .collect();
        assert_eq!(objectives.len(), 2);
    }

    #[test]
    fn row_suggestions_cover_text_attributes() {
        let t = recipes(50, Seed(4));
        let suggestions = suggest(&t, "P", &Highlight::Row { tuple: TupleId(5) }).unwrap();
        assert!(suggestions
            .iter()
            .all(|s| s.kind == SuggestionKind::BaseConstraint));
        assert!(suggestions.iter().any(|s| s.paql.starts_with("course = ")));
    }

    #[test]
    fn values_suggestions_use_the_highlighted_range() {
        let t = recipes(50, Seed(5));
        let suggestions = suggest(
            &t,
            "P",
            &Highlight::Values {
                column: "calories".into(),
                tuples: vec![TupleId(1), TupleId(2), TupleId(3)],
            },
        )
        .unwrap();
        assert!(suggestions[0].paql.contains("BETWEEN"));
        parse_base_expr(&suggestions[0].paql).unwrap();
    }

    #[test]
    fn unknown_columns_error() {
        let t = recipes(10, Seed(6));
        assert!(suggest(
            &t,
            "P",
            &Highlight::Column {
                column: "unknown".into()
            }
        )
        .is_err());
    }
}
