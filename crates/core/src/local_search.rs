//! Heuristic local search (paper Section 4.2).
//!
//! "Given a starting package P0 (which can be constructed, for example, at
//! random), PackageBuilder identifies all possible k-tuple replacements that
//! can lead to a valid package, by using a single SQL query." The search
//! below implements exactly that neighbourhood: a move removes `k` members
//! and inserts `k` candidate tuples, and the candidate generation for `k = 1`
//! is also exposed as a literal relational query (selection over a Cartesian
//! product) in [`single_replacement_query`], which experiment E3 uses to
//! reproduce the paper's scaling argument.
//!
//! Moves are accepted when they lexicographically improve
//! `(constraint violation, objective)`, so the search first repairs
//! feasibility and then climbs the objective. As the paper notes, the method
//! is a heuristic: "there is no guarantee that all valid solutions will be
//! found".
//!
//! Since the columnar refactor the search walks a [`ViewState`]: each
//! candidate move is scored through [`ViewState::score_with`], a delta
//! evaluation over the view's precomputed term columns (`O(#terms)` per
//! neighbour), instead of cloning the package and re-aggregating every
//! member — the exact change that makes the neighbourhood scan cheap enough
//! to matter at scale.

use minidb::ops::{cross_join, filter, scan, Relation};
use minidb::{BinaryOp, Expr, Table, TupleId};
use paql::ObjectiveDirection;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::budget::Budget;
use crate::error::PbError;
use crate::greedy::{random_cardinality, starting_package, StartHeuristic};
use crate::package::Package;
use crate::par::ParExec;
use crate::result::{EvalStats, StrategyUsed};
use crate::view::{CandidateView, ViewState};
use crate::PbResult;

/// Options for the local-search strategy.
#[derive(Debug, Clone)]
pub struct LocalSearchOptions {
    /// Number of tuples replaced per move (the paper's `k`). `k = 1` is the
    /// efficient regime; larger values grow the neighbourhood combinatorially.
    pub k: usize,
    /// Maximum accepted moves per restart.
    pub max_moves: usize,
    /// Number of restarts (the first uses the greedy start, the rest random).
    pub restarts: usize,
    /// Random seed.
    pub seed: u64,
    /// How many distinct feasible packages to keep (best first).
    pub keep: usize,
    /// Cooperative wall-clock budget; on expiry the search stops scanning
    /// and returns the best packages recorded so far.
    pub budget: Budget,
    /// Chunk fan-out executor for the neighbourhood scans (see
    /// [`crate::par`]); the search's accepted-move trajectory is
    /// bit-identical at every thread count.
    pub par: ParExec,
}

impl Default for LocalSearchOptions {
    fn default() -> Self {
        LocalSearchOptions {
            k: 1,
            max_moves: 10_000,
            restarts: 8,
            seed: 42,
            keep: 1,
            budget: Budget::unlimited(),
            par: ParExec::sequential(),
        }
    }
}

/// Outcome of the local-search strategy.
pub struct LocalSearchOutcome {
    /// Feasible packages found (best first), with objective values.
    pub packages: Vec<(Package, Option<f64>)>,
    /// Accepted moves across all restarts.
    pub moves: u64,
    /// Neighbour evaluations across all restarts.
    pub evaluations: u64,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

/// Runs the local search over a candidate view.
pub fn local_search(
    view: &CandidateView,
    opts: &LocalSearchOptions,
) -> PbResult<LocalSearchOutcome> {
    // pb-lint: allow(time-containment) — stats clock only: stamps the
    // outcome's elapsed time; deadline decisions all go through the budget.
    let start = std::time::Instant::now();
    let budget = &opts.budget;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut best: Vec<(Package, Option<f64>)> = Vec::new();
    let mut moves = 0u64;
    let mut evaluations = 0u64;

    let direction = view.direction();

    for restart in 0..opts.restarts.max(1) {
        if view.candidate_count() == 0 || budget.expired() {
            break;
        }
        let start_package = if restart == 0 {
            starting_package(view, StartHeuristic::Greedy, &mut rng)
        } else {
            let target = random_cardinality(view, &mut rng);
            let mut p = starting_package(view, StartHeuristic::Random, &mut rng);
            // Resize the random start towards the sampled cardinality.
            resize_to(view, &mut p, target, &mut rng);
            p
        };
        let mut state = view.project(&start_package).ok_or_else(|| {
            PbError::Internal(
                "local-search starting package contains tuples outside the candidate set".into(),
            )
        })?;
        let mut current_score = state.score();
        record(&state, current_score, &mut best, direction, opts.keep);

        for _ in 0..opts.max_moves {
            if budget.expired() {
                break;
            }
            let (neighbour, neighbour_score, evals) =
                best_neighbour(&state, current_score, opts.k, direction, budget, opts.par);
            evaluations += evals;
            match neighbour {
                Some(changes) if lex_better(neighbour_score, current_score, direction) => {
                    for &(idx, delta) in &changes {
                        state.apply(idx, delta);
                    }
                    current_score = state.score();
                    moves += 1;
                    record(&state, current_score, &mut best, direction, opts.keep);
                }
                _ => break, // local optimum
            }
        }
    }

    Ok(LocalSearchOutcome {
        packages: best,
        moves,
        evaluations,
        stats: EvalStats {
            strategy: StrategyUsed::LocalSearch,
            candidates: view.candidate_count(),
            nodes: moves,
            iterations: evaluations,
            elapsed: start.elapsed(),
        },
    })
}

fn lex_better(a: (f64, Option<f64>), b: (f64, Option<f64>), direction: ObjectiveDirection) -> bool {
    if a.0 + 1e-9 < b.0 {
        return true;
    }
    if a.0 > b.0 + 1e-9 {
        return false;
    }
    Package::better_objective(direction, a.1, b.1)
}

fn record(
    state: &ViewState<'_>,
    s: (f64, Option<f64>),
    best: &mut Vec<(Package, Option<f64>)>,
    direction: ObjectiveDirection,
    keep: usize,
) {
    if s.0 > 0.0 || !state.is_feasible() {
        return;
    }
    let p = state.to_package();
    if best.iter().any(|(q, _)| q == &p) {
        return;
    }
    best.push((p, s.1));
    best.sort_by(|a, b| {
        let ord = match (a.1, b.1) {
            (Some(x), Some(y)) => x.total_cmp(&y),
            (Some(_), None) => std::cmp::Ordering::Greater,
            (None, Some(_)) => std::cmp::Ordering::Less,
            (None, None) => std::cmp::Ordering::Equal,
        };
        match direction {
            ObjectiveDirection::Maximize => ord.reverse(),
            ObjectiveDirection::Minimize => ord,
        }
    });
    best.truncate(keep.max(1));
}

/// A candidate move: multiplicity deltas over candidate indices.
type Move = Vec<(usize, i64)>;

/// True when applying `changes` keeps every touched multiplicity within
/// `[0, max_multiplicity]`.
fn move_is_legal(state: &ViewState<'_>, changes: &[(usize, i64)]) -> bool {
    let max = state.view().max_multiplicity() as i64;
    // Small move vectors: net effect per index computed by scanning.
    for (pos, &(idx, _)) in changes.iter().enumerate() {
        if changes[..pos].iter().any(|&(i, _)| i == idx) {
            continue; // already accounted below
        }
        let net: i64 = changes
            .iter()
            .filter(|&&(i, _)| i == idx)
            .map(|&(_, d)| d)
            .sum();
        let new = state.multiplicity(idx) as i64 + net;
        if new < 0 || new > max {
            return false;
        }
    }
    true
}

/// One chunk's scan result: `None` when the chunk observed budget expiry and
/// skipped; otherwise the neighbour evaluations performed plus the chunk's
/// best move strictly better than the incoming score bar.
type ChunkScan = Option<(u64, Option<((f64, Option<f64>), Move)>)>;

/// Finds the best move in the k-replacement neighbourhood (plus add/remove
/// moves when the cardinality is allowed to change). Every neighbour is
/// scored through the view's delta evaluation — no package clones, no
/// re-aggregation — and the scans fan out over `par` in fixed-width chunks
/// of the (member × candidate) move space. Per-chunk local bests merge in
/// chunk order with strict improvement, which reproduces the sequential
/// scan's "earliest occurrence of the optimum wins" tie-breaking exactly,
/// so the selected move is bit-identical at every thread count. The budget
/// is checked per chunk (not per element); an expired scan returns the best
/// move seen so far. Returns the best move, its score and how many
/// neighbours were evaluated.
fn best_neighbour(
    state: &ViewState<'_>,
    current_score: (f64, Option<f64>),
    k: usize,
    direction: ObjectiveDirection,
    budget: &Budget,
    par: ParExec,
) -> (Option<Move>, (f64, Option<f64>), u64) {
    let view = state.view();
    let n = view.candidate_count();
    let mut best: Option<Move> = None;
    let mut best_score = current_score;
    let mut evaluations = 0u64;

    let members: Vec<usize> = state.member_indices().collect();

    // Folds one scan's chunk results (in chunk order) into the running best;
    // returns true when some chunk observed expiry, i.e. the caller should
    // return its best-so-far immediately.
    let merge = |results: Vec<ChunkScan>,
                 best: &mut Option<Move>,
                 best_score: &mut (f64, Option<f64>),
                 evaluations: &mut u64|
     -> bool {
        for chunk in results {
            let Some((evals, found)) = chunk else {
                return true;
            };
            *evaluations += evals;
            if let Some((score, mv)) = found {
                if lex_better(score, *best_score, direction) {
                    *best_score = score;
                    *best = Some(mv);
                }
            }
        }
        false
    };

    // Single-tuple replacements (k = 1), always explored: the flattened
    // (outgoing member × incoming candidate) pair space, pair
    // `p = (members[p / n], p % n)`, walked chunk by chunk without a
    // division per pair.
    if !members.is_empty() && n > 0 {
        let results = par.run_chunks(members.len() * n, |_, range| -> ChunkScan {
            if budget.expired() {
                return None;
            }
            let bar = best_score;
            let mut evals = 0u64;
            let mut found: Option<((f64, Option<f64>), Move)> = None;
            let mut out_pos = range.start / n;
            let mut inn = range.start % n;
            for _ in range {
                let out = members[out_pos];
                if inn != out {
                    let changes = [(out, -1), (inn, 1)];
                    if move_is_legal(state, &changes) {
                        evals += 1;
                        let s = state.score_with(&changes);
                        if lex_better(s, found.as_ref().map_or(bar, |(fs, _)| *fs), direction) {
                            found = Some((s, changes.to_vec()));
                        }
                    }
                }
                inn += 1;
                if inn == n {
                    inn = 0;
                    out_pos += 1;
                }
            }
            Some((evals, found))
        });
        if merge(results, &mut best, &mut best_score, &mut evaluations) {
            return (best, best_score, evaluations);
        }
    }

    // Pairwise replacements (k = 2): the paper's 2k-way join. The
    // neighbourhood is |P|²·n² in the worst case, so it is only explored
    // when requested and when no single replacement improves (and stays
    // sequential: the quadratic blow-up, not the scan, is its cost).
    if k >= 2 && best.is_none() && members.len() >= 2 {
        for (ai, &out_a) in members.iter().enumerate() {
            for &out_b in members.iter().skip(ai + 1) {
                for in_a in 0..n {
                    if budget.expired() {
                        return (best, best_score, evaluations);
                    }
                    for in_b in in_a..n {
                        let changes = [(out_a, -1), (out_b, -1), (in_a, 1), (in_b, 1)];
                        if !move_is_legal(state, &changes) {
                            continue;
                        }
                        evaluations += 1;
                        let s = state.score_with(&changes);
                        if lex_better(s, best_score, direction) {
                            best_score = s;
                            best = Some(changes.to_vec());
                        }
                    }
                }
            }
        }
    }

    // Cardinality-changing moves: add one candidate / drop one member. These
    // help when the starting cardinality guess was off. The add scan is
    // chunked like the swaps; the drop scan is |P| evaluations and stays
    // inline.
    let results = par.run_chunks(n, |_, range| -> ChunkScan {
        if budget.expired() {
            return None;
        }
        let bar = best_score;
        let mut evals = 0u64;
        let mut found: Option<((f64, Option<f64>), Move)> = None;
        for inn in range {
            let changes = [(inn, 1)];
            if !move_is_legal(state, &changes) {
                continue;
            }
            evals += 1;
            let s = state.score_with(&changes);
            if lex_better(s, found.as_ref().map_or(bar, |(fs, _)| *fs), direction) {
                found = Some((s, changes.to_vec()));
            }
        }
        Some((evals, found))
    });
    if merge(results, &mut best, &mut best_score, &mut evaluations) {
        return (best, best_score, evaluations);
    }
    for &out in &members {
        let changes = [(out, -1)];
        evaluations += 1;
        let s = state.score_with(&changes);
        if lex_better(s, best_score, direction) {
            best_score = s;
            best = Some(changes.to_vec());
        }
    }

    (best, best_score, evaluations)
}

fn resize_to(view: &CandidateView, p: &mut Package, target: u64, rng: &mut StdRng) {
    use rand::seq::IndexedRandom;
    while p.cardinality() > target {
        let ids = p.tuple_ids();
        if let Some(&victim) = ids.choose(rng) {
            p.remove(victim, 1);
        } else {
            break;
        }
    }
    while p.cardinality() < target {
        if let Some(&extra) = view.candidates().choose(rng) {
            if p.multiplicity(extra) < view.max_multiplicity() {
                p.add(extra, 1);
            } else if view
                .candidates()
                .iter()
                .all(|&c| p.multiplicity(c) >= view.max_multiplicity())
            {
                break;
            }
        } else {
            break;
        }
    }
}

/// The paper's single-tuple replacement query, built literally as a relational
/// plan: a selection over the Cartesian product of the current package (as a
/// relation `P0`) and the candidate relation `R`.
///
/// For a budget constraint `SUM(col) <= budget` and a package whose current
/// total is `current_total`, the returned relation contains one row per
/// `(outgoing member, incoming candidate)` pair such that swapping them lands
/// the total within budget — the literal translation of
///
/// ```sql
/// SELECT P0.id, R.id FROM P0, R
/// WHERE current_total − P0.col + R.col <= budget
/// ```
pub fn single_replacement_query(
    table: &Table,
    package: &Package,
    candidates: &[TupleId],
    column: &str,
    current_total: f64,
    budget: f64,
) -> PbResult<Relation> {
    // Materialize the package as relation P0 (with its source ids projected in).
    let ids: Vec<TupleId> = package.tuple_ids();
    let p0_table = table.subset("P0", &ids)?;
    let p0 = scan(&p0_table);
    let candidate_table = table.subset("R", candidates)?;
    let r = scan(&candidate_table);
    let joined = cross_join(&p0, &r, "R");
    // current_total - P0.col + R.col <= budget
    let qualified = format!("R.{column}");
    let rhs_col = if joined.schema.index_of(&qualified).is_some() {
        qualified
    } else {
        column.to_string()
    };
    let predicate = Expr::binary(
        BinaryOp::LtEq,
        Expr::binary(
            BinaryOp::Add,
            Expr::binary(BinaryOp::Sub, Expr::lit(current_total), Expr::col(column)),
            Expr::col(rhs_col),
        ),
        Expr::lit(budget),
    );
    Ok(filter(&joined, &predicate)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PackageSpec;
    use datagen::{recipes, Seed};
    use lp_solver::SolverConfig;
    use paql::compile;

    fn spec_for<'a>(table: &'a Table, q: &str) -> PackageSpec<'a> {
        let analyzed = compile(q, table.schema()).unwrap();
        PackageSpec::build(&analyzed, table).unwrap()
    }

    const MEAL_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
        SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE SUM(P.protein)";

    #[test]
    fn finds_a_feasible_meal_plan() {
        let t = recipes(300, Seed(1));
        let spec = spec_for(&t, MEAL_QUERY);
        let out = local_search(spec.view(), &LocalSearchOptions::default()).unwrap();
        assert!(
            !out.packages.is_empty(),
            "local search found no feasible package"
        );
        let (p, obj) = &out.packages[0];
        assert!(spec.is_valid(p).unwrap());
        assert_eq!(p.cardinality(), 3);
        assert!(obj.unwrap() > 0.0);
        assert!(out.moves > 0 || out.evaluations > 0);
    }

    #[test]
    fn quality_is_close_to_the_ilp_optimum() {
        let t = recipes(200, Seed(2));
        let spec = spec_for(&t, MEAL_QUERY);
        let exact = crate::ilp::solve_ilp(
            spec.view(),
            &SolverConfig::default(),
            1,
            &Budget::unlimited(),
        )
        .unwrap();
        let heuristic = local_search(
            spec.view(),
            &LocalSearchOptions {
                restarts: 6,
                ..Default::default()
            },
        )
        .unwrap();
        let opt = exact.packages[0].1.unwrap();
        let found = heuristic.packages[0].1.unwrap();
        assert!(found <= opt + 1e-6, "heuristic cannot beat the optimum");
        assert!(
            found >= 0.75 * opt,
            "local search quality too low: {found} vs optimal {opt}"
        );
    }

    #[test]
    fn handles_minimization_objectives() {
        let t = recipes(150, Seed(3));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R \
             SUCH THAT COUNT(*) = 3 AND SUM(P.protein) >= 60 MINIMIZE SUM(P.price)",
        );
        let out = local_search(spec.view(), &LocalSearchOptions::default()).unwrap();
        assert!(!out.packages.is_empty());
        let (p, _) = &out.packages[0];
        assert!(spec.is_valid(p).unwrap());
    }

    #[test]
    fn infeasible_specs_return_empty() {
        let t = recipes(50, Seed(4));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 2 AND SUM(P.calories) >= 1000000",
        );
        let out = local_search(
            spec.view(),
            &LocalSearchOptions {
                restarts: 2,
                max_moves: 200,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.packages.is_empty());
    }

    #[test]
    fn keep_returns_multiple_distinct_packages() {
        let t = recipes(120, Seed(5));
        let spec = spec_for(&t, MEAL_QUERY);
        let out = local_search(
            spec.view(),
            &LocalSearchOptions {
                keep: 3,
                restarts: 10,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            out.packages.len() >= 2,
            "expected multiple packages, got {}",
            out.packages.len()
        );
        for (p, _) in &out.packages {
            assert!(spec.is_valid(p).unwrap());
        }
        for i in 0..out.packages.len() {
            for j in i + 1..out.packages.len() {
                assert_ne!(out.packages[i].0, out.packages[j].0);
            }
        }
    }

    #[test]
    fn disjunctive_formulas_are_satisfiable_by_local_search() {
        // OR formulas have no linear form, so local search is the strategy of
        // record for them (paper Section 5); it must find an easily
        // satisfiable disjunct.
        let t = recipes(150, Seed(9));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R \
             SUCH THAT COUNT(*) = 3 AND \
                       (SUM(P.calories) <= 2500 OR COUNT(*) FILTER (WHERE R.gluten = 'free') = 3) \
             MAXIMIZE SUM(P.protein)",
        );
        let out = local_search(spec.view(), &LocalSearchOptions::default()).unwrap();
        assert!(
            !out.packages.is_empty(),
            "local search missed a trivially satisfiable OR"
        );
        let (p, _) = &out.packages[0];
        assert!(spec.is_valid(p).unwrap());
    }

    #[test]
    fn two_replacement_neighbourhood_escapes_single_swap_optima() {
        let t = recipes(60, Seed(6));
        let spec = spec_for(&t, MEAL_QUERY);
        let out = local_search(
            spec.view(),
            &LocalSearchOptions {
                k: 2,
                restarts: 2,
                max_moves: 200,
                ..Default::default()
            },
        )
        .unwrap();
        // With k = 2 the search should be at least as good as with k = 1 on the
        // same seed and restart budget.
        let out1 = local_search(
            spec.view(),
            &LocalSearchOptions {
                k: 1,
                restarts: 2,
                max_moves: 200,
                ..Default::default()
            },
        )
        .unwrap();
        let best2 = out
            .packages
            .first()
            .and_then(|(_, o)| *o)
            .unwrap_or(f64::NEG_INFINITY);
        let best1 = out1
            .packages
            .first()
            .and_then(|(_, o)| *o)
            .unwrap_or(f64::NEG_INFINITY);
        assert!(best2 >= best1 - 1e-9);
    }

    #[test]
    fn delta_evaluation_agrees_with_full_scoring() {
        // Every accepted package must score identically under a fresh
        // projection — the delta path cannot drift from ground truth.
        let t = recipes(90, Seed(8));
        let spec = spec_for(&t, MEAL_QUERY);
        let out = local_search(
            spec.view(),
            &LocalSearchOptions {
                keep: 3,
                restarts: 4,
                ..Default::default()
            },
        )
        .unwrap();
        for (p, obj) in &out.packages {
            let fresh = spec.view().project(p).unwrap();
            assert_eq!(fresh.objective_value(), *obj);
            assert_eq!(fresh.violation(), 0.0);
        }
    }

    #[test]
    fn replacement_query_matches_the_paper_example() {
        // Reconstruct the Section 4.2 example: a package with 3,000 total
        // calories, a 2,500-calorie budget, single-tuple replacements.
        let t = recipes(80, Seed(7));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT SUM(P.calories) <= 2500",
        );
        // Build a package of the 4 highest-calorie recipes (overshoots budget).
        let mut by_cal: Vec<TupleId> = spec.candidates.clone();
        by_cal.sort_by(|a, b| {
            t.value_f64(*b, "calories")
                .unwrap()
                .total_cmp(&t.value_f64(*a, "calories").unwrap())
        });
        let package = Package::from_ids(by_cal.iter().copied().take(4));
        let current_total: f64 = package
            .members()
            .map(|(id, m)| t.value_f64(id, "calories").unwrap() * m as f64)
            .sum();
        assert!(current_total > 2500.0);

        let rel = single_replacement_query(
            &t,
            &package,
            &spec.candidates,
            "calories",
            current_total,
            2500.0,
        )
        .unwrap();
        // Every returned pair must indeed repair the budget.
        for row in &rel.rows {
            let out_cal = row.get_f64(&rel.schema, "calories").unwrap();
            let in_cal = row.get_f64(&rel.schema, "R.calories").unwrap();
            assert!(current_total - out_cal + in_cal <= 2500.0 + 1e-9);
        }
        // The join size is |P0| × |R| before selection; the result is smaller.
        assert!(rel.len() <= 4 * spec.candidates.len());
    }
}
