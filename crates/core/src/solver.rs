//! The unified solver interface.
//!
//! Every evaluation strategy — ILP translation, pruned/exhaustive
//! enumeration, greedy construction and local search — implements one trait:
//!
//! ```text
//! fn solve(&self, view: &CandidateView, opts: &SolveOptions) -> PbResult<SolveOutcome>
//! ```
//!
//! Solvers consume only the columnar [`CandidateView`] (never the base
//! table), which makes them interchangeable, individually testable, and the
//! seam scaling work plugs into — the parallel
//! [`crate::portfolio::PortfolioSolver`] races any of them concurrently over
//! one borrowed view, and a sharded or cached solve is equally `impl Solver`
//! away. Every solver honours the cooperative [`Budget`] in its options:
//! deadline expiry or cancellation means "return your best result so far,
//! flagged non-optimal", never an error. The engine's planner
//! ([`crate::engine::PackageEngine`]) selects and chains them: pruning
//! bounds first, then the solver, then validation.

use lp_solver::SolverConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::budget::Budget;
use crate::config::{EngineConfig, Strategy};
use crate::enumerate::{enumerate, EnumerationOptions};
use crate::error::PbError;
use crate::greedy::{starting_package, StartHeuristic};
use crate::ilp::solve_ilp_par;
use crate::local_search::{local_search, LocalSearchOptions};
use crate::package::Package;
use crate::par::ParExec;
use crate::result::{EvalStats, StrategyUsed};
use crate::view::CandidateView;
use crate::PbResult;

/// Solver-facing slice of the engine configuration.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// How many packages to return (best first).
    pub num_packages: usize,
    /// Limits for the ILP substrate.
    pub solver: SolverConfig,
    /// Node budget for the enumeration strategies.
    pub max_enumeration_nodes: u64,
    /// Local search: neighbourhood size `k`.
    pub replacement_k: usize,
    /// Local search: maximum accepted moves per restart.
    pub max_local_moves: usize,
    /// Local search: number of restarts.
    pub local_restarts: usize,
    /// Sketch→refine: maximum partition size (bounds each refinement
    /// sub-ILP).
    pub sketch_partition_size: usize,
    /// Progressive shading: maximum children per partition-tree node, which
    /// bounds every intermediate sketch ILP of the descent.
    pub shade_fanout: usize,
    /// Progressive shading: leaf partition size (bounds the leaf sub-ILPs,
    /// like `sketch_partition_size` does on the flat path).
    pub shade_leaf_size: usize,
    /// Candidate count at which the portfolio's sketch worker upgrades to
    /// progressive shading (see [`EngineConfig::shade_threshold`]).
    pub shade_threshold: usize,
    /// Seed for randomized components.
    pub seed: u64,
    /// Wall-clock budget and cancellation flag for this evaluation. The
    /// budget is *armed* when the options are built; the engine re-arms it
    /// per plan run ([`SolveOptions::rearmed`]), and clones share the stop
    /// flag so a portfolio race can cancel all of its workers at once.
    pub budget: Budget,
    /// Chunk fan-out executor for this solve's data-parallel scans
    /// (materialization, partitioning, repair, neighbourhood). Sized from
    /// [`EngineConfig::num_threads`]; the portfolio hands each racing worker
    /// a [`ParExec::split`] share so the race and the inner loops draw on
    /// one thread budget. Results are bit-identical at every thread count.
    pub par: ParExec,
}

impl SolveOptions {
    /// Projects the solver-relevant fields out of an engine configuration.
    /// The budget is armed now, from `config.time_budget`.
    pub fn from_config(config: &EngineConfig) -> Self {
        SolveOptions {
            num_packages: config.num_packages,
            solver: config.solver.clone(),
            max_enumeration_nodes: config.max_enumeration_nodes,
            replacement_k: config.replacement_k,
            max_local_moves: config.max_local_moves,
            local_restarts: config.local_restarts,
            sketch_partition_size: config.sketch_partition_size,
            shade_fanout: config.shade_fanout,
            shade_leaf_size: config.shade_leaf_size,
            shade_threshold: config.shade_threshold,
            seed: config.seed,
            budget: Budget::starting_now(config.time_budget),
            par: ParExec::new(config.num_threads),
        }
    }

    /// These options with the budget re-armed: same limit, deadline measured
    /// from now, fresh stop flag.
    pub fn rearmed(&self) -> Self {
        SolveOptions {
            budget: self.budget.rearmed(),
            ..self.clone()
        }
    }
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions::from_config(&EngineConfig::default())
    }
}

/// What a solver produced for one view.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Valid packages, best first, with objective values.
    pub packages: Vec<(Package, Option<f64>)>,
    /// Whether the first package is provably optimal (exact strategies that
    /// ran to completion).
    pub optimal: bool,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

impl SolveOutcome {
    /// An empty outcome for a strategy (used when pruning proves
    /// infeasibility before any solver runs).
    pub fn empty(strategy: StrategyUsed, candidates: usize, optimal: bool) -> Self {
        let mut stats = EvalStats::empty(strategy);
        stats.candidates = candidates;
        SolveOutcome {
            packages: Vec::new(),
            optimal,
            stats,
        }
    }
}

/// A package-query evaluation strategy over a columnar candidate view.
///
/// Solvers are `Send + Sync` so the engine can race them concurrently over
/// one borrowed view ([`crate::portfolio::PortfolioSolver`]); every
/// implementation is stateless, all per-solve state lives in `opts`.
///
/// Deadline contract: when `opts.budget` expires mid-solve, return the best
/// result found so far with `optimal: false` — never an error, never an
/// unbounded overrun.
pub trait Solver: Send + Sync {
    /// Which strategy this solver implements (reported in [`EvalStats`]).
    fn strategy(&self) -> StrategyUsed;

    /// Evaluates the view, returning up to `opts.num_packages` packages.
    fn solve(&self, view: &CandidateView, opts: &SolveOptions) -> PbResult<SolveOutcome>;
}

/// ILP translation + branch and bound (paper Section 7).
#[derive(Debug, Clone, Copy, Default)]
pub struct IlpSolver;

impl Solver for IlpSolver {
    fn strategy(&self) -> StrategyUsed {
        StrategyUsed::Ilp
    }

    fn solve(&self, view: &CandidateView, opts: &SolveOptions) -> PbResult<SolveOutcome> {
        let out = solve_ilp_par(
            view,
            &opts.solver,
            opts.num_packages,
            &opts.budget,
            opts.par,
        )?;
        Ok(SolveOutcome {
            packages: out.packages,
            optimal: out.complete,
            stats: out.stats,
        })
    }
}

/// Generate-and-validate enumeration, with or without the Section 4.1
/// pruning rules.
#[derive(Debug, Clone, Copy)]
pub struct EnumerationSolver {
    /// Apply cardinality and partial-sum pruning.
    pub prune: bool,
}

impl Solver for EnumerationSolver {
    fn strategy(&self) -> StrategyUsed {
        if self.prune {
            StrategyUsed::PrunedEnumeration
        } else {
            StrategyUsed::Exhaustive
        }
    }

    fn solve(&self, view: &CandidateView, opts: &SolveOptions) -> PbResult<SolveOutcome> {
        let out = enumerate(
            view,
            EnumerationOptions {
                prune: self.prune,
                max_nodes: opts.max_enumeration_nodes,
                keep: opts.num_packages,
                budget: opts.budget.clone(),
            },
        )?;
        let complete = out.complete;
        Ok(SolveOutcome {
            packages: out.packages,
            optimal: complete,
            stats: out.stats,
        })
    }
}

/// Greedy construction + k-replacement local search (paper Section 4.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalSearchSolver;

impl Solver for LocalSearchSolver {
    fn strategy(&self) -> StrategyUsed {
        StrategyUsed::LocalSearch
    }

    fn solve(&self, view: &CandidateView, opts: &SolveOptions) -> PbResult<SolveOutcome> {
        let out = local_search(
            view,
            &LocalSearchOptions {
                k: opts.replacement_k,
                max_moves: opts.max_local_moves,
                restarts: opts.local_restarts,
                seed: opts.seed,
                keep: opts.num_packages,
                budget: opts.budget.clone(),
                par: opts.par,
            },
        )?;
        Ok(SolveOutcome {
            packages: out.packages,
            optimal: false,
            stats: out.stats,
        })
    }
}

/// Pure greedy construction: density-ordered packing followed by a
/// feasibility-repair pass of add/drop moves (no replacement neighbourhood).
/// The cheapest strategy — and the anytime baseline the paper's interface
/// layer wants when a user asks for *a* package right now.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedySolver;

impl Solver for GreedySolver {
    fn strategy(&self) -> StrategyUsed {
        StrategyUsed::Greedy
    }

    fn solve(&self, view: &CandidateView, opts: &SolveOptions) -> PbResult<SolveOutcome> {
        // pb-lint: allow(time-containment) — stats clock only: stamps
        // solve_time_ms on the outcome; deadline decisions all go through
        // the budget.
        let start = std::time::Instant::now();
        let budget = &opts.budget;
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut evaluations = 0u64;
        let mut moves = 0u64;
        let mut packages = Vec::new();

        // An already-expired budget skips even the starting package: the
        // density scan reads every candidate's terms (through the buffer
        // pool when the view is paged), which expiry must not pay for.
        if view.candidate_count() > 0 && !budget.expired() {
            let greedy = starting_package(view, StartHeuristic::Greedy, &mut rng);
            let mut state = view.project(&greedy).ok_or_else(|| {
                PbError::Internal(
                    "greedy starting package contains tuples outside the candidate set".into(),
                )
            })?;
            // Shared repair pass (also the sketch→refine fallback): on budget
            // expiry the best-so-far state is returned (optimal is false
            // regardless).
            let (evals, repair_moves) =
                crate::greedy::repair_to_feasibility(&mut state, budget, opts.par);
            evaluations += evals;
            moves += repair_moves;
            if state.is_feasible() {
                let objective = state.objective_value();
                packages.push((state.to_package(), objective));
            }
        }

        Ok(SolveOutcome {
            packages,
            optimal: false,
            stats: EvalStats {
                strategy: StrategyUsed::Greedy,
                candidates: view.candidate_count(),
                nodes: moves,
                iterations: evaluations,
                elapsed: start.elapsed(),
            },
        })
    }
}

/// Maps an explicit strategy to its solver. `Auto` is resolved by the
/// planner before this point and is rejected here. `Portfolio` resolves to
/// the default worker trio; the planner builds configured portfolios itself.
pub fn solver_for(strategy: Strategy) -> PbResult<Box<dyn Solver>> {
    Ok(match strategy {
        Strategy::Ilp => Box::new(IlpSolver),
        Strategy::PrunedEnumeration => Box::new(EnumerationSolver { prune: true }),
        Strategy::Exhaustive => Box::new(EnumerationSolver { prune: false }),
        Strategy::LocalSearch => Box::new(LocalSearchSolver),
        Strategy::Greedy => Box::new(GreedySolver),
        Strategy::SketchRefine => Box::new(crate::sketch_refine::SketchRefineSolver),
        Strategy::ProgressiveShading => Box::new(crate::shading::ProgressiveShadingSolver),
        Strategy::Portfolio => Box::new(crate::portfolio::PortfolioSolver::default()),
        Strategy::Auto => {
            return Err(crate::error::PbError::Internal(
                "Strategy::Auto must be resolved by the planner before solver dispatch".into(),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PackageSpec;
    use datagen::{recipes, Seed};
    use minidb::Table;
    use paql::compile;

    fn spec_for<'a>(table: &'a Table, q: &str) -> PackageSpec<'a> {
        let analyzed = compile(q, table.schema()).unwrap();
        PackageSpec::build(&analyzed, table).unwrap()
    }

    const SMALL_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R \
        SUCH THAT COUNT(*) = 2 AND SUM(P.calories) <= 1200 MAXIMIZE SUM(P.protein)";

    #[test]
    fn all_solvers_implement_the_trait_uniformly() {
        let t = recipes(20, Seed(1));
        let spec = spec_for(&t, SMALL_QUERY);
        let opts = SolveOptions::default();
        let solvers: Vec<Box<dyn Solver>> = vec![
            Box::new(IlpSolver),
            Box::new(EnumerationSolver { prune: true }),
            Box::new(EnumerationSolver { prune: false }),
            Box::new(LocalSearchSolver),
            Box::new(GreedySolver),
        ];
        let mut objectives = Vec::new();
        for solver in &solvers {
            let out = solver.solve(spec.view(), &opts).unwrap();
            assert_eq!(out.stats.strategy, solver.strategy());
            assert_eq!(out.stats.candidates, spec.candidate_count());
            for (p, obj) in &out.packages {
                assert!(
                    spec.is_valid(p).unwrap(),
                    "{} returned invalid package",
                    solver.strategy()
                );
                assert_eq!(*obj, spec.objective_value(p).unwrap());
            }
            objectives.push(out.packages.first().and_then(|(_, o)| *o));
        }
        // The exact solvers agree; heuristics never beat them.
        let exact = objectives[0].unwrap();
        assert!((objectives[1].unwrap() - exact).abs() < 1e-6);
        assert!((objectives[2].unwrap() - exact).abs() < 1e-6);
        for h in objectives[3..].iter().flatten() {
            assert!(*h <= exact + 1e-6);
        }
    }

    #[test]
    fn greedy_solver_repairs_towards_feasibility() {
        let t = recipes(150, Seed(2));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R \
             SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
             MAXIMIZE SUM(P.protein)",
        );
        let out = GreedySolver
            .solve(spec.view(), &SolveOptions::default())
            .unwrap();
        // The greedy start (3 highest-protein recipes) usually violates the
        // calorie window; the repair pass must fix it here.
        assert_eq!(out.packages.len(), 1, "greedy failed to repair feasibility");
        let (p, _) = &out.packages[0];
        assert!(spec.is_valid(p).unwrap());
        assert!(!out.optimal);
    }

    #[test]
    fn solver_for_rejects_auto() {
        assert!(solver_for(Strategy::Auto).is_err());
        for s in [
            Strategy::Ilp,
            Strategy::PrunedEnumeration,
            Strategy::Exhaustive,
            Strategy::LocalSearch,
            Strategy::Greedy,
            Strategy::SketchRefine,
            Strategy::ProgressiveShading,
            Strategy::Portfolio,
        ] {
            assert!(solver_for(s).is_ok());
        }
    }
}
