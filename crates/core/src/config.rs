//! Engine configuration.

use std::time::Duration;

use lp_solver::SolverConfig;

/// Which evaluation strategy to use for a package query.
///
/// The paper's engine "heuristically combines all of them to efficiently
/// derive packages" (Section 5); [`Strategy::Auto`] implements that policy,
/// while the explicit variants exist for experiments and for the ablation
/// benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Let the engine pick: enumeration for tiny candidate sets; for
    /// linearizable conjunctive queries the ILP, switching to sketch→refine
    /// at [`EngineConfig::sketch_threshold`] candidates (single-package
    /// requests); for the rest a solver portfolio at
    /// [`EngineConfig::portfolio_threshold`] and plain local search below.
    Auto,
    /// Translate to an integer linear program and call the solver.
    Ilp,
    /// Enumerate candidate packages with cardinality and partial-sum pruning.
    PrunedEnumeration,
    /// Enumerate all candidate packages without pruning (baseline).
    Exhaustive,
    /// Greedy construction plus k-tuple-replacement local search.
    LocalSearch,
    /// Pure greedy construction with a feasibility-repair pass (cheapest,
    /// anytime baseline; never picked by `Auto`).
    Greedy,
    /// Race several solvers concurrently over one candidate view
    /// ([`crate::portfolio::PortfolioSolver`]): every worker runs under the
    /// shared [`crate::budget::Budget`], the first provably-optimal result
    /// cancels the rest, and at the deadline the best result found wins.
    /// The worker set comes from [`EngineConfig::portfolio_workers`].
    /// `Auto` picks this for large queries it cannot hand to the ILP.
    Portfolio,
    /// Partition → sketch → refine
    /// ([`crate::sketch_refine::SketchRefineSolver`]): partition the
    /// candidates along the quality-sensitive columns, solve a tiny ILP over
    /// one representative per partition, then refine the picked partitions
    /// with small per-partition sub-ILPs. Near-optimal at a fraction of the
    /// monolithic ILP's latency; `Auto` prefers it over plain ILP for
    /// linearizable queries with at least
    /// [`EngineConfig::sketch_threshold`] candidates.
    SketchRefine,
}

/// Tunable engine parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Strategy selection.
    pub strategy: Strategy,
    /// How many packages to return (best first). Values above 1 use no-good
    /// cuts (ILP, binary multiplicities), top-k tracking (enumeration) or
    /// restarts (local search).
    pub num_packages: usize,
    /// Solver limits for the ILP strategy.
    pub solver: SolverConfig,
    /// Maximum number of search nodes the enumeration strategies may expand.
    pub max_enumeration_nodes: u64,
    /// Candidate-set size at or below which `Auto` prefers pruned enumeration
    /// over the solver (enumeration is exact and has no solver overhead for
    /// tiny inputs).
    pub enumeration_threshold: usize,
    /// Local search: neighbourhood size (how many tuples a single move may
    /// replace). The paper notes k-replacements need a 2k-way join and
    /// "quickly become intractable"; 1 or 2 are the practical values.
    pub replacement_k: usize,
    /// Local search: maximum number of moves per restart.
    pub max_local_moves: usize,
    /// Local search: number of random restarts.
    pub local_restarts: usize,
    /// Seed for the randomized components (starting packages, restarts).
    pub seed: u64,
    /// Overall wall-clock budget for one query evaluation (None = unlimited).
    /// Armed into a [`crate::budget::Budget`] per plan run; every solver
    /// honours it cooperatively and returns its best-so-far result with
    /// `optimal: false` on expiry.
    pub time_budget: Option<Duration>,
    /// Candidate-set size at or above which `Auto` races a solver portfolio
    /// instead of falling back to plain local search, for queries the ILP
    /// cannot take (non-conjunctive formulas, non-linear aggregates).
    pub portfolio_threshold: usize,
    /// Which solvers [`Strategy::Portfolio`] races. Workers that cannot
    /// evaluate the query (e.g. the ILP on a non-linear formula) drop out of
    /// the race without failing it. `Auto` and `Portfolio` are not valid
    /// workers.
    pub portfolio_workers: Vec<Strategy>,
    /// Maximum partition size for [`Strategy::SketchRefine`]: the largest
    /// sub-ILP the refinement phase will solve, and (inversely) the size of
    /// the sketch ILP — median halving yields partitions holding between
    /// half this bound and the bound itself, i.e. roughly `n / size` to
    /// `2n / size` representatives.
    pub sketch_partition_size: usize,
    /// Candidate-set size at or above which `Auto` prefers sketch→refine
    /// over the monolithic ILP for linearizable queries. Below it the exact
    /// ILP is fast enough that approximation buys nothing.
    pub sketch_threshold: usize,
    /// Whether the engine routes view construction through its
    /// [`crate::cache::ViewCache`], reusing materialized columns, candidate
    /// statistics and sketch→refine partitionings across repeated queries on
    /// the same relation and base predicate. Safe to leave on: cache keys
    /// embed the relation's [`minidb::Table::fingerprint`], so a mutated
    /// relation can never serve a stale view, and cache hits are
    /// bit-identical to cold builds.
    pub cache: bool,
    /// How many `(relation, base predicate)` banks the engine's view cache
    /// retains (least-recently-used eviction). 0 disables storage entirely;
    /// the capacity is read when the engine is constructed.
    pub view_cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            strategy: Strategy::Auto,
            num_packages: 1,
            solver: SolverConfig::default(),
            max_enumeration_nodes: 20_000_000,
            enumeration_threshold: 22,
            replacement_k: 1,
            max_local_moves: 10_000,
            local_restarts: 8,
            seed: 42,
            time_budget: None,
            portfolio_threshold: 256,
            portfolio_workers: vec![
                Strategy::Ilp,
                Strategy::SketchRefine,
                Strategy::LocalSearch,
                Strategy::Greedy,
            ],
            sketch_partition_size: 64,
            sketch_threshold: 4096,
            cache: true,
            view_cache_capacity: crate::cache::DEFAULT_VIEW_CACHE_CAPACITY,
        }
    }
}

impl EngineConfig {
    /// Configuration forcing a specific strategy.
    pub fn with_strategy(strategy: Strategy) -> Self {
        EngineConfig {
            strategy,
            ..Default::default()
        }
    }

    /// Sets the number of packages to return.
    pub fn packages(mut self, n: usize) -> Self {
        self.num_packages = n.max(1);
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-query wall-clock budget (also forwarded to the solver).
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self.solver.time_limit = Some(budget);
        self
    }

    /// Enables or disables the cross-query view cache.
    pub fn with_cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the view cache capacity (entries; 0 disables storage). Applied
    /// when an engine is constructed from this configuration.
    pub fn with_view_cache_capacity(mut self, capacity: usize) -> Self {
        self.view_cache_capacity = capacity;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = EngineConfig::default();
        assert_eq!(c.strategy, Strategy::Auto);
        assert_eq!(c.num_packages, 1);
        assert!(c.enumeration_threshold >= 10);
    }

    #[test]
    fn builders_update_fields() {
        let c = EngineConfig::with_strategy(Strategy::Ilp)
            .packages(5)
            .with_seed(7)
            .with_time_budget(Duration::from_millis(100));
        assert_eq!(c.strategy, Strategy::Ilp);
        assert_eq!(c.num_packages, 5);
        assert_eq!(c.seed, 7);
        assert_eq!(c.solver.time_limit, Some(Duration::from_millis(100)));
        assert_eq!(EngineConfig::default().packages(0).num_packages, 1);
    }
}
