//! Engine configuration.

use std::time::Duration;

use lp_solver::SolverConfig;

/// Which evaluation strategy to use for a package query.
///
/// The paper's engine "heuristically combines all of them to efficiently
/// derive packages" (Section 5); [`Strategy::Auto`] implements that policy,
/// while the explicit variants exist for experiments and for the ablation
/// benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Let the engine pick: enumeration for tiny candidate sets; for
    /// linearizable conjunctive queries the ILP, switching at
    /// [`EngineConfig::sketch_threshold`] candidates (single-package
    /// requests) to a portfolio race whose exact worker is node-capped at
    /// [`EngineConfig::auto_exact_node_cap`] — the race returns the exact
    /// answer wherever the proof is cheap and a heuristic answer where it
    /// is not, instead of betting the whole query on either; for the rest
    /// a solver portfolio at [`EngineConfig::portfolio_threshold`] and
    /// plain local search below.
    Auto,
    /// Translate to an integer linear program and call the solver.
    Ilp,
    /// Enumerate candidate packages with cardinality and partial-sum pruning.
    PrunedEnumeration,
    /// Enumerate all candidate packages without pruning (baseline).
    Exhaustive,
    /// Greedy construction plus k-tuple-replacement local search.
    LocalSearch,
    /// Pure greedy construction with a feasibility-repair pass (cheapest,
    /// anytime baseline; never picked by `Auto`).
    Greedy,
    /// Race several solvers concurrently over one candidate view
    /// ([`crate::portfolio::PortfolioSolver`]): every worker runs under the
    /// shared [`crate::budget::Budget`], the first provably-optimal result
    /// cancels the rest, and at the deadline the best result found wins.
    /// The worker set comes from [`EngineConfig::portfolio_workers`].
    /// `Auto` picks this for large queries it cannot hand to the ILP.
    Portfolio,
    /// Partition → sketch → refine
    /// ([`crate::sketch_refine::SketchRefineSolver`]): partition the
    /// candidates along the quality-sensitive columns, solve a tiny ILP over
    /// one representative per partition, then refine the picked partitions
    /// with small per-partition sub-ILPs. Near-optimal at a fraction of the
    /// monolithic ILP's latency; `Auto` races it as a portfolio worker for
    /// linearizable queries with at least
    /// [`EngineConfig::sketch_threshold`] candidates.
    SketchRefine,
    /// Hierarchical sketch→refine over a partition *tree*
    /// ([`crate::shading::ProgressiveShadingSolver`], after Progressive
    /// Shading, Mai et al. 2023): sketch the coarsest layer's
    /// representatives, expand only the selected nodes into their children,
    /// re-sketch down the layers, and refine the shaded leaf partitions with
    /// the flat solver's warm-hinted sub-ILPs. Every ILP stays small
    /// regardless of the candidate count, so this is the
    /// 10^6–10^8-candidate route; `Auto` switches to it at
    /// [`EngineConfig::shade_threshold`] candidates, where the flat sketch
    /// itself becomes the bottleneck.
    ProgressiveShading,
}

/// Tunable engine parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Strategy selection.
    pub strategy: Strategy,
    /// How many packages to return (best first). Values above 1 use no-good
    /// cuts (ILP, binary multiplicities), top-k tracking (enumeration) or
    /// restarts (local search).
    pub num_packages: usize,
    /// Solver limits for the ILP strategy.
    pub solver: SolverConfig,
    /// Maximum number of search nodes the enumeration strategies may expand.
    pub max_enumeration_nodes: u64,
    /// Candidate-set size at or below which `Auto` prefers pruned enumeration
    /// over the solver (enumeration is exact and has no solver overhead for
    /// tiny inputs).
    pub enumeration_threshold: usize,
    /// Local search: neighbourhood size (how many tuples a single move may
    /// replace). The paper notes k-replacements need a 2k-way join and
    /// "quickly become intractable"; 1 or 2 are the practical values.
    pub replacement_k: usize,
    /// Local search: maximum number of moves per restart.
    pub max_local_moves: usize,
    /// Local search: number of random restarts.
    pub local_restarts: usize,
    /// Seed for the randomized components (starting packages, restarts).
    pub seed: u64,
    /// Overall wall-clock budget for one query evaluation (None = unlimited).
    /// Armed into a [`crate::budget::Budget`] per plan run; every solver
    /// honours it cooperatively and returns its best-so-far result with
    /// `optimal: false` on expiry.
    pub time_budget: Option<Duration>,
    /// Candidate-set size at or above which `Auto` races a solver portfolio
    /// instead of falling back to plain local search, for queries the ILP
    /// cannot take (non-conjunctive formulas, non-linear aggregates).
    pub portfolio_threshold: usize,
    /// Which solvers [`Strategy::Portfolio`] races. Workers that cannot
    /// evaluate the query (e.g. the ILP on a non-linear formula) drop out of
    /// the race without failing it. `Auto` and `Portfolio` are not valid
    /// workers.
    pub portfolio_workers: Vec<Strategy>,
    /// Maximum partition size for [`Strategy::SketchRefine`]: the largest
    /// sub-ILP the refinement phase will solve, and (inversely) the size of
    /// the sketch ILP — median halving yields partitions holding between
    /// half this bound and the bound itself, i.e. roughly `n / size` to
    /// `2n / size` representatives.
    pub sketch_partition_size: usize,
    /// Candidate-set size at or above which `Auto` stops trusting the
    /// monolithic ILP's latency for linearizable single-package queries and
    /// races a [`Strategy::Portfolio`] instead, with the race's exact worker
    /// node-capped at [`EngineConfig::auto_exact_node_cap`]. Below it the
    /// exact ILP is fast enough to keep the job outright.
    ///
    /// No single size threshold separates cheap ILPs from expensive ones —
    /// exact cost tracks *branching hardness*, not candidate count (a
    /// 10^5-row shipment query can prove optimality in milliseconds while a
    /// 2 000-row correlated-knapsack portfolio takes seconds) — so above
    /// this size `Auto` hedges with the race rather than guessing.
    pub sketch_threshold: usize,
    /// Candidate-set size at or above which `Auto` (and the portfolio's
    /// sketch worker) routes linearizable single-package queries to
    /// [`Strategy::ProgressiveShading`] instead of the flat sketch→refine
    /// race. Below it the flat path's single sketch ILP is still small
    /// enough to win outright; above it that sketch — one integer variable
    /// per partition, ~`n / sketch_partition_size` of them — becomes the
    /// dominant cost and the hierarchical descent takes over. Defaults to
    /// 500 000 candidates (~8 000 flat sketch variables at the default
    /// partition size).
    pub shade_threshold: usize,
    /// Maximum children per [`crate::partition::PartitionTree`] node (and
    /// maximum node count of the coarsest layer): bounds every intermediate
    /// sketch ILP progressive shading solves during its descent.
    pub shade_fanout: usize,
    /// Leaf partition size for [`Strategy::ProgressiveShading`] — the same
    /// bound [`EngineConfig::sketch_partition_size`] puts on the flat path's
    /// refinement sub-ILPs. Kept equal to it by default so the two solvers
    /// share leaf partitionings and sub-ILP memos through the view cache.
    pub shade_leaf_size: usize,
    /// Branch-and-bound node cap for the **exact worker inside an
    /// `Auto`-chosen portfolio race** (the large-`n` linearizable route).
    /// A branching-hostile instance truncates to its best incumbent after
    /// this many nodes — deterministically, the cap is a pure function of
    /// the search tree — instead of holding the whole race open; the
    /// portfolio then returns the best result across the capped exact
    /// worker and the heuristic workers. Easy instances still prove
    /// optimality under the cap and cancel the race early. The cap only
    /// applies when the *policy* picked the race: a caller forcing
    /// [`Strategy::Portfolio`] (or [`Strategy::Ilp`]) keeps
    /// [`EngineConfig::solver`]'s own limits.
    pub auto_exact_node_cap: usize,
    /// Whether the engine routes view construction through its
    /// [`crate::cache::ViewCache`], reusing materialized columns, candidate
    /// statistics and sketch→refine partitionings across repeated queries on
    /// the same relation and base predicate. Safe to leave on: cache keys
    /// embed the relation's [`minidb::Table::fingerprint`], so a mutated
    /// relation can never serve a stale view, and cache hits are
    /// bit-identical to cold builds.
    pub cache: bool,
    /// How many `(relation, base predicate)` banks the engine's view cache
    /// retains (least-recently-used eviction). 0 disables storage entirely;
    /// the capacity is read when the engine is constructed.
    pub view_cache_capacity: usize,
    /// The resident budget, in bytes, for one view build's freshly
    /// materialized term columns. At or below the budget the columns stay
    /// dense in memory; above it they spill to a temp file and page back in
    /// through a fixed-size buffer pool (see [`crate::column_store`]), so a
    /// view over 10^7+ rows evaluates in bounded memory. `0` forces every
    /// build out-of-core. Storage mode never changes results — solutions are
    /// bit-identical either way. Defaults to
    /// [`crate::column_store::default_column_memory_budget`] (the
    /// `PB_COLUMN_BUDGET` environment variable, else 1 GiB).
    pub column_memory_budget: usize,
    /// Buffer-pool capacity, in pages (one page = one 4096-row column chunk
    /// plus its inclusion mask, ~32 KiB), for columns that spill under
    /// [`EngineConfig::column_memory_budget`]. Clamped to at least
    /// [`crate::column_store::MIN_POOL_PAGES`]. Defaults to
    /// [`crate::column_store::default_pool_pages`] (the `PB_POOL_PAGES`
    /// environment variable, else 1024 pages ≈ 32 MiB).
    pub pool_pages: usize,
    /// The engine's **shared thread budget**: how many threads one query
    /// evaluation may use in total, across both portfolio racing *and*
    /// intra-solver chunk fan-out (view materialization, partitioning,
    /// repair and neighbourhood scans — see [`crate::par`]). The portfolio
    /// divides this budget among its racing workers
    /// ([`crate::par::ParExec::split`]), so workers and their inner loops
    /// never oversubscribe the host together.
    ///
    /// Defaults to [`default_num_threads`]:
    /// `std::thread::available_parallelism()`, overridable with the
    /// `PB_THREADS` environment variable. Results are bit-identical at
    /// every value — this knob trades wall-clock for cores, never answers.
    pub num_threads: usize,
}

/// The engine's default thread budget: the `PB_THREADS` environment
/// variable when set to a positive integer, otherwise
/// `std::thread::available_parallelism()` (1 when even that is unknown).
///
/// `PB_THREADS=1` forces fully sequential evaluation — the CI matrix runs
/// the whole test suite that way to pin the guarantee that thread count
/// never changes results.
pub fn default_num_threads() -> usize {
    match std::env::var("PB_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(t) if t >= 1 => t,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// The default portfolio worker set for a host with `num_threads` threads.
///
/// Racing four workers on a one-core host buys little beyond
/// deadline-bounding while quadrupling the work the core time-shares, so the
/// default race is sized from the thread budget. The floor is the trio that
/// covers every regime — [`Strategy::Ilp`] (provable optimality, and the
/// early-cancel that ends an unlimited-budget race), [`Strategy::SketchRefine`]
/// (near-optimal answers inside tight deadlines, where the ILP cannot
/// finish) and [`Strategy::Greedy`] (the anytime worker that can evaluate
/// *every* query, so the race never comes home empty-handed) —
/// [`Strategy::LocalSearch`], the most CPU-hungry heuristic and redundant
/// with greedy as a feasibility floor, only joins at four threads and up.
/// [`Strategy::Greedy`] is always the closer.
pub fn default_portfolio_workers(num_threads: usize) -> Vec<Strategy> {
    let specialists = [Strategy::Ilp, Strategy::SketchRefine, Strategy::LocalSearch];
    let slots = num_threads.clamp(3, specialists.len() + 1);
    let mut workers: Vec<Strategy> = specialists.into_iter().take(slots - 1).collect();
    workers.push(Strategy::Greedy);
    workers
}

impl Default for EngineConfig {
    fn default() -> Self {
        let num_threads = default_num_threads();
        EngineConfig {
            strategy: Strategy::Auto,
            num_packages: 1,
            solver: SolverConfig::default(),
            max_enumeration_nodes: 20_000_000,
            enumeration_threshold: 22,
            replacement_k: 1,
            max_local_moves: 10_000,
            local_restarts: 8,
            seed: 42,
            time_budget: None,
            portfolio_threshold: 256,
            portfolio_workers: default_portfolio_workers(num_threads),
            sketch_partition_size: 64,
            sketch_threshold: 4096,
            shade_threshold: 500_000,
            shade_fanout: 64,
            shade_leaf_size: 64,
            auto_exact_node_cap: 20_000,
            cache: true,
            view_cache_capacity: crate::cache::DEFAULT_VIEW_CACHE_CAPACITY,
            column_memory_budget: crate::column_store::default_column_memory_budget(),
            pool_pages: crate::column_store::default_pool_pages(),
            num_threads,
        }
    }
}

impl EngineConfig {
    /// Configuration forcing a specific strategy.
    pub fn with_strategy(strategy: Strategy) -> Self {
        EngineConfig {
            strategy,
            ..Default::default()
        }
    }

    /// Sets the number of packages to return.
    pub fn packages(mut self, n: usize) -> Self {
        self.num_packages = n.max(1);
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-query wall-clock budget (also forwarded to the solver).
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self.solver.time_limit = Some(budget);
        self
    }

    /// Enables or disables the cross-query view cache.
    pub fn with_cache(mut self, cache: bool) -> Self {
        self.cache = cache;
        self
    }

    /// Sets the view cache capacity (entries; 0 disables storage). Applied
    /// when an engine is constructed from this configuration.
    pub fn with_view_cache_capacity(mut self, capacity: usize) -> Self {
        self.view_cache_capacity = capacity;
        self
    }

    /// Sets the resident byte budget for freshly materialized view columns
    /// (0 forces every view build out-of-core).
    pub fn with_column_memory_budget(mut self, bytes: usize) -> Self {
        self.column_memory_budget = bytes;
        self
    }

    /// Sets the buffer-pool capacity, in pages, for spilled columns
    /// (clamped to [`crate::column_store::MIN_POOL_PAGES`] when used).
    pub fn with_pool_pages(mut self, pages: usize) -> Self {
        self.pool_pages = pages;
        self
    }

    /// Sets the shared thread budget (clamped to at least 1) and resizes the
    /// default portfolio worker set to match. A worker set the caller
    /// already customized is left alone.
    pub fn with_num_threads(mut self, threads: usize) -> Self {
        let threads = threads.max(1);
        if self.portfolio_workers == default_portfolio_workers(self.num_threads) {
            self.portfolio_workers = default_portfolio_workers(threads);
        }
        self.num_threads = threads;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let c = EngineConfig::default();
        assert_eq!(c.strategy, Strategy::Auto);
        assert_eq!(c.num_packages, 1);
        assert!(c.enumeration_threshold >= 10);
        assert!(c.num_threads >= 1);
        assert_eq!(
            c.portfolio_workers,
            default_portfolio_workers(c.num_threads)
        );
    }

    #[test]
    fn portfolio_sizing_tracks_the_thread_budget() {
        // Always at least exact + greedy; greedy always closes the set.
        for t in 0usize..10 {
            let workers = default_portfolio_workers(t);
            assert!(workers.len() >= 3, "t={t}");
            assert!(workers.len() <= 4, "t={t}");
            assert_eq!(*workers.last().unwrap(), Strategy::Greedy, "t={t}");
            assert_eq!(workers[0], Strategy::Ilp, "t={t}");
        }
        assert_eq!(
            default_portfolio_workers(1),
            vec![Strategy::Ilp, Strategy::SketchRefine, Strategy::Greedy]
        );
        assert_eq!(
            default_portfolio_workers(3),
            vec![Strategy::Ilp, Strategy::SketchRefine, Strategy::Greedy]
        );
        assert_eq!(
            default_portfolio_workers(8),
            vec![
                Strategy::Ilp,
                Strategy::SketchRefine,
                Strategy::LocalSearch,
                Strategy::Greedy
            ]
        );
    }

    #[test]
    fn with_num_threads_resizes_only_the_default_worker_set() {
        let c = EngineConfig::default().with_num_threads(1);
        assert_eq!(c.num_threads, 1);
        assert_eq!(c.portfolio_workers, default_portfolio_workers(1));
        // A customized worker set survives a thread-budget change.
        let custom = EngineConfig {
            portfolio_workers: vec![Strategy::LocalSearch],
            ..EngineConfig::default()
        }
        .with_num_threads(8);
        assert_eq!(custom.portfolio_workers, vec![Strategy::LocalSearch]);
        assert_eq!(EngineConfig::default().with_num_threads(0).num_threads, 1);
    }

    #[test]
    fn builders_update_fields() {
        let c = EngineConfig::with_strategy(Strategy::Ilp)
            .packages(5)
            .with_seed(7)
            .with_time_budget(Duration::from_millis(100));
        assert_eq!(c.strategy, Strategy::Ilp);
        assert_eq!(c.num_packages, 5);
        assert_eq!(c.seed, 7);
        assert_eq!(c.solver.time_limit, Some(Duration::from_millis(100)));
        assert_eq!(EngineConfig::default().packages(0).num_packages, 1);
    }
}
