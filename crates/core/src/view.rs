//! The columnar evaluation core: [`CandidateView`].
//!
//! Every evaluation strategy used to re-interpret PaQL aggregate expressions
//! per tuple via `minidb::eval` against the base table — an expression-tree
//! walk per member per neighbour per move. The view replaces that with a
//! **columnar** representation built once per query:
//!
//! * for every distinct aggregate term referenced by the `SUCH THAT` formula
//!   or the objective, a dense `f64` column over the candidate set (the
//!   term's per-tuple contribution) plus an inclusion bitmask folding in the
//!   `FILTER (WHERE ...)` predicate and NULL-ness of the argument;
//! * the formula and objective recompiled against term indices
//!   ([`CompiledExpr`] / [`CompiledFormula`]), so package-level evaluation is
//!   a handful of dot products and comparisons with no AST in sight;
//! * [`ViewState`], an incremental accumulator that scores multiplicity
//!   deltas (swap / add / drop moves) in `O(#terms)` per move instead of
//!   re-aggregating the whole package — the local search's inner loop.
//!
//! The interpreted path ([`Package::eval_aggregate`] and friends) survives as
//! the debug oracle: `columnar_matches_interpreted` asserts agreement on
//! random queries, and the property suite in `tests/columnar_oracle.rs`
//! exercises both paths over every datagen scenario.
//!
//! Columns are chunked at a fixed 4096-element width ([`TermColumn`]), and
//! since the [`crate::column_store`] subsystem landed a column's chunks can
//! live **out of core**: under a paged [`crate::column_store::ColumnPolicy`]
//! they are spilled to a temporary file at build time and scanned back
//! through an LRU buffer pool, chunk by chunk, while the per-chunk
//! [`ChunkMeta`] summaries stay resident. Consumers iterate
//! [`TermColumn::chunk`] cursors (or the point accessors
//! [`TermColumn::coeff_at`] / [`TermColumn::included_at`]) and never learn
//! where the bytes live; resident and paged builds are bit-identical.
//!
//! Since the [`crate::cache`] subsystem landed, a view can also be
//! *assembled* from previously materialized building blocks
//! ([`CandidateView::assemble`]): the candidate list, statistics and any
//! already-built term columns are reused verbatim and only the columns the
//! new query adds are computed from the base table. Every view additionally
//! carries a [`crate::cache::PartitionMemo`] so the sketch→refine solver's
//! offline partitioning is computed at most once per (view contents,
//! partition size, seed) — including across cached queries.

use std::collections::BTreeMap;
use std::sync::Arc;

use minidb::eval::{eval, eval_predicate};
use minidb::stats::TableStats;
use minidb::{Table, Tuple, TupleId};
use paql::ast::GlobalArithOp;
use paql::{AggCall, AggFunc, CmpOp, GlobalExpr, GlobalFormula, Objective, ObjectiveDirection};

use crate::budget::Budget;
use crate::cache::PartitionMemo;
use crate::column_store::{ColumnPolicy, PageGuard, SpillStore, MASK_WORDS_PER_CHUNK, PAGE_BYTES};
use crate::package::Package;
use crate::par::{chunk_count, chunk_range, ParExec, CHUNK_WIDTH};
use crate::partition::Partitioning;
use crate::{PbError, PbResult};

/// Penalty for constraints whose sides cannot be evaluated (NULL aggregate),
/// identical to the interpreted path's constant.
const UNEVALUABLE_PENALTY: f64 = 1e9;

/// Chunks per materialization segment in paged-aware builds (~4.3 MB of
/// coefficient buffer). Segments bound the *transient* memory of building a
/// column — evaluated chunks are pushed into the [`ColumnSink`] (spilled,
/// for paged columns) before the next segment is evaluated. Segment starts
/// are multiples of [`crate::par::CHUNK_WIDTH`], so segmentation never moves
/// a chunk boundary and results stay bit-identical.
const BUILD_SEGMENT_CHUNKS: usize = 128;

/// Precomputed aggregates of one [`crate::par::CHUNK_WIDTH`]-wide chunk of a
/// [`TermColumn`], over the chunk's *included* entries only.
///
/// Chunk metadata is computed once at column materialization (per chunk, so
/// the values are identical no matter how many threads built the column) and
/// lets consumers answer whole-column questions — the value range feeding
/// [`crate::pruning::derive_bounds`], for instance — in `O(#chunks)` by
/// combining the per-chunk values **in chunk order**, without rescanning the
/// column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkMeta {
    /// Sum of the included entries' coefficients (0.0 when none).
    pub sum: f64,
    /// Minimum included coefficient (`+∞` when the chunk has none).
    pub min: f64,
    /// Maximum included coefficient (`-∞` when the chunk has none).
    pub max: f64,
    /// Number of included entries in the chunk.
    pub included: u32,
}

/// Where a column's chunk payload lives. Metadata ([`ChunkMeta`]) is always
/// resident either way — only the coefficient/mask bytes move.
#[derive(Debug, Clone)]
enum ColumnData {
    /// Today's dense in-memory layout: one contiguous coefficient vector and
    /// a chunk-aligned inclusion bitmask (chunk `c` owns words
    /// `c · MASK_WORDS_PER_CHUNK ..`, padded at the tail so every chunk's
    /// words are full-width — the same shape a spill page has).
    Resident { coeffs: Vec<f64>, mask: Vec<u64> },
    /// Chunks spilled to a [`SpillStore`]: chunk `c` is page `first_page + c`
    /// of the (possibly shared) store, faulted in through its buffer pool.
    Paged {
        store: Arc<SpillStore>,
        first_page: u64,
    },
}

/// One aggregate term (`SUM(P.calories)`, `COUNT(*) FILTER (WHERE ...)`, …)
/// lowered to columns over the candidate set.
///
/// # Chunked layout
///
/// A column is a sequence of *chunk handles*: fixed-width chunks of
/// [`crate::par::CHUNK_WIDTH`] elements with a [`ChunkMeta`] (partial sum,
/// min/max, included count over the chunk's included entries) kept per chunk,
/// always in memory. The chunk *payload* (coefficients + inclusion mask)
/// lives either resident (dense vectors — the zero-cost path) or paged
/// (spill file + LRU buffer pool, [`crate::column_store`]); consumers access
/// it uniformly through [`TermColumn::chunk`] cursors or the per-element
/// [`TermColumn::entry_at`]. Two invariants make this the substrate for
/// deterministic data parallelism:
///
/// * **Chunk boundaries are fixed** — always `CHUNK_WIDTH` elements, derived
///   from the candidate count alone, never from the thread count or the
///   storage mode.
/// * **Reductions combine chunks in chunk order** — so any whole-column
///   value derived from the metadata (or from a parallel scan chunked the
///   same way) is bit-identical at every `num_threads` — and, since paging
///   moves bytes without touching values or boundaries, in both storage
///   modes.
///
/// Columns are immutable after construction (a [`ColumnSink`] computes the
/// metadata chunk by chunk as the column is materialized; paged chunks are
/// written to the spill file exactly once and never written back); the cache
/// shares them by `Arc` across queries.
#[derive(Debug, Clone)]
pub struct TermColumn {
    /// The aggregate function.
    pub func: AggFunc,
    /// Number of candidates (elements) in the column.
    len: usize,
    /// The chunk payload: per-candidate contribution (the argument value,
    /// 1.0 for `COUNT(*)`, forced to 0.0 where excluded) plus the inclusion
    /// mask (`FILTER` passed and the argument was non-NULL).
    data: ColumnData,
    /// Per-chunk partial aggregates over the included entries.
    chunks: Vec<ChunkMeta>,
}

/// One pinned chunk of a [`TermColumn`]: borrowed slices for resident
/// columns, a buffer-pool [`PageGuard`] for paged ones. The chunk stays
/// pinned (immune to eviction) for the guard's lifetime — scan loops hold
/// one of these per chunk, never per element.
pub enum ColumnChunk<'c> {
    /// Resident chunk: slices borrowed straight from the column.
    Resident {
        /// The chunk's coefficients (exact chunk length).
        coeffs: &'c [f64],
        /// The chunk's inclusion-mask words ([`MASK_WORDS_PER_CHUNK`] of them).
        mask: &'c [u64],
    },
    /// Paged chunk: a pinned buffer-pool page.
    Paged {
        /// The pinned page.
        guard: PageGuard,
        /// The chunk's exact length (tail chunks are shorter than the page).
        len: usize,
    },
}

impl ColumnChunk<'_> {
    /// Elements in this chunk.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            ColumnChunk::Resident { coeffs, .. } => coeffs.len(),
            ColumnChunk::Paged { len, .. } => *len,
        }
    }

    /// True when the chunk has no elements (never, for chunks of a
    /// non-empty column).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The chunk's coefficients.
    #[inline]
    pub fn coeffs(&self) -> &[f64] {
        match self {
            ColumnChunk::Resident { coeffs, .. } => coeffs,
            ColumnChunk::Paged { guard, len } => guard.coeffs(*len),
        }
    }

    /// Whether element `i` of this chunk is included.
    #[inline]
    pub fn included(&self, i: usize) -> bool {
        match self {
            ColumnChunk::Resident { mask, .. } => (mask[i / 64] >> (i % 64)) & 1 == 1,
            ColumnChunk::Paged { guard, .. } => guard.included(i),
        }
    }
}

#[inline]
fn mask_bit(mask: &[u64], idx: usize) -> bool {
    (mask[idx / 64] >> (idx % 64)) & 1 == 1
}

impl TermColumn {
    /// Builds a resident column from its dense coefficient and inclusion
    /// vectors, computing the per-chunk metadata. ([`ColumnSink`] is the
    /// general constructor; this is the convenience wrapper around it.)
    pub fn new(func: AggFunc, coeffs: Vec<f64>, included: Vec<bool>) -> Self {
        assert_eq!(coeffs.len(), included.len());
        let n = coeffs.len();
        let mut sink = ColumnSink::resident(func, n);
        for c in 0..chunk_count(n) {
            let r = chunk_range(c, n);
            sink.push_chunk(&coeffs[r.clone()], &included[r])
                // pb-lint: allow(no-panic-in-solver-paths) — invariant: a
                // resident sink does no I/O, and the error arm exists only
                // for the paged variant.
                .expect("resident sink cannot fail");
        }
        sink.finish()
    }

    /// Number of candidates (elements) in the column.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the column has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the chunk payload lives in a spill file rather than memory.
    pub fn is_paged(&self) -> bool {
        matches!(self.data, ColumnData::Paged { .. })
    }

    /// Bytes of chunk payload held in memory (0 for paged columns — the
    /// buffer pool's frames belong to the pool, not the column).
    pub fn resident_bytes(&self) -> usize {
        match &self.data {
            ColumnData::Resident { coeffs, mask } => coeffs.len() * 8 + mask.len() * 8,
            ColumnData::Paged { .. } => 0,
        }
    }

    /// Bytes of chunk payload in the spill file (0 for resident columns).
    pub fn spilled_bytes(&self) -> usize {
        match &self.data {
            ColumnData::Resident { .. } => 0,
            ColumnData::Paged { .. } => self.chunks.len() * PAGE_BYTES,
        }
    }

    /// Pins chunk `c` and returns a cursor over its payload. Scan loops call
    /// this once per chunk and index inside the guard — one buffer-pool
    /// round-trip per [`crate::par::CHUNK_WIDTH`] elements.
    #[inline]
    pub fn chunk(&self, c: usize) -> ColumnChunk<'_> {
        let r = chunk_range(c, self.len);
        match &self.data {
            ColumnData::Resident { coeffs, mask } => ColumnChunk::Resident {
                coeffs: &coeffs[r],
                mask: &mask[c * MASK_WORDS_PER_CHUNK..(c + 1) * MASK_WORDS_PER_CHUNK],
            },
            ColumnData::Paged { store, first_page } => ColumnChunk::Paged {
                guard: store.read(first_page + c as u64),
                len: r.len(),
            },
        }
    }

    /// The coefficient of element `idx` (pins the element's chunk for paged
    /// columns — prefer [`TermColumn::chunk`] cursors in scan loops).
    #[inline]
    pub fn coeff_at(&self, idx: usize) -> f64 {
        match &self.data {
            ColumnData::Resident { coeffs, .. } => coeffs[idx],
            ColumnData::Paged { store, first_page } => {
                let g = store.read(first_page + (idx / CHUNK_WIDTH) as u64);
                g.coeffs(CHUNK_WIDTH)[idx % CHUNK_WIDTH]
            }
        }
    }

    /// Whether element `idx` is included.
    #[inline]
    pub fn included_at(&self, idx: usize) -> bool {
        match &self.data {
            ColumnData::Resident { mask, .. } => mask_bit(mask, idx),
            ColumnData::Paged { store, first_page } => {
                let g = store.read(first_page + (idx / CHUNK_WIDTH) as u64);
                g.included(idx % CHUNK_WIDTH)
            }
        }
    }

    /// `(coefficient, included)` of element `idx` with a single chunk pin —
    /// the accessor [`ViewState`]'s delta scoring uses.
    #[inline]
    pub fn entry_at(&self, idx: usize) -> (f64, bool) {
        match &self.data {
            ColumnData::Resident { coeffs, mask } => (coeffs[idx], mask_bit(mask, idx)),
            ColumnData::Paged { store, first_page } => {
                let g = store.read(first_page + (idx / CHUNK_WIDTH) as u64);
                (
                    g.coeffs(CHUNK_WIDTH)[idx % CHUNK_WIDTH],
                    g.included(idx % CHUNK_WIDTH),
                )
            }
        }
    }

    /// The resident coefficient slice, when there is one — the fast path
    /// scan loops take before falling back to chunk cursors.
    pub fn resident_coeffs(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Resident { coeffs, .. } => Some(coeffs),
            ColumnData::Paged { .. } => None,
        }
    }

    /// Copies the whole coefficient column out as a dense vector (chunk by
    /// chunk, in chunk order). Used where a dense row is genuinely required
    /// — ILP linearization — and by tests.
    pub fn coeffs_vec(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len);
        for c in 0..self.chunks.len() {
            out.extend_from_slice(self.chunk(c).coeffs());
        }
        out
    }

    /// Copies the whole inclusion column out as a dense vector.
    pub fn included_vec(&self) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.len);
        for c in 0..self.chunks.len() {
            let chunk = self.chunk(c);
            out.extend((0..chunk.len()).map(|i| chunk.included(i)));
        }
        out
    }

    /// Gathers `coeffs[indices[p]]` for every `p`, pinning each distinct
    /// chunk once (positions are visited bucketed by chunk, results land in
    /// input order). The partitioner's sort keys come through here.
    pub fn gather_coeffs(&self, indices: &[usize]) -> Vec<f64> {
        match &self.data {
            ColumnData::Resident { coeffs, .. } => indices.iter().map(|&i| coeffs[i]).collect(),
            ColumnData::Paged { .. } => {
                let mut out = vec![0.0; indices.len()];
                let mut order: Vec<u32> = (0..indices.len() as u32).collect();
                order.sort_by_key(|&p| indices[p as usize] / CHUNK_WIDTH);
                let mut pinned: Option<(usize, ColumnChunk<'_>)> = None;
                for &p in &order {
                    let idx = indices[p as usize];
                    let c = idx / CHUNK_WIDTH;
                    if pinned.as_ref().map(|(pc, _)| *pc) != Some(c) {
                        pinned = Some((c, self.chunk(c)));
                    }
                    // pb-lint: allow(no-panic-in-solver-paths) — invariant:
                    // `pinned` was set for chunk `c` just above.
                    out[p as usize] = pinned.as_ref().unwrap().1.coeffs()[idx % CHUNK_WIDTH];
                }
                out
            }
        }
    }

    /// Sum of `coeffs[idx]` over `indices`, accumulated **in input order**
    /// (callers pass ascending member lists, so resident and paged columns
    /// add in the identical order — bit-identical sums). One chunk pin per
    /// run of same-chunk indices.
    pub fn sum_over_sorted(&self, indices: &[usize]) -> f64 {
        match &self.data {
            ColumnData::Resident { coeffs, .. } => indices.iter().map(|&i| coeffs[i]).sum(),
            ColumnData::Paged { .. } => {
                let mut sum = 0.0;
                let mut pinned: Option<(usize, ColumnChunk<'_>)> = None;
                for &idx in indices {
                    let c = idx / CHUNK_WIDTH;
                    if pinned.as_ref().map(|(pc, _)| *pc) != Some(c) {
                        pinned = Some((c, self.chunk(c)));
                    }
                    // pb-lint: allow(no-panic-in-solver-paths) — invariant:
                    // `pinned` was set for chunk `c` just above.
                    sum += pinned.as_ref().unwrap().1.coeffs()[idx % CHUNK_WIDTH];
                }
                sum
            }
        }
    }

    /// `(min, max)` of `coeffs[idx]` over `indices` (`(+∞, -∞)` when empty),
    /// one chunk pin per run of same-chunk indices. Feeds the partitioner's
    /// spread scan on paged columns.
    pub fn minmax_over(&self, indices: &[usize]) -> (f64, f64) {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        match &self.data {
            ColumnData::Resident { coeffs, .. } => {
                for &idx in indices {
                    lo = lo.min(coeffs[idx]);
                    hi = hi.max(coeffs[idx]);
                }
            }
            ColumnData::Paged { .. } => {
                let mut pinned: Option<(usize, ColumnChunk<'_>)> = None;
                for &idx in indices {
                    let c = idx / CHUNK_WIDTH;
                    if pinned.as_ref().map(|(pc, _)| *pc) != Some(c) {
                        pinned = Some((c, self.chunk(c)));
                    }
                    // pb-lint: allow(no-panic-in-solver-paths) — invariant:
                    // `pinned` was set for chunk `c` just above.
                    let v = pinned.as_ref().unwrap().1.coeffs()[idx % CHUNK_WIDTH];
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
        }
        (lo, hi)
    }

    /// The per-chunk metadata, one entry per [`crate::par::CHUNK_WIDTH`]-wide
    /// chunk — always resident, whatever the payload's storage mode, so
    /// metadata consumers ([`crate::pruning::derive_bounds`], the k-d spread
    /// scans) never fault a page.
    pub fn chunk_meta(&self) -> &[ChunkMeta] {
        &self.chunks
    }

    /// Number of included entries (combining chunk metadata).
    pub fn included_count(&self) -> u64 {
        self.chunks.iter().map(|m| m.included as u64).sum()
    }

    /// Sum of the included entries' coefficients, combining the per-chunk
    /// partial sums in chunk order (so the value is bit-identical no matter
    /// how the column was built). Feeds the pruning layer's reachable-sum
    /// infeasibility probe.
    pub fn included_sum(&self) -> f64 {
        self.chunks.iter().map(|m| m.sum).sum()
    }

    /// Minimum coefficient over the included entries (`None` when no entry
    /// is included), combined from the chunk metadata in chunk order.
    pub fn included_min(&self) -> Option<f64> {
        (self.included_count() > 0)
            .then(|| self.chunks.iter().fold(f64::INFINITY, |a, m| a.min(m.min)))
    }

    /// Maximum coefficient over the included entries (`None` when no entry
    /// is included), combined from the chunk metadata in chunk order.
    pub fn included_max(&self) -> Option<f64> {
        (self.included_count() > 0).then(|| {
            self.chunks
                .iter()
                .fold(f64::NEG_INFINITY, |a, m| a.max(m.max))
        })
    }
}

/// Incremental [`TermColumn`] builder: chunks are pushed in chunk order (all
/// full-width except possibly the last) and land either in resident vectors
/// or in a [`SpillStore`]. The per-chunk [`ChunkMeta`] is computed here,
/// from the chunk buffer, *before* the payload is stored — the same values
/// in both modes, which is half of the paged-vs-resident determinism
/// contract (the other half being fixed chunk boundaries).
pub struct ColumnSink {
    func: AggFunc,
    len: usize,
    chunks: Vec<ChunkMeta>,
    mode: SinkMode,
}

enum SinkMode {
    Resident {
        coeffs: Vec<f64>,
        mask: Vec<u64>,
    },
    Paged {
        store: Arc<SpillStore>,
        first_page: Option<u64>,
    },
}

impl ColumnSink {
    /// A sink building a resident column (capacity hint in elements).
    pub fn resident(func: AggFunc, capacity: usize) -> Self {
        ColumnSink {
            func,
            len: 0,
            chunks: Vec::with_capacity(chunk_count(capacity)),
            mode: SinkMode::Resident {
                coeffs: Vec::with_capacity(capacity),
                mask: Vec::with_capacity(chunk_count(capacity) * MASK_WORDS_PER_CHUNK),
            },
        }
    }

    /// A sink spilling chunks to `store` (one view build shares one store
    /// across all its columns — and its buffer pool with every reader).
    pub fn paged(func: AggFunc, store: Arc<SpillStore>) -> Self {
        ColumnSink {
            func,
            len: 0,
            chunks: Vec::new(),
            mode: SinkMode::Paged {
                store,
                first_page: None,
            },
        }
    }

    /// Appends the next chunk (in chunk order; every chunk before the last
    /// must be exactly [`crate::par::CHUNK_WIDTH`] elements).
    pub fn push_chunk(&mut self, coeffs: &[f64], included: &[bool]) -> PbResult<()> {
        assert_eq!(coeffs.len(), included.len());
        assert!(coeffs.len() <= CHUNK_WIDTH);
        assert_eq!(
            self.len % CHUNK_WIDTH,
            0,
            "chunks must be pushed in order, full-width except the last"
        );
        let mut meta = ChunkMeta {
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            included: 0,
        };
        for (i, &inc) in included.iter().enumerate() {
            if inc {
                meta.sum += coeffs[i];
                meta.min = meta.min.min(coeffs[i]);
                meta.max = meta.max.max(coeffs[i]);
                meta.included += 1;
            }
        }
        self.chunks.push(meta);
        self.len += coeffs.len();
        match &mut self.mode {
            SinkMode::Resident { coeffs: out, mask } => {
                out.extend_from_slice(coeffs);
                let mut words = [0u64; MASK_WORDS_PER_CHUNK];
                for (i, &inc) in included.iter().enumerate() {
                    if inc {
                        words[i / 64] |= 1u64 << (i % 64);
                    }
                }
                mask.extend_from_slice(&words);
            }
            SinkMode::Paged { store, first_page } => {
                let page = store
                    .append_chunk(coeffs, included)
                    .map_err(|e| PbError::Internal(format!("column spill write: {e}")))?;
                if first_page.is_none() {
                    *first_page = Some(page);
                }
                debug_assert_eq!(
                    page,
                    // pb-lint: allow(no-panic-in-solver-paths) — invariant:
                    // `first_page` was filled on the first loop iteration;
                    // debug-build consistency check only.
                    first_page.unwrap() + (self.chunks.len() - 1) as u64,
                    "a column's chunks must land on consecutive pages"
                );
            }
        }
        Ok(())
    }

    /// Seals the column.
    pub fn finish(self) -> TermColumn {
        let data = match self.mode {
            SinkMode::Resident { coeffs, mask } => ColumnData::Resident { coeffs, mask },
            SinkMode::Paged { store, first_page } => ColumnData::Paged {
                // An empty paged column never wrote a page; first_page 0 is
                // fine — it has no chunks to address.
                first_page: first_page.unwrap_or(0),
                store,
            },
        };
        TermColumn {
            func: self.func,
            len: self.len,
            data,
            chunks: self.chunks,
        }
    }
}

/// Running aggregates of one term over one package.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TermAccum {
    /// Multiplicity-weighted count of included members.
    pub count: u64,
    /// Multiplicity-weighted sum of included contributions.
    pub sum: f64,
    /// Number of *distinct* included members (drives SQL-NULL semantics and
    /// MIN/MAX recomputation).
    pub distinct: u32,
}

impl TermAccum {
    fn zero() -> Self {
        TermAccum {
            count: 0,
            sum: 0.0,
            distinct: 0,
        }
    }
}

/// A global expression with aggregate calls resolved to term indices.
#[derive(Debug, Clone)]
pub enum CompiledExpr {
    /// A literal constant.
    Literal(f64),
    /// The value of term `TermId`.
    Term(usize),
    /// Arithmetic over sub-expressions.
    Binary {
        /// The operator.
        op: GlobalArithOp,
        /// Left operand.
        lhs: Box<CompiledExpr>,
        /// Right operand.
        rhs: Box<CompiledExpr>,
    },
}

/// A compiled global constraint.
#[derive(Debug, Clone)]
pub struct CompiledConstraint {
    /// Left side.
    pub lhs: CompiledExpr,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right side.
    pub rhs: CompiledExpr,
}

/// A compiled `SUCH THAT` formula.
#[derive(Debug, Clone)]
pub enum CompiledFormula {
    /// A single constraint.
    Atom(CompiledConstraint),
    /// Conjunction.
    And(Box<CompiledFormula>, Box<CompiledFormula>),
    /// Disjunction.
    Or(Box<CompiledFormula>, Box<CompiledFormula>),
    /// Negation.
    Not(Box<CompiledFormula>),
}

/// The columnar form of a package query over its candidate set.
///
/// Built once inside [`crate::spec::PackageSpec::build`]; consumed by every
/// [`crate::solver::Solver`]. The view owns everything a solver needs —
/// candidates, multiplicity bound, term columns, compiled formula/objective,
/// the original ASTs (for bound derivation and diagnostics) and candidate
/// statistics — so solvers never touch the base table.
#[derive(Debug, Clone)]
pub struct CandidateView {
    candidates: Vec<TupleId>,
    max_multiplicity: u32,
    terms: Vec<TermColumn>,
    term_keys: Vec<AggCall>,
    formula: Option<GlobalFormula>,
    compiled_formula: Option<CompiledFormula>,
    objective: Option<Objective>,
    compiled_objective: Option<CompiledExpr>,
    stats: TableStats,
    partition_memo: PartitionMemo,
}

impl CandidateView {
    /// Lowers a query (candidates + formula + objective) into columns,
    /// sequentially — [`CandidateView::build_par`] with a 1-thread executor.
    ///
    /// Evaluation errors (non-numeric aggregate arguments, unknown columns)
    /// surface here, once, instead of on every package evaluation.
    pub fn build(
        table: &Table,
        candidates: Vec<TupleId>,
        max_multiplicity: u32,
        formula: Option<GlobalFormula>,
        objective: Option<Objective>,
    ) -> PbResult<Self> {
        Self::build_par(
            table,
            candidates,
            max_multiplicity,
            formula,
            objective,
            ParExec::sequential(),
        )
    }

    /// [`CandidateView::build`] with column materialization fanned out over
    /// `par` ([`crate::par::CHUNK_WIDTH`]-wide chunks of the candidate set per task).
    /// The resulting view is bit-identical at every thread count: chunks
    /// write disjoint fixed ranges and evaluation errors are reported in
    /// chunk order. Storage mode follows [`ColumnPolicy::default`] (the
    /// environment-derived policy); [`CandidateView::build_par_with`] takes
    /// an explicit one.
    pub fn build_par(
        table: &Table,
        candidates: Vec<TupleId>,
        max_multiplicity: u32,
        formula: Option<GlobalFormula>,
        objective: Option<Objective>,
        par: ParExec,
    ) -> PbResult<Self> {
        Self::build_par_with(
            table,
            candidates,
            max_multiplicity,
            formula,
            objective,
            &ColumnPolicy::default(),
            par,
        )
    }

    /// [`CandidateView::build_par`] under an explicit [`ColumnPolicy`]: the
    /// view's columns go paged when their estimated footprint exceeds the
    /// policy's resident budget (the engine threads
    /// [`crate::config::EngineConfig::column_memory_budget`] through here).
    /// Storage mode never changes results — only where column bytes live.
    #[allow(clippy::too_many_arguments)]
    pub fn build_par_with(
        table: &Table,
        candidates: Vec<TupleId>,
        max_multiplicity: u32,
        formula: Option<GlobalFormula>,
        objective: Option<Objective>,
        policy: &ColumnPolicy,
        par: ParExec,
    ) -> PbResult<Self> {
        let rows: Vec<&Tuple> = candidates
            .iter()
            .map(|id| table.require(*id))
            .collect::<Result<_, _>>()?;
        let stats = TableStats::of_row_refs(table.schema(), rows.iter().copied());
        // The prefetched rows ride along so column materialization does not
        // fetch them a second time.
        Self::assemble_impl(
            table,
            candidates,
            stats,
            max_multiplicity,
            formula,
            objective,
            |_| None,
            Some(rows),
            policy,
            par,
        )
    }

    /// Assembles a view from precomputed building blocks: the candidate list
    /// and statistics are adopted verbatim, and each required term column is
    /// first requested from `column_source` — only columns the source does
    /// not have are materialized from the base table. With a source that
    /// always returns `None` this is exactly [`CandidateView::build`]; with
    /// the engine's [`crate::cache::ViewCache`] as the source, a repeated
    /// query skips per-row evaluation entirely and a query that adds
    /// aggregate terms pays only for the new columns.
    ///
    /// The resulting view is bit-identical to a cold [`CandidateView::build`]
    /// of the same query: terms are interned in the query's own discovery
    /// order, so compiled expressions, column order — and therefore solver
    /// results — do not depend on whether columns came from the source.
    pub fn assemble(
        table: &Table,
        candidates: Vec<TupleId>,
        stats: TableStats,
        max_multiplicity: u32,
        formula: Option<GlobalFormula>,
        objective: Option<Objective>,
        column_source: impl FnMut(&AggCall) -> Option<TermColumn>,
    ) -> PbResult<Self> {
        Self::assemble_par(
            table,
            candidates,
            stats,
            max_multiplicity,
            formula,
            objective,
            column_source,
            ParExec::sequential(),
        )
    }

    /// [`CandidateView::assemble`] with cache-miss column materialization
    /// fanned out over `par`, chunk by chunk (the engine's cached build path
    /// uses this, so only the columns a query actually adds pay evaluation
    /// cost — and they pay it in parallel).
    #[allow(clippy::too_many_arguments)]
    pub fn assemble_par(
        table: &Table,
        candidates: Vec<TupleId>,
        stats: TableStats,
        max_multiplicity: u32,
        formula: Option<GlobalFormula>,
        objective: Option<Objective>,
        column_source: impl FnMut(&AggCall) -> Option<TermColumn>,
        par: ParExec,
    ) -> PbResult<Self> {
        Self::assemble_par_with(
            table,
            candidates,
            stats,
            max_multiplicity,
            formula,
            objective,
            column_source,
            &ColumnPolicy::default(),
            par,
        )
    }

    /// [`CandidateView::assemble_par`] under an explicit [`ColumnPolicy`]
    /// (see [`CandidateView::build_par_with`]). Columns adopted from the
    /// source keep whatever storage mode they were built with; only the
    /// columns this assembly materializes are subject to the policy — a
    /// view may legitimately mix resident (cached) and paged (fresh)
    /// columns.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble_par_with(
        table: &Table,
        candidates: Vec<TupleId>,
        stats: TableStats,
        max_multiplicity: u32,
        formula: Option<GlobalFormula>,
        objective: Option<Objective>,
        column_source: impl FnMut(&AggCall) -> Option<TermColumn>,
        policy: &ColumnPolicy,
        par: ParExec,
    ) -> PbResult<Self> {
        Self::assemble_impl(
            table,
            candidates,
            stats,
            max_multiplicity,
            formula,
            objective,
            column_source,
            None,
            policy,
            par,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble_impl<'t>(
        table: &'t Table,
        candidates: Vec<TupleId>,
        stats: TableStats,
        max_multiplicity: u32,
        formula: Option<GlobalFormula>,
        objective: Option<Objective>,
        column_source: impl FnMut(&AggCall) -> Option<TermColumn>,
        prefetched: Option<Vec<&'t Tuple>>,
        policy: &ColumnPolicy,
        par: ParExec,
    ) -> PbResult<Self> {
        let schema = table.schema();
        // Candidate rows are only fetched when some column must actually be
        // materialized (and `build` hands down the rows it already fetched
        // for statistics) — on a full cache hit the table is never touched.
        let mut rows: Option<Vec<&Tuple>> = prefetched;

        // Collect the distinct aggregate terms of the formula and objective.
        let mut term_keys: Vec<AggCall> = Vec::new();
        let mut intern = |call: &AggCall, keys: &mut Vec<AggCall>| -> usize {
            match keys.iter().position(|k| k == call) {
                Some(i) => i,
                None => {
                    keys.push(call.clone());
                    keys.len() - 1
                }
            }
        };
        fn compile_expr(
            expr: &GlobalExpr,
            keys: &mut Vec<AggCall>,
            intern: &mut impl FnMut(&AggCall, &mut Vec<AggCall>) -> usize,
        ) -> CompiledExpr {
            match expr {
                GlobalExpr::Literal(x) => CompiledExpr::Literal(*x),
                GlobalExpr::Agg(call) => CompiledExpr::Term(intern(call, keys)),
                GlobalExpr::Binary { op, lhs, rhs } => CompiledExpr::Binary {
                    op: *op,
                    lhs: Box::new(compile_expr(lhs, keys, intern)),
                    rhs: Box::new(compile_expr(rhs, keys, intern)),
                },
            }
        }
        fn compile_formula(
            formula: &GlobalFormula,
            keys: &mut Vec<AggCall>,
            intern: &mut impl FnMut(&AggCall, &mut Vec<AggCall>) -> usize,
        ) -> CompiledFormula {
            match formula {
                GlobalFormula::Atom(c) => CompiledFormula::Atom(CompiledConstraint {
                    lhs: compile_expr(&c.lhs, keys, intern),
                    op: c.op,
                    rhs: compile_expr(&c.rhs, keys, intern),
                }),
                GlobalFormula::And(a, b) => CompiledFormula::And(
                    Box::new(compile_formula(a, keys, intern)),
                    Box::new(compile_formula(b, keys, intern)),
                ),
                GlobalFormula::Or(a, b) => CompiledFormula::Or(
                    Box::new(compile_formula(a, keys, intern)),
                    Box::new(compile_formula(b, keys, intern)),
                ),
                GlobalFormula::Not(a) => {
                    CompiledFormula::Not(Box::new(compile_formula(a, keys, intern)))
                }
            }
        }
        let compiled_formula = formula
            .as_ref()
            .map(|f| compile_formula(f, &mut term_keys, &mut intern));
        let compiled_objective = objective
            .as_ref()
            .map(|o| compile_expr(&o.expr, &mut term_keys, &mut intern));

        // Materialize one column pair per term, unless the source already
        // has the column (a cache hit on that term). Materialization fans
        // out over fixed-width candidate chunks: each chunk evaluates its
        // rows into chunk-local buffers, and the buffers are pushed into a
        // [`ColumnSink`] in chunk order — disjoint fixed ranges, so the
        // column (and any evaluation error: first failing chunk, first
        // failing row) is identical at every thread count and storage mode.
        //
        // The storage decision is made once, view-level, over the columns
        // this assembly actually has to build (source-adopted columns keep
        // their mode): if their estimated footprint exceeds the policy's
        // budget, all of them spill to one shared store. Paged builds
        // materialize in bounded segments so the transient chunk buffers —
        // not just the finished column — stay small.
        let sourced: Vec<Option<TermColumn>> = term_keys.iter().map(column_source).collect();
        let missing = sourced.iter().filter(|s| s.is_none()).count();
        let store = if policy.wants_paged(missing, candidates.len()) {
            Some(
                SpillStore::create(policy.pool_pages)
                    .map_err(|e| PbError::Internal(format!("column spill file: {e}")))?,
            )
        } else {
            None
        };
        let mut terms = Vec::with_capacity(term_keys.len());
        for (call, cached) in term_keys.iter().zip(sourced) {
            if let Some(column) = cached {
                debug_assert_eq!(column.len(), candidates.len());
                terms.push(column);
                continue;
            }
            let rows = match rows {
                Some(ref rows) => rows,
                None => {
                    let fetched = candidates
                        .iter()
                        .map(|id| table.require(*id))
                        .collect::<Result<Vec<_>, _>>()?;
                    rows.get_or_insert(fetched)
                }
            };
            let mut sink = match &store {
                Some(store) => ColumnSink::paged(call.func, Arc::clone(store)),
                None => ColumnSink::resident(call.func, candidates.len()),
            };
            // Segment starts are multiples of CHUNK_WIDTH, so the chunks a
            // segment fans out are exactly the column's global chunks.
            let seg = BUILD_SEGMENT_CHUNKS * CHUNK_WIDTH;
            let mut start = 0;
            while start < candidates.len() {
                let end = (start + seg).min(candidates.len());
                let chunks = par.run_chunks(end - start, |_, range| {
                    materialize_chunk(call, schema, &rows[start + range.start..start + range.end])
                });
                for chunk in chunks {
                    let (c, inc) = chunk?;
                    sink.push_chunk(&c, &inc)?;
                }
                start = end;
            }
            terms.push(sink.finish());
        }

        Ok(CandidateView {
            candidates,
            max_multiplicity,
            terms,
            term_keys,
            formula,
            compiled_formula,
            objective,
            compiled_objective,
            stats,
            partition_memo: PartitionMemo::default(),
        })
    }

    /// The sketch→refine partitioning of this view's candidates, memoized
    /// per `(max_partition_size, seed)`: computed on first request (honouring
    /// `budget` — `None` on expiry, and nothing is memoized), returned from
    /// the memo afterwards. Clones of a view share the memo, and a view
    /// assembled through the engine's [`crate::cache::ViewCache`] shares it
    /// with every past and future view of the same cached columns — which is
    /// how a repeated query skips partitioning entirely.
    ///
    /// A memoized partitioning is identical to a freshly computed one
    /// ([`crate::partition::partition_view`] is deterministic per seed), so
    /// results never depend on whether this hit the memo.
    pub fn partitioning(
        &self,
        max_partition_size: usize,
        seed: u64,
        budget: &Budget,
        par: ParExec,
    ) -> Option<Arc<Partitioning>> {
        self.partition_memo
            .get_or_compute(self, max_partition_size, seed, budget, par)
    }

    /// The progressive-shading partition tree over this view's candidates,
    /// memoized per `(leaf_size, fanout, seed)` beside the flat
    /// partitionings — and *sharing* the `(leaf_size, seed)` leaf
    /// partitioning with them (one `Arc`), so with `shade_leaf_size` equal
    /// to `sketch_partition_size` the flat and hierarchical solvers pay for
    /// the leaves once between them. `None` on budget expiry (nothing is
    /// memoized), like [`CandidateView::partitioning`].
    pub fn partition_tree(
        &self,
        leaf_size: usize,
        fanout: usize,
        seed: u64,
        budget: &Budget,
        par: ParExec,
    ) -> Option<Arc<crate::partition::PartitionTree>> {
        self.partition_memo
            .tree_or_compute(self, leaf_size, fanout, seed, budget, par)
    }

    /// Replaces the partition memo (the cache wires in the shared, per-column
    /// -signature memo after assembly — see [`crate::cache::ViewCache`]).
    pub(crate) fn set_partition_memo(&mut self, memo: PartitionMemo) {
        self.partition_memo = memo;
    }

    /// The view's partition memo (shared with clones of this view).
    pub fn partition_memo(&self) -> &PartitionMemo {
        &self.partition_memo
    }

    /// The candidate tuples, in id order.
    pub fn candidates(&self) -> &[TupleId] {
        &self.candidates
    }

    /// Number of candidates (`n` in the paper's complexity discussion).
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Maximum multiplicity of a tuple in a package (from `REPEAT`).
    pub fn max_multiplicity(&self) -> u32 {
        self.max_multiplicity
    }

    /// The original `SUCH THAT` formula, if any.
    pub fn formula(&self) -> Option<&GlobalFormula> {
        self.formula.as_ref()
    }

    /// The original objective, if any.
    pub fn objective(&self) -> Option<&Objective> {
        self.objective.as_ref()
    }

    /// The objective direction (`Maximize` when absent, matching the
    /// engine-wide default).
    pub fn direction(&self) -> ObjectiveDirection {
        self.objective
            .as_ref()
            .map(|o| o.direction)
            .unwrap_or(ObjectiveDirection::Maximize)
    }

    /// The compiled formula.
    pub fn compiled_formula(&self) -> Option<&CompiledFormula> {
        self.compiled_formula.as_ref()
    }

    /// The compiled objective expression.
    pub fn compiled_objective(&self) -> Option<&CompiledExpr> {
        self.compiled_objective.as_ref()
    }

    /// The aggregate terms, indexed by the ids in compiled expressions.
    pub fn terms(&self) -> &[TermColumn] {
        &self.terms
    }

    /// The source aggregate call of each term.
    pub fn term_keys(&self) -> &[AggCall] {
        &self.term_keys
    }

    /// True when any term column's payload is paged (out-of-core).
    pub fn is_paged(&self) -> bool {
        self.terms.iter().any(|t| t.is_paged())
    }

    /// Total in-memory column-payload bytes across the view's terms.
    pub fn resident_bytes(&self) -> usize {
        self.terms.iter().map(|t| t.resident_bytes()).sum()
    }

    /// Total spill-file column-payload bytes across the view's terms.
    pub fn spilled_bytes(&self) -> usize {
        self.terms.iter().map(|t| t.spilled_bytes()).sum()
    }

    /// Statistics over the candidate tuples (drives cardinality pruning and
    /// the greedy heuristics).
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// Index of a tuple within the candidate set (candidates are in id
    /// order, so this is a binary search).
    pub fn index_of(&self, tuple: TupleId) -> Option<usize> {
        self.candidates.binary_search(&tuple).ok()
    }

    /// Lowers a package onto the candidate index space; `None` when some
    /// member is not a candidate (i.e. the package violates a base
    /// constraint).
    pub fn project(&self, package: &Package) -> Option<ViewState<'_>> {
        let mut state = ViewState::empty(self);
        for (tid, mult) in package.members() {
            let idx = self.index_of(tid)?;
            state.apply(idx, mult as i64);
        }
        Some(state)
    }

    /// True when `package` is a valid answer: every member is a candidate,
    /// multiplicities respect `REPEAT`, and the formula holds.
    pub fn is_valid(&self, package: &Package) -> bool {
        if package.max_multiplicity() > self.max_multiplicity {
            return false;
        }
        match self.project(package) {
            None => false,
            Some(state) => state.is_feasible(),
        }
    }

    /// Objective value of a package (`None` when the query has no objective,
    /// the objective is un-evaluable, or the package strays outside the
    /// candidate set).
    pub fn objective_value(&self, package: &Package) -> Option<f64> {
        self.project(package)?.objective_value()
    }

    /// Total constraint violation of a package (0 when feasible). Packages
    /// containing non-candidates get the un-evaluable penalty per atom.
    pub fn violation(&self, package: &Package) -> f64 {
        match self.project(package) {
            Some(state) => state.violation(),
            None => UNEVALUABLE_PENALTY,
        }
    }
}

/// Evaluates one fixed-width chunk of a term column into chunk-local
/// coefficient/inclusion buffers (stitched back in chunk order by the
/// caller — see [`CandidateView::assemble_par`]). Pure per-row work, which
/// is what makes the chunk fan-out deterministic.
fn materialize_chunk(
    call: &AggCall,
    schema: &minidb::Schema,
    rows: &[&Tuple],
) -> PbResult<(Vec<f64>, Vec<bool>)> {
    let mut coeffs = vec![0.0; rows.len()];
    let mut included = vec![false; rows.len()];
    for (i, tuple) in rows.iter().enumerate() {
        if let Some(filter) = &call.filter {
            if !eval_predicate(filter, schema, tuple)? {
                continue;
            }
        }
        match &call.arg {
            None => {
                // COUNT(*): every filtered-in member contributes 1.
                coeffs[i] = 1.0;
                included[i] = true;
            }
            Some(arg) => {
                let v = eval(arg, schema, tuple)?;
                if v.is_null() {
                    // NULL arguments are skipped for every aggregate
                    // (COUNT(expr) included), matching SQL.
                    continue;
                }
                let value = v.expect_f64(&format!("argument of {}", call.func.name()))?;
                // COUNT(expr) counts included members: its linear
                // coefficient is 1, not the argument's value.
                coeffs[i] = if call.func == AggFunc::Count {
                    1.0
                } else {
                    value
                };
                included[i] = true;
            }
        }
    }
    Ok((coeffs, included))
}

/// Incremental package accumulator over a [`CandidateView`].
///
/// Holds the multiplicity multiset (by candidate index) and the running
/// [`TermAccum`] per term, so evaluating a candidate move is `O(#terms)` —
/// plus an `O(|package|)` rescan only for MIN/MAX terms, which have no
/// constant-time delta. This is the structure behind the local search's
/// delta evaluation of swap moves.
#[derive(Debug, Clone)]
pub struct ViewState<'v> {
    view: &'v CandidateView,
    members: BTreeMap<usize, u32>,
    accums: Vec<TermAccum>,
    cardinality: u64,
}

impl<'v> ViewState<'v> {
    /// The empty package.
    pub fn empty(view: &'v CandidateView) -> Self {
        ViewState {
            view,
            members: BTreeMap::new(),
            accums: vec![TermAccum::zero(); view.terms.len()],
            cardinality: 0,
        }
    }

    /// The view this state accumulates over.
    pub fn view(&self) -> &'v CandidateView {
        self.view
    }

    /// Total cardinality (counting multiplicities).
    pub fn cardinality(&self) -> u64 {
        self.cardinality
    }

    /// Multiplicity of the candidate at `idx`.
    #[inline]
    pub fn multiplicity(&self, idx: usize) -> u32 {
        self.members.get(&idx).copied().unwrap_or(0)
    }

    /// Distinct member indices, ascending.
    pub fn member_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.members.keys().copied()
    }

    /// Applies a multiplicity delta to one candidate (delta may be negative;
    /// multiplicities clamp at zero).
    pub fn apply(&mut self, idx: usize, delta: i64) {
        if delta == 0 {
            return;
        }
        let old = self.multiplicity(idx);
        let new = (old as i64 + delta).max(0) as u32;
        if new == old {
            return;
        }
        if new == 0 {
            self.members.remove(&idx);
        } else {
            self.members.insert(idx, new);
        }
        let applied = new as i64 - old as i64;
        self.cardinality = (self.cardinality as i64 + applied) as u64;
        for (term, accum) in self.view.terms.iter().zip(self.accums.iter_mut()) {
            let (coeff, inc) = term.entry_at(idx);
            if !inc {
                continue;
            }
            accum.count = (accum.count as i64 + applied) as u64;
            accum.sum += coeff * applied as f64;
            if old == 0 {
                accum.distinct += 1;
            } else if new == 0 {
                accum.distinct -= 1;
            }
        }
    }

    /// Converts the accumulated multiset back into a [`Package`].
    pub fn to_package(&self) -> Package {
        Package::from_members(
            self.members
                .iter()
                .map(|(&idx, &m)| (self.view.candidates[idx], m)),
        )
    }

    /// The value of one term under the current accumulators, with the exact
    /// NULL semantics of the interpreted path.
    pub fn term_value(&self, term_id: usize) -> Option<f64> {
        let term = &self.view.terms[term_id];
        let accum = &self.accums[term_id];
        match term.func {
            AggFunc::Count => Some(accum.count as f64),
            AggFunc::Sum => (accum.distinct > 0).then_some(accum.sum),
            AggFunc::Avg => (accum.count > 0).then(|| accum.sum / accum.count as f64),
            AggFunc::Min | AggFunc::Max => self.min_max(term_id),
        }
    }

    /// MIN/MAX over the distinct included members (multiplicity-independent,
    /// like the interpreted path). `O(|package|)` — there is no constant-time
    /// delta for extrema.
    fn min_max(&self, term_id: usize) -> Option<f64> {
        let term = &self.view.terms[term_id];
        let mut best: Option<f64> = None;
        for &idx in self.members.keys() {
            let (v, inc) = term.entry_at(idx);
            if !inc {
                continue;
            }
            best = Some(match (best, term.func) {
                (None, _) => v,
                (Some(b), AggFunc::Min) => b.min(v),
                (Some(b), _) => b.max(v),
            });
        }
        best
    }

    /// Evaluates a compiled expression; `None` on NULL sub-aggregates or
    /// division by zero (SQL semantics, identical to the interpreted path).
    pub fn eval_expr(&self, expr: &CompiledExpr) -> Option<f64> {
        match expr {
            CompiledExpr::Literal(x) => Some(*x),
            CompiledExpr::Term(id) => self.term_value(*id),
            CompiledExpr::Binary { op, lhs, rhs } => {
                let a = self.eval_expr(lhs)?;
                let b = self.eval_expr(rhs)?;
                match op {
                    GlobalArithOp::Add => Some(a + b),
                    GlobalArithOp::Sub => Some(a - b),
                    GlobalArithOp::Mul => Some(a * b),
                    GlobalArithOp::Div => (b != 0.0).then_some(a / b),
                }
            }
        }
    }

    fn constraint_satisfied(&self, c: &CompiledConstraint) -> bool {
        match (self.eval_expr(&c.lhs), self.eval_expr(&c.rhs)) {
            (Some(a), Some(b)) => c.op.compare(a, b),
            _ => false,
        }
    }

    fn formula_satisfied(&self, f: &CompiledFormula) -> bool {
        match f {
            CompiledFormula::Atom(c) => self.constraint_satisfied(c),
            CompiledFormula::And(a, b) => self.formula_satisfied(a) && self.formula_satisfied(b),
            CompiledFormula::Or(a, b) => self.formula_satisfied(a) || self.formula_satisfied(b),
            CompiledFormula::Not(a) => !self.formula_satisfied(a),
        }
    }

    fn constraint_violation(&self, c: &CompiledConstraint) -> f64 {
        let (a, b) = match (self.eval_expr(&c.lhs), self.eval_expr(&c.rhs)) {
            (Some(a), Some(b)) => (a, b),
            _ => return UNEVALUABLE_PENALTY,
        };
        match c.op {
            CmpOp::Eq => (a - b).abs(),
            CmpOp::NotEq => {
                if c.op.compare(a, b) {
                    0.0
                } else {
                    1.0
                }
            }
            CmpOp::Lt | CmpOp::LtEq => (a - b).max(0.0),
            CmpOp::Gt | CmpOp::GtEq => (b - a).max(0.0),
        }
    }

    fn formula_violation(&self, f: &CompiledFormula) -> f64 {
        match f {
            CompiledFormula::Atom(c) => self.constraint_violation(c),
            CompiledFormula::And(a, b) => self.formula_violation(a) + self.formula_violation(b),
            CompiledFormula::Or(a, b) => self.formula_violation(a).min(self.formula_violation(b)),
            CompiledFormula::Not(a) => {
                if self.formula_satisfied(a) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// True when the formula holds (multiplicity bounds are checked by the
    /// caller — the state clamps to the candidate space by construction).
    pub fn is_feasible(&self) -> bool {
        if self
            .members
            .values()
            .any(|&m| m > self.view.max_multiplicity)
        {
            return false;
        }
        match &self.view.compiled_formula {
            None => true,
            Some(f) => self.formula_satisfied(f),
        }
    }

    /// Total violation (0 when feasible).
    pub fn violation(&self) -> f64 {
        match &self.view.compiled_formula {
            None => 0.0,
            Some(f) => self.formula_violation(f),
        }
    }

    /// Objective value (`None` when absent or un-evaluable).
    pub fn objective_value(&self) -> Option<f64> {
        let expr = self.view.compiled_objective.as_ref()?;
        self.eval_expr(expr)
    }

    /// `(violation, objective)` — the lexicographic score the local search
    /// hill-climbs on.
    pub fn score(&self) -> (f64, Option<f64>) {
        (self.violation(), self.objective_value())
    }

    /// Scores the state *as if* `changes` (candidate index, multiplicity
    /// delta) were applied, without mutating it. This is the delta evaluation
    /// behind swap moves: `O(#terms · #changes)` plus a member rescan for
    /// MIN/MAX terms only.
    pub fn score_with(&self, changes: &[(usize, i64)]) -> (f64, Option<f64>) {
        let mut scratch = Scratch {
            base: self,
            changes,
        };
        (scratch.violation(), scratch.objective_value())
    }
}

/// A lightweight "state + pending changes" overlay used by
/// [`ViewState::score_with`]. Term accumulators are adjusted on the fly;
/// membership queries consult the overlay first.
struct Scratch<'s, 'v> {
    base: &'s ViewState<'v>,
    changes: &'s [(usize, i64)],
}

impl Scratch<'_, '_> {
    #[inline]
    fn multiplicity(&self, idx: usize) -> u32 {
        let mut m = self.base.multiplicity(idx) as i64;
        for &(i, d) in self.changes {
            if i == idx {
                m += d;
            }
        }
        m.max(0) as u32
    }

    #[inline]
    fn accum(&self, term_id: usize) -> TermAccum {
        let term = &self.base.view.terms[term_id];
        let mut accum = self.base.accums[term_id];
        // Process each distinct index once (repeated deltas to one candidate
        // — k=2 moves may touch the same index twice — are netted through
        // `multiplicity`). Move vectors are tiny, so the quadratic
        // first-occurrence scan beats any allocation.
        for (pos, &(idx, _)) in self.changes.iter().enumerate() {
            if self.changes[..pos].iter().any(|&(i, _)| i == idx) {
                continue;
            }
            let (coeff, inc) = term.entry_at(idx);
            if !inc {
                continue;
            }
            let old = self.base.multiplicity(idx);
            let new = self.multiplicity(idx);
            let applied = new as i64 - old as i64;
            if applied == 0 {
                continue;
            }
            accum.count = (accum.count as i64 + applied) as u64;
            accum.sum += coeff * applied as f64;
            if old == 0 && new > 0 {
                accum.distinct += 1;
            } else if old > 0 && new == 0 {
                accum.distinct -= 1;
            }
        }
        accum
    }

    #[inline]
    fn term_value(&mut self, term_id: usize) -> Option<f64> {
        let term = &self.base.view.terms[term_id];
        let accum = self.accum(term_id);
        match term.func {
            AggFunc::Count => Some(accum.count as f64),
            AggFunc::Sum => (accum.distinct > 0).then_some(accum.sum),
            AggFunc::Avg => (accum.count > 0).then(|| accum.sum / accum.count as f64),
            AggFunc::Min | AggFunc::Max => self.min_max(term_id),
        }
    }

    /// MIN/MAX rescan over base members plus changed indices.
    fn min_max(&self, term_id: usize) -> Option<f64> {
        let term = &self.base.view.terms[term_id];
        let mut best: Option<f64> = None;
        let mut consider = |idx: usize, mult: u32| {
            if mult == 0 {
                return;
            }
            let (v, inc) = term.entry_at(idx);
            if !inc {
                return;
            }
            best = Some(match (best, term.func) {
                (None, _) => v,
                (Some(b), AggFunc::Min) => b.min(v),
                (Some(b), _) => b.max(v),
            });
        };
        for (&idx, &m) in &self.base.members {
            if self.changes.iter().any(|&(i, _)| i == idx) {
                continue; // handled below with the overlay multiplicity
            }
            consider(idx, m);
        }
        for &(idx, _) in self.changes {
            consider(idx, self.multiplicity(idx));
        }
        best
    }

    fn eval_expr(&mut self, expr: &CompiledExpr) -> Option<f64> {
        match expr {
            CompiledExpr::Literal(x) => Some(*x),
            CompiledExpr::Term(id) => self.term_value(*id),
            CompiledExpr::Binary { op, lhs, rhs } => {
                let a = self.eval_expr(lhs)?;
                let b = self.eval_expr(rhs)?;
                match op {
                    GlobalArithOp::Add => Some(a + b),
                    GlobalArithOp::Sub => Some(a - b),
                    GlobalArithOp::Mul => Some(a * b),
                    GlobalArithOp::Div => (b != 0.0).then_some(a / b),
                }
            }
        }
    }

    fn constraint_violation(&mut self, c: &CompiledConstraint) -> f64 {
        let (a, b) = match (self.eval_expr(&c.lhs), self.eval_expr(&c.rhs)) {
            (Some(a), Some(b)) => (a, b),
            _ => return UNEVALUABLE_PENALTY,
        };
        match c.op {
            CmpOp::Eq => (a - b).abs(),
            CmpOp::NotEq => {
                if c.op.compare(a, b) {
                    0.0
                } else {
                    1.0
                }
            }
            CmpOp::Lt | CmpOp::LtEq => (a - b).max(0.0),
            CmpOp::Gt | CmpOp::GtEq => (b - a).max(0.0),
        }
    }

    fn constraint_satisfied(&mut self, c: &CompiledConstraint) -> bool {
        match (self.eval_expr(&c.lhs), self.eval_expr(&c.rhs)) {
            (Some(a), Some(b)) => c.op.compare(a, b),
            _ => false,
        }
    }

    fn formula_satisfied(&mut self, f: &CompiledFormula) -> bool {
        match f {
            CompiledFormula::Atom(c) => self.constraint_satisfied(c),
            CompiledFormula::And(a, b) => self.formula_satisfied(a) && self.formula_satisfied(b),
            CompiledFormula::Or(a, b) => self.formula_satisfied(a) || self.formula_satisfied(b),
            CompiledFormula::Not(a) => !self.formula_satisfied(a),
        }
    }

    fn formula_violation(&mut self, f: &CompiledFormula) -> f64 {
        match f {
            CompiledFormula::Atom(c) => self.constraint_violation(c),
            CompiledFormula::And(a, b) => self.formula_violation(a) + self.formula_violation(b),
            CompiledFormula::Or(a, b) => self.formula_violation(a).min(self.formula_violation(b)),
            CompiledFormula::Not(a) => {
                if self.formula_satisfied(a) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    fn violation(&mut self) -> f64 {
        let base = self.base;
        match &base.view.compiled_formula {
            None => 0.0,
            Some(f) => self.formula_violation(f),
        }
    }

    fn objective_value(&mut self) -> Option<f64> {
        let base = self.base;
        let expr = base.view.compiled_objective.as_ref()?;
        self.eval_expr(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{recipes, Seed};
    use paql::compile;

    fn view_for(table: &Table, q: &str) -> CandidateView {
        let analyzed = compile(q, table.schema()).unwrap();
        let spec = crate::spec::PackageSpec::build(&analyzed, table).unwrap();
        spec.view().clone()
    }

    const MEAL_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
        SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE SUM(P.protein)";

    #[test]
    fn terms_are_deduplicated_across_formula_and_objective() {
        let t = recipes(50, Seed(1));
        let v = view_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R \
             SUCH THAT SUM(P.protein) >= 10 AND SUM(P.protein) <= 500 MAXIMIZE SUM(P.protein)",
        );
        assert_eq!(
            v.terms().len(),
            1,
            "one distinct SUM(protein) term expected"
        );
    }

    #[test]
    fn columnar_matches_interpreted_on_the_meal_query() {
        let t = recipes(120, Seed(2));
        let v = view_for(&t, MEAL_QUERY);
        let spec_formula = v.formula().unwrap().clone();
        let objective = v.objective().unwrap().clone();
        for skip in 0..20 {
            let p = Package::from_ids(v.candidates().iter().copied().skip(skip).take(3));
            let interp_violation = p.formula_violation(&t, &spec_formula).unwrap();
            let interp_obj = p.objective_value(&t, &objective).unwrap();
            assert!((v.violation(&p) - interp_violation).abs() < 1e-9);
            assert_eq!(v.objective_value(&p), interp_obj);
            assert_eq!(v.is_valid(&p), interp_violation == 0.0);
        }
    }

    #[test]
    fn delta_scores_match_full_recomputation() {
        let t = recipes(100, Seed(3));
        let v = view_for(&t, MEAL_QUERY);
        let base = Package::from_ids(v.candidates().iter().copied().take(3));
        let state = v.project(&base).unwrap();
        // Swap member 0 out for each other candidate and compare the delta
        // score with a from-scratch projection.
        for inn in 3..v.candidate_count().min(30) {
            let (dv, dobj) = state.score_with(&[(0, -1), (inn, 1)]);
            let mut moved = state.clone();
            moved.apply(0, -1);
            moved.apply(inn, 1);
            let fresh = v.project(&moved.to_package()).unwrap();
            let (fv, fobj) = fresh.score();
            assert!((dv - fv).abs() < 1e-9, "violation delta mismatch at {inn}");
            match (dobj, fobj) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9),
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn membership_outside_candidates_is_invalid() {
        let t = recipes(60, Seed(4));
        let v = view_for(&t, MEAL_QUERY);
        let outsider = (0..60u32)
            .map(TupleId)
            .find(|id| v.index_of(*id).is_none())
            .expect("some recipe has gluten");
        let p = Package::from_ids([v.candidates()[0], outsider]);
        assert!(!v.is_valid(&p));
        assert!(v.objective_value(&p).is_none());
        assert!(v.violation(&p) >= UNEVALUABLE_PENALTY);
    }

    #[test]
    fn min_max_terms_rescan_correctly() {
        let t = recipes(40, Seed(5));
        let v = view_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R \
             SUCH THAT COUNT(*) = 2 AND MIN(P.calories) >= 100 MAXIMIZE MAX(P.protein)",
        );
        let ids: Vec<TupleId> = v.candidates().to_vec();
        let p = Package::from_ids(ids.iter().copied().take(2));
        let state = v.project(&p).unwrap();
        let formula = v.formula().unwrap().clone();
        let objective = v.objective().unwrap().clone();
        assert!((state.violation() - p.formula_violation(&t, &formula).unwrap()).abs() < 1e-9);
        assert_eq!(
            state.objective_value(),
            p.objective_value(&t, &objective).unwrap()
        );
        // Delta path for MIN/MAX: swap and compare against the oracle.
        let (dv, dobj) = state.score_with(&[(0, -1), (2, 1)]);
        let q = Package::from_ids([ids[1], ids[2]]);
        assert!((dv - q.formula_violation(&t, &formula).unwrap()).abs() < 1e-9);
        assert_eq!(dobj, q.objective_value(&t, &objective).unwrap());
    }

    #[test]
    fn empty_package_semantics_match_sql() {
        let t = recipes(30, Seed(6));
        let v = view_for(&t, MEAL_QUERY);
        let empty = Package::new();
        // COUNT = 0, SUM = NULL → violation contains the un-evaluable penalty.
        assert!(v.violation(&empty) >= 3.0); // COUNT(*) = 3 violated by 3
        assert_eq!(v.objective_value(&empty), None);
        assert!(!v.is_valid(&empty));
    }
}
