//! Enumeration strategies: exhaustive and pruned candidate-package search.
//!
//! This is the "generate and validate candidate packages" strategy of
//! Section 4, made practical by two bounding rules applied during the
//! depth-first search over candidate multiplicities:
//!
//! * **cardinality bounds** from [`crate::pruning`] — branches whose
//!   cardinality can no longer land inside `[l, u]` are cut;
//! * **partial-sum bounds** — for every linearizable conjunctive constraint
//!   the search keeps the running sum plus the best/worst contribution still
//!   reachable from the remaining candidates, and cuts branches that cannot
//!   possibly re-enter the feasible interval.
//!
//! Exhaustive mode disables both rules and is used as the brute-force
//! baseline of experiments E1/E2.

use lp_solver::ConstraintOp;
use paql::ObjectiveDirection;

use crate::budget::Budget;
use crate::error::PbError;
use crate::ilp::{linearize_formula, linearize_objective, LinearConstraint};
use crate::package::Package;
use crate::pruning::{derive_bounds, CardinalityBounds};
use crate::result::{EvalStats, StrategyUsed};
use crate::view::CandidateView;
use crate::PbResult;

/// Options for the enumeration strategies.
#[derive(Debug, Clone)]
pub struct EnumerationOptions {
    /// Apply cardinality and partial-sum pruning.
    pub prune: bool,
    /// Maximum number of search nodes to expand before giving up.
    pub max_nodes: u64,
    /// Number of best packages to keep (all feasible ones when the query has
    /// no objective, up to this many).
    pub keep: usize,
    /// Cooperative wall-clock budget; on expiry the search aborts and the
    /// best packages found so far are returned with `complete: false`.
    pub budget: Budget,
}

impl Default for EnumerationOptions {
    fn default() -> Self {
        EnumerationOptions {
            prune: true,
            max_nodes: 20_000_000,
            keep: 1,
            budget: Budget::unlimited(),
        }
    }
}

/// Outcome of an enumeration run.
pub struct EnumerationOutcome {
    /// Best packages found (best first under the objective, insertion order
    /// otherwise), with objective values.
    pub packages: Vec<(Package, Option<f64>)>,
    /// True when the whole (pruned) space was explored, i.e. the best package
    /// is provably optimal.
    pub complete: bool,
    /// Search nodes expanded.
    pub nodes: u64,
    /// Number of feasible packages encountered.
    pub feasible_found: u64,
    /// Evaluation statistics.
    pub stats: EvalStats,
}

struct Searcher<'v> {
    view: &'v CandidateView,
    opts: EnumerationOptions,
    bounds: CardinalityBounds,
    linear: Vec<LinearConstraint>,
    /// Per-constraint suffix arrays: the maximum / minimum additional
    /// contribution obtainable from candidates `i..n`.
    suffix_max: Vec<Vec<f64>>,
    suffix_min: Vec<Vec<f64>>,
    objective: Option<(ObjectiveDirection, Vec<f64>)>,
    current: Vec<u32>,
    sums: Vec<f64>,
    cardinality: u64,
    nodes: u64,
    feasible: u64,
    best: Vec<(Package, Option<f64>)>,
    aborted: bool,
}

impl<'v> Searcher<'v> {
    fn new(view: &'v CandidateView, opts: EnumerationOptions) -> Self {
        let n = view.candidate_count();
        let r = view.max_multiplicity() as f64;
        let capacity = n as u64 * view.max_multiplicity() as u64;
        let bounds = if opts.prune {
            derive_bounds(view).clamp_to(capacity)
        } else {
            CardinalityBounds::unbounded().clamp_to(capacity)
        };
        // Linear constraints power the partial-sum bound; they are only an
        // accelerator, feasibility is always re-checked exactly.
        let linear = if opts.prune {
            linearize_formula(view).unwrap_or_default()
        } else {
            Vec::new()
        };
        let mut suffix_max = Vec::with_capacity(linear.len());
        let mut suffix_min = Vec::with_capacity(linear.len());
        for lc in &linear {
            let mut smax = vec![0.0; n + 1];
            let mut smin = vec![0.0; n + 1];
            for i in (0..n).rev() {
                let c = lc.coeffs[i] * r;
                smax[i] = smax[i + 1] + c.max(0.0);
                smin[i] = smin[i + 1] + c.min(0.0);
            }
            suffix_max.push(smax);
            suffix_min.push(smin);
        }
        let objective = linearize_objective(view)
            .ok()
            .flatten()
            .map(|lin| (view.direction(), lin.coeffs));
        Searcher {
            view,
            bounds,
            linear,
            suffix_max,
            suffix_min,
            objective,
            current: vec![0; n],
            sums: Vec::new(),
            cardinality: 0,
            nodes: 0,
            feasible: 0,
            best: Vec::new(),
            aborted: false,
            opts,
        }
    }

    fn record_if_feasible(&mut self) -> PbResult<()> {
        let package = Package::from_members(
            self.current
                .iter()
                .enumerate()
                .filter(|(_, &m)| m > 0)
                .map(|(i, &m)| (self.view.candidates()[i], m)),
        );
        if !self.view.is_valid(&package) {
            return Ok(());
        }
        self.feasible += 1;
        let objective = self.view.objective_value(&package);
        let entry = (package, objective);
        match &self.objective {
            None => {
                if self.best.len() < self.opts.keep {
                    self.best.push(entry);
                }
            }
            Some((direction, _)) => {
                // `best` is kept sorted best-first, so recording a package is
                // a binary-search insert + truncate, not a full re-sort per
                // feasible package. The rank uses `total_cmp` (like greedy
                // and local search) instead of `partial_cmp(..).unwrap_or(Equal)`,
                // so a NaN objective cannot silently compare Equal and
                // corrupt the top-k order; NaN and un-evaluable (None)
                // objectives both rank last for either direction (total_cmp
                // alone would put NaN *above* +inf and crown it the
                // "maximum").
                let dir = *direction;
                let rank = |a: &Option<f64>, b: &Option<f64>| -> std::cmp::Ordering {
                    let evaluable = |o: &Option<f64>| o.filter(|x| !x.is_nan());
                    match (evaluable(a), evaluable(b)) {
                        (Some(x), Some(y)) => match dir {
                            ObjectiveDirection::Maximize => y.total_cmp(&x),
                            ObjectiveDirection::Minimize => x.total_cmp(&y),
                        },
                        (Some(_), None) => std::cmp::Ordering::Less,
                        (None, Some(_)) => std::cmp::Ordering::Greater,
                        (None, None) => std::cmp::Ordering::Equal,
                    }
                };
                // Insert after any equal-ranked entries (stable, matching the
                // previous stable-sort tie behaviour).
                let pos = self
                    .best
                    .partition_point(|e| rank(&e.1, &entry.1) != std::cmp::Ordering::Greater);
                if pos < self.opts.keep {
                    self.best.insert(pos, entry);
                    self.best.truncate(self.opts.keep);
                }
            }
        }
        Ok(())
    }

    /// True when the subtree rooted at position `idx` cannot contain a
    /// feasible package.
    fn prune_subtree(&self, idx: usize) -> bool {
        if !self.opts.prune {
            return false;
        }
        let n = self.view.candidate_count() as u64;
        let r = self.view.max_multiplicity() as u64;
        // Cardinality window.
        let remaining_capacity = (n - idx as u64) * r;
        if self.cardinality > self.bounds.upper.unwrap_or(u64::MAX) {
            return true;
        }
        if self.cardinality + remaining_capacity < self.bounds.lower {
            return true;
        }
        // Partial-sum windows.
        for (c, lc) in self.linear.iter().enumerate() {
            let cur = self.sums[c];
            let max_additional = self.suffix_max[c][idx];
            let min_additional = self.suffix_min[c][idx];
            match lc.op {
                ConstraintOp::Le => {
                    if cur + min_additional > lc.rhs + 1e-9 {
                        return true;
                    }
                }
                ConstraintOp::Ge => {
                    if cur + max_additional < lc.rhs - 1e-9 {
                        return true;
                    }
                }
                ConstraintOp::Eq => {
                    if cur + min_additional > lc.rhs + 1e-9 || cur + max_additional < lc.rhs - 1e-9
                    {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Depth-first search over multiplicity assignments, driven by an
    /// explicit worklist instead of recursion: the recursive formulation
    /// nested one stack frame per candidate index, which overflowed the
    /// thread stack past ~10k candidates. The worklist replays the exact
    /// recursive order — `Visit` is a node entry (counted, budget-checked,
    /// pruned), `Enter` applies one multiplicity on the way down, `Undo`
    /// retracts it on the way back up — so node counts and traversal order
    /// are identical to the old `dfs`.
    fn search(&mut self) -> PbResult<()> {
        enum Step {
            /// Enter the search node at this candidate index.
            Visit(usize),
            /// Assign `mult` at `idx`, then visit `idx + 1`.
            Enter(usize, u32),
            /// Retract the assignment of `mult` at `idx`.
            Undo(usize, u32),
        }
        let n = self.view.candidate_count();
        let max_mult = self.view.max_multiplicity();
        let mut work: Vec<Step> = vec![Step::Visit(0)];
        while let Some(step) = work.pop() {
            match step {
                Step::Undo(idx, mult) => {
                    for (c, lc) in self.linear.iter().enumerate() {
                        self.sums[c] -= lc.coeffs[idx] * mult as f64;
                    }
                    self.cardinality -= mult as u64;
                    self.current[idx] = 0;
                }
                Step::Enter(idx, mult) => {
                    self.current[idx] = mult;
                    self.cardinality += mult as u64;
                    for (c, lc) in self.linear.iter().enumerate() {
                        self.sums[c] += lc.coeffs[idx] * mult as f64;
                    }
                    // LIFO: the undo runs after the whole subtree below.
                    work.push(Step::Undo(idx, mult));
                    work.push(Step::Visit(idx + 1));
                }
                Step::Visit(idx) => {
                    self.nodes += 1;
                    if self.nodes > self.opts.max_nodes {
                        self.aborted = true;
                        return Ok(());
                    }
                    // Deadline check every 256 nodes: cheap relative to the
                    // per-node work, frequent enough that a 10 ms budget
                    // overshoots by well under its own length.
                    if self.nodes.is_multiple_of(256) && self.opts.budget.expired() {
                        self.aborted = true;
                        return Ok(());
                    }
                    if self.prune_subtree(idx) {
                        continue;
                    }
                    if idx == n {
                        // A leaf is a complete multiplicity assignment.
                        if !self.opts.prune
                            || (self.cardinality >= self.bounds.lower
                                && self.cardinality <= self.bounds.upper.unwrap_or(u64::MAX))
                        {
                            self.record_if_feasible()?;
                        }
                        continue;
                    }
                    // Push high multiplicities first so the pop order tries
                    // mult = 0 first, exactly like the recursive loop did.
                    for mult in (0..=max_mult).rev() {
                        work.push(Step::Enter(idx, mult));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Enumerates packages for a candidate view.
pub fn enumerate(view: &CandidateView, opts: EnumerationOptions) -> PbResult<EnumerationOutcome> {
    // pb-lint: allow(time-containment) — stats clock only: stamps the
    // outcome's elapsed_ms; pruning deadlines go through the budget.
    let start = std::time::Instant::now();
    if opts.budget.expired() {
        // Bail before Searcher setup: linearizing every constraint reads
        // all term columns (through the buffer pool when the view is
        // paged), which an already-expired budget must not pay for.
        return Ok(EnumerationOutcome {
            packages: Vec::new(),
            complete: false,
            nodes: 0,
            feasible_found: 0,
            stats: EvalStats {
                strategy: if opts.prune {
                    StrategyUsed::PrunedEnumeration
                } else {
                    StrategyUsed::Exhaustive
                },
                candidates: view.candidate_count(),
                nodes: 0,
                iterations: 0,
                elapsed: start.elapsed(),
            },
        });
    }
    if view.candidate_count() > 64 && !opts.prune {
        // 2^64 leaves is never going to finish; refuse instead of spinning.
        return Err(PbError::Unsupported(format!(
            "exhaustive enumeration over {} candidates is intractable; use pruning, the solver or local search",
            view.candidate_count()
        )));
    }
    let prune = opts.prune;
    let mut searcher = Searcher::new(view, opts);
    searcher.sums = vec![0.0; searcher.linear.len()];
    if searcher.bounds.is_empty() {
        // Contradictory cardinality bounds: provably no valid package.
        return Ok(EnumerationOutcome {
            packages: Vec::new(),
            complete: true,
            nodes: 0,
            feasible_found: 0,
            stats: EvalStats {
                strategy: if prune {
                    StrategyUsed::PrunedEnumeration
                } else {
                    StrategyUsed::Exhaustive
                },
                candidates: view.candidate_count(),
                nodes: 0,
                iterations: 0,
                elapsed: start.elapsed(),
            },
        });
    }
    searcher.search()?;
    let complete = !searcher.aborted;
    Ok(EnumerationOutcome {
        packages: searcher.best.clone(),
        complete,
        nodes: searcher.nodes,
        feasible_found: searcher.feasible,
        stats: EvalStats {
            strategy: if prune {
                StrategyUsed::PrunedEnumeration
            } else {
                StrategyUsed::Exhaustive
            },
            candidates: view.candidate_count(),
            nodes: searcher.nodes,
            iterations: searcher.feasible,
            elapsed: start.elapsed(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PackageSpec;
    use datagen::{recipes, uniform_table, Seed};
    use lp_solver::SolverConfig;
    use minidb::Table;
    use paql::compile;

    fn spec_for<'a>(table: &'a Table, q: &str) -> PackageSpec<'a> {
        let analyzed = compile(q, table.schema()).unwrap();
        PackageSpec::build(&analyzed, table).unwrap()
    }

    const SMALL_QUERY: &str = "SELECT PACKAGE(T) AS P FROM t T \
        SUCH THAT COUNT(*) = 3 AND SUM(P.w) BETWEEN 30 AND 40 MAXIMIZE SUM(P.v)";

    #[test]
    fn pruned_and_exhaustive_agree_on_the_optimum() {
        let t = uniform_table("t", 14, 5.0, 20.0, Seed(1));
        let spec = spec_for(&t, SMALL_QUERY);
        let pruned = enumerate(
            spec.view(),
            EnumerationOptions {
                prune: true,
                ..Default::default()
            },
        )
        .unwrap();
        let exhaustive = enumerate(
            spec.view(),
            EnumerationOptions {
                prune: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(pruned.complete && exhaustive.complete);
        match (pruned.packages.first(), exhaustive.packages.first()) {
            (None, None) => {}
            (Some((_, a)), Some((_, b))) => {
                assert!(
                    (a.unwrap() - b.unwrap()).abs() < 1e-9,
                    "pruning changed the optimum"
                );
            }
            other => panic!("pruning changed feasibility: {other:?}"),
        }
        assert!(
            pruned.nodes <= exhaustive.nodes,
            "pruning should not expand more nodes ({} vs {})",
            pruned.nodes,
            exhaustive.nodes
        );
    }

    #[test]
    fn pruning_matches_the_ilp_optimum() {
        let t = recipes(18, Seed(2));
        let q = "SELECT PACKAGE(R) AS P FROM recipes R \
                 SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 1200 AND 2500 \
                 MAXIMIZE SUM(P.protein)";
        let spec = spec_for(&t, q);
        let enumerated = enumerate(spec.view(), EnumerationOptions::default()).unwrap();
        let ilp = crate::ilp::solve_ilp(
            spec.view(),
            &SolverConfig::default(),
            1,
            &Budget::unlimited(),
        )
        .unwrap();
        let a = enumerated.packages.first().map(|(_, o)| o.unwrap());
        let b = ilp.packages.first().map(|(_, o)| o.unwrap());
        match (a, b) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-6, "enumeration {x} vs ilp {y}"),
            (None, None) => {}
            other => panic!("strategies disagree on feasibility: {other:?}"),
        }
    }

    #[test]
    fn counts_feasible_packages_without_objective() {
        let t = uniform_table("t", 10, 5.0, 10.0, Seed(3));
        let spec = spec_for(&t, "SELECT PACKAGE(T) AS P FROM t T SUCH THAT COUNT(*) = 2");
        let out = enumerate(
            spec.view(),
            EnumerationOptions {
                keep: 100,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.feasible_found, 45); // C(10,2)
        assert_eq!(out.packages.len(), 45);
        assert!(out.complete);
    }

    #[test]
    fn node_budget_aborts_cleanly() {
        let t = uniform_table("t", 30, 5.0, 10.0, Seed(4));
        let spec = spec_for(&t, "SELECT PACKAGE(T) AS P FROM t T SUCH THAT COUNT(*) = 5");
        let out = enumerate(
            spec.view(),
            EnumerationOptions {
                prune: true,
                max_nodes: 1000,
                keep: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!out.complete);
        assert!(out.nodes <= 1001);
    }

    #[test]
    fn exhaustive_over_large_inputs_is_refused() {
        let t = uniform_table("t", 80, 5.0, 10.0, Seed(5));
        let spec = spec_for(&t, "SELECT PACKAGE(T) AS P FROM t T SUCH THAT COUNT(*) = 2");
        assert!(matches!(
            enumerate(
                spec.view(),
                EnumerationOptions {
                    prune: false,
                    ..Default::default()
                }
            ),
            Err(PbError::Unsupported(_))
        ));
    }

    #[test]
    fn contradictory_bounds_short_circuit() {
        let t = uniform_table("t", 25, 5.0, 10.0, Seed(6));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(T) AS P FROM t T SUCH THAT COUNT(*) >= 5 AND COUNT(*) <= 3",
        );
        let out = enumerate(spec.view(), EnumerationOptions::default()).unwrap();
        assert!(out.packages.is_empty());
        assert!(out.complete);
        assert_eq!(out.nodes, 0);
    }

    #[test]
    fn repeat_multiplicities_are_enumerated() {
        let t = uniform_table("t", 6, 5.0, 10.0, Seed(7));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(T) AS P FROM t T REPEAT 2 SUCH THAT COUNT(*) = 4 MAXIMIZE SUM(P.v)",
        );
        let out = enumerate(spec.view(), EnumerationOptions::default()).unwrap();
        let (best, _) = out.packages.first().unwrap();
        assert_eq!(best.cardinality(), 4);
        // The optimum should repeat the highest-value tuples.
        assert!(best.max_multiplicity() <= 2);
    }

    #[test]
    fn nan_objectives_rank_last_not_first() {
        // Regression: the old `partial_cmp(..).unwrap_or(Equal)` let a NaN
        // objective float anywhere in the top-k; naive `total_cmp` would
        // crown it the maximum (NaN > +inf in the total order). It must rank
        // with the un-evaluable packages, i.e. last.
        use minidb::{tuple, ColumnType, Schema, Table};
        let mut t = Table::new(
            "t",
            Schema::build(&[("w", ColumnType::Float), ("v", ColumnType::Float)]),
        );
        t.insert(tuple!(1.0, 5.0)).unwrap();
        t.insert(tuple!(1.0, f64::NAN)).unwrap();
        t.insert(tuple!(1.0, 7.0)).unwrap();
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(T) AS P FROM t T SUCH THAT COUNT(*) = 1 MAXIMIZE SUM(P.v)",
        );
        let out = enumerate(
            spec.view(),
            EnumerationOptions {
                keep: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.packages.len(), 3);
        assert_eq!(out.packages[0].1, Some(7.0), "finite optimum must lead");
        assert_eq!(out.packages[1].1, Some(5.0));
        assert!(out.packages[2].1.unwrap().is_nan(), "NaN ranks last");
    }

    #[test]
    fn avg_constraints_prune_soundly() {
        // AVG-vs-constant atoms now contribute partial-sum rows (via the
        // multiply-through-by-COUNT rewrite); the pruned search must still
        // agree with the exhaustive one.
        let t = uniform_table("t", 12, 5.0, 10.0, Seed(8));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(T) AS P FROM t T SUCH THAT COUNT(*) = 2 AND AVG(P.w) <= 7 MAXIMIZE SUM(P.v)",
        );
        let pruned = enumerate(spec.view(), EnumerationOptions::default()).unwrap();
        let full = enumerate(
            spec.view(),
            EnumerationOptions {
                prune: false,
                ..Default::default()
            },
        )
        .unwrap();
        for (p, _) in &pruned.packages {
            assert!(spec.is_valid(p).unwrap());
        }
        match (pruned.packages.first(), full.packages.first()) {
            (None, None) => {}
            (Some((_, a)), Some((_, b))) => {
                assert!(
                    (a.unwrap() - b.unwrap()).abs() < 1e-9,
                    "pruning changed the AVG optimum"
                );
            }
            other => panic!("pruning changed feasibility: {other:?}"),
        }
    }

    #[test]
    fn non_linear_formulas_still_enumerate_correctly() {
        // AVG vs AVG is genuinely non-linear, so no partial-sum pruning
        // applies, but the enumeration must still validate exactly.
        let t = uniform_table("t", 12, 5.0, 10.0, Seed(8));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(T) AS P FROM t T \
             SUCH THAT COUNT(*) = 2 AND AVG(P.w) <= AVG(P.v) + 10 MAXIMIZE SUM(P.v)",
        );
        let out = enumerate(spec.view(), EnumerationOptions::default()).unwrap();
        assert!(
            !out.packages.is_empty(),
            "every 2-subset satisfies the slack AVG bound"
        );
        for (p, _) in &out.packages {
            assert!(spec.is_valid(p).unwrap());
        }
    }
}
