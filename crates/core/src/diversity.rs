//! Diverse package results (paper Section 5).
//!
//! "The number of solutions to a package query can potentially be extremely
//! large ... We plan to devise techniques to present the user with the most
//! diverse and potentially interesting packages." This module implements the
//! standard max-min dispersion greedy over package supports: starting from
//! the best package, it repeatedly adds the candidate package that maximizes
//! the minimum distance to the already-selected set.

use crate::package::Package;

/// Jaccard distance between the supports of two packages
/// (1 − |A ∩ B| / |A ∪ B|, treating multiplicities as set membership).
pub fn jaccard_distance(a: &Package, b: &Package) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let sa: Vec<_> = a.tuple_ids();
    let sb: Vec<_> = b.tuple_ids();
    let mut intersection = 0usize;
    let mut i = 0;
    let mut j = 0;
    while i < sa.len() && j < sb.len() {
        match sa[i].cmp(&sb[j]) {
            std::cmp::Ordering::Equal => {
                intersection += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    let union = sa.len() + sb.len() - intersection;
    1.0 - intersection as f64 / union as f64
}

/// Selects up to `k` diverse packages from `candidates` (assumed sorted best
/// first). The first (best) package is always kept; subsequent picks maximize
/// the minimum Jaccard distance to the picks so far, breaking ties in favour
/// of better-ranked packages.
pub fn select_diverse(candidates: &[Package], k: usize) -> Vec<Package> {
    if candidates.is_empty() || k == 0 {
        return Vec::new();
    }
    let mut selected: Vec<Package> = vec![candidates[0].clone()];
    let mut remaining: Vec<&Package> = candidates.iter().skip(1).collect();
    while selected.len() < k && !remaining.is_empty() {
        let mut best_idx = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (idx, cand) in remaining.iter().enumerate() {
            let score = selected
                .iter()
                .map(|s| jaccard_distance(s, cand))
                // pb-lint: allow(no-nan-unsafe-ordering) — jaccard_distance
                // is a ratio of finite set sizes in [0, 1]; NaN cannot occur.
                .fold(f64::INFINITY, f64::min);
            if score > best_score + 1e-12 {
                best_score = score;
                best_idx = idx;
            }
        }
        selected.push(remaining.remove(best_idx).clone());
    }
    selected
}

/// Average pairwise Jaccard distance of a set of packages (a simple diversity
/// score used by experiment E6).
pub fn diversity_score(packages: &[Package]) -> f64 {
    if packages.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..packages.len() {
        for j in i + 1..packages.len() {
            total += jaccard_distance(&packages[i], &packages[j]);
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::TupleId;

    fn pkg(ids: &[u32]) -> Package {
        Package::from_ids(ids.iter().map(|&i| TupleId(i)))
    }

    #[test]
    fn jaccard_distance_basics() {
        assert_eq!(jaccard_distance(&pkg(&[1, 2, 3]), &pkg(&[1, 2, 3])), 0.0);
        assert_eq!(jaccard_distance(&pkg(&[1, 2]), &pkg(&[3, 4])), 1.0);
        let d = jaccard_distance(&pkg(&[1, 2, 3]), &pkg(&[2, 3, 4]));
        assert!((d - 0.5).abs() < 1e-9);
        assert_eq!(jaccard_distance(&Package::new(), &Package::new()), 0.0);
        assert_eq!(jaccard_distance(&Package::new(), &pkg(&[1])), 1.0);
    }

    #[test]
    fn select_diverse_prefers_disjoint_packages() {
        let candidates = vec![
            pkg(&[1, 2, 3]), // best
            pkg(&[1, 2, 4]), // near-duplicate of best
            pkg(&[7, 8, 9]), // disjoint
            pkg(&[1, 3, 4]),
        ];
        let picked = select_diverse(&candidates, 2);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0], candidates[0]);
        assert_eq!(
            picked[1], candidates[2],
            "should pick the disjoint package second"
        );
        // Diversity of the picked pair beats the top-2 prefix.
        assert!(diversity_score(&picked) > diversity_score(&candidates[..2]));
    }

    #[test]
    fn select_diverse_handles_small_inputs() {
        assert!(select_diverse(&[], 3).is_empty());
        let one = vec![pkg(&[1])];
        assert_eq!(select_diverse(&one, 3).len(), 1);
        assert_eq!(select_diverse(&one, 0).len(), 0);
    }

    #[test]
    fn diversity_score_ranges() {
        assert_eq!(diversity_score(&[pkg(&[1])]), 0.0);
        let all_disjoint = vec![pkg(&[1]), pkg(&[2]), pkg(&[3])];
        assert!((diversity_score(&all_disjoint) - 1.0).abs() < 1e-9);
    }
}
