//! The validated, executable form of a package query.

use minidb::eval::eval_predicate;
use minidb::stats::TableStats;
use minidb::{Expr, Table, TupleId};
use paql::{AnalyzedQuery, GlobalFormula, Objective, PaqlQuery};

use crate::cache::ViewCache;
use crate::column_store::ColumnPolicy;
use crate::package::Package;
use crate::par::ParExec;
use crate::view::CandidateView;
use crate::PbResult;

/// Evaluates a query's base (`WHERE`) predicate over a table: the candidate
/// tuple ids, in id order — the paper's "use SQL to evaluate the base
/// constraints" step (`SELECT * FROM R WHERE <base>`). `None` keeps every
/// tuple. Shared by [`PackageSpec::build`] and the [`ViewCache`] cold path.
pub fn base_candidates(table: &Table, where_clause: Option<&Expr>) -> PbResult<Vec<TupleId>> {
    base_candidates_par(table, where_clause, ParExec::sequential())
}

/// [`base_candidates`] with the predicate scan fanned out over `par` in
/// fixed-width row chunks. Per-chunk match lists concatenate in chunk order
/// (and tuple ids are insertion indices), so the candidate list — and any
/// evaluation error: first failing chunk, first failing row — is identical
/// at every thread count.
pub fn base_candidates_par(
    table: &Table,
    where_clause: Option<&Expr>,
    par: ParExec,
) -> PbResult<Vec<TupleId>> {
    let pred = match where_clause {
        None => return Ok(table.iter().map(|(id, _)| id).collect()),
        Some(pred) => pred,
    };
    let rows = table.rows();
    let schema = table.schema();
    let chunks = par.run_chunks(rows.len(), |_, range| -> PbResult<Vec<TupleId>> {
        let mut matched = Vec::new();
        for i in range {
            if eval_predicate(pred, schema, &rows[i])? {
                matched.push(TupleId(i as u32));
            }
        }
        Ok(matched)
    });
    let mut candidates = Vec::new();
    for chunk in chunks {
        candidates.extend(chunk?);
    }
    Ok(candidates)
}

/// A package query bound to a concrete table: the candidate tuples that
/// survive the base constraints, the global formula, the objective and the
/// multiplicity bound.
///
/// Building a spec corresponds to the "use SQL to evaluate the base
/// constraints" step of the paper — the candidate set is exactly the result
/// of `SELECT * FROM R WHERE <base>`. The spec then lowers the query onto a
/// columnar [`CandidateView`], which every evaluation strategy consumes;
/// `is_valid`, `violation` and `objective_value` all route through the view's
/// columns rather than re-interpreting expression trees per tuple.
#[derive(Debug, Clone)]
pub struct PackageSpec<'a> {
    /// The base relation.
    pub table: &'a Table,
    /// Tuples satisfying the base constraints, in id order.
    pub candidates: Vec<TupleId>,
    /// Maximum multiplicity of a tuple in the package (from `REPEAT`).
    pub max_multiplicity: u32,
    /// The `SUCH THAT` formula, if any.
    pub formula: Option<GlobalFormula>,
    /// The objective, if any.
    pub objective: Option<Objective>,
    /// The original query (for diagnostics and pretty-printing).
    pub query: PaqlQuery,
    /// The columnar evaluation core.
    view: CandidateView,
}

impl<'a> PackageSpec<'a> {
    /// Builds a spec from an analyzed query and its base table. The
    /// candidate rows are profiled and lowered into the columnar view in the
    /// same pass, borrowing rows straight from the table (no clones).
    pub fn build(analyzed: &AnalyzedQuery, table: &'a Table) -> PbResult<Self> {
        Self::build_par(analyzed, table, ParExec::sequential())
    }

    /// [`PackageSpec::build`] with the base-predicate scan and column
    /// materialization fanned out over `par` (see [`crate::par`]); the
    /// engine passes its configured executor here. Bit-identical to the
    /// sequential build at every thread count. Column storage follows
    /// [`ColumnPolicy::default`] (environment-derived);
    /// [`PackageSpec::build_with`] takes an explicit policy.
    pub fn build_par(analyzed: &AnalyzedQuery, table: &'a Table, par: ParExec) -> PbResult<Self> {
        Self::build_with(analyzed, table, &ColumnPolicy::default(), par)
    }

    /// [`PackageSpec::build_par`] under an explicit [`ColumnPolicy`]: the
    /// view's term columns go out-of-core (spill file + buffer pool) when
    /// their estimated footprint exceeds the policy's resident budget —
    /// [`crate::config::EngineConfig::column_memory_budget`] arrives here.
    /// The storage mode never changes results, only where column bytes live.
    pub fn build_with(
        analyzed: &AnalyzedQuery,
        table: &'a Table,
        policy: &ColumnPolicy,
        par: ParExec,
    ) -> PbResult<Self> {
        let query = analyzed.query.clone();
        let candidates = base_candidates_par(table, query.where_clause.as_ref(), par)?;
        let view = CandidateView::build_par_with(
            table,
            candidates.clone(),
            query.max_multiplicity(),
            query.such_that.clone(),
            query.objective.clone(),
            policy,
            par,
        )?;
        Ok(PackageSpec {
            table,
            max_multiplicity: query.max_multiplicity(),
            formula: query.such_that.clone(),
            objective: query.objective.clone(),
            candidates,
            view,
            query,
        })
    }

    /// [`PackageSpec::build`] through a [`ViewCache`]: candidate evaluation,
    /// statistics and term columns are reused from the cache when the
    /// relation contents and base predicate match a cached bank (with only
    /// missing term columns materialized), and banked for future queries
    /// otherwise. The resulting spec is indistinguishable from a cold build
    /// — see the cache module docs for the determinism argument.
    pub fn build_cached(
        analyzed: &AnalyzedQuery,
        table: &'a Table,
        cache: &ViewCache,
    ) -> PbResult<Self> {
        Self::build_cached_par(analyzed, table, cache, ParExec::sequential())
    }

    /// [`PackageSpec::build_cached`] with cache-miss work (candidate
    /// evaluation, missing-column materialization) fanned out over `par`.
    pub fn build_cached_par(
        analyzed: &AnalyzedQuery,
        table: &'a Table,
        cache: &ViewCache,
        par: ParExec,
    ) -> PbResult<Self> {
        Self::build_cached_with(analyzed, table, cache, &ColumnPolicy::default(), par)
    }

    /// [`PackageSpec::build_cached_par`] under an explicit [`ColumnPolicy`]
    /// (see [`PackageSpec::build_with`]); cache-miss columns obey the
    /// policy, banked columns keep the mode they were built with.
    pub fn build_cached_with(
        analyzed: &AnalyzedQuery,
        table: &'a Table,
        cache: &ViewCache,
        policy: &ColumnPolicy,
        par: ParExec,
    ) -> PbResult<Self> {
        let query = analyzed.query.clone();
        let view = cache.view_for_with(&query, table, policy, par)?;
        Ok(PackageSpec {
            table,
            candidates: view.candidates().to_vec(),
            max_multiplicity: query.max_multiplicity(),
            formula: query.such_that.clone(),
            objective: query.objective.clone(),
            view,
            query,
        })
    }

    /// The columnar view every solver consumes.
    pub fn view(&self) -> &CandidateView {
        &self.view
    }

    /// Statistics over the candidate tuples (used by pruning and greedy
    /// construction).
    pub fn stats(&self) -> &TableStats {
        self.view.stats()
    }

    /// Number of candidate tuples (the `n` of the paper's complexity
    /// discussion).
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// True when `package` is a valid answer: every member is a candidate
    /// (base constraints), multiplicities respect `REPEAT`, and the global
    /// formula holds. Evaluated columnar-ly; the `Result` is kept for API
    /// stability (view evaluation cannot fail after `build`).
    pub fn is_valid(&self, package: &Package) -> PbResult<bool> {
        Ok(self.view.is_valid(package))
    }

    /// Validates a package through the *interpreted* oracle — AST evaluation
    /// against the base table, sharing no code with the columnar view. The
    /// planner uses this for its defensive re-check of solver output, so a
    /// bug in view compilation cannot certify its own results.
    pub fn is_valid_interpreted(&self, package: &Package) -> PbResult<bool> {
        if package.max_multiplicity() > self.max_multiplicity {
            return Ok(false);
        }
        for (tid, _) in package.members() {
            if self.candidates.binary_search(&tid).is_err() {
                return Ok(false);
            }
        }
        match &self.formula {
            None => Ok(true),
            Some(f) => package.satisfies(self.table, f),
        }
    }

    /// Objective value of a package under this spec (`None` when the query
    /// has no objective or the objective is not evaluable).
    pub fn objective_value(&self, package: &Package) -> PbResult<Option<f64>> {
        Ok(self.view.objective_value(package))
    }

    /// Total constraint violation of a package (0 when feasible).
    pub fn violation(&self, package: &Package) -> PbResult<f64> {
        Ok(self.view.violation(package))
    }

    /// Restricts the spec to a subset of its candidates (used by adaptive
    /// exploration to narrow the search space after user feedback). The view
    /// is rebuilt over the surviving candidates — statistics and columns are
    /// streamed from borrowed rows.
    pub fn restrict_candidates(&self, keep: impl Fn(TupleId) -> bool) -> PackageSpec<'a> {
        let candidates: Vec<TupleId> = self
            .candidates
            .iter()
            .copied()
            .filter(|&t| keep(t))
            .collect();
        let view = CandidateView::build(
            self.table,
            candidates.clone(),
            self.max_multiplicity,
            self.formula.clone(),
            self.objective.clone(),
        )
        // pb-lint: allow(no-panic-in-solver-paths) — invariant: the parent
        // view already evaluated these exact tuples; a subset cannot add
        // new evaluation failures.
        .expect("restricting candidates cannot introduce evaluation errors");
        PackageSpec {
            table: self.table,
            candidates,
            max_multiplicity: self.max_multiplicity,
            formula: self.formula.clone(),
            objective: self.objective.clone(),
            view,
            query: self.query.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{recipes, Seed};
    use minidb::TupleId;
    use paql::compile;

    fn spec_for<'a>(table: &'a Table, q: &str) -> PackageSpec<'a> {
        let analyzed = compile(q, table.schema()).unwrap();
        PackageSpec::build(&analyzed, table).unwrap()
    }

    #[test]
    fn base_constraints_filter_candidates() {
        let t = recipes(200, Seed(1));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH THAT COUNT(*) = 3",
        );
        assert!(spec.candidate_count() > 0);
        assert!(spec.candidate_count() < 200);
        for id in &spec.candidates {
            let v = t
                .require(*id)
                .unwrap()
                .get_named(t.schema(), "gluten")
                .unwrap();
            assert_eq!(v.to_string(), "free");
        }
        assert_eq!(spec.view().candidates(), spec.candidates.as_slice());
    }

    #[test]
    fn no_where_clause_keeps_everything() {
        let t = recipes(50, Seed(2));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 2",
        );
        assert_eq!(spec.candidate_count(), 50);
    }

    #[test]
    fn validity_checks_membership_multiplicity_and_formula() {
        let t = recipes(100, Seed(3));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH THAT COUNT(*) = 2",
        );
        let a = spec.candidates[0];
        let b = spec.candidates[1];
        assert!(spec.is_valid(&Package::from_ids([a, b])).unwrap());
        // Wrong cardinality.
        assert!(!spec.is_valid(&Package::from_ids([a])).unwrap());
        // Multiplicity above REPEAT (default 1).
        assert!(!spec.is_valid(&Package::from_members([(a, 2)])).unwrap());
        // Tuple outside the base constraint (find a non-candidate id).
        let outsider = (0..100u32)
            .map(TupleId)
            .find(|id| spec.candidates.binary_search(id).is_err())
            .expect("some recipe has gluten");
        assert!(!spec.is_valid(&Package::from_ids([a, outsider])).unwrap());
    }

    #[test]
    fn restrict_candidates_narrows_the_space() {
        let t = recipes(100, Seed(4));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 2",
        );
        let keep: Vec<TupleId> = spec.candidates.iter().copied().take(10).collect();
        let narrowed = spec.restrict_candidates(|t| keep.contains(&t));
        assert_eq!(narrowed.candidate_count(), 10);
        assert_eq!(narrowed.max_multiplicity, spec.max_multiplicity);
        assert_eq!(narrowed.view().candidate_count(), 10);
        assert_eq!(narrowed.stats().row_count(), 10);
    }

    #[test]
    fn objective_and_violation_delegate_to_the_view() {
        let t = recipes(100, Seed(5));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 2 AND SUM(P.calories) <= 100 \
             MAXIMIZE SUM(P.protein)",
        );
        let p = Package::from_ids(spec.candidates.iter().copied().take(2));
        assert!(spec.objective_value(&p).unwrap().unwrap() > 0.0);
        // Two recipes always exceed 100 calories in this generator.
        assert!(spec.violation(&p).unwrap() > 0.0);
        assert!(!spec.is_valid(&p).unwrap());
        // The interpreted oracle agrees with the columnar path.
        let oracle = p
            .formula_violation(&t, spec.formula.as_ref().unwrap())
            .unwrap();
        assert!((spec.violation(&p).unwrap() - oracle).abs() < 1e-9);
    }

    #[test]
    fn stats_cover_candidates_without_cloning_rows() {
        let t = recipes(80, Seed(6));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH THAT COUNT(*) = 2",
        );
        assert_eq!(spec.stats().row_count(), spec.candidate_count());
        assert!(spec.stats().column("calories").unwrap().min > 0.0);
    }
}
