//! The validated, executable form of a package query.

use minidb::eval::eval_predicate;
use minidb::stats::TableStats;
use minidb::{Table, TupleId};
use paql::{AnalyzedQuery, GlobalFormula, Objective, PaqlQuery};

use crate::package::Package;
use crate::PbResult;

/// A package query bound to a concrete table: the candidate tuples that
/// survive the base constraints, the global formula, the objective and the
/// multiplicity bound.
///
/// All evaluation strategies consume a `PackageSpec`; building it corresponds
/// to the "use SQL to evaluate the base constraints" step of the paper — the
/// candidate set is exactly the result of `SELECT * FROM R WHERE <base>`.
#[derive(Debug, Clone)]
pub struct PackageSpec<'a> {
    /// The base relation.
    pub table: &'a Table,
    /// Tuples satisfying the base constraints, in id order.
    pub candidates: Vec<TupleId>,
    /// Maximum multiplicity of a tuple in the package (from `REPEAT`).
    pub max_multiplicity: u32,
    /// The `SUCH THAT` formula, if any.
    pub formula: Option<GlobalFormula>,
    /// The objective, if any.
    pub objective: Option<Objective>,
    /// Statistics over the candidate tuples (used by pruning and greedy
    /// construction).
    pub stats: TableStats,
    /// The original query (for diagnostics and pretty-printing).
    pub query: PaqlQuery,
}

impl<'a> PackageSpec<'a> {
    /// Builds a spec from an analyzed query and its base table.
    pub fn build(analyzed: &AnalyzedQuery, table: &'a Table) -> PbResult<Self> {
        let query = analyzed.query.clone();
        let mut candidates = Vec::new();
        match &query.where_clause {
            None => candidates.extend(table.iter().map(|(id, _)| id)),
            Some(pred) => {
                for (id, tuple) in table.iter() {
                    if eval_predicate(pred, table.schema(), tuple)? {
                        candidates.push(id);
                    }
                }
            }
        }
        let rows: Vec<minidb::Tuple> = candidates
            .iter()
            .map(|id| table.require(*id).cloned())
            .collect::<Result<_, _>>()?;
        let stats = TableStats::of_rows(table.schema(), &rows);
        Ok(PackageSpec {
            table,
            max_multiplicity: query.max_multiplicity(),
            formula: query.such_that.clone(),
            objective: query.objective.clone(),
            stats,
            candidates,
            query,
        })
    }

    /// Number of candidate tuples (the `n` of the paper's complexity
    /// discussion).
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// True when `package` is a valid answer: every member is a candidate
    /// (base constraints), multiplicities respect `REPEAT`, and the global
    /// formula holds.
    pub fn is_valid(&self, package: &Package) -> PbResult<bool> {
        if package.max_multiplicity() > self.max_multiplicity {
            return Ok(false);
        }
        for (tid, _) in package.members() {
            if self.candidates.binary_search(&tid).is_err() {
                return Ok(false);
            }
        }
        match &self.formula {
            None => Ok(true),
            Some(f) => package.satisfies(self.table, f),
        }
    }

    /// Objective value of a package under this spec (`None` when the query
    /// has no objective or the objective is not evaluable).
    pub fn objective_value(&self, package: &Package) -> PbResult<Option<f64>> {
        match &self.objective {
            None => Ok(None),
            Some(o) => package.objective_value(self.table, o),
        }
    }

    /// Total constraint violation of a package (0 when feasible).
    pub fn violation(&self, package: &Package) -> PbResult<f64> {
        match &self.formula {
            None => Ok(0.0),
            Some(f) => package.formula_violation(self.table, f),
        }
    }

    /// Restricts the spec to a subset of its candidates (used by adaptive
    /// exploration to narrow the search space after user feedback).
    pub fn restrict_candidates(&self, keep: impl Fn(TupleId) -> bool) -> PackageSpec<'a> {
        let candidates: Vec<TupleId> = self.candidates.iter().copied().filter(|&t| keep(t)).collect();
        let rows: Vec<minidb::Tuple> = candidates
            .iter()
            .filter_map(|id| self.table.get(*id).cloned())
            .collect();
        PackageSpec {
            table: self.table,
            candidates,
            max_multiplicity: self.max_multiplicity,
            formula: self.formula.clone(),
            objective: self.objective.clone(),
            stats: TableStats::of_rows(self.table.schema(), &rows),
            query: self.query.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{recipes, Seed};
    use minidb::TupleId;
    use paql::compile;

    fn spec_for<'a>(table: &'a Table, q: &str) -> PackageSpec<'a> {
        let analyzed = compile(q, table.schema()).unwrap();
        PackageSpec::build(&analyzed, table).unwrap()
    }

    #[test]
    fn base_constraints_filter_candidates() {
        let t = recipes(200, Seed(1));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH THAT COUNT(*) = 3",
        );
        assert!(spec.candidate_count() > 0);
        assert!(spec.candidate_count() < 200);
        for id in &spec.candidates {
            let v = t.require(*id).unwrap().get_named(t.schema(), "gluten").unwrap();
            assert_eq!(v.to_string(), "free");
        }
    }

    #[test]
    fn no_where_clause_keeps_everything() {
        let t = recipes(50, Seed(2));
        let spec = spec_for(&t, "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 2");
        assert_eq!(spec.candidate_count(), 50);
    }

    #[test]
    fn validity_checks_membership_multiplicity_and_formula() {
        let t = recipes(100, Seed(3));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' SUCH THAT COUNT(*) = 2",
        );
        let a = spec.candidates[0];
        let b = spec.candidates[1];
        assert!(spec.is_valid(&Package::from_ids([a, b])).unwrap());
        // Wrong cardinality.
        assert!(!spec.is_valid(&Package::from_ids([a])).unwrap());
        // Multiplicity above REPEAT (default 1).
        assert!(!spec.is_valid(&Package::from_members([(a, 2)])).unwrap());
        // Tuple outside the base constraint (find a non-candidate id).
        let outsider = (0..100u32)
            .map(TupleId)
            .find(|id| spec.candidates.binary_search(id).is_err())
            .expect("some recipe has gluten");
        assert!(!spec.is_valid(&Package::from_ids([a, outsider])).unwrap());
    }

    #[test]
    fn restrict_candidates_narrows_the_space() {
        let t = recipes(100, Seed(4));
        let spec = spec_for(&t, "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 2");
        let keep: Vec<TupleId> = spec.candidates.iter().copied().take(10).collect();
        let narrowed = spec.restrict_candidates(|t| keep.contains(&t));
        assert_eq!(narrowed.candidate_count(), 10);
        assert_eq!(narrowed.max_multiplicity, spec.max_multiplicity);
    }

    #[test]
    fn objective_and_violation_delegate_to_package() {
        let t = recipes(100, Seed(5));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 2 AND SUM(P.calories) <= 100 \
             MAXIMIZE SUM(P.protein)",
        );
        let p = Package::from_ids(spec.candidates.iter().copied().take(2));
        assert!(spec.objective_value(&p).unwrap().unwrap() > 0.0);
        // Two recipes always exceed 100 calories in this generator.
        assert!(spec.violation(&p).unwrap() > 0.0);
        assert!(!spec.is_valid(&p).unwrap());
    }
}
