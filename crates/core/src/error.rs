//! Engine error type.

use std::fmt;

use lp_solver::LpError;
use minidb::DbError;
use paql::PaqlError;

/// Errors produced by the package query engine.
#[derive(Debug, Clone, PartialEq)]
pub enum PbError {
    /// Error from the relational substrate.
    Db(DbError),
    /// Error from the PaQL front end.
    Paql(PaqlError),
    /// Error from the LP/MILP solver substrate.
    Solver(LpError),
    /// The query references a relation that is not in the catalog.
    UnknownRelation(String),
    /// The query (or the requested strategy) cannot be evaluated by the
    /// chosen method, e.g. a non-linear global constraint sent to the ILP
    /// translator.
    Unsupported(String),
    /// The evaluation budget (time, nodes, restarts) was exhausted before a
    /// valid package was found. This does not imply the query is infeasible.
    BudgetExhausted(String),
    /// Any other engine-level invariant violation.
    Internal(String),
}

impl fmt::Display for PbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PbError::Db(e) => write!(f, "database error: {e}"),
            PbError::Paql(e) => write!(f, "PaQL error: {e}"),
            PbError::Solver(e) => write!(f, "solver error: {e}"),
            PbError::UnknownRelation(r) => write!(f, "unknown relation '{r}'"),
            PbError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            PbError::BudgetExhausted(m) => write!(f, "evaluation budget exhausted: {m}"),
            PbError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for PbError {}

impl From<DbError> for PbError {
    fn from(e: DbError) -> Self {
        PbError::Db(e)
    }
}

impl From<PaqlError> for PbError {
    fn from(e: PaqlError) -> Self {
        PbError::Paql(e)
    }
}

impl From<LpError> for PbError {
    fn from(e: LpError) -> Self {
        PbError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PbError = DbError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains("unknown column"));
        let e: PbError = PaqlError::Semantic("bad".into()).into();
        assert!(e.to_string().contains("PaQL"));
        let e: PbError = LpError::IterationLimit.into();
        assert!(e.to_string().contains("solver"));
        assert!(PbError::UnknownRelation("meals".into())
            .to_string()
            .contains("meals"));
    }
}
