//! Progressive shading: hierarchical sketch→refine for 10^6+ candidates.
//!
//! The flat sketch→refine solver ([`crate::sketch_refine`]) puts one integer
//! variable per partition into its sketch ILP. At the default partition size
//! of 64, a 10^7-candidate view sketches over ~156 000 variables — the
//! sketch itself becomes the monolithic problem it was meant to avoid.
//! Progressive Shading (Mai, Abouzied, Brucato, Haas, Meliou: "Scaling
//! Package Queries to a Billion Tuples via Hierarchical Partitioning and
//! Customized Optimization", 2023) removes that bottleneck with a partition
//! *tree*:
//!
//! 1. **Grow** ([`crate::partition::build_partition_tree`]): the flat leaf
//!    partitioning is grouped recursively — the same size-bounded k-d median
//!    split, applied to leaf centroids — until the coarsest layer has at most
//!    [`crate::solver::SolveOptions::shade_fanout`] nodes. Every node carries
//!    its subtree's exact candidate weight and mean-coefficient centroid.
//! 2. **Descend**: sketch the coarsest layer's representatives (an ILP with
//!    ≤ `shade_fanout` variables), keep only the nodes the sketch draws
//!    from, expand them into their children, and re-sketch — layer by layer
//!    down to the leaves. Unselected subtrees are never expanded, so every
//!    intermediate ILP stays small *regardless of `n`*.
//! 3. **Refine**: the shaded leaves run the flat solver's refinement
//!    verbatim — `sketch_refine`'s `refine_with_backtracking` with its
//!    failed-partition backtracking, warm-hinted and memoized sub-ILPs, and
//!    greedy degradation under deadline pressure.
//!
//! Like the flat solver, the greedy baseline runs first and is only replaced
//! by a strictly better shaded package, so the quality floor is
//! [`crate::solver::GreedySolver`]'s at every budget. The tree is memoized
//! next to the flat partitionings (see [`crate::cache::PartitionMemo`]), so
//! repeated queries — and portfolio workers racing over clones of one view —
//! grow it once. With `shade_leaf_size` left equal to
//! `sketch_partition_size` (the default), the leaf partitioning *is* the
//! flat solver's partitioning — one `Arc`, shared sub-ILP memo entries.
//!
//! Determinism: layer means are aggregated in ascending child order, the
//! descent's active sets are sorted after every expansion, and all chunked
//! scans go through [`crate::par::ParExec`]'s fixed-width fan-out — the
//! solve is bit-identical at every thread count and storage mode
//! (`tests/parallel_determinism.rs`, `tests/paged_determinism.rs`).

use crate::error::PbError;
use crate::ilp::{linearize_formula, linearize_objective, LinearConstraint};
use crate::package::Package;
use crate::result::{EvalStats, StrategyUsed};
use crate::sketch_refine::{
    partition_means, refine_with_backtracking, solve_sketch, Counters, RefineCtx,
};
use crate::solver::{GreedySolver, SolveOptions, SolveOutcome, Solver};
use crate::view::{CandidateView, ViewState};
use crate::PbResult;

/// Partition-tree descent evaluation (see the module docs).
///
/// Requires a linearizable query, like [`crate::sketch_refine::SketchRefineSolver`];
/// non-linearizable queries get [`PbError::Unsupported`] so the solver drops
/// out of a portfolio race cleanly. Returns a single package (`num_packages`
/// is a documented no-op here, like the greedy solver).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProgressiveShadingSolver;

impl Solver for ProgressiveShadingSolver {
    fn strategy(&self) -> StrategyUsed {
        StrategyUsed::ProgressiveShading
    }

    fn solve(&self, view: &CandidateView, opts: &SolveOptions) -> PbResult<SolveOutcome> {
        // pb-lint: allow(time-containment) — stats clock only: stamps
        // elapsed; descent deadlines go through the budget.
        let start = std::time::Instant::now();
        let rows = linearize_formula(view).map_err(|r| {
            PbError::Unsupported(format!(
                "progressive shading requires a linearizable query: {r}"
            ))
        })?;
        let objective = linearize_objective(view).map_err(|r| {
            PbError::Unsupported(format!(
                "progressive shading requires a linearizable objective: {r}"
            ))
        })?;
        if view.candidate_count() == 0 {
            return Ok(SolveOutcome::empty(
                StrategyUsed::ProgressiveShading,
                0,
                false,
            ));
        }

        // Greedy baseline first: the anytime answer, and the floor the
        // shaded package must beat to be returned.
        let baseline = GreedySolver.solve(view, opts)?;
        let mut counters = Counters {
            nodes: baseline.stats.nodes,
            iterations: baseline.stats.iterations,
        };
        let mut best: Option<(Package, Option<f64>)> = baseline.packages.into_iter().next();

        if !opts.budget.expired() {
            let shaded = shade_and_refine(
                view,
                &rows,
                objective.as_ref().map(|o| o.coeffs.as_slice()),
                opts,
                &mut counters,
            )?;
            if let Some((package, obj)) = shaded {
                let direction = view.direction();
                let replace = match &best {
                    None => true,
                    Some((_, cur)) => Package::better_objective(direction, obj, *cur),
                };
                if replace {
                    best = Some((package, obj));
                }
            }
        }

        Ok(SolveOutcome {
            packages: best.into_iter().collect(),
            optimal: false,
            stats: EvalStats {
                strategy: StrategyUsed::ProgressiveShading,
                candidates: view.candidate_count(),
                nodes: counters.nodes,
                iterations: counters.iterations,
                elapsed: start.elapsed(),
            },
        })
    }
}

/// Grows (or fetches) the partition tree, descends it, and refines the
/// shaded leaves. `Ok(None)` means a sketch was infeasible, the budget ran
/// out mid-descent, or the refined package could not be repaired to
/// feasibility — the greedy baseline then stands. `Err` is reserved for
/// internal invariant violations (surfaced from the shared refine driver).
fn shade_and_refine(
    view: &CandidateView,
    rows: &[LinearConstraint],
    obj_coeffs: Option<&[f64]>,
    opts: &SolveOptions,
    counters: &mut Counters,
) -> PbResult<Option<(Package, Option<f64>)>> {
    let tree = match view.partition_tree(
        opts.shade_leaf_size,
        opts.shade_fanout,
        opts.seed,
        &opts.budget,
        opts.par,
    ) {
        Some(t) => t,
        None => return Ok(None),
    };
    let parts = tree.leaves().partitions();
    if parts.is_empty() {
        return Ok(None);
    }

    // Leaf representative means, one row per constraint (plus the
    // objective), chunk-fanned over `opts.par` exactly like the flat path.
    let mut means: Vec<Vec<f64>> = Vec::with_capacity(rows.len());
    for row in rows {
        match partition_means(parts, &row.coeffs, opts) {
            Some(m) => means.push(m),
            None => return Ok(None),
        }
    }
    let obj_means: Option<Vec<f64>> = match obj_coeffs {
        Some(o) => match partition_means(parts, o, opts) {
            Some(m) => Some(m),
            None => return Ok(None),
        },
        None => None,
    };
    if opts.budget.expired() {
        return Ok(None);
    }

    // Per-layer representative means, aggregated bottom-up from the leaf
    // means: a node's mean is the weight-proportional mean of its children's
    // (accumulated in ascending child order — deterministic). One coefficient
    // row per constraint plus (optionally) the objective, laid out as
    // `layer_means[layer][row][node]` with the objective last when present.
    let mut coeff_rows: Vec<&[f64]> = means.iter().map(|m| m.as_slice()).collect();
    if let Some(om) = obj_means.as_deref() {
        coeff_rows.push(om);
    }
    let leaf_weights: Vec<f64> = parts.iter().map(|p| p.members.len() as f64).collect();
    let mut layer_means: Vec<Vec<Vec<f64>>> = Vec::with_capacity(tree.height());
    for (l, layer) in tree.layers().iter().enumerate() {
        if opts.budget.expired() {
            return Ok(None);
        }
        let rolled: Vec<Vec<f64>> = coeff_rows
            .iter()
            .enumerate()
            .map(|(r, _)| {
                layer
                    .iter()
                    .map(|node| {
                        let total: f64 = node
                            .children
                            .iter()
                            .map(|&c| {
                                let (w, m) = if l == 0 {
                                    (leaf_weights[c], coeff_rows[r][c])
                                } else {
                                    (
                                        tree.layers()[l - 1][c].weight as f64,
                                        layer_means[l - 1][r][c],
                                    )
                                };
                                w * m
                            })
                            .sum();
                        total / node.weight as f64
                    })
                    .collect()
            })
            .collect();
        layer_means.push(rolled);
    }

    // Descent: sketch the coarsest layer, expand only the selected nodes,
    // re-sketch — down to a shaded set of leaf ids. With no layers (few
    // leaves), every leaf is shaded and this is exactly the flat sketch.
    let obj_row = obj_means.as_ref().map(|_| coeff_rows.len() - 1);
    let mut active: Vec<usize> = match tree.height() {
        0 => (0..parts.len()).collect(),
        h => (0..tree.layers()[h - 1].len()).collect(),
    };
    for l in (0..tree.height()).rev() {
        if opts.budget.expired() {
            return Ok(None);
        }
        let layer = &tree.layers()[l];
        let capacities: Vec<u64> = active.iter().map(|&i| layer[i].capacity(view)).collect();
        let gathered: Vec<Vec<f64>> = (0..rows.len())
            .map(|r| active.iter().map(|&i| layer_means[l][r][i]).collect())
            .collect();
        let means_rows: Vec<&[f64]> = gathered.iter().map(|m| m.as_slice()).collect();
        let layer_obj: Option<Vec<f64>> =
            obj_row.map(|r| active.iter().map(|&i| layer_means[l][r][i]).collect());
        let layer_counts = match solve_sketch(
            view,
            &capacities,
            rows,
            &means_rows,
            layer_obj.as_deref(),
            opts,
            counters,
        ) {
            Some(c) => c,
            None => return Ok(None),
        };
        let mut next: Vec<usize> = active
            .iter()
            .zip(&layer_counts)
            .filter(|&(_, &count)| count > 0)
            .flat_map(|(&i, _)| layer[i].children.iter().copied())
            .collect();
        next.sort_unstable();
        if next.is_empty() {
            // The sketch says the empty package: only useful if feasible.
            let state = ViewState::empty(view);
            return Ok(state
                .is_feasible()
                .then(|| (state.to_package(), state.objective_value())));
        }
        active = next;
    }

    // Leaf sketch over the shaded leaves, scattered back to full-length
    // counts for the shared refine driver (zero outside the shade).
    if opts.budget.expired() {
        return Ok(None);
    }
    let capacities: Vec<u64> = active.iter().map(|&p| parts[p].capacity(view)).collect();
    let gathered: Vec<Vec<f64>> = (0..rows.len())
        .map(|r| active.iter().map(|&p| means[r][p]).collect())
        .collect();
    let means_rows: Vec<&[f64]> = gathered.iter().map(|m| m.as_slice()).collect();
    let leaf_obj: Option<Vec<f64>> = obj_means
        .as_ref()
        .map(|om| active.iter().map(|&p| om[p]).collect());
    let shaded_counts = match solve_sketch(
        view,
        &capacities,
        rows,
        &means_rows,
        leaf_obj.as_deref(),
        opts,
        counters,
    ) {
        Some(c) => c,
        None => return Ok(None),
    };
    let mut counts = vec![0u64; parts.len()];
    for (&p, &c) in active.iter().zip(&shaded_counts) {
        counts[p] = c;
    }

    let mut order: Vec<usize> = active.iter().copied().filter(|&p| counts[p] > 0).collect();
    order.sort_by_key(|&p| (std::cmp::Reverse(counts[p]), p));
    if order.is_empty() {
        let state = ViewState::empty(view);
        return Ok(state
            .is_feasible()
            .then(|| (state.to_package(), state.objective_value())));
    }

    let ctx = RefineCtx {
        view,
        rows,
        obj_coeffs,
        parts,
        means: &means,
        counts: &counts,
        opts,
        partition_sig: opts.shade_leaf_size as u64,
    };
    refine_with_backtracking(&ctx, order, counters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::ParExec;
    use crate::spec::PackageSpec;
    use datagen::{recipes, Seed};
    use minidb::Table;
    use paql::compile;

    fn spec_for<'a>(table: &'a Table, q: &str) -> PackageSpec<'a> {
        let analyzed = compile(q, table.schema()).unwrap();
        PackageSpec::build(&analyzed, table).unwrap()
    }

    const MEAL_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
        SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE SUM(P.protein)";

    /// Options forcing a genuinely multi-layer tree at test-sized `n`.
    fn deep_opts() -> SolveOptions {
        SolveOptions {
            shade_leaf_size: 8,
            shade_fanout: 4,
            ..SolveOptions::default()
        }
    }

    #[test]
    fn shaded_packages_are_valid_and_beat_or_match_greedy() {
        let t = recipes(3_000, Seed(1));
        let spec = spec_for(&t, MEAL_QUERY);
        let opts = deep_opts();
        // ~470 gluten-free leaves at size 8 under fanout 4: several layers.
        let out = ProgressiveShadingSolver.solve(spec.view(), &opts).unwrap();
        assert_eq!(out.stats.strategy, StrategyUsed::ProgressiveShading);
        assert!(!out.optimal, "shading is approximate by design");
        let (p, obj) = out.packages.first().expect("a meal plan exists at n=3000");
        assert!(spec.is_valid(p).unwrap());
        let greedy = GreedySolver.solve(spec.view(), &opts).unwrap();
        if let Some((_, g)) = greedy.packages.first() {
            assert!(obj.unwrap() + 1e-9 >= g.unwrap(), "worse than greedy");
        }
    }

    #[test]
    fn descent_actually_runs_over_a_multi_layer_tree() {
        let t = recipes(3_000, Seed(1));
        let spec = spec_for(&t, MEAL_QUERY);
        let opts = deep_opts();
        let tree = spec
            .view()
            .partition_tree(
                opts.shade_leaf_size,
                opts.shade_fanout,
                opts.seed,
                &opts.budget,
                opts.par,
            )
            .expect("unlimited budget grows the tree");
        assert!(tree.height() >= 2, "test must exercise a real descent");
    }

    #[test]
    fn non_linearizable_queries_are_rejected_with_unsupported() {
        let t = recipes(100, Seed(2));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R \
             SUCH THAT COUNT(*) = 3 AND AVG(P.calories) >= AVG(P.protein)",
        );
        let err = ProgressiveShadingSolver
            .solve(spec.view(), &SolveOptions::default())
            .unwrap_err();
        assert!(matches!(err, PbError::Unsupported(_)));
    }

    #[test]
    fn empty_candidate_sets_yield_an_empty_outcome() {
        let t = recipes(50, Seed(3));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.calories < 0 SUCH THAT COUNT(*) = 1",
        );
        let out = ProgressiveShadingSolver
            .solve(spec.view(), &SolveOptions::default())
            .unwrap();
        assert!(out.packages.is_empty());
        assert!(!out.optimal);
    }

    #[test]
    fn expired_budgets_return_the_anytime_result_without_error() {
        let t = recipes(2_000, Seed(4));
        let spec = spec_for(&t, MEAL_QUERY);
        let opts = SolveOptions {
            budget: crate::budget::Budget::with_limit(std::time::Duration::ZERO),
            ..deep_opts()
        };
        let out = ProgressiveShadingSolver.solve(spec.view(), &opts).unwrap();
        assert!(!out.optimal);
        for (p, _) in &out.packages {
            assert!(spec.is_valid(p).unwrap());
        }
    }

    #[test]
    fn shading_is_thread_count_invariant() {
        let t = recipes(3_000, Seed(5));
        let spec = spec_for(&t, MEAL_QUERY);
        let base = deep_opts();
        let sequential = ProgressiveShadingSolver.solve(spec.view(), &base).unwrap();
        let threaded = ProgressiveShadingSolver
            .solve(
                spec.view(),
                &SolveOptions {
                    par: ParExec::new(4),
                    ..deep_opts()
                },
            )
            .unwrap();
        assert_eq!(sequential.packages, threaded.packages);
        assert_eq!(sequential.stats.nodes, threaded.stats.nodes);
        assert_eq!(sequential.stats.iterations, threaded.stats.iterations);
    }

    #[test]
    fn few_leaves_degenerate_to_the_flat_sketch_path() {
        // Leaves fit under the fanout: no layers, every leaf shaded, the
        // result must still be a valid package beating greedy's floor.
        let t = recipes(300, Seed(6));
        let spec = spec_for(&t, MEAL_QUERY);
        let opts = SolveOptions::default(); // leaf 64 / fanout 64 → height 0
        let tree = spec
            .view()
            .partition_tree(
                opts.shade_leaf_size,
                opts.shade_fanout,
                opts.seed,
                &opts.budget,
                opts.par,
            )
            .unwrap();
        assert_eq!(tree.height(), 0);
        let out = ProgressiveShadingSolver.solve(spec.view(), &opts).unwrap();
        let (p, _) = out.packages.first().expect("feasible at n=300");
        assert!(spec.is_valid(p).unwrap());
    }
}
