//! Adaptive exploration (paper Section 3.3).
//!
//! "PackageBuilder initially presents a sample package that satisfies a few
//! basic constraints. Users can then select good tuples within the sample,
//! and request a new sample that replaces the unselected tuples. Users can
//! repeat this process until they reach the ideal package. PackageBuilder
//! uses these selections to narrow the search space as well as to identify
//! additional package constraints."
//!
//! [`ExplorationSession`] keeps the interactive state: the current sample
//! package, the set of locked (user-approved) tuples, the tuples the user has
//! rejected (which are removed from the candidate pool), and the constraints
//! inferred from the locked tuples.

use std::collections::BTreeSet;

use minidb::TupleId;
use paql::PaqlQuery;

use crate::engine::PackageEngine;
use crate::error::PbError;
use crate::package::Package;
use crate::result::PackageResult;
use crate::suggest::Suggestion;
use crate::PbResult;

/// An interactive refinement session over one package query.
#[derive(Debug, Clone)]
pub struct ExplorationSession {
    query: PaqlQuery,
    locked: BTreeSet<TupleId>,
    rejected: BTreeSet<TupleId>,
    current: Option<Package>,
    rounds: usize,
}

impl ExplorationSession {
    /// Starts a session for a query (no sample drawn yet).
    pub fn new(query: PaqlQuery) -> Self {
        ExplorationSession {
            query,
            locked: BTreeSet::new(),
            rejected: BTreeSet::new(),
            current: None,
            rounds: 0,
        }
    }

    /// The query driving the session.
    pub fn query(&self) -> &PaqlQuery {
        &self.query
    }

    /// The current sample package, if one has been drawn.
    pub fn current(&self) -> Option<&Package> {
        self.current.as_ref()
    }

    /// Tuples the user has locked (marked as good).
    pub fn locked(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.locked.iter().copied()
    }

    /// Number of refinement rounds performed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Locks a tuple of the current sample so refinements keep it.
    pub fn lock(&mut self, tuple: TupleId) -> PbResult<()> {
        match &self.current {
            Some(p) if p.multiplicity(tuple) > 0 => {
                self.locked.insert(tuple);
                self.rejected.remove(&tuple);
                Ok(())
            }
            _ => Err(PbError::Internal(format!(
                "cannot lock {tuple}: it is not part of the current sample"
            ))),
        }
    }

    /// Unlocks a previously locked tuple.
    pub fn unlock(&mut self, tuple: TupleId) {
        self.locked.remove(&tuple);
    }

    /// Marks a tuple as rejected: it will never appear in future samples.
    pub fn reject(&mut self, tuple: TupleId) {
        self.locked.remove(&tuple);
        self.rejected.insert(tuple);
    }

    /// Draws the initial sample (or re-draws it from scratch).
    pub fn sample(&mut self, engine: &PackageEngine) -> PbResult<PackageResult> {
        self.refine(engine)
    }

    /// Produces a new sample that keeps every locked tuple, avoids rejected
    /// tuples, and replaces the rest — the "request a new sample that
    /// replaces the unselected tuples" interaction.
    pub fn refine(&mut self, engine: &PackageEngine) -> PbResult<PackageResult> {
        let spec = engine.build_spec(&self.query)?;
        // Narrow the candidate pool: rejected tuples are out; locked tuples
        // stay candidates (they are forced into the package below).
        let rejected = self.rejected.clone();
        let narrowed = spec.restrict_candidates(|t| !rejected.contains(&t));

        // Verify locked tuples are still available.
        for &t in &self.locked {
            if narrowed.candidates.binary_search(&t).is_err() {
                return Err(PbError::Internal(format!(
                    "locked tuple {t} no longer satisfies the base constraints"
                )));
            }
        }

        let mut result = engine.execute_spec(&narrowed)?;
        // Filter to packages that honour the locked tuples; if none do, force
        // them in by a second pass seeded from the locked set (local search
        // keeps whatever is feasible).
        if !self.locked.is_empty() {
            let keep: Vec<usize> = result
                .packages
                .iter()
                .enumerate()
                .filter(|(_, p)| self.locked.iter().all(|t| p.multiplicity(*t) > 0))
                .map(|(i, _)| i)
                .collect();
            if !keep.is_empty() {
                result.packages = keep.iter().map(|&i| result.packages[i].clone()).collect();
                result.objectives = keep.iter().map(|&i| result.objectives[i]).collect();
            } else if let Some(best) = result.packages.first().cloned() {
                // Merge: start from the locked tuples and fill with the best
                // package's remaining members.
                let mut merged = Package::from_ids(self.locked.iter().copied());
                for (tid, m) in best.members() {
                    if merged.cardinality() >= best.cardinality() {
                        break;
                    }
                    if merged.multiplicity(tid) == 0 {
                        merged.add(tid, m);
                    }
                }
                let obj = narrowed.objective_value(&merged)?;
                result.packages = vec![merged];
                result.objectives = vec![obj];
                result.optimal = false;
            }
        }
        self.current = result.best().cloned();
        self.rounds += 1;
        Ok(result)
    }

    /// Constraints inferred from the locked tuples, following the paper's
    /// "identify additional package constraints": numeric attributes of the
    /// locked tuples induce per-tuple range constraints, text attributes that
    /// all locked tuples share induce equality constraints.
    pub fn inferred_constraints(&self, engine: &PackageEngine) -> PbResult<Vec<Suggestion>> {
        let table = engine.relation(&self.query)?;
        let mut out = Vec::new();
        if self.locked.is_empty() {
            return Ok(out);
        }
        let schema = table.schema();
        for col in schema.columns() {
            let mut numeric: Vec<f64> = Vec::new();
            let mut texts: BTreeSet<String> = BTreeSet::new();
            for &t in &self.locked {
                let row = table.require(t)?;
                let v = row.get_named(schema, &col.name)?;
                if v.is_null() {
                    continue;
                }
                match v.as_f64() {
                    Some(x) if col.ty.is_numeric() => numeric.push(x),
                    _ => {
                        texts.insert(v.to_string());
                    }
                }
            }
            if col.ty.is_numeric() && !numeric.is_empty() {
                // pb-lint: allow(no-nan-unsafe-ordering) — suggestion text
                // only: the range feeds a human-readable hint, not an order.
                let min = numeric.iter().copied().fold(f64::INFINITY, f64::min);
                // pb-lint: allow(no-nan-unsafe-ordering) — suggestion text
                // only: the range feeds a human-readable hint, not an order.
                let max = numeric.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                out.push(Suggestion {
                    kind: crate::suggest::SuggestionKind::BaseConstraint,
                    paql: format!("{} BETWEEN {} AND {}", col.name, min, max),
                    description: format!(
                        "keep tuples whose {} lies in the range of the tuples you locked ({min}–{max})",
                        col.name
                    ),
                });
            } else if texts.len() == 1 {
                // len() == 1 guarantees an element; if that invariant ever
                // breaks, report it (PR-2 convention) rather than panicking
                // a user-facing suggestion pass.
                let v = texts.iter().next().ok_or_else(|| {
                    PbError::Internal("singleton text set yielded no element".into())
                })?;
                out.push(Suggestion {
                    kind: crate::suggest::SuggestionKind::BaseConstraint,
                    paql: format!("{} = '{}'", col.name, v),
                    description: format!("all locked tuples share {} = '{}'", col.name, v),
                });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{recipes, Seed};
    use minidb::Catalog;

    const MEAL_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
        SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE SUM(P.protein)";

    fn engine(n: usize, seed: u64) -> PackageEngine {
        let mut catalog = Catalog::new();
        catalog.register(recipes(n, Seed(seed)));
        PackageEngine::new(catalog)
    }

    #[test]
    fn sample_then_lock_then_refine_keeps_locked_tuples() {
        let engine = engine(300, 1);
        let query = paql::parse(MEAL_QUERY).unwrap();
        let mut session = ExplorationSession::new(query);
        let first = session.sample(&engine).unwrap();
        assert!(!first.is_empty());
        let keep = session.current().unwrap().tuple_ids()[0];
        session.lock(keep).unwrap();
        let refined = session.refine(&engine).unwrap();
        assert!(!refined.is_empty());
        assert!(
            refined.best().unwrap().multiplicity(keep) > 0,
            "locked tuple must survive refinement"
        );
        assert_eq!(session.rounds(), 2);
    }

    #[test]
    fn rejected_tuples_never_reappear() {
        let engine = engine(300, 2);
        let query = paql::parse(MEAL_QUERY).unwrap();
        let mut session = ExplorationSession::new(query);
        session.sample(&engine).unwrap();
        let bad = session.current().unwrap().tuple_ids()[0];
        session.reject(bad);
        for _ in 0..3 {
            let r = session.refine(&engine).unwrap();
            if let Some(p) = r.best() {
                assert_eq!(p.multiplicity(bad), 0, "rejected tuple reappeared");
            }
        }
    }

    #[test]
    fn locking_a_tuple_outside_the_sample_errors() {
        let engine = engine(100, 3);
        let query = paql::parse(MEAL_QUERY).unwrap();
        let mut session = ExplorationSession::new(query);
        assert!(session.lock(TupleId(0)).is_err());
        session.sample(&engine).unwrap();
        let absent = (0..100u32)
            .map(TupleId)
            .find(|t| session.current().unwrap().multiplicity(*t) == 0)
            .unwrap();
        assert!(session.lock(absent).is_err());
    }

    #[test]
    fn inferred_constraints_reflect_locked_tuples() {
        let engine = engine(300, 4);
        let query = paql::parse(MEAL_QUERY).unwrap();
        let mut session = ExplorationSession::new(query);
        session.sample(&engine).unwrap();
        assert!(session.inferred_constraints(&engine).unwrap().is_empty());
        for t in session.current().unwrap().tuple_ids() {
            session.lock(t).unwrap();
        }
        let inferred = session.inferred_constraints(&engine).unwrap();
        assert!(!inferred.is_empty());
        // All locked recipes are gluten-free, so the shared-text rule fires.
        assert!(
            inferred.iter().any(|s| s.paql.contains("gluten = 'free'")),
            "expected a gluten = 'free' inference, got {inferred:?}"
        );
        // Numeric ranges parse as PaQL base constraints.
        for s in &inferred {
            paql::parser::parse_base_expr(&s.paql).unwrap();
        }
    }

    #[test]
    fn unlock_removes_the_lock() {
        let engine = engine(200, 5);
        let query = paql::parse(MEAL_QUERY).unwrap();
        let mut session = ExplorationSession::new(query);
        session.sample(&engine).unwrap();
        let t = session.current().unwrap().tuple_ids()[0];
        session.lock(t).unwrap();
        session.unlock(t);
        assert_eq!(session.locked().count(), 0);
    }
}
