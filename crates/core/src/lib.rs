//! `packagebuilder` — the package query evaluation engine.
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! system that "extends database systems to support package queries". A
//! *package* is a multiset of tuples that individually satisfy *base
//! constraints* and collectively satisfy *global constraints*, optionally
//! optimizing a per-package objective (paper Sections 1–2).
//!
//! # Architecture: planner → solver → view
//!
//! Evaluation is layered so every strategy shares one columnar core and one
//! dispatch seam:
//!
//! * **[`view`] — the columnar evaluation core.** [`spec::PackageSpec::build`]
//!   lowers a query onto a [`view::CandidateView`]: for every aggregate term
//!   in the `SUCH THAT` formula or objective, a dense `f64` coefficient
//!   column over the candidate set (with `FILTER` predicates and NULLs folded
//!   into an inclusion mask), plus the formula/objective recompiled against
//!   term indices. Objective values, constraint slack and violations become
//!   dot products; [`view::ViewState`] scores swap/add/drop moves by delta
//!   (`O(#terms)` per move) instead of re-aggregating packages.
//! * **[`solver`] — the unified strategy interface.** `Solver::solve(&view,
//!   &opts)` is implemented by [`solver::IlpSolver`] (Section 7 translation,
//!   [`ilp`]), [`solver::EnumerationSolver`] (Section 4 generate-and-validate
//!   with the Section 4.1 pruning rules, [`enumerate`]),
//!   [`solver::LocalSearchSolver`] (Section 4.2 k-replacement search,
//!   [`local_search`]) and [`solver::GreedySolver`] ([`greedy`] construction
//!   with feasibility repair). Solvers only see the view — never the base
//!   table — and are `Send + Sync`, which is what makes parallel, sharded
//!   or cached solving a drop-in extension.
//! * **[`budget`] + [`portfolio`] — anytime evaluation.** Every solver
//!   honours one cooperative [`budget::Budget`] (deadline + shared stop
//!   flag, threaded down to the LP solver's pivot loop) and returns its
//!   best-so-far result with `optimal: false` on expiry.
//!   [`portfolio::PortfolioSolver`] races several solvers over one view
//!   with scoped threads: cheap heuristics deliver a package immediately,
//!   the exact ILP supersedes them if it finishes inside the budget, and
//!   the first provably-optimal result cancels the rest of the race.
//! * **[`partition`] + [`sketch_refine`] — scaling past the monolithic
//!   ILP.** For large linearizable queries,
//!   [`sketch_refine::SketchRefineSolver`] partitions the candidates offline
//!   (size-bounded k-d splits of the view's term columns), solves a tiny
//!   "sketch" ILP over one representative per partition, then refines the
//!   picked partitions one small sub-ILP at a time (with the SketchRefine
//!   paper's failed-partition backtracking and a greedy anytime fallback) —
//!   near-optimal packages at a fraction of the monolithic ILP's latency.
//! * **[`shading`] — hierarchical partitioning for 10^6+ candidates.** At
//!   [`config::EngineConfig::shade_threshold`] candidates the flat sketch
//!   itself becomes the bottleneck (one integer variable per partition);
//!   [`shading::ProgressiveShadingSolver`] grows the flat partitioning into
//!   a [`partition::PartitionTree`] and descends it — sketch the coarsest
//!   layer's representatives, expand only the selected nodes, re-sketch —
//!   so every ILP stays small regardless of `n`, reusing the flat solver's
//!   warm-hinted leaf sub-ILPs, backtracking and anytime degradation.
//! * **[`par`] — chunked data parallelism.** Term columns are dense but
//!   logically chunked at a fixed 4096-element width
//!   ([`view::TermColumn`], with per-chunk sum/min/max metadata that also
//!   feeds [`pruning`]); [`par::ParExec`] — a scoped-`std::thread` chunk
//!   executor with no external dependencies — fans every candidate scan
//!   (view materialization, partitioning spreads, greedy repair, the local
//!   search's neighbourhood) out over one engine-wide thread budget
//!   ([`config::EngineConfig::num_threads`], shared with the portfolio via
//!   [`par::ParExec::split`]). Fixed chunk boundaries + chunk-order
//!   reductions make results **bit-identical at every thread count**, and
//!   budgets are checked per chunk so the anytime contract survives the
//!   fan-out.
//! * **[`column_store`] — out-of-core columns.** The same 4096-element
//!   chunk is also the paging unit: above
//!   [`config::EngineConfig::column_memory_budget`] a view's term columns
//!   are written chunk by chunk to a temporary spill file and scanned back
//!   through a small LRU buffer pool ([`config::EngineConfig::pool_pages`],
//!   env overrides `PB_COLUMN_BUDGET` / `PB_POOL_PAGES`), while per-chunk
//!   metadata stays resident for pruning and bounds. Storage mode is
//!   invisible to every consumer: paged solves are bit-identical to
//!   resident ones — same packages, objectives and counters — at every
//!   thread count (`tests/paged_determinism.rs`), so candidate sets far
//!   beyond RAM stream through a fixed number of page frames.
//! * **[`cache`] — cross-query reuse.** Real workloads repeat the same
//!   relation + base predicate with varying constraints; the engine's
//!   [`cache::ViewCache`] banks materialized term columns, candidate
//!   statistics and sketch→refine partitionings under fingerprinted keys
//!   (LRU-evicted, mutation-proof by construction), so a repeated query
//!   skips view construction and partitioning entirely and a query that
//!   adds aggregate terms pays only for the missing columns. Cache hits are
//!   bit-identical to cold builds.
//! * **[`engine`] — the planner.** [`engine::PackageEngine`] resolves the
//!   `Auto` policy, derives cardinality bounds ([`pruning`], short-circuiting
//!   provably-infeasible queries), runs the chosen solver through the trait,
//!   and validates every returned package before it leaves the engine.
//!
//! On top of query evaluation, the crate implements the interface backends of
//! Section 3: constraint suggestion ([`suggest`]), the 2-D package-space
//! summary ([`summary`]), adaptive exploration sessions ([`explore`]) and
//! diverse package selection ([`diversity`], Section 5).
//!
//! # Quick start
//!
//! ```
//! use packagebuilder::PackageEngine;
//! use datagen::{recipes, Seed};
//! use minidb::Catalog;
//!
//! let mut catalog = Catalog::new();
//! catalog.register(recipes(300, Seed(7)));
//! let engine = PackageEngine::new(catalog);
//! let result = engine
//!     .execute_paql(
//!         "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
//!          SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
//!          MAXIMIZE SUM(P.protein)",
//!     )
//!     .unwrap();
//! let best = result.best().expect("a 3-meal plan exists");
//! assert_eq!(best.cardinality(), 3);
//! ```

pub mod budget;
pub mod cache;
pub mod column_store;
pub mod config;
pub mod diversity;
pub mod engine;
pub mod enumerate;
pub mod error;
pub mod explore;
pub mod greedy;
pub mod ilp;
pub mod local_search;
pub mod package;
pub mod par;
pub mod partition;
pub mod portfolio;
pub mod pruning;
pub mod result;
pub mod shading;
pub mod sketch_refine;
pub mod solver;
pub mod spec;
pub mod suggest;
pub mod summary;
pub mod view;

pub use budget::Budget;
pub use cache::{CacheStats, PartitionMemo, ViewCache};
pub use column_store::{pool_stats, ColumnPolicy, PoolStats};
pub use config::{EngineConfig, Strategy};
pub use engine::{PackageEngine, QueryPlan};
pub use error::PbError;
pub use package::Package;
pub use par::ParExec;
pub use portfolio::PortfolioSolver;
pub use result::{EvalStats, PackageResult, StrategyUsed};
pub use shading::ProgressiveShadingSolver;
pub use sketch_refine::SketchRefineSolver;
pub use solver::{SolveOptions, SolveOutcome, Solver};
pub use spec::PackageSpec;
pub use view::{CandidateView, ViewState};

/// Result alias for engine operations.
pub type PbResult<T> = std::result::Result<T, PbError>;
