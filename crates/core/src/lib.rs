//! `packagebuilder` — the package query evaluation engine.
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! system that "extends database systems to support package queries". A
//! *package* is a multiset of tuples that individually satisfy *base
//! constraints* and collectively satisfy *global constraints*, optionally
//! optimizing a per-package objective (paper Sections 1–2).
//!
//! The engine evaluates [`paql`] queries over [`minidb`] relations using the
//! strategies described in Section 4:
//!
//! * **ILP translation** ([`ilp`]): the query is translated into an integer
//!   linear program (one integer variable per candidate tuple, bounded by the
//!   `REPEAT` multiplicity) and solved with the [`lp_solver`] substrate.
//! * **Cardinality-based pruning** ([`pruning`]): global constraints imply
//!   lower/upper bounds on the package cardinality, shrinking the candidate
//!   space from `2^n` to `Σ_k C(n,k)` without losing solutions (Section 4.1).
//! * **Pruned enumeration** ([`enumerate`]): the "generate and validate with
//!   SQL" strategy, made practical by the cardinality and partial-sum bounds.
//! * **Heuristic local search** ([`local_search`]): greedy construction plus
//!   k-tuple replacements found through a selection over a Cartesian product,
//!   exactly the single-SQL-query neighbourhood of Section 4.2.
//!
//! On top of query evaluation, the crate implements the interface backends of
//! Section 3: constraint suggestion ([`suggest`]), the 2-D package-space
//! summary ([`summary`]), adaptive exploration sessions ([`explore`]) and
//! diverse package selection ([`diversity`], Section 5).
//!
//! # Quick start
//!
//! ```
//! use packagebuilder::PackageEngine;
//! use datagen::{recipes, Seed};
//! use minidb::Catalog;
//!
//! let mut catalog = Catalog::new();
//! catalog.register(recipes(300, Seed(7)));
//! let engine = PackageEngine::new(catalog);
//! let result = engine
//!     .execute_paql(
//!         "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
//!          SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 \
//!          MAXIMIZE SUM(P.protein)",
//!     )
//!     .unwrap();
//! let best = result.best().expect("a 3-meal plan exists");
//! assert_eq!(best.cardinality(), 3);
//! ```

pub mod config;
pub mod diversity;
pub mod engine;
pub mod enumerate;
pub mod error;
pub mod explore;
pub mod greedy;
pub mod ilp;
pub mod local_search;
pub mod package;
pub mod pruning;
pub mod result;
pub mod spec;
pub mod suggest;
pub mod summary;

pub use config::{EngineConfig, Strategy};
pub use engine::PackageEngine;
pub use error::PbError;
pub use package::Package;
pub use result::{EvalStats, PackageResult, StrategyUsed};
pub use spec::PackageSpec;

/// Result alias for engine operations.
pub type PbResult<T> = std::result::Result<T, PbError>;
