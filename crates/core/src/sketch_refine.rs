//! The sketch→refine solver: near-optimal packages over large relations.
//!
//! Monolithic ILP translation puts all `n` candidates in one problem, which
//! is exact but scales poorly (the 25 ms portfolio race at n = 20 000 returns
//! whatever greedy found, because no exact solver can finish in time).
//! SketchRefine (Brucato, Abouzied, Meliou: "Scalable Package Queries in
//! Relational Database Systems", PVLDB 9(7), 2016) showed the scalable
//! alternative, later pushed to a billion tuples by Progressive Shading
//! (Mai et al., 2023): solve a coarse problem first, then localize the exact
//! work. Three phases over the [`crate::view::CandidateView`]:
//!
//! 1. **Partition** ([`crate::partition`]): size-bounded k-d splits of the
//!    candidate set along the view's term columns — the quality-sensitive
//!    attributes — each partition summarized by its centroid row.
//! 2. **Sketch**: a tiny ILP with one integer variable `y_p ∈ [0, cap_p]`
//!    per partition (multiplicity bound = partition capacity), whose
//!    constraint rows and objective are the *linearized* original rows
//!    aggregated by partition mean. Its solution says how many tuples to
//!    draw from each partition.
//! 3. **Refine**: partitions with `y_p > 0` are refined one at a time —
//!    a sub-ILP over just that partition's real tuples, with every other
//!    partition's contribution fixed (already-refined actuals) or estimated
//!    (still-sketched centroids). A failed sub-ILP triggers the paper's
//!    backtracking rule: the failed partition is re-refined *first* and the
//!    pass restarts; exhausted backtracks degrade to greedy per-partition
//!    fills. Deadline pressure at any point falls back to greedy fills plus
//!    the shared repair pass — every intermediate result honours the anytime
//!    contract (`optimal: false`, never an error, never an overrun).
//!
//! The greedy baseline runs first, so the solver's answer is never worse
//! than [`crate::solver::GreedySolver`]'s — sketch→refine only replaces it
//! when the refined package scores strictly better. Inside the default
//! portfolio race this duplicates the separate greedy worker's (cheap) run;
//! that is deliberate: the baseline is what makes this solver's own result
//! anytime-safe and its quality floor deterministic, race or no race.
//!
//! Data parallelism (since the chunked columnar layout): the offline
//! partitioning's spread scans and the representative-means matrix fan out
//! over [`crate::solver::SolveOptions::par`] in fixed chunks, with the
//! cooperative budget checked per chunk. The refine loop itself stays
//! sequential *by data dependence* — each sub-ILP's right-hand side folds in
//! the actuals of every partition refined before it — so its unit of work
//! (and of budget checking) is one partition, which is exactly a chunk of
//! candidates by construction.

use std::collections::HashMap;

use lp_solver::{ConstraintOp, Problem, Sense, VarId, VarType};
use paql::ObjectiveDirection;

use crate::cache::SubIlpSolution;
use crate::error::PbError;
use crate::greedy::repair_to_feasibility;
use crate::ilp::{linearize_formula, linearize_objective, LinearConstraint};
use crate::package::Package;
use crate::partition::Partition;
use crate::result::{EvalStats, StrategyUsed};
use crate::solver::{GreedySolver, SolveOptions, SolveOutcome, Solver};
use crate::view::{CandidateView, ViewState};
use crate::PbResult;

/// How many failed-partition backtracks the refinement tolerates before
/// degrading the remaining sub-problems to greedy fills.
const MAX_BACKTRACKS: usize = 3;

/// Partition → sketch → refine evaluation (see the module docs).
///
/// Requires a linearizable query (same condition as [`crate::solver::IlpSolver`]);
/// non-linearizable queries get [`PbError::Unsupported`], which also lets the
/// solver drop out of a portfolio race cleanly. Returns a single package
/// (`num_packages` is a documented no-op here, like the greedy solver).
#[derive(Debug, Clone, Copy, Default)]
pub struct SketchRefineSolver;

impl Solver for SketchRefineSolver {
    fn strategy(&self) -> StrategyUsed {
        StrategyUsed::SketchRefine
    }

    fn solve(&self, view: &CandidateView, opts: &SolveOptions) -> PbResult<SolveOutcome> {
        // pb-lint: allow(time-containment) — stats clock only: stamps
        // solve_time_ms; refine deadlines go through the budget.
        let start = std::time::Instant::now();
        let rows = linearize_formula(view).map_err(|r| {
            PbError::Unsupported(format!("sketch-refine requires a linearizable query: {r}"))
        })?;
        let objective = linearize_objective(view).map_err(|r| {
            PbError::Unsupported(format!(
                "sketch-refine requires a linearizable objective: {r}"
            ))
        })?;
        if view.candidate_count() == 0 {
            return Ok(SolveOutcome::empty(StrategyUsed::SketchRefine, 0, false));
        }

        // Greedy baseline first: the anytime answer, and the floor the
        // refined package must beat to be returned.
        let baseline = GreedySolver.solve(view, opts)?;
        let mut counters = Counters {
            nodes: baseline.stats.nodes,
            iterations: baseline.stats.iterations,
        };
        let mut best: Option<(Package, Option<f64>)> = baseline.packages.into_iter().next();

        if !opts.budget.expired() {
            let refined = sketch_and_refine(
                view,
                &rows,
                objective.as_ref().map(|o| o.coeffs.as_slice()),
                opts,
                &mut counters,
            )?;
            if let Some((package, obj)) = refined {
                let direction = view.direction();
                let replace = match &best {
                    None => true,
                    Some((_, cur)) => Package::better_objective(direction, obj, *cur),
                };
                if replace {
                    best = Some((package, obj));
                }
            }
        }

        Ok(SolveOutcome {
            packages: best.into_iter().collect(),
            optimal: false,
            stats: EvalStats {
                strategy: StrategyUsed::SketchRefine,
                candidates: view.candidate_count(),
                nodes: counters.nodes,
                iterations: counters.iterations,
                elapsed: start.elapsed(),
            },
        })
    }
}

/// Aggregated LP work across the sketch and every sub-ILP. Shared with the
/// progressive-shading solver, which runs several sketches per solve.
pub(crate) struct Counters {
    pub(crate) nodes: u64,
    pub(crate) iterations: u64,
}

/// How many partitions one chunk of the representative-means computation
/// covers: at the default partition size (64), 64 partitions ≈ 4096 member
/// rows per chunk — the same cache-friendly granularity as the columnar
/// chunk width, and fixed (never thread-derived) so the fan-out stays
/// deterministic.
const MEANS_PARTITIONS_PER_CHUNK: usize = 64;

/// Runs phases 1–3; `Ok(None)` means the sketch was infeasible, the budget
/// ran out mid-setup, or the refined package could not be repaired to
/// feasibility (the greedy baseline then stands). `Err` is reserved for
/// internal invariant violations.
fn sketch_and_refine(
    view: &CandidateView,
    rows: &[LinearConstraint],
    obj_coeffs: Option<&[f64]>,
    opts: &SolveOptions,
    counters: &mut Counters,
) -> crate::PbResult<Option<(Package, Option<f64>)>> {
    // Partitioning and the means matrix are O(n log n) / O(rows·n) setup; on
    // a nearly-spent budget (a slow greedy baseline under a tight race
    // deadline) they must not push the solver past its ~2x-deadline
    // contract, so both are budget-checked as they go — per chunk, not per
    // element, now that both fan out over `opts.par`. The partitioning goes
    // through the view's memo: a repeated query (or a second worker over a
    // clone of this view) reuses the one computed before, and an engine with
    // caching on carries it across queries entirely.
    let partitioning = match view.partitioning(
        opts.sketch_partition_size,
        opts.seed,
        &opts.budget,
        opts.par,
    ) {
        Some(p) => p,
        None => return Ok(None),
    };
    let parts = partitioning.partitions();
    if parts.is_empty() {
        return Ok(None);
    }
    let mut means: Vec<Vec<f64>> = Vec::with_capacity(rows.len());
    for row in rows {
        match partition_means(parts, &row.coeffs, opts) {
            Some(m) => means.push(m),
            None => return Ok(None),
        }
    }
    let obj_means: Option<Vec<f64>> = match obj_coeffs {
        Some(o) => match partition_means(parts, o, opts) {
            Some(m) => Some(m),
            None => return Ok(None),
        },
        None => None,
    };
    if opts.budget.expired() {
        return Ok(None);
    }

    // Phase 2 — the sketch ILP over one variable per partition.
    let capacities: Vec<u64> = parts.iter().map(|p| p.capacity(view)).collect();
    let means_rows: Vec<&[f64]> = means.iter().map(|m| m.as_slice()).collect();
    let counts = match solve_sketch(
        view,
        &capacities,
        rows,
        &means_rows,
        obj_means.as_deref(),
        opts,
        counters,
    ) {
        Some(c) => c,
        None => return Ok(None),
    };

    // Phase 3 — refine picked partitions, most-loaded first (deterministic:
    // ties break on partition id).
    let mut order: Vec<usize> = (0..parts.len()).filter(|&p| counts[p] > 0).collect();
    order.sort_by_key(|&p| (std::cmp::Reverse(counts[p]), p));
    if order.is_empty() {
        // The sketch says the empty package: only useful if it is feasible.
        let state = ViewState::empty(view);
        return Ok(state
            .is_feasible()
            .then(|| (state.to_package(), state.objective_value())));
    }

    let ctx = RefineCtx {
        view,
        rows,
        obj_coeffs,
        parts,
        means: &means,
        counts: &counts,
        opts,
        partition_sig: opts.sketch_partition_size as u64,
    };
    refine_with_backtracking(&ctx, order, counters)
}

/// Representative coefficients: the partition mean of one coefficient
/// column, per partition. `partition_means(parts, coeffs, opts)[p]` is the
/// column aggregated over partition `p` — per-partition values computed
/// independently (no cross-partition reduction), so the chunk fan-out is
/// trivially bit-identical at every thread count. `None` on budget expiry.
pub(crate) fn partition_means(
    parts: &[Partition],
    coeffs: &[f64],
    opts: &SolveOptions,
) -> Option<Vec<f64>> {
    let chunks = opts
        .par
        .run_chunks_width(parts.len(), MEANS_PARTITIONS_PER_CHUNK, |_, range| {
            if opts.budget.expired() {
                return None;
            }
            Some(
                parts[range]
                    .iter()
                    .map(|p| p.mean_of(coeffs))
                    .collect::<Vec<f64>>(),
            )
        });
    let mut means = Vec::with_capacity(parts.len());
    for chunk in chunks {
        means.extend(chunk?);
    }
    Some(means)
}

/// Builds and solves one sketch ILP: one integer variable per group with the
/// given multiplicity `capacities`, constraint rows aggregated to the given
/// per-group representative coefficients (`means_rows[c][j]` pairs with
/// `capacities[j]`). Returns the per-group draw counts clamped to capacity,
/// or `None` when the sketch is infeasible, truncated without a solution, or
/// the budget expired. Shared by the flat sketch→refine path (one sketch
/// over all partitions) and progressive shading (one sketch per tree layer).
pub(crate) fn solve_sketch(
    view: &CandidateView,
    capacities: &[u64],
    rows: &[LinearConstraint],
    means_rows: &[&[f64]],
    obj_means: Option<&[f64]>,
    opts: &SolveOptions,
    counters: &mut Counters,
) -> Option<Vec<u64>> {
    let sense = match view.direction() {
        ObjectiveDirection::Maximize => Sense::Maximize,
        ObjectiveDirection::Minimize => Sense::Minimize,
    };
    let mut problem = Problem::new(sense);
    let vars: Vec<VarId> = capacities
        .iter()
        .enumerate()
        .map(|(p, &cap)| problem.add_var(format!("y_{p}"), VarType::Integer, 0.0, cap as f64))
        .collect();
    for (c, row) in rows.iter().enumerate() {
        let terms: Vec<(VarId, f64)> = means_rows[c]
            .iter()
            .enumerate()
            .filter(|(_, &m)| m != 0.0)
            .map(|(p, &m)| (vars[p], m))
            .collect();
        problem.add_constraint_terms(format!("g{c}"), &terms, row.op, row.rhs);
    }
    if let Some(om) = obj_means {
        for (p, &m) in om.iter().enumerate() {
            if m != 0.0 {
                problem.set_objective_coeff(vars[p], m);
            }
        }
    }
    let mut config = opts.solver.clone();
    opts.budget.apply_to_solver(&mut config);
    let sketch = match lp_solver::solve(&problem, &config) {
        Ok(s) if s.status.has_solution() => s,
        _ => return None,
    };
    counters.nodes += sketch.nodes as u64;
    counters.iterations += sketch.iterations as u64;
    Some(
        capacities
            .iter()
            .enumerate()
            .map(|(p, &cap)| (sketch.value_rounded(vars[p]).max(0) as u64).min(cap))
            .collect(),
    )
}

/// Phase 3 driver: refines `order`'s partitions with the paper's
/// failed-partition backtracking, then repairs any residual infeasibility.
/// `Ok(None)` when no feasible package came out (the caller's greedy
/// baseline stands).
pub(crate) fn refine_with_backtracking(
    ctx: &RefineCtx<'_>,
    mut order: Vec<usize>,
    counters: &mut Counters,
) -> crate::PbResult<Option<(Package, Option<f64>)>> {
    // Last successful sub-ILP assignment per partition, across backtracking
    // passes of *this* query. A re-refined partition hints its previous
    // assignment into `solve_milp_hinted` as the starting incumbent — the
    // right-hand sides shift between passes, but the old package is often
    // still feasible and near-optimal, so branch and bound starts with a
    // strong bound instead of none. Hints are deterministic (the map is only
    // read/written by partition id, never iterated), so the backtracking
    // sequence stays bit-identical run to run.
    let mut hints: HashMap<usize, Vec<(usize, u32)>> = HashMap::new();
    let mut backtracks = 0;
    let mut state = loop {
        match refine_pass(ctx, &order, true, &mut hints, counters) {
            Ok(state) => break state,
            Err(failed) => {
                backtracks += 1;
                let already_first = order.first() == Some(&failed);
                if backtracks >= MAX_BACKTRACKS || already_first || ctx.opts.budget.expired() {
                    // Backtracking exhausted: a non-strict pass greedy-fills
                    // whatever still fails instead of giving up. Such a pass
                    // cannot report a failed partition by construction — if
                    // one ever does, surface it as an internal error (PR-2
                    // convention) instead of panicking mid-solve.
                    break refine_pass(ctx, &order, false, &mut hints, counters).map_err(|p| {
                        PbError::Internal(format!(
                            "non-strict refine pass reported failed partition {p}"
                        ))
                    })?;
                }
                // The paper's backtracking rule: re-refine the failed
                // partition first, where the full constraint slack is still
                // available to it.
                order.retain(|&p| p != failed);
                order.insert(0, failed);
            }
        }
    };

    if !state.is_feasible() {
        let (evals, _) = repair_to_feasibility(&mut state, &ctx.opts.budget, ctx.opts.par);
        counters.iterations += evals;
    }
    Ok(state
        .is_feasible()
        .then(|| (state.to_package(), state.objective_value())))
}

/// Shared inputs of one refinement pass. Built by the flat sketch→refine
/// path over its whole partitioning, and by progressive shading over the
/// tree's leaf layer (with counts zero outside the shaded leaves).
pub(crate) struct RefineCtx<'a> {
    pub(crate) view: &'a CandidateView,
    pub(crate) rows: &'a [LinearConstraint],
    pub(crate) obj_coeffs: Option<&'a [f64]>,
    pub(crate) parts: &'a [Partition],
    pub(crate) means: &'a [Vec<f64>],
    pub(crate) counts: &'a [u64],
    pub(crate) opts: &'a SolveOptions,
    /// Partition-identity component of the sub-ILP memo key: the size bound
    /// the leaf partitioning was built with (`sketch_partition_size` on the
    /// flat path, `shade_leaf_size` under shading). Equal bounds mean equal
    /// leaf partitionings, so sharing memo entries across the two solvers is
    /// exactly right.
    pub(crate) partition_sig: u64,
}

/// One refinement pass over `order`. Strict passes report the first
/// partition whose sub-ILP fails; non-strict passes greedy-fill it and carry
/// on (and therefore always succeed). Budget expiry mid-pass greedy-fills
/// the remaining partitions — the anytime degradation, never an error.
fn refine_pass<'v>(
    ctx: &RefineCtx<'v>,
    order: &[usize],
    strict: bool,
    hints: &mut HashMap<usize, Vec<(usize, u32)>>,
    counters: &mut Counters,
) -> Result<ViewState<'v>, usize> {
    let mut state = ViewState::empty(ctx.view);
    let mut fixed = vec![0.0; ctx.rows.len()];
    // Estimated contribution of every still-sketched partition, per row.
    let mut rem: Vec<f64> = ctx
        .rows
        .iter()
        .enumerate()
        .map(|(c, _)| {
            order
                .iter()
                .map(|&p| ctx.counts[p] as f64 * ctx.means[c][p])
                .sum()
        })
        .collect();

    for (pos, &p) in order.iter().enumerate() {
        // This partition stops being an estimate now, whatever happens next.
        for (c, r) in rem.iter_mut().enumerate() {
            *r -= ctx.counts[p] as f64 * ctx.means[c][p];
        }
        if ctx.opts.budget.expired() {
            for &q in &order[pos..] {
                greedy_fill(ctx, q, &mut state);
            }
            return Ok(state);
        }
        match solve_partition(ctx, p, &fixed, &rem, hints.get(&p), counters) {
            Some(assignment) => {
                hints.insert(p, assignment.clone());
                for &(idx, mult) in &assignment {
                    state.apply(idx, mult as i64);
                    for (c, row) in ctx.rows.iter().enumerate() {
                        fixed[c] += row.coeffs[idx] * mult as f64;
                    }
                }
            }
            None if strict => return Err(p),
            None => {
                // Each candidate belongs to exactly one partition, so the
                // fill's contribution is exactly p's members' multiplicities.
                greedy_fill(ctx, p, &mut state);
                for (c, row) in ctx.rows.iter().enumerate() {
                    fixed[c] += ctx.parts[p]
                        .members
                        .iter()
                        .map(|&i| row.coeffs[i] * state.multiplicity(i) as f64)
                        .sum::<f64>();
                }
            }
        }
    }
    Ok(state)
}

/// Bit-exact identity of one partition's sub-ILP, used as the
/// [`crate::cache::PartitionMemo`] memo key (see [`PartitionMemo::sub_ilp`]).
///
/// The key encodes *everything* that determines the solve's result and its
/// node/iteration counters: the partitioning identity (size, seed, partition
/// id, member count), the multiplicity bound, the result-relevant solver
/// knobs (tolerances and work limits — but not threads, deadlines, or stop
/// flags, which by the determinism and anytime contracts can only truncate a
/// solve, never change a *proven-optimal* one), and per row the operator,
/// the effective right-hand side `rhs − fixed − rem`, and every member
/// coefficient as raw `f64` bits. Keys are compared by value (a `HashMap`
/// probe ends in `Eq`), so a hash collision can never serve a wrong answer.
///
/// [`PartitionMemo::sub_ilp`]: crate::cache::PartitionMemo::sub_ilp
fn sub_ilp_key(ctx: &RefineCtx<'_>, p: usize, fixed: &[f64], rem: &[f64]) -> Vec<u64> {
    let members = &ctx.parts[p].members;
    let cfg = &ctx.opts.solver;
    let mut key = Vec::with_capacity(9 + ctx.rows.len() * (members.len() + 2) + members.len() + 1);
    key.push(ctx.partition_sig);
    key.push(ctx.opts.seed);
    key.push(p as u64);
    key.push(members.len() as u64);
    key.push(ctx.view.max_multiplicity() as u64);
    key.push(cfg.tolerance.to_bits());
    key.push(cfg.int_tolerance.to_bits());
    key.push(cfg.max_iterations as u64);
    key.push(cfg.max_nodes as u64);
    for (c, row) in ctx.rows.iter().enumerate() {
        key.push(match row.op {
            ConstraintOp::Le => 0,
            ConstraintOp::Ge => 1,
            ConstraintOp::Eq => 2,
        });
        key.push((row.rhs - fixed[c] - rem[c]).to_bits());
        for &i in members.iter() {
            key.push(row.coeffs[i].to_bits());
        }
    }
    match ctx.obj_coeffs {
        Some(obj) => {
            key.push(1);
            for &i in members.iter() {
                key.push(obj[i].to_bits());
            }
        }
        None => key.push(0),
    }
    key
}

/// Sub-ILP over one partition's real tuples: the original rows with every
/// other partition's contribution moved to the right-hand side.
///
/// Two warm-start layers sit in front of the raw solve:
///
/// 1. **Cross-query memo** ([`crate::cache::PartitionMemo`]): an identical
///    sub-problem solved to proven optimality before (same view, same
///    partitioning, same effective right-hand sides — see [`sub_ilp_key`])
///    replays its stored assignment *and counters* without solving at all.
///    Replaying the counters keeps a memo-served run's [`EvalStats`]
///    bit-identical to the run that did the work, preserving the cold/warm
///    equality contract from the view-cache PR.
/// 2. **Within-query hint**: on a backtracking re-refine, the partition's
///    previous assignment seeds branch and bound's incumbent through
///    [`lp_solver::solve_milp_hinted`] — an infeasible hint (the right-hand
///    sides moved) is silently ignored, a feasible one prunes from node one.
///
/// [`EvalStats`]: crate::result::EvalStats
fn solve_partition(
    ctx: &RefineCtx<'_>,
    p: usize,
    fixed: &[f64],
    rem: &[f64],
    hint: Option<&Vec<(usize, u32)>>,
    counters: &mut Counters,
) -> Option<Vec<(usize, u32)>> {
    let members = &ctx.parts[p].members;
    let memo = ctx.view.partition_memo();
    let key = sub_ilp_key(ctx, p, fixed, rem);
    if let Some(hit) = memo.sub_ilp(&key) {
        counters.nodes += hit.nodes;
        counters.iterations += hit.iterations;
        return Some(hit.assignment.clone());
    }
    let r = ctx.view.max_multiplicity() as f64;
    let mut problem = Problem::new(match ctx.view.direction() {
        ObjectiveDirection::Maximize => Sense::Maximize,
        ObjectiveDirection::Minimize => Sense::Minimize,
    });
    let vars: Vec<VarId> = members
        .iter()
        .map(|&i| problem.add_var(format!("x_{i}"), VarType::Integer, 0.0, r))
        .collect();
    for (c, row) in ctx.rows.iter().enumerate() {
        let terms: Vec<(VarId, f64)> = members
            .iter()
            .enumerate()
            .filter(|(_, &i)| row.coeffs[i] != 0.0)
            .map(|(k, &i)| (vars[k], row.coeffs[i]))
            .collect();
        problem.add_constraint_terms(format!("g{c}"), &terms, row.op, row.rhs - fixed[c] - rem[c]);
    }
    if let Some(obj) = ctx.obj_coeffs {
        for (k, &i) in members.iter().enumerate() {
            if obj[i] != 0.0 {
                problem.set_objective_coeff(vars[k], obj[i]);
            }
        }
    }
    let mut config = ctx.opts.solver.clone();
    ctx.opts.budget.apply_to_solver(&mut config);
    let hint_values: Option<Vec<f64>> = hint.map(|assignment| {
        let mut v = vec![0.0; members.len()];
        for &(i, mult) in assignment {
            if let Some(k) = members.iter().position(|&m| m == i) {
                v[k] = mult as f64;
            }
        }
        v
    });
    let solution = match lp_solver::solve_milp_hinted(&problem, &config, hint_values.as_deref()) {
        Ok(s) if s.status.has_solution() => s,
        _ => return None,
    };
    counters.nodes += solution.nodes as u64;
    counters.iterations += solution.iterations as u64;
    let assignment: Vec<(usize, u32)> = members
        .iter()
        .enumerate()
        .filter_map(|(k, &i)| {
            let mult = solution.value_rounded(vars[k]).max(0) as u32;
            (mult > 0).then_some((i, mult.min(ctx.view.max_multiplicity())))
        })
        .collect();
    // Only a *proven* optimum is reusable: a deadline- or limit-truncated
    // incumbent depends on how far the search got, which the key must not
    // (and does not) encode.
    if solution.status == lp_solver::Status::Optimal {
        memo.store_sub_ilp(
            key,
            SubIlpSolution {
                assignment: assignment.clone(),
                nodes: solution.nodes as u64,
                iterations: solution.iterations as u64,
            },
        );
    }
    Some(assignment)
}

/// Greedy degradation for one partition: take its sketched multiplicity in
/// objective-coefficient order (best first, deterministic), round-robin over
/// `REPEAT` slots — the refinement analogue of the greedy start heuristic.
fn greedy_fill(ctx: &RefineCtx<'_>, p: usize, state: &mut ViewState<'_>) {
    let mut members = ctx.parts[p].members.clone();
    if let Some(obj) = ctx.obj_coeffs {
        let maximize = matches!(ctx.view.direction(), ObjectiveDirection::Maximize);
        members.sort_by(|&a, &b| {
            let cmp = if maximize {
                obj[b].total_cmp(&obj[a])
            } else {
                obj[a].total_cmp(&obj[b])
            };
            cmp.then(a.cmp(&b))
        });
    }
    let mut remaining = ctx.counts[p];
    'outer: for _ in 0..ctx.view.max_multiplicity() {
        for &i in &members {
            if remaining == 0 {
                break 'outer;
            }
            if state.multiplicity(i) < ctx.view.max_multiplicity() {
                state.apply(i, 1);
                remaining -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PackageSpec;
    use datagen::{recipes, Seed};
    use minidb::Table;
    use paql::compile;

    fn spec_for<'a>(table: &'a Table, q: &str) -> PackageSpec<'a> {
        let analyzed = compile(q, table.schema()).unwrap();
        PackageSpec::build(&analyzed, table).unwrap()
    }

    const MEAL_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
        SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE SUM(P.protein)";

    #[test]
    fn refined_packages_are_valid_and_beat_or_match_greedy() {
        let t = recipes(2_000, Seed(1));
        let spec = spec_for(&t, MEAL_QUERY);
        let opts = SolveOptions::default();
        let out = SketchRefineSolver.solve(spec.view(), &opts).unwrap();
        assert_eq!(out.stats.strategy, StrategyUsed::SketchRefine);
        assert!(!out.optimal, "sketch-refine is approximate by design");
        let (p, obj) = out.packages.first().expect("a meal plan exists at n=2000");
        assert!(spec.is_valid(p).unwrap());
        let greedy = GreedySolver.solve(spec.view(), &opts).unwrap();
        if let Some((_, g)) = greedy.packages.first() {
            assert!(obj.unwrap() + 1e-9 >= g.unwrap(), "worse than greedy");
        }
    }

    #[test]
    fn non_linearizable_queries_are_rejected_with_unsupported() {
        let t = recipes(100, Seed(2));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R \
             SUCH THAT COUNT(*) = 3 AND AVG(P.calories) >= AVG(P.protein)",
        );
        let err = SketchRefineSolver
            .solve(spec.view(), &SolveOptions::default())
            .unwrap_err();
        assert!(matches!(err, PbError::Unsupported(_)));
    }

    #[test]
    fn empty_candidate_sets_yield_an_empty_outcome() {
        let t = recipes(50, Seed(3));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.calories < 0 SUCH THAT COUNT(*) = 1",
        );
        let out = SketchRefineSolver
            .solve(spec.view(), &SolveOptions::default())
            .unwrap();
        assert!(out.packages.is_empty());
        assert!(!out.optimal);
    }

    #[test]
    fn expired_budgets_return_the_anytime_result_without_error() {
        let t = recipes(2_000, Seed(4));
        let spec = spec_for(&t, MEAL_QUERY);
        let opts = SolveOptions {
            budget: crate::budget::Budget::with_limit(std::time::Duration::ZERO),
            ..SolveOptions::default()
        };
        let out = SketchRefineSolver.solve(spec.view(), &opts).unwrap();
        assert!(!out.optimal);
        for (p, _) in &out.packages {
            assert!(spec.is_valid(p).unwrap());
        }
    }
}
