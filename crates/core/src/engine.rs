//! The package query engine: the planner and the public API.
//!
//! Execution is a three-stage plan over the columnar evaluation core:
//!
//! 1. **prune** — derive cardinality bounds from the view (Section 4.1); a
//!    contradictory window proves infeasibility before any solver runs;
//! 2. **solve** — dispatch to a [`Solver`] chosen by the `Auto` policy (or
//!    forced by configuration), all through the one trait;
//! 3. **validate** — defensively re-check every returned package against the
//!    spec, so no solver bug or numerical artefact can surface as a wrong
//!    answer.

use minidb::Catalog;
use paql::{analyze, parse, AnalyzedQuery, PaqlQuery};

use crate::cache::ViewCache;
use crate::config::{EngineConfig, Strategy};
use crate::error::PbError;
use crate::ilp::linearization_obstacle;
use crate::pruning::derive_bounds;
use crate::result::PackageResult;
use crate::solver::{solver_for, SolveOptions, Solver};
use crate::spec::PackageSpec;
use crate::PbResult;

/// One fully-resolved execution plan: the solver to run and its options.
///
/// Exposed so callers (experiments, interface layers, future schedulers) can
/// inspect or override what the planner chose before running it.
pub struct QueryPlan {
    /// The strategy the planner resolved to.
    pub strategy: Strategy,
    /// The solver implementing it.
    pub solver: Box<dyn Solver>,
    /// Options handed to the solver.
    pub options: SolveOptions,
}

/// The PackageBuilder query engine.
///
/// "PackageBuilder is an external module which communicates with the DBMS,
/// where the data resides, via SQL" (Section 4); here the [`Catalog`] plays
/// the role of that DBMS connection. The engine parses PaQL, evaluates base
/// constraints against the catalog, lowers the query onto a columnar
/// [`crate::view::CandidateView`], and plans an evaluation: the paper's
/// system "heuristically combines" SQL-based generate-and-validate,
/// constraint solvers, pruning and local search — [`Strategy::Auto`] encodes
/// that policy.
///
/// An engine is also a *session* over its [`ViewCache`]: repeated queries on
/// the same relation and base predicate reuse materialized view columns and
/// sketch→refine partitionings across [`PackageEngine::execute`] calls (see
/// [`crate::cache`]), and cloned engines — or engines built with
/// [`PackageEngine::with_shared_cache`] — warm each other's queries.
#[derive(Debug, Clone)]
pub struct PackageEngine {
    catalog: Catalog,
    config: EngineConfig,
    cache: ViewCache,
}

impl PackageEngine {
    /// Creates an engine with default configuration.
    pub fn new(catalog: Catalog) -> Self {
        Self::with_config(catalog, EngineConfig::default())
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(catalog: Catalog, config: EngineConfig) -> Self {
        let cache = ViewCache::new(config.view_cache_capacity);
        PackageEngine {
            catalog,
            config,
            cache,
        }
    }

    /// Creates an engine sharing an existing view cache — several engines
    /// (or threads, the cache is `Send + Sync`) serving the same workload
    /// can warm each other's repeated queries. Fingerprinted keys make this
    /// safe even when the engines' catalogs hold different relation
    /// versions.
    pub fn with_shared_cache(catalog: Catalog, config: EngineConfig, cache: ViewCache) -> Self {
        PackageEngine {
            catalog,
            config,
            cache,
        }
    }

    /// The engine's view cache (inspect [`ViewCache::stats`], share it via
    /// [`PackageEngine::with_shared_cache`], or reclaim memory with
    /// [`ViewCache::clear`] / [`ViewCache::invalidate_relation`]).
    pub fn view_cache(&self) -> &ViewCache {
        &self.cache
    }

    /// Drops cached views of `relation`. Memory reclamation only — a mutated
    /// or re-registered relation changes its fingerprint and therefore
    /// already misses every stale entry.
    pub fn invalidate_relation(&self, relation: &str) {
        self.cache.invalidate_relation(relation);
    }

    /// The engine's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (to register new relations).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Mutable access to the configuration.
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.config
    }

    /// Parses, analyzes and evaluates a PaQL query.
    pub fn execute_paql(&self, text: &str) -> PbResult<PackageResult> {
        let query = parse(text)?;
        self.execute(&query)
    }

    /// Analyzes and evaluates an already-parsed query (through the view
    /// cache when [`EngineConfig::cache`] is on).
    pub fn execute(&self, query: &PaqlQuery) -> PbResult<PackageResult> {
        let spec = self.build_spec(query)?;
        self.execute_spec(&spec)
    }

    /// Analyzes a query against the catalog (resolving the relation schema).
    pub fn analyze(&self, query: &PaqlQuery) -> PbResult<AnalyzedQuery> {
        let table = self.relation(query)?;
        Ok(analyze(query, table.schema())?)
    }

    /// Looks up the base relation of a query.
    pub fn relation(&self, query: &PaqlQuery) -> PbResult<&minidb::Table> {
        self.catalog
            .table(&query.relation)
            .ok_or_else(|| PbError::UnknownRelation(query.relation.clone()))
    }

    /// Builds the executable spec for a query (exposed for the interface
    /// layers: exploration, suggestion, summaries). Routed through the view
    /// cache when [`EngineConfig::cache`] is on, so repeated builds reuse
    /// materialized columns and partitionings.
    pub fn build_spec<'a>(&'a self, query: &PaqlQuery) -> PbResult<PackageSpec<'a>> {
        let analyzed = self.analyze(query)?;
        let table = self.relation(&analyzed.query)?;
        let par = crate::par::ParExec::new(self.config.num_threads);
        let policy = crate::column_store::ColumnPolicy {
            memory_budget: self.config.column_memory_budget,
            pool_pages: self.config.pool_pages,
        };
        if self.config.cache {
            PackageSpec::build_cached_with(&analyzed, table, &self.cache, &policy, par)
        } else {
            PackageSpec::build_with(&analyzed, table, &policy, par)
        }
    }

    /// Evaluates a spec with the configured strategy.
    pub fn execute_spec(&self, spec: &PackageSpec<'_>) -> PbResult<PackageResult> {
        let plan = self.plan(spec)?;
        self.run_plan(spec, &plan)
    }

    /// The `Auto` policy: ILP when the query is linear and conjunctive —
    /// unless the candidate set reaches
    /// [`crate::config::EngineConfig::sketch_threshold`], where the policy
    /// races a portfolio whose exact worker is node-capped at
    /// [`crate::config::EngineConfig::auto_exact_node_cap`] (exact cost
    /// tracks branching hardness, not candidate count, so at scale the race
    /// hedges: a cheap proof still wins outright and cancels the heuristics,
    /// a hostile instance truncates to its incumbent and the best heuristic
    /// answer carries the query); at
    /// [`crate::config::EngineConfig::shade_threshold`] candidates the race
    /// itself stops paying and the policy routes straight to
    /// [`Strategy::ProgressiveShading`]'s hierarchical descent; pruned
    /// enumeration for tiny candidate sets; and for the rest — queries no ILP can take — a solver
    /// portfolio when the candidate set is large enough to make racing
    /// worthwhile ([`crate::config::EngineConfig::portfolio_threshold`]),
    /// plain local search below that. (`Greedy` is never auto-selected on
    /// its own; it rides along as a portfolio worker.)
    pub fn resolve_strategy(&self, spec: &PackageSpec<'_>) -> Strategy {
        match self.config.strategy {
            Strategy::Auto => {
                let n = spec.candidate_count();
                if n <= self.config.enumeration_threshold {
                    return Strategy::PrunedEnumeration;
                }
                if linearization_obstacle(spec.view()).is_none() {
                    // The portfolio returns a single best package, so it
                    // only replaces the ILP when one package is wanted; a
                    // top-k request keeps the exact no-good-cut path
                    // whatever the candidate count. At `shade_threshold` and
                    // beyond, even the race stops paying — the flat sketch
                    // worker's own ILP is the bottleneck and the exact
                    // worker has no hope — so the policy hands the query
                    // straight to the hierarchical descent.
                    if n >= self.config.shade_threshold && self.config.num_packages <= 1 {
                        Strategy::ProgressiveShading
                    } else if n >= self.config.sketch_threshold && self.config.num_packages <= 1 {
                        Strategy::Portfolio
                    } else {
                        Strategy::Ilp
                    }
                } else if n >= self.config.portfolio_threshold {
                    Strategy::Portfolio
                } else {
                    Strategy::LocalSearch
                }
            }
            other => other,
        }
    }

    /// Builds the execution plan for a spec under the configured strategy:
    /// resolves `Auto`, instantiates the solver, and projects the options.
    pub fn plan(&self, spec: &PackageSpec<'_>) -> PbResult<QueryPlan> {
        self.plan_with_strategy(spec, self.config.strategy)
    }

    /// Builds a plan with an explicit strategy (used by the experiments).
    pub fn plan_with_strategy(
        &self,
        spec: &PackageSpec<'_>,
        strategy: Strategy,
    ) -> PbResult<QueryPlan> {
        let (strategy, auto_routed) = match strategy {
            Strategy::Auto => {
                let forced = self.resolve_strategy(spec);
                debug_assert_ne!(forced, Strategy::Auto);
                (forced, true)
            }
            other => (other, false),
        };
        // Portfolios race the configured worker set; every other strategy
        // maps 1:1 to its solver.
        let solver: Box<dyn Solver> = if strategy == Strategy::Portfolio {
            Box::new(crate::portfolio::PortfolioSolver::new(
                self.config.portfolio_workers.clone(),
            )?)
        } else {
            solver_for(strategy)?
        };
        let mut options = SolveOptions::from_config(&self.config);
        // `Auto` promises bounded latency where a caller-forced `Portfolio`
        // does not: when the *policy* picked the race, its exact worker is
        // node-capped so a branching-hostile instance truncates to its best
        // incumbent deterministically instead of holding the race open. The
        // cap trades the optimality proof, never validity — the best result
        // across all workers still wins.
        if auto_routed && strategy == Strategy::Portfolio {
            options.solver.max_nodes = options
                .solver
                .max_nodes
                .min(self.config.auto_exact_node_cap);
        }
        Ok(QueryPlan {
            strategy,
            solver,
            options,
        })
    }

    /// Evaluates a spec with an explicit strategy (used by the experiments).
    pub fn execute_with_strategy(
        &self,
        spec: &PackageSpec<'_>,
        strategy: Strategy,
    ) -> PbResult<PackageResult> {
        let plan = self.plan_with_strategy(spec, strategy)?;
        self.run_plan(spec, &plan)
    }

    /// Runs a plan: prune → solve → validate.
    pub fn run_plan(&self, spec: &PackageSpec<'_>, plan: &QueryPlan) -> PbResult<PackageResult> {
        let view = spec.view();

        // Prune: a contradictory cardinality window proves infeasibility
        // without running any solver (the result is still "optimal" — the
        // empty answer is exact).
        let bounds = derive_bounds(view)
            .clamp_to(view.candidate_count() as u64 * view.max_multiplicity() as u64);
        if bounds.is_empty() {
            let outcome = crate::solver::SolveOutcome::empty(
                plan.solver.strategy(),
                view.candidate_count(),
                true,
            );
            return Ok(PackageResult::from_pairs(
                outcome.packages,
                outcome.optimal,
                outcome.stats,
            ));
        }

        // Solve through the unified trait. The budget is re-armed per run so
        // a reused plan never starts from a stale deadline or a stop flag
        // tripped by a previous portfolio race.
        let options = plan.options.rearmed();
        let outcome = plan.solver.solve(view, &options)?;

        // Validate: no solver result leaves the engine unchecked. The check
        // runs through the interpreted oracle (AST evaluation against the
        // base table), which shares no code with the columnar view the
        // solvers used — an independent second opinion.
        for (package, _) in &outcome.packages {
            if !spec.is_valid_interpreted(package)? {
                return Err(PbError::Internal(format!(
                    "solver '{}' returned a package that fails validation",
                    plan.solver.strategy()
                )));
            }
        }
        Ok(PackageResult::from_pairs(
            outcome.packages,
            outcome.optimal,
            outcome.stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::StrategyUsed;
    use datagen::{recipes, standard_catalog, Seed};

    const MEAL_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
        SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE SUM(P.protein)";

    fn small_engine(n: usize, seed: u64) -> PackageEngine {
        let mut catalog = Catalog::new();
        catalog.register(recipes(n, Seed(seed)));
        PackageEngine::new(catalog)
    }

    #[test]
    fn executes_the_paper_query_end_to_end() {
        let engine = small_engine(300, 1);
        let result = engine.execute_paql(MEAL_QUERY).unwrap();
        assert!(!result.is_empty());
        let best = result.best().unwrap();
        assert_eq!(best.cardinality(), 3);
        assert!(result.best_objective().unwrap() > 0.0);
        assert!(result.optimal);
        let table = engine.catalog().table("recipes").unwrap();
        assert!(result.describe(table).contains("objective value"));
    }

    #[test]
    fn unknown_relation_is_reported() {
        let engine = small_engine(10, 2);
        let err = engine
            .execute_paql("SELECT PACKAGE(X) AS P FROM missing X SUCH THAT COUNT(*) = 1")
            .unwrap_err();
        assert!(matches!(err, PbError::UnknownRelation(r) if r == "missing"));
    }

    #[test]
    fn auto_uses_enumeration_for_tiny_inputs() {
        let engine = small_engine(15, 3);
        let result = engine
            .execute_paql("SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 2 MAXIMIZE SUM(P.protein)")
            .unwrap();
        assert_eq!(result.stats.strategy, StrategyUsed::PrunedEnumeration);
        assert!(result.optimal);
    }

    #[test]
    fn auto_uses_ilp_for_linear_queries_on_larger_inputs() {
        let engine = small_engine(200, 4);
        let result = engine.execute_paql(MEAL_QUERY).unwrap();
        assert_eq!(result.stats.strategy, StrategyUsed::Ilp);
    }

    // AVG vs AVG is one of the genuinely non-linear shapes left after the
    // AVG-vs-constant rewrite; recipes always have calories >> protein, so
    // the atom holds for every package and the heuristics can satisfy it.
    const NON_LINEAR_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R \
        SUCH THAT COUNT(*) = 3 AND AVG(P.calories) >= AVG(P.protein) \
        MAXIMIZE SUM(P.protein)";

    #[test]
    fn auto_falls_back_to_local_search_for_non_linear_queries() {
        let engine = small_engine(200, 5);
        let result = engine.execute_paql(NON_LINEAR_QUERY).unwrap();
        assert_eq!(result.stats.strategy, StrategyUsed::LocalSearch);
        if let Some(best) = result.best() {
            // The heuristic result must still be a valid package.
            let spec = engine
                .build_spec(&paql::parse(NON_LINEAR_QUERY).unwrap())
                .unwrap();
            assert!(spec.is_valid(best).unwrap());
        }
    }

    #[test]
    fn auto_routes_shade_threshold_candidates_to_progressive_shading() {
        // Above `shade_threshold` the race itself stops paying: the policy
        // hands linearizable single-package queries straight to the
        // hierarchical descent. Lower the threshold so a test-sized
        // relation crosses it.
        let mut catalog = Catalog::new();
        catalog.register(recipes(600, Seed(9)));
        let config = EngineConfig {
            shade_threshold: 100,
            ..EngineConfig::default()
        };
        let engine = PackageEngine::with_config(catalog, config);
        let query = paql::parse(MEAL_QUERY).unwrap();
        let spec = engine.build_spec(&query).unwrap();
        assert_eq!(engine.resolve_strategy(&spec), Strategy::ProgressiveShading);
        let result = engine.execute_spec(&spec).unwrap();
        assert_eq!(result.stats.strategy, StrategyUsed::ProgressiveShading);
        assert!(!result.is_empty());
        let best = result.best().unwrap();
        assert!(spec.is_valid(best).unwrap());
    }

    #[test]
    fn auto_races_a_portfolio_for_large_non_linear_queries() {
        let engine = small_engine(600, 10);
        let query = paql::parse(NON_LINEAR_QUERY).unwrap();
        let spec = engine.build_spec(&query).unwrap();
        assert_eq!(engine.resolve_strategy(&spec), Strategy::Portfolio);
        let result = engine.execute_spec(&spec).unwrap();
        assert_eq!(result.stats.strategy, StrategyUsed::Portfolio);
        assert!(!result.is_empty());
    }

    #[test]
    fn strategies_agree_on_the_optimal_objective() {
        let engine = small_engine(60, 6);
        let query = paql::parse(
            "SELECT PACKAGE(R) AS P FROM recipes R \
             SUCH THAT COUNT(*) = 2 AND SUM(P.calories) <= 1200 MAXIMIZE SUM(P.protein)",
        )
        .unwrap();
        let spec = engine.build_spec(&query).unwrap();
        let ilp = engine.execute_with_strategy(&spec, Strategy::Ilp).unwrap();
        let pruned = engine
            .execute_with_strategy(&spec, Strategy::PrunedEnumeration)
            .unwrap();
        let ls = engine
            .execute_with_strategy(&spec, Strategy::LocalSearch)
            .unwrap();
        let opt = ilp.best_objective().unwrap();
        assert!((pruned.best_objective().unwrap() - opt).abs() < 1e-6);
        // Local search is heuristic but must not exceed the optimum.
        assert!(ls.best_objective().unwrap() <= opt + 1e-6);
        // Greedy is heuristic too; when it finds a package it is valid and
        // bounded by the optimum.
        let greedy = engine
            .execute_with_strategy(&spec, Strategy::Greedy)
            .unwrap();
        if let Some(g) = greedy.best_objective() {
            assert!(g <= opt + 1e-6);
        }
    }

    #[test]
    fn planner_reports_the_resolved_strategy() {
        let engine = small_engine(15, 9);
        let query = paql::parse(
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) = 2 MAXIMIZE SUM(P.protein)",
        )
        .unwrap();
        let spec = engine.build_spec(&query).unwrap();
        let plan = engine.plan(&spec).unwrap();
        assert_eq!(plan.strategy, Strategy::PrunedEnumeration);
        assert_eq!(plan.solver.strategy(), StrategyUsed::PrunedEnumeration);
        // Contradictory bounds short-circuit before the solver runs.
        let infeasible = paql::parse(
            "SELECT PACKAGE(R) AS P FROM recipes R SUCH THAT COUNT(*) >= 5 AND COUNT(*) <= 2",
        )
        .unwrap();
        let spec = engine.build_spec(&infeasible).unwrap();
        let result = engine.execute_spec(&spec).unwrap();
        assert!(result.is_empty());
        assert!(result.optimal, "pruning proves infeasibility exactly");
        assert_eq!(result.stats.nodes, 0);
    }

    #[test]
    fn multiple_packages_are_returned_best_first() {
        let mut catalog = Catalog::new();
        catalog.register(recipes(80, Seed(7)));
        let engine = PackageEngine::with_config(catalog, EngineConfig::default().packages(5));
        let result = engine
            .execute_paql(
                "SELECT PACKAGE(R) AS P FROM recipes R \
                 SUCH THAT COUNT(*) = 2 AND SUM(P.calories) <= 1500 MAXIMIZE SUM(P.protein)",
            )
            .unwrap();
        assert_eq!(result.len(), 5);
        for w in result.objectives.windows(2) {
            assert!(w[0].unwrap() >= w[1].unwrap() - 1e-6);
        }
    }

    #[test]
    fn standard_catalog_queries_run_on_every_scenario_relation() {
        let engine = PackageEngine::new(standard_catalog(Seed(8)));
        // Vacation: flights + hotels under $2000.
        let vacation = engine
            .execute_paql(
                "SELECT PACKAGE(T) AS P FROM travel_options T \
                 SUCH THAT COUNT(*) FILTER (WHERE T.kind = 'flight') = 1 AND \
                           COUNT(*) FILTER (WHERE T.kind = 'hotel') = 1 AND \
                           COUNT(*) FILTER (WHERE T.kind = 'car') <= 1 AND \
                           SUM(P.price) <= 2000 \
                 MAXIMIZE SUM(P.comfort)",
            )
            .unwrap();
        assert!(!vacation.is_empty());
        // Portfolio: budget + 30% technology.
        let portfolio = engine
            .execute_paql(
                "SELECT PACKAGE(S) AS P FROM stocks S \
                 SUCH THAT SUM(P.price) <= 50000 AND \
                           SUM(P.price) FILTER (WHERE S.sector = 'technology') >= 0.3 * SUM(P.price) \
                 MAXIMIZE SUM(P.expected_return)",
            )
            .unwrap();
        assert!(!portfolio.is_empty());
    }
}
