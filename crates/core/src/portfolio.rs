//! Portfolio racing: several solvers, one view, one deadline.
//!
//! SketchRefine-style systems get their latency guarantees by racing cheap
//! approximate solvers against exact ones; this module does the same over
//! the [`Solver`] seam. A [`PortfolioSolver`] spawns one scoped thread per
//! worker strategy, all borrowing the same [`crate::view::CandidateView`]
//! and sharing one [`crate::budget::Budget`]:
//!
//! * the cheap workers (greedy, local search) produce a feasible package
//!   almost immediately — the anytime answer;
//! * the exact worker (ILP) keeps running; if it finishes inside the budget
//!   its provably-optimal result supersedes the heuristics and the race is
//!   cancelled early via the shared stop flag;
//! * at the deadline every worker returns its best-so-far result
//!   cooperatively, and the best one wins.
//!
//! Workers that cannot evaluate the query at all (e.g. the ILP translation
//! of a non-conjunctive formula) simply drop out of the race; the race only
//! fails when *every* worker fails.

use std::sync::mpsc;
use std::thread;

use paql::ObjectiveDirection;

use crate::config::Strategy;
use crate::error::PbError;
use crate::package::Package;
use crate::par::ParExec;
use crate::result::{EvalStats, StrategyUsed};
use crate::solver::{solver_for, SolveOptions, SolveOutcome, Solver};
use crate::view::CandidateView;
use crate::PbResult;

/// Races a set of worker strategies concurrently over one candidate view.
///
/// The returned outcome carries the winning worker's packages and `optimal`
/// flag, with stats aggregated across the whole race (`nodes` / `iterations`
/// summed over every worker, strategy reported as
/// [`StrategyUsed::Portfolio`]). With a single worker the packages,
/// objectives and optimality flag are exactly the underlying solver's —
/// racing is a pure wrapper, never a result transformation.
///
/// Winner ranking is deterministic given the worker outcomes: a worker with
/// packages beats one without, a provably-optimal outcome beats a heuristic
/// one, then the better first-package objective wins, and ties keep the
/// earliest worker in the configured order.
#[derive(Debug, Clone)]
pub struct PortfolioSolver {
    workers: Vec<Strategy>,
}

impl PortfolioSolver {
    /// A portfolio racing the given strategies (in order; the order only
    /// breaks ties). `Auto` and nested `Portfolio` workers are rejected, as
    /// is an empty worker set.
    pub fn new(workers: Vec<Strategy>) -> PbResult<Self> {
        if workers.is_empty() {
            return Err(PbError::Internal(
                "a portfolio needs at least one worker strategy".into(),
            ));
        }
        for w in &workers {
            if matches!(w, Strategy::Auto | Strategy::Portfolio) {
                return Err(PbError::Internal(format!(
                    "{w:?} is not a valid portfolio worker"
                )));
            }
        }
        Ok(PortfolioSolver { workers })
    }

    /// The strategies this portfolio races.
    pub fn workers(&self) -> &[Strategy] {
        &self.workers
    }
}

impl Default for PortfolioSolver {
    /// The canonical race: exact ILP against sketch→refine and the two
    /// heuristics. On linearizable queries sketch→refine covers the gap
    /// between "greedy finished instantly" and "the exact ILP needs seconds";
    /// on non-linearizable ones it drops out alongside the ILP.
    fn default() -> Self {
        PortfolioSolver {
            workers: vec![
                Strategy::Ilp,
                Strategy::SketchRefine,
                Strategy::LocalSearch,
                Strategy::Greedy,
            ],
        }
    }
}

/// Per-worker thread budgets for one race: a *weighted* split of the
/// caller's [`ParExec`] rather than a uniform one.
///
/// The heuristic workers (greedy, local search, exhaustive enumeration) are
/// inherently sequential scans — handing each of them `threads / W` cores
/// would leave those cores idle for all but the first milliseconds of the
/// race. Each heuristic gets exactly one thread, and the workers with a real
/// intra-solver fan-out (the exact ILP's parallel branch and bound,
/// sketch→refine's chunked scans) share everything that remains, earliest
/// worker first on uneven remainders (deterministic). The total never
/// exceeds the caller's grant; with no fan-out worker present, or nothing to
/// spare beyond one thread per worker, this degrades to the uniform
/// [`ParExec::split`]. Thread budgets change wall-clock only — every
/// solver's result is bit-identical at any thread count — so the re-split
/// can never change the race's winner ranking, just how fast the exact
/// worker gets there.
fn thread_split(workers: &[Strategy], par: ParExec) -> Vec<ParExec> {
    let total = par.threads();
    let wide: Vec<bool> = workers
        .iter()
        .map(|w| {
            matches!(
                w,
                Strategy::Ilp | Strategy::SketchRefine | Strategy::ProgressiveShading
            )
        })
        .collect();
    let n_wide = wide.iter().filter(|&&w| w).count();
    if n_wide == 0 || total <= workers.len() {
        return vec![par.split(workers.len()); workers.len()];
    }
    let spare = total - (workers.len() - n_wide);
    let base = spare / n_wide;
    let mut extra = spare % n_wide;
    wide.iter()
        .map(|&w| {
            if w {
                let t = base + usize::from(extra > 0);
                extra = extra.saturating_sub(1);
                ParExec::new(t)
            } else {
                ParExec::new(1)
            }
        })
        .collect()
}

/// True when outcome `a` should win the race over outcome `b`.
fn beats(a: &SolveOutcome, b: &SolveOutcome, direction: ObjectiveDirection) -> bool {
    let a_has = !a.packages.is_empty();
    let b_has = !b.packages.is_empty();
    if a_has != b_has {
        return a_has;
    }
    if a.optimal != b.optimal {
        return a.optimal;
    }
    if a_has {
        let x = a.packages[0].1;
        let y = b.packages[0].1;
        if x != y {
            return Package::better_objective(direction, x, y);
        }
    }
    false
}

impl Solver for PortfolioSolver {
    fn strategy(&self) -> StrategyUsed {
        StrategyUsed::Portfolio
    }

    fn solve(&self, view: &CandidateView, opts: &SolveOptions) -> PbResult<SolveOutcome> {
        // pb-lint: allow(time-containment) — stats clock only: stamps the
        // portfolio's wall time; worker deadlines go through the budget.
        let start = std::time::Instant::now();
        // Above the shading threshold the flat sketch worker's own sketch
        // ILP is the bottleneck Progressive Shading removes, so the race
        // upgrades that slot to the hierarchical solver. Deterministic: the
        // swap is a pure function of the candidate count.
        let workers: Vec<Strategy> = self
            .workers
            .iter()
            .map(|&w| {
                if w == Strategy::SketchRefine && view.candidate_count() >= opts.shade_threshold {
                    Strategy::ProgressiveShading
                } else {
                    w
                }
            })
            .collect();
        let solvers: Vec<Box<dyn Solver>> = workers
            .iter()
            .map(|&w| solver_for(w))
            .collect::<PbResult<_>>()?;
        // Workers race on a *child* of the caller's budget: it inherits the
        // deadline and observes the caller's cancellation, but cancelling the
        // race (below) never trips the flag inside the caller's options.
        let race = opts.budget.child();
        // One shared thread budget: racing workers and their intra-solver
        // fan-out split `opts.par` instead of multiplying it — the per-worker
        // grants never oversubscribe what the caller granted, and the split
        // is weighted so the exact workers get the cores the sequential
        // heuristics cannot use (see [`thread_split`]).
        let worker_pars = thread_split(&workers, opts.par);

        // This is a contained thread home clippy.toml points at.
        #[allow(clippy::disallowed_methods)]
        let mut slots: Vec<Option<PbResult<SolveOutcome>>> = thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(usize, PbResult<SolveOutcome>)>();
            for (i, solver) in solvers.iter().enumerate() {
                let tx = tx.clone();
                let worker_opts = SolveOptions {
                    budget: race.clone(),
                    par: worker_pars[i],
                    ..opts.clone()
                };
                scope.spawn(move || {
                    let result = solver.solve(view, &worker_opts);
                    // The receiver outlives the scope; a send can only fail
                    // if the collector below already drained and dropped,
                    // which cannot happen while workers run.
                    let _ = tx.send((i, result));
                });
            }
            drop(tx);

            let mut slots: Vec<Option<PbResult<SolveOutcome>>> =
                (0..solvers.len()).map(|_| None).collect();
            while let Ok((i, result)) = rx.recv() {
                // A provably-optimal result cannot be improved by any other
                // worker: cancel the losers instead of waiting them out.
                if matches!(&result, Ok(o) if o.optimal) {
                    race.cancel();
                }
                slots[i] = Some(result);
            }
            slots
        });

        let direction = view.direction();
        let mut winner: Option<usize> = None;
        let mut first_err: Option<PbError> = None;
        let mut nodes = 0u64;
        let mut iterations = 0u64;
        for (i, slot) in slots.iter().enumerate() {
            match slot {
                Some(Ok(outcome)) => {
                    nodes += outcome.stats.nodes;
                    iterations += outcome.stats.iterations;
                    let better = match winner {
                        None => true,
                        Some(w) => match &slots[w] {
                            Some(Ok(current)) => beats(outcome, current, direction),
                            _ => true,
                        },
                    };
                    if better {
                        winner = Some(i);
                    }
                }
                // A worker that cannot evaluate the query drops out; the
                // race fails only when everyone does.
                Some(Err(e)) if first_err.is_none() => first_err = Some(e.clone()),
                Some(Err(_)) | None => {}
            }
        }

        match winner {
            Some(w) => {
                // The winner index was only ever set while inspecting a
                // `Some(Ok(..))` slot; if that invariant ever breaks, fail
                // the solve (PR-2 convention) instead of panicking the race.
                let chosen = slots[w]
                    .take()
                    .ok_or_else(|| {
                        PbError::Internal("portfolio winner slot is unexpectedly empty".into())
                    })?
                    .map_err(|e| {
                        PbError::Internal(format!(
                            "portfolio winner slot holds an error outcome: {e}"
                        ))
                    })?;
                Ok(SolveOutcome {
                    packages: chosen.packages,
                    optimal: chosen.optimal,
                    stats: EvalStats {
                        strategy: StrategyUsed::Portfolio,
                        candidates: view.candidate_count(),
                        nodes,
                        iterations,
                        elapsed: start.elapsed(),
                    },
                })
            }
            None => Err(first_err.unwrap_or_else(|| {
                PbError::Internal("portfolio race finished with no worker results".into())
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::solver::{GreedySolver, IlpSolver, LocalSearchSolver};
    use crate::spec::PackageSpec;
    use datagen::{recipes, Seed};
    use minidb::Table;
    use paql::compile;
    use std::time::Duration;

    fn spec_for<'a>(table: &'a Table, q: &str) -> PackageSpec<'a> {
        let analyzed = compile(q, table.schema()).unwrap();
        PackageSpec::build(&analyzed, table).unwrap()
    }

    const MEAL_QUERY: &str = "SELECT PACKAGE(R) AS P FROM recipes R WHERE R.gluten = 'free' \
        SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 MAXIMIZE SUM(P.protein)";

    #[test]
    fn racing_returns_the_ilp_optimum_on_linear_queries() {
        let t = recipes(250, Seed(1));
        let spec = spec_for(&t, MEAL_QUERY);
        let opts = SolveOptions::default();
        let race = PortfolioSolver::default()
            .solve(spec.view(), &opts)
            .unwrap();
        // Reusing the same options doubles as a regression test: the race's
        // internal cancel must not poison the caller's budget.
        assert!(!opts.budget.expired());
        let exact = IlpSolver.solve(spec.view(), &opts).unwrap();
        assert!(
            race.optimal,
            "the exact worker finished, so the race is optimal"
        );
        assert_eq!(race.stats.strategy, StrategyUsed::Portfolio);
        assert_eq!(
            race.packages.first().map(|(_, o)| *o),
            exact.packages.first().map(|(_, o)| *o),
        );
        for (p, _) in &race.packages {
            assert!(spec.is_valid(p).unwrap());
        }
    }

    #[test]
    fn ilp_dropping_out_still_wins_with_heuristics() {
        // AVG vs AVG is not linearizable: the ILP (and sketch-refine) workers
        // error out of the race and the heuristics must still deliver a
        // feasible package. Recipes always have calories >> protein, so the
        // AVG atom holds for every package.
        let t = recipes(200, Seed(2));
        let spec = spec_for(
            &t,
            "SELECT PACKAGE(R) AS P FROM recipes R \
             SUCH THAT COUNT(*) = 3 AND AVG(P.calories) >= AVG(P.protein) \
             MAXIMIZE SUM(P.protein)",
        );
        let out = PortfolioSolver::default()
            .solve(spec.view(), &SolveOptions::default())
            .unwrap();
        assert!(!out.packages.is_empty());
        assert!(!out.optimal, "no exact worker survived");
        for (p, _) in &out.packages {
            assert!(spec.is_valid(p).unwrap());
        }
    }

    #[test]
    fn single_worker_portfolio_is_a_pure_wrapper() {
        let t = recipes(150, Seed(3));
        let spec = spec_for(&t, MEAL_QUERY);
        for (workers, solver) in [
            (
                vec![Strategy::LocalSearch],
                Box::new(LocalSearchSolver) as Box<dyn Solver>,
            ),
            (
                vec![Strategy::Greedy],
                Box::new(GreedySolver) as Box<dyn Solver>,
            ),
        ] {
            let opts = SolveOptions::default();
            let race = PortfolioSolver::new(workers)
                .unwrap()
                .solve(spec.view(), &opts)
                .unwrap();
            let alone = solver.solve(spec.view(), &opts).unwrap();
            assert_eq!(race.packages, alone.packages);
            assert_eq!(race.optimal, alone.optimal);
            assert_eq!(race.stats.nodes, alone.stats.nodes);
            assert_eq!(race.stats.iterations, alone.stats.iterations);
        }
    }

    #[test]
    fn thread_split_favors_exact_workers_without_oversubscribing() {
        let canonical = PortfolioSolver::default().workers;
        // 8 threads over [Ilp, SketchRefine, LocalSearch, Greedy]: the two
        // heuristics take 1 each, the two fan-out workers share the rest.
        let grants: Vec<usize> = thread_split(&canonical, ParExec::new(8))
            .into_iter()
            .map(ParExec::threads)
            .collect();
        assert_eq!(grants, vec![3, 3, 1, 1]);
        // An odd remainder lands on the earliest fan-out worker.
        let grants: Vec<usize> = thread_split(&canonical, ParExec::new(9))
            .into_iter()
            .map(ParExec::threads)
            .collect();
        assert_eq!(grants, vec![4, 3, 1, 1]);
        // Nothing to spare: degrade to the uniform split (1 thread each).
        for total in [1, 2, 4] {
            let grants = thread_split(&canonical, ParExec::new(total));
            assert!(grants.iter().all(|g| g.threads() == 1));
        }
        // No fan-out worker at all: uniform split again.
        let grants = thread_split(&[Strategy::Greedy, Strategy::LocalSearch], ParExec::new(16));
        assert!(grants.iter().all(|g| g.threads() == 8));
        // The total grant never exceeds the caller's budget.
        for total in 1..=12 {
            let sum: usize = thread_split(&canonical, ParExec::new(total))
                .into_iter()
                .map(ParExec::threads)
                .sum();
            assert!(sum <= total.max(canonical.len()));
        }
    }

    #[test]
    fn invalid_worker_sets_are_rejected() {
        assert!(PortfolioSolver::new(Vec::new()).is_err());
        assert!(PortfolioSolver::new(vec![Strategy::Auto]).is_err());
        assert!(PortfolioSolver::new(vec![Strategy::Ilp, Strategy::Portfolio]).is_err());
        assert!(PortfolioSolver::new(vec![Strategy::Ilp, Strategy::Greedy]).is_ok());
    }

    #[test]
    fn all_workers_failing_reports_the_first_error() {
        // Exhaustive enumeration refuses > 64 candidates, and it is the only
        // worker: the race has nobody left and must surface the error.
        let t = recipes(150, Seed(4));
        let spec = spec_for(&t, MEAL_QUERY);
        let err = PortfolioSolver::new(vec![Strategy::Exhaustive])
            .unwrap()
            .solve(spec.view(), &SolveOptions::default())
            .unwrap_err();
        assert!(matches!(err, PbError::Unsupported(_)));
    }

    #[test]
    fn deadline_race_returns_a_feasible_package_quickly() {
        let t = recipes(1000, Seed(5));
        let spec = spec_for(&t, MEAL_QUERY);
        // Generous enough for the greedy worker even in debug builds, tight
        // enough that the race cannot wait out an unbounded exact solve.
        let opts = SolveOptions {
            budget: Budget::with_limit(Duration::from_millis(200)),
            ..SolveOptions::default()
        };
        let out = PortfolioSolver::default()
            .solve(spec.view(), &opts)
            .unwrap();
        assert!(!out.packages.is_empty());
        for (p, _) in &out.packages {
            assert!(spec.is_valid(p).unwrap());
        }
    }
}
