//! Scalar expressions over a single tuple.
//!
//! These expressions implement PaQL *base constraints* (the `WHERE` clause),
//! which the paper notes "are equivalent to regular selection predicates, and
//! can be evaluated individually for each tuple".

use std::fmt;

use crate::value::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinaryOp {
    /// True for the six comparison operators.
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// True for `+ - * /`.
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div
        )
    }

    /// True for `AND` / `OR`.
    pub fn is_logical(&self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// SQL spelling of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// A scalar expression evaluated against one tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a column by name (optionally qualified, e.g. `R.calories`;
    /// the qualifier is stripped during analysis).
    Column(String),
    /// A literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr BETWEEN low AND high` (inclusive on both ends).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr LIKE pattern` with `%` and `_` wildcards.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern literal.
        pattern: String,
        /// True for `NOT LIKE`.
        negated: bool,
    },
}

impl Expr {
    /// Column reference helper.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Binary expression helper.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::And, self, other)
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Or, self, other)
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::Eq, self, other)
    }

    /// `self <= other`.
    pub fn lt_eq(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::LtEq, self, other)
    }

    /// `self >= other`.
    pub fn gt_eq(self, other: Expr) -> Expr {
        Expr::binary(BinaryOp::GtEq, self, other)
    }

    /// `self BETWEEN low AND high`.
    pub fn between(self, low: Expr, high: Expr) -> Expr {
        Expr::Between {
            expr: Box::new(self),
            low: Box::new(low),
            high: Box::new(high),
            negated: false,
        }
    }

    /// Collects the names of all columns referenced by the expression.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut cols = Vec::new();
        self.visit_columns(&mut |c| cols.push(c.to_string()));
        cols.sort();
        cols.dedup();
        cols
    }

    fn visit_columns(&self, f: &mut impl FnMut(&str)) {
        match self {
            Expr::Column(c) => f(c),
            Expr::Literal(_) => {}
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit_columns(f);
                rhs.visit_columns(f);
            }
            Expr::Unary { expr, .. } => expr.visit_columns(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit_columns(f);
                low.visit_columns(f);
                high.visit_columns(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit_columns(f);
                for e in list {
                    e.visit_columns(f);
                }
            }
            Expr::IsNull { expr, .. } => expr.visit_columns(f),
            Expr::Like { expr, .. } => expr.visit_columns(f),
        }
    }

    /// Rewrites every column reference through `rename`.
    pub fn map_columns(&self, rename: &impl Fn(&str) -> String) -> Expr {
        match self {
            Expr::Column(c) => Expr::Column(rename(c)),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(lhs.map_columns(rename)),
                rhs: Box::new(rhs.map_columns(rename)),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.map_columns(rename)),
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.map_columns(rename)),
                low: Box::new(low.map_columns(rename)),
                high: Box::new(high.map_columns(rename)),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.map_columns(rename)),
                list: list.iter().map(|e| e.map_columns(rename)).collect(),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.map_columns(rename)),
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.map_columns(rename)),
                pattern: pattern.clone(),
                negated: *negated,
            },
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            // Embedded quotes are doubled (the SQL escape the lexers accept),
            // so the rendering is unambiguous — distinct literals can never
            // print alike. The engine's view cache keys on this rendering.
            Expr::Literal(Value::Text(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => write!(f, "(NOT {expr})"),
            Expr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => write!(f, "(-{expr})"),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "({expr} {}IN ({}))",
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE '{}')",
                if *negated { "NOT " } else { "" },
                pattern.replace('\'', "''")
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let e = Expr::col("gluten")
            .eq(Expr::lit("free"))
            .and(Expr::col("calories").lt_eq(Expr::lit(500)));
        assert_eq!(e.to_string(), "((gluten = 'free') AND (calories <= 500))");
    }

    #[test]
    fn display_escapes_embedded_quotes_unambiguously() {
        // A single literal containing `a', 'b` must not render like the
        // two-element list ('a', 'b') — cache keys depend on it.
        let tricky = Expr::col("x").eq(Expr::lit("a', 'b"));
        assert_eq!(tricky.to_string(), "(x = 'a'', ''b')");
        let list = Expr::InList {
            expr: Box::new(Expr::col("x")),
            list: vec![Expr::lit("a"), Expr::lit("b")],
            negated: false,
        };
        assert_eq!(list.to_string(), "(x IN ('a', 'b'))");
        assert_ne!(
            Expr::InList {
                expr: Box::new(Expr::col("x")),
                list: vec![Expr::lit("a', 'b")],
                negated: false,
            }
            .to_string(),
            list.to_string()
        );
        // LIKE patterns escape the same way.
        let like = Expr::Like {
            expr: Box::new(Expr::col("x")),
            pattern: "a'b%".into(),
            negated: false,
        };
        assert_eq!(like.to_string(), "(x LIKE 'a''b%')");
    }

    #[test]
    fn referenced_columns_dedups_and_sorts() {
        let e = Expr::col("b")
            .eq(Expr::lit(1))
            .and(Expr::col("a").eq(Expr::col("b")));
        assert_eq!(
            e.referenced_columns(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn map_columns_rewrites_references() {
        let e = Expr::col("R.calories").gt_eq(Expr::lit(10));
        let stripped = e.map_columns(&|c| c.rsplit('.').next().unwrap().to_string());
        assert_eq!(stripped.referenced_columns(), vec!["calories".to_string()]);
    }

    #[test]
    fn operator_classification() {
        assert!(BinaryOp::Lt.is_comparison());
        assert!(BinaryOp::Mul.is_arithmetic());
        assert!(BinaryOp::And.is_logical());
        assert!(!BinaryOp::And.is_comparison());
    }

    #[test]
    fn between_display() {
        let e = Expr::col("x").between(Expr::lit(1), Expr::lit(5));
        assert_eq!(e.to_string(), "(x BETWEEN 1 AND 5)");
    }
}
