//! CSV import and export.
//!
//! The demo's meal-planner dataset was "scrapped from online recipe and
//! nutrition websites"; this reproduction generates synthetic data instead
//! (see the `datagen` crate), but the CSV reader lets users load their own
//! relations, and the writer makes benchmark inputs inspectable.

use std::io::{BufRead, Write};

use crate::error::DbError;
use crate::schema::{Column, ColumnType, Schema};
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::DbResult;

/// Parses a single CSV line, honouring double-quoted fields with embedded
/// commas and doubled quotes.
fn parse_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

fn escape_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn parse_value(raw: &str, ty: ColumnType) -> DbResult<Value> {
    let trimmed = raw.trim();
    if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("null") {
        return Ok(Value::Null);
    }
    match ty {
        ColumnType::Bool => trimmed
            .parse::<bool>()
            .map(Value::Bool)
            .map_err(|_| DbError::CsvError(format!("cannot parse '{trimmed}' as BOOL"))),
        ColumnType::Int => trimmed
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| DbError::CsvError(format!("cannot parse '{trimmed}' as INT"))),
        ColumnType::Float => trimmed
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| DbError::CsvError(format!("cannot parse '{trimmed}' as FLOAT"))),
        ColumnType::Text => Ok(Value::Text(trimmed.to_string())),
    }
}

/// Infers a column type from sample (string) values: INT ⊂ FLOAT ⊂ TEXT,
/// BOOL only when every non-empty value is `true`/`false`.
fn infer_type(samples: &[&str]) -> ColumnType {
    let mut non_empty = 0usize;
    let (mut ints, mut floats, mut bools) = (0usize, 0usize, 0usize);
    for s in samples {
        let t = s.trim();
        if t.is_empty() || t.eq_ignore_ascii_case("null") {
            continue;
        }
        non_empty += 1;
        if t.parse::<i64>().is_ok() {
            ints += 1;
        }
        if t.parse::<f64>().is_ok() {
            floats += 1;
        }
        if t.parse::<bool>().is_ok() {
            bools += 1;
        }
    }
    if non_empty == 0 {
        ColumnType::Text
    } else if bools == non_empty {
        ColumnType::Bool
    } else if ints == non_empty {
        ColumnType::Int
    } else if floats == non_empty {
        ColumnType::Float
    } else {
        ColumnType::Text
    }
}

/// Reads a table from CSV text with a header row, inferring column types.
pub fn read_table(name: &str, reader: impl BufRead) -> DbResult<Table> {
    let mut lines = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(|e| DbError::CsvError(e.to_string()))?;
        if !line.trim().is_empty() {
            lines.push(line);
        }
    }
    if lines.is_empty() {
        return Err(DbError::CsvError("empty CSV input (missing header)".into()));
    }
    let header = parse_line(&lines[0]);
    let records: Vec<Vec<String>> = lines[1..].iter().map(|l| parse_line(l)).collect();
    for (i, r) in records.iter().enumerate() {
        if r.len() != header.len() {
            return Err(DbError::CsvError(format!(
                "row {} has {} fields, header has {}",
                i + 1,
                r.len(),
                header.len()
            )));
        }
    }
    let columns: Vec<Column> = header
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let samples: Vec<&str> = records.iter().map(|r| r[i].as_str()).collect();
            Column::new(name.trim(), infer_type(&samples))
        })
        .collect();
    let schema = Schema::new(columns)?;
    let mut table = Table::new(name, schema.clone());
    for record in &records {
        let values: Vec<Value> = record
            .iter()
            .zip(schema.columns())
            .map(|(raw, col)| parse_value(raw, col.ty))
            .collect::<DbResult<_>>()?;
        table.insert(Tuple::new(values))?;
    }
    Ok(table)
}

/// Reads a table from a CSV string.
pub fn read_table_str(name: &str, csv: &str) -> DbResult<Table> {
    read_table(name, csv.as_bytes())
}

/// Writes a table as CSV (header + rows).
pub fn write_table(table: &Table, mut writer: impl Write) -> DbResult<()> {
    let header: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| escape_field(&c.name))
        .collect();
    writeln!(writer, "{}", header.join(",")).map_err(|e| DbError::CsvError(e.to_string()))?;
    for row in table.rows() {
        let fields: Vec<String> = row
            .values()
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Text(s) => escape_field(s),
                other => other.to_string(),
            })
            .collect();
        writeln!(writer, "{}", fields.join(",")).map_err(|e| DbError::CsvError(e.to_string()))?;
    }
    Ok(())
}

/// Serializes a table to a CSV string.
pub fn write_table_string(table: &Table) -> DbResult<String> {
    let mut buf = Vec::new();
    write_table(table, &mut buf)?;
    String::from_utf8(buf).map_err(|e| DbError::CsvError(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
name,calories,protein,gluten,organic
oatmeal,320,12.5,free,true
\"pasta, fresh\",640,20,full,false
salad,210,6.5,free,true
";

    #[test]
    fn read_infers_types() {
        let t = read_table_str("recipes", SAMPLE).unwrap();
        assert_eq!(t.len(), 3);
        let s = t.schema();
        assert_eq!(s.column("calories").unwrap().ty, ColumnType::Int);
        assert_eq!(s.column("protein").unwrap().ty, ColumnType::Float);
        assert_eq!(s.column("gluten").unwrap().ty, ColumnType::Text);
        assert_eq!(s.column("organic").unwrap().ty, ColumnType::Bool);
    }

    #[test]
    fn quoted_fields_preserve_commas() {
        let t = read_table_str("recipes", SAMPLE).unwrap();
        assert_eq!(t.rows()[1].values()[0], Value::Text("pasta, fresh".into()));
    }

    #[test]
    fn roundtrip_write_then_read() {
        let t = read_table_str("recipes", SAMPLE).unwrap();
        let csv = write_table_string(&t).unwrap();
        let t2 = read_table_str("recipes", &csv).unwrap();
        assert_eq!(t.rows(), t2.rows());
    }

    #[test]
    fn empty_and_ragged_inputs_error() {
        assert!(read_table_str("t", "").is_err());
        assert!(read_table_str("t", "a,b\n1\n").is_err());
        assert!(read_table_str("t", "a\nnot_an_int_but_inferred_text\n").is_ok());
    }

    #[test]
    fn nulls_roundtrip_as_empty_fields() {
        let t = read_table_str("t", "a,b\n1,\n2,x\n").unwrap();
        assert!(t.rows()[0].values()[1].is_null());
        let csv = write_table_string(&t).unwrap();
        assert!(csv.contains("1,\n"));
    }

    #[test]
    fn parse_line_handles_escaped_quotes() {
        assert_eq!(parse_line("a,\"b\"\"c\",d"), vec!["a", "b\"c", "d"]);
    }
}
