//! Error type for the relational substrate.

use std::fmt;

/// Errors produced by the `minidb` substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A column name could not be resolved against a schema.
    UnknownColumn(String),
    /// A table name could not be resolved against the catalog.
    UnknownTable(String),
    /// A schema definition is invalid (e.g. duplicate column names).
    SchemaError(String),
    /// A value does not match the declared column type, or an operation was
    /// applied to values of the wrong type.
    TypeError(String),
    /// A tuple has the wrong arity for its table.
    ArityMismatch { expected: usize, found: usize },
    /// CSV parsing failed.
    CsvError(String),
    /// Expression evaluation failed for a reason not covered above.
    EvalError(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            DbError::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            DbError::SchemaError(m) => write!(f, "schema error: {m}"),
            DbError::TypeError(m) => write!(f, "type error: {m}"),
            DbError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "arity mismatch: expected {expected} values, found {found}"
                )
            }
            DbError::CsvError(m) => write!(f, "csv error: {m}"),
            DbError::EvalError(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert_eq!(
            DbError::UnknownColumn("x".into()).to_string(),
            "unknown column 'x'"
        );
        assert_eq!(
            DbError::ArityMismatch {
                expected: 3,
                found: 2
            }
            .to_string(),
            "arity mismatch: expected 3 values, found 2"
        );
    }
}
