//! Expression evaluation with SQL three-valued logic.

use crate::error::DbError;
use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::DbResult;

/// Evaluates `expr` against `tuple` (column names resolved through `schema`).
pub fn eval(expr: &Expr, schema: &Schema, tuple: &Tuple) -> DbResult<Value> {
    match expr {
        Expr::Column(name) => {
            // Prefer an exact match (joined schemas contain qualified names
            // such as `R.calories`); otherwise fall back to the unqualified
            // name so `R.gluten` resolves against the base table schema.
            let idx = match schema.index_of(name) {
                Some(i) => i,
                None => schema.require(strip_qualifier(name))?,
            };
            Ok(tuple.get(idx).cloned().unwrap_or(Value::Null))
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Binary { op, lhs, rhs } => {
            let l = eval(lhs, schema, tuple)?;
            // Short-circuit logical operators on the left value where 3VL allows.
            if *op == BinaryOp::And {
                if l.as_bool() == Some(false) {
                    return Ok(Value::Bool(false));
                }
            } else if *op == BinaryOp::Or && l.as_bool() == Some(true) {
                return Ok(Value::Bool(true));
            }
            let r = eval(rhs, schema, tuple)?;
            eval_binary(*op, &l, &r)
        }
        Expr::Unary { op, expr } => {
            let v = eval(expr, schema, tuple)?;
            match op {
                UnaryOp::Neg => v.neg(),
                UnaryOp::Not => Ok(match v {
                    Value::Null => Value::Null,
                    other => match other.as_bool() {
                        Some(b) => Value::Bool(!b),
                        None => {
                            return Err(DbError::TypeError(format!("cannot apply NOT to {other}")))
                        }
                    },
                }),
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, schema, tuple)?;
            let lo = eval(low, schema, tuple)?;
            let hi = eval(high, schema, tuple)?;
            let ge = eval_binary(BinaryOp::GtEq, &v, &lo)?;
            let le = eval_binary(BinaryOp::LtEq, &v, &hi)?;
            let both = eval_binary(BinaryOp::And, &ge, &le)?;
            negate_if(both, *negated)
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, schema, tuple)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let item_v = eval(item, schema, tuple)?;
                match v.sql_eq(&item_v) {
                    Some(true) => return negate_if(Value::Bool(true), *negated),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                negate_if(Value::Bool(false), *negated)
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, schema, tuple)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, schema, tuple)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => negate_if(Value::Bool(like_match(&s, pattern)), *negated),
                other => Err(DbError::TypeError(format!(
                    "LIKE requires a text value, got {other}"
                ))),
            }
        }
    }
}

/// Evaluates a predicate, mapping NULL to `false` (standard SQL `WHERE`
/// semantics: a row qualifies only when the predicate is definitely true).
pub fn eval_predicate(expr: &Expr, schema: &Schema, tuple: &Tuple) -> DbResult<bool> {
    Ok(eval(expr, schema, tuple)?.as_bool().unwrap_or(false))
}

/// Strips a leading alias qualifier (`R.calories` → `calories`, `P.x` → `x`).
pub fn strip_qualifier(name: &str) -> &str {
    match name.rsplit_once('.') {
        Some((_, bare)) => bare,
        None => name,
    }
}

fn negate_if(v: Value, negated: bool) -> DbResult<Value> {
    if !negated {
        return Ok(v);
    }
    Ok(match v {
        Value::Null => Value::Null,
        other => Value::Bool(!other.as_bool().unwrap_or(false)),
    })
}

fn eval_binary(op: BinaryOp, l: &Value, r: &Value) -> DbResult<Value> {
    use BinaryOp::*;
    match op {
        Add => l.add(r),
        Sub => l.sub(r),
        Mul => l.mul(r),
        Div => l.div(r),
        Eq | NotEq => Ok(match l.sql_eq(r) {
            None => Value::Null,
            Some(b) => Value::Bool(if op == Eq { b } else { !b }),
        }),
        Lt | LtEq | Gt | GtEq => Ok(match l.sql_cmp(r) {
            None => Value::Null,
            Some(ord) => {
                let b = match op {
                    Lt => ord.is_lt(),
                    LtEq => ord.is_le(),
                    Gt => ord.is_gt(),
                    GtEq => ord.is_ge(),
                    _ => unreachable!(),
                };
                Value::Bool(b)
            }
        }),
        And => Ok(three_valued_and(l, r)),
        Or => Ok(three_valued_or(l, r)),
    }
}

fn three_valued_and(l: &Value, r: &Value) -> Value {
    match (l.as_bool(), r.as_bool(), l.is_null() || r.is_null()) {
        (Some(false), _, _) | (_, Some(false), _) => Value::Bool(false),
        (_, _, true) => Value::Null,
        (Some(true), Some(true), _) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn three_valued_or(l: &Value, r: &Value) -> Value {
    match (l.as_bool(), r.as_bool(), l.is_null() || r.is_null()) {
        (Some(true), _, _) | (_, Some(true), _) => Value::Bool(true),
        (_, _, true) => Value::Null,
        (Some(false), Some(false), _) => Value::Bool(false),
        _ => Value::Null,
    }
}

/// Minimal SQL `LIKE` matcher supporting `%` (any sequence) and `_` (any one
/// character). Matching is case-sensitive, like PostgreSQL's `LIKE`.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn inner(s: &[char], p: &[char]) -> bool {
        match (p.first(), s.first()) {
            (None, None) => true,
            (None, Some(_)) => false,
            (Some('%'), _) => {
                // Try to consume zero or more characters.
                if inner(s, &p[1..]) {
                    return true;
                }
                if s.is_empty() {
                    return false;
                }
                inner(&s[1..], p)
            }
            (Some('_'), Some(_)) => inner(&s[1..], &p[1..]),
            (Some(pc), Some(sc)) if pc == sc => inner(&s[1..], &p[1..]),
            _ => false,
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    inner(&s, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::tuple;

    fn schema() -> Schema {
        Schema::build(&[
            ("name", ColumnType::Text),
            ("calories", ColumnType::Float),
            ("protein", ColumnType::Float),
            ("gluten", ColumnType::Text),
        ])
    }

    fn row() -> Tuple {
        tuple!("oatmeal", 320.0, 12.5, "free")
    }

    #[test]
    fn base_constraint_from_the_paper() {
        // WHERE R.gluten = 'free'
        let e = Expr::col("R.gluten").eq(Expr::lit("free"));
        assert!(eval_predicate(&e, &schema(), &row()).unwrap());
        let e2 = Expr::col("R.gluten").eq(Expr::lit("full"));
        assert!(!eval_predicate(&e2, &schema(), &row()).unwrap());
    }

    #[test]
    fn arithmetic_and_comparison() {
        let e = Expr::binary(
            BinaryOp::Gt,
            Expr::binary(BinaryOp::Mul, Expr::col("protein"), Expr::lit(2)),
            Expr::lit(20.0),
        );
        assert!(eval_predicate(&e, &schema(), &row()).unwrap());
    }

    #[test]
    fn null_comparisons_do_not_qualify() {
        let schema = Schema::build(&[("x", ColumnType::Float)]);
        let t = Tuple::new(vec![Value::Null]);
        let e = Expr::col("x").gt_eq(Expr::lit(0));
        assert_eq!(eval(&e, &schema, &t).unwrap(), Value::Null);
        assert!(!eval_predicate(&e, &schema, &t).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        assert_eq!(
            three_valued_and(&Value::Null, &Value::Bool(false)),
            Value::Bool(false)
        );
        assert_eq!(
            three_valued_and(&Value::Null, &Value::Bool(true)),
            Value::Null
        );
        assert_eq!(
            three_valued_or(&Value::Null, &Value::Bool(true)),
            Value::Bool(true)
        );
        assert_eq!(
            three_valued_or(&Value::Null, &Value::Bool(false)),
            Value::Null
        );
    }

    #[test]
    fn between_in_isnull_like() {
        let s = schema();
        let r = row();
        let between = Expr::col("calories").between(Expr::lit(300), Expr::lit(350));
        assert!(eval_predicate(&between, &s, &r).unwrap());

        let inlist = Expr::InList {
            expr: Box::new(Expr::col("gluten")),
            list: vec![Expr::lit("free"), Expr::lit("none")],
            negated: false,
        };
        assert!(eval_predicate(&inlist, &s, &r).unwrap());

        let isnull = Expr::IsNull {
            expr: Box::new(Expr::col("name")),
            negated: true,
        };
        assert!(eval_predicate(&isnull, &s, &r).unwrap());

        let like = Expr::Like {
            expr: Box::new(Expr::col("name")),
            pattern: "oat%".into(),
            negated: false,
        };
        assert!(eval_predicate(&like, &s, &r).unwrap());
    }

    #[test]
    fn like_matcher_wildcards() {
        assert!(like_match("chicken salad", "%salad"));
        assert!(like_match("chicken salad", "chicken%"));
        assert!(like_match("cat", "c_t"));
        assert!(!like_match("cat", "c_"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", "abd"));
        assert!(like_match("a%c", "a%c"));
    }

    #[test]
    fn not_operator_respects_nulls() {
        let s = Schema::build(&[("x", ColumnType::Bool)]);
        let t = Tuple::new(vec![Value::Null]);
        let e = Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(Expr::col("x")),
        };
        assert_eq!(eval(&e, &s, &t).unwrap(), Value::Null);
    }

    #[test]
    fn unknown_column_errors() {
        let e = Expr::col("missing");
        assert!(matches!(
            eval(&e, &schema(), &row()),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn qualifier_stripping() {
        assert_eq!(strip_qualifier("R.calories"), "calories");
        assert_eq!(strip_qualifier("calories"), "calories");
        assert_eq!(strip_qualifier("a.b.c"), "c");
    }
}
