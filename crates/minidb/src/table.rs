//! Tables: a schema plus an append-only vector of rows.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::DbError;
use crate::schema::Schema;
use crate::tuple::{Tuple, TupleId};
use crate::DbResult;

/// Source of content fingerprints: a process-wide counter, so no two
/// distinct table states can ever share a stamp (see [`Table::fingerprint`]).
static NEXT_FINGERPRINT: AtomicU64 = AtomicU64::new(1);

fn fresh_fingerprint() -> u64 {
    NEXT_FINGERPRINT.fetch_add(1, Ordering::Relaxed)
}

/// An in-memory, append-only table.
///
/// Tuples are identified by their insertion index ([`TupleId`]), which the
/// package engine uses as the decision-variable index in ILP translation and
/// as the element identity in packages.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Tuple>,
    fingerprint: u64,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            fingerprint: fresh_fingerprint(),
        }
    }

    /// A stamp identifying this table's current contents, for cache keying.
    ///
    /// Every mutation ([`Table::insert`] and friends) replaces the stamp with
    /// a fresh process-wide unique value, so two `Table` values carry the
    /// same fingerprint only when one is an (unmutated) clone of the other —
    /// i.e. their rows are guaranteed identical. Derived data keyed by
    /// fingerprint (the engine's view cache) therefore can never be served
    /// stale: mutating a relation silently invalidates every cached entry
    /// for it. The stamp is *not* content-addressed — reloading identical
    /// rows into a new table yields a different fingerprint, which costs a
    /// cache rebuild but never correctness.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Validates and appends a tuple, returning its id.
    pub fn insert(&mut self, tuple: Tuple) -> DbResult<TupleId> {
        if tuple.arity() != self.schema.arity() {
            return Err(DbError::ArityMismatch {
                expected: self.schema.arity(),
                found: tuple.arity(),
            });
        }
        for (i, v) in tuple.values().iter().enumerate() {
            let col = &self.schema.columns()[i];
            if !col.ty.admits(v) {
                return Err(DbError::TypeError(format!(
                    "value {v} is not admissible in column '{}' of type {}",
                    col.name, col.ty
                )));
            }
        }
        let id = TupleId(self.rows.len() as u32);
        self.rows.push(tuple);
        self.fingerprint = fresh_fingerprint();
        Ok(id)
    }

    /// Appends many tuples.
    pub fn insert_all<I: IntoIterator<Item = Tuple>>(
        &mut self,
        tuples: I,
    ) -> DbResult<Vec<TupleId>> {
        tuples.into_iter().map(|t| self.insert(t)).collect()
    }

    /// Tuple by id.
    pub fn get(&self, id: TupleId) -> Option<&Tuple> {
        self.rows.get(id.index())
    }

    /// Tuple by id, erroring when absent.
    pub fn require(&self, id: TupleId) -> DbResult<&Tuple> {
        self.get(id).ok_or_else(|| {
            DbError::EvalError(format!(
                "tuple {id} does not exist in table '{}'",
                self.name
            ))
        })
    }

    /// All rows in insertion order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Iterator over `(TupleId, &Tuple)`.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, t)| (TupleId(i as u32), t))
    }

    /// The value in `column` for tuple `id`, as f64.
    pub fn value_f64(&self, id: TupleId, column: &str) -> DbResult<f64> {
        self.require(id)?.get_f64(&self.schema, column)
    }

    /// Builds a new table containing only the rows whose ids are listed, in
    /// the given order. The new table's tuple ids are renumbered from 0.
    pub fn subset(&self, name: impl Into<String>, ids: &[TupleId]) -> DbResult<Table> {
        let mut t = Table::new(name, self.schema.clone());
        for id in ids {
            t.insert(self.require(*id)?.clone())?;
        }
        Ok(t)
    }

    /// Renders the table (or its first `limit` rows) as an aligned text grid.
    /// Used by the examples and the REPL.
    pub fn render(&self, limit: usize) -> String {
        let mut header: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        header.insert(0, "#".to_string());
        let mut grid: Vec<Vec<String>> = vec![header];
        for (id, row) in self.iter().take(limit) {
            let mut line: Vec<String> = vec![id.to_string()];
            line.extend(row.values().iter().map(|v| v.to_string()));
            grid.push(line);
        }
        let widths: Vec<usize> = (0..grid[0].len())
            .map(|c| grid.iter().map(|r| r[c].len()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:<w$}"))
                .collect();
            out.push_str(line.join("  ").trim_end());
            out.push('\n');
            if i == 0 {
                out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
                out.push('\n');
            }
        }
        if self.len() > limit {
            out.push_str(&format!("... ({} more rows)\n", self.len() - limit));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{} rows]", self.name, self.schema, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;
    use crate::tuple;
    use crate::value::Value;

    fn recipes() -> Table {
        let schema = Schema::build(&[
            ("name", ColumnType::Text),
            ("calories", ColumnType::Float),
            ("gluten", ColumnType::Text),
        ]);
        let mut t = Table::new("recipes", schema);
        t.insert(tuple!("oatmeal", 320.0, "free")).unwrap();
        t.insert(tuple!("pasta", 640.0, "full")).unwrap();
        t.insert(tuple!("salad", 210.0, "free")).unwrap();
        t
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let t = recipes();
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.get(TupleId(1)).unwrap().values()[0],
            Value::Text("pasta".into())
        );
        assert!(t.get(TupleId(9)).is_none());
    }

    #[test]
    fn insert_validates_arity_and_types() {
        let mut t = recipes();
        assert!(matches!(
            t.insert(tuple!("only-one")),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            t.insert(tuple!(12, 320.0, "free")),
            Err(DbError::TypeError(_))
        ));
    }

    #[test]
    fn value_f64_reads_numeric_columns() {
        let t = recipes();
        assert_eq!(t.value_f64(TupleId(0), "calories").unwrap(), 320.0);
        assert!(t.value_f64(TupleId(0), "name").is_err());
    }

    #[test]
    fn subset_renumbers_ids() {
        let t = recipes();
        let s = t.subset("gluten_free", &[TupleId(2), TupleId(0)]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.get(TupleId(0)).unwrap().values()[0],
            Value::Text("salad".into())
        );
    }

    #[test]
    fn fingerprints_change_on_mutation_and_survive_clones() {
        let mut t = recipes();
        let before = t.fingerprint();
        let clone = t.clone();
        // An unmutated clone has identical contents, so it shares the stamp.
        assert_eq!(clone.fingerprint(), before);
        t.insert(tuple!("soup", 150.0, "free")).unwrap();
        assert_ne!(t.fingerprint(), before, "mutation must refresh the stamp");
        // Divergent mutations of clones never collide.
        let mut a = t.clone();
        let mut b = t.clone();
        a.insert(tuple!("rice", 200.0, "free")).unwrap();
        b.insert(tuple!("rice", 200.0, "free")).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Distinct tables are always distinct, even with identical rows.
        assert_ne!(recipes().fingerprint(), recipes().fingerprint());
    }

    #[test]
    fn render_includes_header_and_truncation_note() {
        let t = recipes();
        let r = t.render(2);
        assert!(r.contains("calories"));
        assert!(r.contains("1 more rows"));
    }
}
